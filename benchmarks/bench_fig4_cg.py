"""Benchmark: regenerate Figure 4 (CG miss rates vs cache size)."""

import pytest

from repro.experiments import fig4_cg


def bench_fig4_full(benchmark, run_once):
    result = run_once(benchmark, fig4_cg.run, validate_n=128)
    assert result.comparison(
        "simulated lev2WS knee (reduced problem)"
    ).ratio == pytest.approx(1.0, abs=0.6)


def bench_fig4_analytical_only(benchmark):
    result = benchmark(fig4_cg.run, validate_n=None)
    assert result.comparison("lev1WS, 2-D prototypical").ratio == pytest.approx(
        1.0, abs=0.5
    )
