"""Benchmark: the Sections 3.3-7.3 granularity sweep."""

import pytest

from repro.experiments import grain_sweep


def bench_grain_sweep(benchmark):
    result = benchmark(grain_sweep.run)
    assert result.comparison("LU ratio, 1 MB grain").ratio == pytest.approx(
        1.0, abs=0.35
    )
    assert result.comparison(
        "Volume rendering instr/word"
    ).measured_value == pytest.approx(600.0)
    assert result.comparison("FFT grain for ratio 100").measured_value > 10 * 1024**4
