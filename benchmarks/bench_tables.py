"""Benchmarks: regenerate Table 1 (growth rates) and Table 2 (working
set sizes and desirable grain sizes)."""

import pytest

from repro.experiments import table1, table2
from repro.units import MB


def bench_table1(benchmark):
    result = benchmark(table1.run)
    for comp in result.comparisons:
        if "exponent" in comp.quantity and "log" not in comp.note:
            assert comp.ratio == pytest.approx(1.0, abs=0.02)


def bench_table2(benchmark):
    result = benchmark(table2.run)
    for name in ("LU", "CG", "FFT", "Barnes-Hut", "Volume Rendering"):
        assert 0.2 < result.comparison(f"{name}: important WS size").ratio < 4.0
        assert result.comparison(f"{name}: desirable grain").measured_value <= 1.05 * MB
