"""Dispatch-fabric overhead: the same quick campaign through the
multi-node dispatch fabric (``--nodes 1``) versus the plain worker-pool
backend (``--jobs 1``).

The difference of the two means, divided by the experiment count, is
the per-experiment price of fenced assignment: node spawn + hello,
WAL-framed assign/complete records, and the socket round trip.  Both
benches run the real CLI as a subprocess, so interpreter start-up is
paid identically on each side and cancels out of the comparison.
"""

from __future__ import annotations

import os
import subprocess
import sys

#: Small quick experiments so the campaign is dominated by dispatch,
#: not simulation.
EXPERIMENTS = ("table1", "table2")


def _run_campaign(run_dir, nodes=None):
    cmd = [sys.executable, "-m", "repro.experiments", "--quick", "--jobs", "1"]
    if nodes is not None:
        cmd += ["--nodes", str(nodes)]
    cmd += ["--run-dir", str(run_dir), *EXPERIMENTS]
    env = dict(os.environ)
    entries = [entry for entry in sys.path if entry]
    if entries:
        env["PYTHONPATH"] = os.pathsep.join(entries)
    subprocess.run(
        cmd,
        check=True,
        stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL,
        env=env,
        timeout=300,
    )
    assert (run_dir / "summary.json").is_file()


def bench_worker_pool_campaign(benchmark, run_once, tmp_path):
    """Baseline: the subprocess worker-pool backend (``--jobs 1``)."""
    run_once(benchmark, _run_campaign, tmp_path / "pool")
    benchmark.extra_info["experiments"] = len(EXPERIMENTS)


def bench_dispatch_fabric_campaign(benchmark, run_once, tmp_path):
    """The same campaign dispatched over a one-node fabric."""
    run_once(benchmark, _run_campaign, tmp_path / "fabric", nodes=1)
    benchmark.extra_info["experiments"] = len(EXPERIMENTS)
    if benchmark.stats and benchmark.stats.stats.mean:
        benchmark.extra_info["seconds_per_experiment"] = (
            benchmark.stats.stats.mean / len(EXPERIMENTS)
        )
