"""Benchmark: regenerate Figure 2 (LU miss rates vs cache size)."""

import pytest

from repro.experiments import fig2_lu


def bench_fig2_full(benchmark, run_once):
    """Analytical full-scale curves + trace validation at n=96."""
    result = run_once(benchmark, fig2_lu.run, validate_n=96)
    assert result.comparison("lev2WS (one block, B=16)").ratio == pytest.approx(
        1.0, abs=0.2
    )
    assert result.comparison(
        "simulated lev2WS knee (reduced problem)"
    ).ratio == pytest.approx(1.0, abs=0.6)


def bench_fig2_analytical_only(benchmark):
    """The pure-model sweep, cheap enough for repeated timing."""
    result = benchmark(fig2_lu.run, validate_n=None)
    assert len(result.curves) == 3
