"""Microbenchmarks for the measurement substrate and kernels.

These time the instruments themselves (profiler throughput, cache
simulation, application kernels) rather than paper artifacts; useful
for tracking regressions when modifying the simulators.
"""

import numpy as np
import pytest

from repro.apps.barnes_hut.bodies import plummer_model
from repro.apps.barnes_hut.force import compute_accelerations
from repro.apps.cg.grid import Grid2D
from repro.apps.cg.solver import conjugate_gradient
from repro.apps.fft.transform import fft
from repro.apps.lu.factor import blocked_lu, random_diagonally_dominant
from repro.apps.volrend.render import render_frame
from repro.apps.volrend.volume import synthetic_head
from repro.mem.cache import FullyAssociativeCache
from repro.mem.multiproc import MultiprocessorMemory
from repro.mem.setassoc import SetAssociativeCache
from repro.mem.stack_distance import profile_trace
from repro.mem.trace import Trace


def _random_trace(num_refs=50_000, num_blocks=4096, seed=0):
    rng = np.random.default_rng(seed)
    addrs = rng.integers(0, num_blocks, size=num_refs).astype(np.int64) * 8
    kinds = rng.integers(0, 2, size=num_refs).astype(np.uint8)
    return Trace(addrs, kinds)


def _note_throughput(benchmark, refs: int) -> None:
    """Record references/second into the machine-readable results."""
    benchmark.extra_info["refs"] = refs
    if benchmark.stats and benchmark.stats.stats.mean:
        benchmark.extra_info["refs_per_second"] = refs / benchmark.stats.stats.mean


def bench_stack_distance_profiler(benchmark):
    trace = _random_trace()
    profile = benchmark(profile_trace, trace)
    assert profile.total == len(trace)
    _note_throughput(benchmark, len(trace))


def bench_fully_associative_cache(benchmark):
    trace = _random_trace()

    def run():
        cache = FullyAssociativeCache(1024 * 8)
        return cache.run(trace)

    stats = benchmark(run)
    assert stats.accesses == len(trace)
    _note_throughput(benchmark, len(trace))


def bench_direct_mapped_cache(benchmark):
    trace = _random_trace()

    def run():
        cache = SetAssociativeCache(1024 * 8, associativity=1)
        return cache.run(trace)

    stats = benchmark(run)
    assert stats.accesses == len(trace)
    _note_throughput(benchmark, len(trace))


def bench_multiprocessor_memory(benchmark):
    traces = [_random_trace(10_000, 1024, seed=s) for s in range(4)]

    def run():
        mem = MultiprocessorMemory(4, capacity_bytes=256 * 8)
        return mem.run_traces(traces)

    stats = benchmark(run)
    assert sum(s.accesses for s in stats) == 40_000
    _note_throughput(benchmark, 40_000)


def bench_obs_overhead_fully_associative(benchmark, tmp_path):
    """Instrumented-vs-uninstrumented hot-loop throughput.

    Times the fully-associative simulation with observability sampling
    *and* timeline recording enabled, then times the identical run with
    both disabled, and records both rates (plus the overhead
    percentage) into ``extra_info`` so CI can gate on the documented
    <5% budget without scraping terminals.  The timeline recorder is
    part of the instrumented arm on purpose: the budget covers the full
    telemetry stack, not just the counters.
    """
    import time

    from repro.obs import metrics as obs_metrics
    from repro.obs import timeline as obs_timeline

    trace = _random_trace()

    def run():
        cache = FullyAssociativeCache(1024 * 8)
        return cache.run(trace)

    def timed_run():
        t0 = time.perf_counter()
        run()
        return time.perf_counter() - t0

    was_enabled = obs_metrics.obs_enabled()
    obs_metrics.set_obs_enabled(True)
    obs_metrics.get_registry().reset()
    timeline_path = tmp_path / "timeline.jsonl"
    # active_recorder() gates on obs_enabled, so the baseline arm below
    # automatically runs without timeline rows.
    obs_timeline.configure_timeline(timeline_path)
    try:
        stats = benchmark(run)
        assert stats.accesses == len(trace)
        # The registry actually saw the loop (sampling was really on).
        snapshot = obs_metrics.get_registry().snapshot()
        assert any(name.endswith(".refs") for name in snapshot["counters"])

        # Interleave instrumented/uninstrumented pairs so both sides see
        # the same cache/thermal conditions, and gate on best-of-each
        # (min is the noise-robust statistic for a CPU-bound loop).
        instrumented_times = []
        baseline_times = []
        for _ in range(7):
            obs_metrics.set_obs_enabled(True)
            instrumented_times.append(timed_run())
            obs_metrics.set_obs_enabled(False)
            baseline_times.append(timed_run())
        # The instrumented arm really recorded timeline rows.
        assert obs_timeline.read_timeline(timeline_path)
    finally:
        obs_metrics.set_obs_enabled(was_enabled)
        obs_timeline.configure_timeline(None)

    instrumented = min(instrumented_times)
    baseline = min(baseline_times)
    _note_throughput(benchmark, len(trace))
    benchmark.extra_info["refs_per_second_instrumented"] = len(trace) / instrumented
    benchmark.extra_info["refs_per_second_uninstrumented"] = len(trace) / baseline
    benchmark.extra_info["obs_overhead_pct"] = (
        (instrumented - baseline) / baseline * 100.0
    )


def bench_lu_kernel(benchmark):
    a = random_diagonally_dominant(96, seed=1)
    packed = benchmark(lambda: blocked_lu(a.copy(), 16))
    assert packed.shape == (96, 96)


def bench_cg_solver(benchmark):
    grid = Grid2D(48)
    b = np.random.default_rng(0).standard_normal(grid.num_points)
    result = benchmark(conjugate_gradient, grid.laplacian_matvec, b, None, 1e-8)
    assert result.converged


def bench_fft_kernel(benchmark):
    x = np.random.default_rng(0).standard_normal(2**14).astype(complex)
    out = benchmark(fft, x)
    np.testing.assert_allclose(out[:4], np.fft.fft(x)[:4], atol=1e-6)


def bench_barnes_hut_force_phase(benchmark, run_once):
    bodies = plummer_model(512, seed=1)
    acc = run_once(benchmark, compute_accelerations, bodies, 1.0)
    assert acc.shape == (512, 3)


def bench_volume_renderer(benchmark, run_once):
    volume = synthetic_head(32)
    image = run_once(benchmark, render_frame, volume, 0.3, 32)
    assert image.shape == (32, 32)
