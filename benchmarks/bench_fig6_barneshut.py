"""Benchmark: regenerate Figure 6 (Barnes-Hut working sets) — the
paper's own configuration: 1024 particles, theta=1.0, 4 processors,
quadrupole moments."""

import pytest

from repro.experiments import fig6_barneshut


def bench_fig6_paper_configuration(benchmark, run_once):
    result = run_once(benchmark, fig6_barneshut.run, n=1024)
    assert result.comparison("lev2WS (tree data per particle)").ratio == pytest.approx(
        1.0, abs=0.6
    )
    assert result.comparison("communication floor").measured_value < 0.01


def bench_fig6_reduced(benchmark, run_once):
    result = run_once(benchmark, fig6_barneshut.run, n=256)
    assert result.comparison("miss rate after lev1WS").measured_value < 0.35
