"""Microbenchmarks for the sharded streaming trace substrate.

These track the overhead the out-of-core path adds over the in-memory
hot loops: shard build + seal throughput, chunk-wise decode + verify
throughput, and a full streamed stack-distance profile (the
checkpointed consumer the experiments actually run).
"""

import numpy as np

from repro.mem.shards import StreamingTraceBuilder
from repro.mem.stack_distance import StackDistanceProfiler
from repro.mem.streamsim import profile_streamed, run_cache_streamed

NUM_REFS = 50_000
SHARD_REFS = 8_192


def _columns(num_refs=NUM_REFS, num_blocks=4096, seed=0):
    rng = np.random.default_rng(seed)
    addrs = rng.integers(0, num_blocks, size=num_refs).astype(np.int64) * 8
    kinds = rng.integers(0, 2, size=num_refs).astype(np.uint8)
    return addrs, kinds


def _note_throughput(benchmark, refs: int) -> None:
    benchmark.extra_info["refs"] = refs
    if benchmark.stats and benchmark.stats.stats.mean:
        benchmark.extra_info["refs_per_second"] = refs / benchmark.stats.stats.mean


def _build(tmp_path, name, seed=0):
    addrs, kinds = _columns(seed=seed)
    builder = StreamingTraceBuilder(tmp_path / name, shard_refs=SHARD_REFS)
    builder.extend_arrays(addrs, kinds)
    return builder.build()


def bench_streaming_shard_build(benchmark, tmp_path):
    """Generator-side cost: spill, compress, checksum, seal, journal."""
    addrs, kinds = _columns()
    counter = iter(range(10_000_000))

    def build():
        builder = StreamingTraceBuilder(
            tmp_path / f"b{next(counter)}.trd", shard_refs=SHARD_REFS
        )
        builder.extend_arrays(addrs, kinds)
        return builder.build()

    streamed = benchmark(build)
    assert len(streamed) == NUM_REFS
    _note_throughput(benchmark, NUM_REFS)


def bench_streaming_chunk_decode(benchmark, tmp_path):
    """Consumer-side cost: decode + SHA-256/CRC verify every shard."""
    streamed = _build(tmp_path, "d.trd")

    def drain():
        total = 0
        for _, addrs, _ in streamed.iter_chunks():
            total += addrs.shape[0]
        return total

    assert benchmark(drain) == NUM_REFS
    _note_throughput(benchmark, NUM_REFS)


def bench_streaming_profile(benchmark, tmp_path):
    """Streamed stack-distance profile, checkpointing every boundary."""
    streamed = _build(tmp_path, "p.trd")
    ckpt = tmp_path / "p.ckpt"

    def profile():
        if ckpt.exists():
            ckpt.unlink()  # no resume: time the full streamed run
        return profile_streamed(
            StackDistanceProfiler(block_size=8), streamed, checkpoint_path=ckpt
        )

    result = benchmark(profile)
    assert result.total == NUM_REFS
    _note_throughput(benchmark, NUM_REFS)


def bench_streaming_fullassoc(benchmark, tmp_path):
    """Streamed fully associative simulation with checkpoints."""
    from repro.mem.cache import FullyAssociativeCache

    streamed = _build(tmp_path, "f.trd")
    ckpt = tmp_path / "f.ckpt"

    def run():
        if ckpt.exists():
            ckpt.unlink()
        return run_cache_streamed(
            FullyAssociativeCache(1024 * 8), streamed, checkpoint_path=ckpt
        )

    stats = benchmark(run)
    assert stats.accesses == NUM_REFS
    _note_throughput(benchmark, NUM_REFS)
