"""Benchmark configuration.

Every paper table/figure has a ``bench_*`` target that regenerates it
(at validated reduced scale where the artifact requires trace
simulation) and asserts its headline shape, so a benchmark run doubles
as a reproduction run.  Heavy experiments use one round.
"""

import pytest


def one_shot(benchmark, fn, *args, **kwargs):
    """Run a heavy experiment exactly once under the benchmark timer."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)


@pytest.fixture
def run_once():
    return one_shot
