"""Benchmark configuration.

Every paper table/figure has a ``bench_*`` target that regenerates it
(at validated reduced scale where the artifact requires trace
simulation) and asserts its headline shape, so a benchmark run doubles
as a reproduction run.  Heavy experiments use one round.

Every benchmark session additionally writes a machine-readable
``BENCH_results.json`` (override the location with the
``BENCH_RESULTS_PATH`` environment variable) so CI and regression
tooling can diff timings without scraping the terminal table.  Each
entry carries the benchmark's name, group, timing statistics, and any
``extra_info`` the benchmark attached (e.g. ``refs_per_second`` for
the substrate instruments).
"""

import json
import os
from pathlib import Path

import pytest

#: Environment variable overriding where the JSON results land.
BENCH_RESULTS_ENV = "BENCH_RESULTS_PATH"

#: Default output file, relative to the pytest invocation directory.
BENCH_RESULTS_DEFAULT = "BENCH_results.json"

#: Stats fields exported per benchmark (all floats except rounds).
_STAT_FIELDS = ("min", "max", "mean", "stddev", "median", "ops", "rounds")


def one_shot(benchmark, fn, *args, **kwargs):
    """Run a heavy experiment exactly once under the benchmark timer."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)


@pytest.fixture
def run_once():
    return one_shot


def _attribution() -> dict:
    """Row attribution (git SHA, ISO timestamp, hostname), best-effort.

    Computed once per session; an environment without the repro package
    on the path (bare ``pytest benchmarks/``) degrades to no
    attribution rather than failing the run — the archive appenders are
    the layer that *refuses* unattributed rows.
    """
    try:
        from repro.obs.archive import attribution

        return attribution(cwd=Path(__file__).resolve().parent)
    except Exception:
        return {}


def _export(bench, attribution: dict) -> dict:
    stats = {}
    for field in _STAT_FIELDS:
        value = getattr(bench.stats, field, None)
        if value is not None:
            stats[field] = int(value) if field == "rounds" else float(value)
    return {
        "name": bench.name,
        "fullname": bench.fullname,
        "group": bench.group,
        "stats": stats,
        "extra_info": dict(bench.extra_info),
        "attribution": dict(attribution),
    }


def pytest_sessionfinish(session, exitstatus):
    """Write ``BENCH_results.json`` after a benchmark run.

    A plain collection run (``--collect-only``) or a run where every
    benchmark was skipped writes nothing.
    """
    benchsession = getattr(session.config, "_benchmarksession", None)
    if benchsession is None or not benchsession.benchmarks:
        return
    attribution = _attribution()
    payload = {
        "exit_status": int(exitstatus),
        "benchmarks": sorted(
            (_export(bench, attribution) for bench in benchsession.benchmarks),
            key=lambda entry: entry["fullname"],
        ),
    }
    path = Path(os.environ.get(BENCH_RESULTS_ENV, BENCH_RESULTS_DEFAULT))
    path.write_text(json.dumps(payload, indent=1, sort_keys=True) + "\n")
    terminal = session.config.pluginmanager.get_plugin("terminalreporter")
    if terminal is not None:
        terminal.write_line(
            f"benchmark results written to {path} "
            f"({len(payload['benchmarks'])} benchmark(s))"
        )
