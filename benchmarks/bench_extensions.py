"""Benchmarks for the extension experiments: prefetchability, cache
hierarchy design, cost model, scaling study, and the CG blocking
ablation."""

import pytest

from repro.experiments import (
    cg_blocking,
    cost_model,
    hierarchy_design,
    prefetch_study,
    scaling_study,
)
from repro.units import KB


def bench_prefetch_study(benchmark, run_once):
    result = run_once(benchmark, prefetch_study.run)
    assert result.comparison("regular-vs-irregular separation").measured_value > 0


def bench_hierarchy_design(benchmark, run_once):
    result = run_once(benchmark, hierarchy_design.run)
    for comp in result.comparisons:
        if "local miss rate" in comp.quantity:
            assert comp.ratio == pytest.approx(1.0, abs=1e-9)


def bench_cost_model(benchmark):
    result = benchmark(cost_model.run)
    assert result.comparison(
        "worst equal-split penalty across applications"
    ).measured_value < 2.0


def bench_scaling_study(benchmark):
    result = benchmark(scaling_study.run)
    assert result.comparison("BH MC theta at 1M particles").ratio == pytest.approx(
        1.0, abs=0.05
    )
    assert result.comparison(
        "BH lev2WS at ~1G particles (MC)"
    ).measured_value < 300 * KB


def bench_cg_blocking(benchmark, run_once):
    result = run_once(benchmark, cg_blocking.run)
    assert result.comparison("blocked knee growth (2x n)").measured_value == pytest.approx(
        1.0, abs=0.5
    )


def bench_bh_phases(benchmark, run_once):
    from repro.experiments import bh_phases

    result = run_once(benchmark, bh_phases.run, 256)
    assert result.comparison("build/force sharing-rate ratio").measured_value > 5


def bench_cg_unstructured(benchmark):
    from repro.experiments import cg_unstructured

    result = benchmark(cg_unstructured.run, 32, 8)
    assert result.comparison(
        "communication penalty: unstructured / regular"
    ).measured_value > 1.1


def bench_all_cache(benchmark):
    from repro.experiments import all_cache

    result = benchmark(all_cache.run)
    assert result.comparison(
        "all-cache speedup at 256 KB partitions"
    ).measured_value > 2.0


def bench_volrend_stealing(benchmark, run_once):
    from repro.experiments import volrend_stealing

    result = run_once(benchmark, volrend_stealing.run, 32)
    coarse = result.comparison("steal fraction, coarse grain").measured_value
    fine = result.comparison("steal fraction, fine grain").measured_value
    assert fine > coarse


def bench_line_size_study(benchmark, run_once):
    from repro.experiments import line_size_study

    result = run_once(benchmark, line_size_study.run)
    assert result.comparison(
        "streaming vs Barnes-Hut line-size benefit"
    ).measured_value > 2
