"""Benchmark: regenerate Figure 5 (FFT miss rates vs cache size)."""

import pytest

from repro.experiments import fig5_fft


def bench_fig5_full(benchmark, run_once):
    result = run_once(benchmark, fig5_fft.run, validate_n=2**14)
    for radix, tolerance in ((2, 0.15), (8, 0.45)):
        comp = result.comparison(
            f"simulated plateau, radix-{radix} (reduced problem)"
        )
        assert comp.ratio == pytest.approx(1.0, abs=tolerance)


def bench_fig5_analytical_only(benchmark):
    result = benchmark(fig5_fft.run, validate_n=None)
    assert result.comparison("plateau after lev1WS, radix-2").measured_value == pytest.approx(0.6)
