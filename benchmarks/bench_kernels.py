"""Vectorized simulation kernels vs their pure-Python oracles.

Three rows per kernel (``repro.mem.kernels``):

- ``*_oracle``: the pure-Python reference hot loop, tier pinned to
  ``oracle``;
- ``*_vector``: the columnar numpy kernel with shadow verification
  effectively off (one warmup verify, then a huge sampling period) —
  the raw kernel speed;
- ``*_vector_verified``: the numpy kernel at the *default* shadow
  sampling rate (every 32nd chunk replays through the oracle), the
  configuration campaigns actually run — the difference against
  ``*_vector`` is the verification overhead.

``compare_baseline.py`` gates these rows harder than the rest of the
suite: a kernel row regressing more than 10% against
``BENCH_baseline.json`` fails the comparison.
"""

import numpy as np
import pytest

from repro.mem import kernels
from repro.mem.cache import FullyAssociativeCache
from repro.mem.setassoc import SetAssociativeCache
from repro.mem.stack_distance import profile_trace
from repro.mem.trace import Trace

#: Sampling period that never fires after the warmup call below.
_NEVER = 1 << 30


def _random_trace(num_refs=50_000, num_blocks=4096, seed=0):
    rng = np.random.default_rng(seed)
    addrs = rng.integers(0, num_blocks, size=num_refs).astype(np.int64) * 8
    kinds = rng.integers(0, 2, size=num_refs).astype(np.uint8)
    return Trace(addrs, kinds)


@pytest.fixture(autouse=True)
def _fresh_kernels():
    """Isolate each row from quarantines and guard ordinals."""
    kernels.reset_kernel_state()
    yield
    kernels.reset_kernel_state()
    kernels.clear_kernels(clear_env=False)


def _bench_tier(benchmark, fn, refs, tier, verify_every=_NEVER):
    kernels.configure_kernels(
        tier=tier, verify_every=verify_every, min_refs=0, export_env=False
    )
    fn()  # warmup: the first guarded chunk always shadow-verifies
    benchmark(fn)
    benchmark.extra_info["refs"] = refs
    benchmark.extra_info["kernel_tier"] = tier
    benchmark.extra_info["verify_every"] = verify_every
    if benchmark.stats and benchmark.stats.stats.mean:
        benchmark.extra_info["refs_per_second"] = (
            refs / benchmark.stats.stats.mean
        )


def _fullassoc():
    trace = _random_trace()
    return lambda: FullyAssociativeCache(1024 * 8).run(trace), len(trace)


def _setassoc4():
    trace = _random_trace()
    return (
        lambda: SetAssociativeCache(1024 * 8, associativity=4).run(trace),
        len(trace),
    )


def _directmapped():
    trace = _random_trace()
    return (
        lambda: SetAssociativeCache(1024 * 8, associativity=1).run(trace),
        len(trace),
    )


def _stackdist():
    trace = _random_trace()
    return lambda: profile_trace(trace), len(trace)


def bench_kernel_fullassoc_oracle(benchmark):
    fn, refs = _fullassoc()
    _bench_tier(benchmark, fn, refs, "oracle")


def bench_kernel_fullassoc_vector(benchmark):
    fn, refs = _fullassoc()
    _bench_tier(benchmark, fn, refs, "vector")


def bench_kernel_fullassoc_vector_verified(benchmark):
    fn, refs = _fullassoc()
    _bench_tier(
        benchmark, fn, refs, "vector", verify_every=kernels.DEFAULT_VERIFY_EVERY
    )


def bench_kernel_setassoc4_oracle(benchmark):
    fn, refs = _setassoc4()
    _bench_tier(benchmark, fn, refs, "oracle")


def bench_kernel_setassoc4_vector(benchmark):
    fn, refs = _setassoc4()
    _bench_tier(benchmark, fn, refs, "vector")


def bench_kernel_setassoc4_vector_verified(benchmark):
    fn, refs = _setassoc4()
    _bench_tier(
        benchmark, fn, refs, "vector", verify_every=kernels.DEFAULT_VERIFY_EVERY
    )


def bench_kernel_directmapped_oracle(benchmark):
    fn, refs = _directmapped()
    _bench_tier(benchmark, fn, refs, "oracle")


def bench_kernel_directmapped_vector(benchmark):
    fn, refs = _directmapped()
    _bench_tier(benchmark, fn, refs, "vector")


def bench_kernel_directmapped_vector_verified(benchmark):
    fn, refs = _directmapped()
    _bench_tier(
        benchmark, fn, refs, "vector", verify_every=kernels.DEFAULT_VERIFY_EVERY
    )


def bench_kernel_stackdist_oracle(benchmark):
    fn, refs = _stackdist()
    _bench_tier(benchmark, fn, refs, "oracle")


def bench_kernel_stackdist_vector(benchmark):
    fn, refs = _stackdist()
    _bench_tier(benchmark, fn, refs, "vector")


def bench_kernel_stackdist_vector_verified(benchmark):
    fn, refs = _stackdist()
    _bench_tier(
        benchmark, fn, refs, "vector", verify_every=kernels.DEFAULT_VERIFY_EVERY
    )
