"""Benchmark: the Section 6.4 direct-mapped-vs-fully-associative study."""

from repro.experiments import assoc_study


def bench_assoc_study(benchmark, run_once):
    result = run_once(
        benchmark,
        assoc_study.run,
        n=256,
        capacities=[1 << k for k in range(8, 18)],
    )
    factor = result.comparison(
        "direct-mapped / fully-associative size factor"
    ).measured_value
    assert 1.5 <= factor <= 8.0
