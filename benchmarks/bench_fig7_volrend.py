"""Benchmark: regenerate Figure 7 (volume rendering working sets)."""

import pytest

from repro.experiments import fig7_volrend


def bench_fig7_full(benchmark, run_once):
    result = run_once(benchmark, fig7_volrend.run, n=48, slope_sizes=(32, 48, 64))
    assert result.comparison("lev2WS (ray-to-ray reuse)").ratio < 4.0
    assert result.comparison(
        "lev2WS growth: linear in n (R^2)"
    ).measured_value > 0.9


def bench_fig7_single_frame(benchmark, run_once):
    result = run_once(benchmark, fig7_volrend.run, n=32, frames=1, slope_sizes=())
    assert result.comparison("lev1WS (sample-to-sample reuse)").ratio == pytest.approx(
        1.0, abs=0.8
    )
