"""Compare a benchmark run against the committed baseline.

Usage::

    python benchmarks/compare_baseline.py CURRENT [BASELINE]
        [--metric refs_per_second] [--max-regression-pct PCT]

``CURRENT`` and ``BASELINE`` are ``BENCH_results.json`` files as
written by ``benchmarks/conftest.py``; ``BASELINE`` defaults to the
committed ``BENCH_baseline.json`` at the repository root.  For every
benchmark present in both files the tool prints the throughput delta
(``extra_info.refs_per_second`` where the benchmark records it, mean
wall time otherwise).

By default this is a *report*: exit 0 regardless of deltas, because CI
runners have wildly variable performance and a hard gate on shared
hardware flakes.  Pass ``--max-regression-pct`` to turn it into a gate
that fails when any throughput benchmark regresses more than PCT
percent against the baseline.

The vectorized simulation-kernel rows (``bench_kernel_*`` from
``benchmarks/bench_kernels.py``) are gated harder: they always fail
the comparison when regressing more than ``--kernel-regression-pct``
(default 10%), even in report mode — a kernel slowdown silently
erodes the whole campaign, so it is never just informational.  Pass
``--kernel-regression-pct 0`` to disable the kernel gate.

``--archive PATH`` additionally appends CURRENT's rows to a
cross-run ``perf-archive.jsonl`` and prints the robust trend report
(``repro.obs.archive``).  Archiving *refuses* rows that carry no
attribution (git SHA, timestamp, hostname — stamped by
``benchmarks/conftest.py``): an anonymous archive cannot be walked
back to the commit that regressed.  The trend report itself never
fails the run — the deltas above are the gate.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

#: Default committed baseline, relative to the repository root.
DEFAULT_BASELINE = Path(__file__).resolve().parent.parent / "BENCH_baseline.json"


def _load(path: Path) -> dict:
    payload = json.loads(path.read_text(encoding="utf-8"))
    return {b["name"]: b for b in payload.get("benchmarks", [])}


def _throughput(entry: dict) -> float | None:
    value = entry.get("extra_info", {}).get("refs_per_second")
    return float(value) if isinstance(value, (int, float)) else None


def _mean(entry: dict) -> float | None:
    value = entry.get("stats", {}).get("mean")
    return float(value) if isinstance(value, (int, float)) else None


def compare(current_path: Path, baseline_path: Path) -> list[dict]:
    """One comparison row per benchmark present in both files.

    Each row carries ``delta_pct`` signed so that positive is *better*
    (more refs/second, or less mean wall time).
    """
    current = _load(current_path)
    baseline = _load(baseline_path)
    rows: list[dict] = []
    for name in sorted(set(current) & set(baseline)):
        cur, base = current[name], baseline[name]
        cur_tp, base_tp = _throughput(cur), _throughput(base)
        if cur_tp is not None and base_tp not in (None, 0.0):
            delta = 100.0 * (cur_tp - base_tp) / base_tp
            rows.append(
                {
                    "name": name,
                    "metric": "refs_per_second",
                    "baseline": base_tp,
                    "current": cur_tp,
                    "delta_pct": delta,
                }
            )
            continue
        cur_mean, base_mean = _mean(cur), _mean(base)
        if cur_mean not in (None, 0.0) and base_mean is not None:
            delta = 100.0 * (base_mean - cur_mean) / cur_mean
            rows.append(
                {
                    "name": name,
                    "metric": "mean_seconds",
                    "baseline": base_mean,
                    "current": cur_mean,
                    "delta_pct": delta,
                }
            )
    return rows


def _import_archive():
    """Import ``repro.obs.archive`` (works from a bare checkout too)."""
    try:
        from repro.obs import archive as obs_archive
    except ImportError:
        sys.path.insert(
            0, str(Path(__file__).resolve().parent.parent / "src")
        )
        from repro.obs import archive as obs_archive
    return obs_archive


def archive_current(current_path: Path, archive_path: Path) -> int:
    """Append CURRENT's rows to the perf archive and print trends.

    Returns 0 on success, 2 when any row lacks attribution (the row is
    *refused*, nothing is appended).
    """
    obs_archive = _import_archive()
    payload = json.loads(current_path.read_text(encoding="utf-8"))
    rows = obs_archive.bench_rows(payload)
    if not rows:
        print(
            "compare_baseline: no benchmark rows to archive",
            file=sys.stderr,
        )
        return 2
    unattributed = sorted(
        str(row.get("series"))
        for row in rows
        if not obs_archive.is_attributed(row)
    )
    if unattributed:
        print(
            "compare_baseline: refusing to archive unattributed row(s) "
            f"({', '.join(unattributed)}); re-run the benchmarks from a "
            "git checkout so conftest.py can stamp "
            "git_sha/timestamp/hostname",
            file=sys.stderr,
        )
        return 2
    appended = obs_archive.append_rows(archive_path, rows)
    print(f"archived {appended} row(s) to {archive_path}")
    findings = obs_archive.detect_regressions(
        obs_archive.read_archive(archive_path)
    )
    print(obs_archive.render_trends(findings))
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("current", metavar="CURRENT", type=Path)
    parser.add_argument(
        "baseline",
        metavar="BASELINE",
        type=Path,
        nargs="?",
        default=DEFAULT_BASELINE,
    )
    parser.add_argument(
        "--max-regression-pct",
        type=float,
        default=None,
        metavar="PCT",
        help="fail when any throughput benchmark regresses more than "
        "PCT%% (default: report only, never fail)",
    )
    parser.add_argument(
        "--kernel-regression-pct",
        type=float,
        default=10.0,
        metavar="PCT",
        help="fail when a bench_kernel_* row regresses more than PCT%% "
        "(default: 10; 0 disables the kernel gate)",
    )
    parser.add_argument(
        "--archive",
        type=Path,
        default=None,
        metavar="PATH",
        help="append CURRENT's rows to this perf-archive.jsonl and "
        "print the cross-run trend report (refuses unattributed rows)",
    )
    args = parser.parse_args(argv)
    for path in (args.current, args.baseline):
        if not path.is_file():
            print(f"compare_baseline: {path} does not exist", file=sys.stderr)
            return 2
    if args.archive is not None:
        status = archive_current(args.current, args.archive)
        if status:
            return status

    rows = compare(args.current, args.baseline)
    if not rows:
        print("compare_baseline: no benchmarks in common with the baseline")
        return 0
    width = max(len(r["name"]) for r in rows)
    print(f"{'benchmark':<{width}}  {'metric':<16} {'baseline':>14} "
          f"{'current':>14} {'delta':>8}")
    worst = 0.0
    for row in rows:
        print(
            f"{row['name']:<{width}}  {row['metric']:<16} "
            f"{row['baseline']:>14,.1f} {row['current']:>14,.1f} "
            f"{row['delta_pct']:>+7.1f}%"
        )
        worst = min(worst, row["delta_pct"])
    print(f"worst delta: {worst:+.1f}% (positive is faster than baseline)")
    if (
        args.max_regression_pct is not None
        and worst < -abs(args.max_regression_pct)
    ):
        print(
            f"FAIL: regression {worst:+.1f}% exceeds the "
            f"{args.max_regression_pct:.1f}% budget",
            file=sys.stderr,
        )
        return 1
    kernel_rows = [r for r in rows if r["name"].startswith("bench_kernel_")]
    if args.kernel_regression_pct and kernel_rows:
        worst_kernel = min(r["delta_pct"] for r in kernel_rows)
        if worst_kernel < -abs(args.kernel_regression_pct):
            print(
                f"FAIL: kernel regression {worst_kernel:+.1f}% exceeds the "
                f"{args.kernel_regression_pct:.1f}% kernel budget",
                file=sys.stderr,
            )
            return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
