"""repro — a reproduction of Rothberg, Singh & Gupta, "Working Sets,
Cache Sizes, and Node Granularity Issues for Large-Scale
Multiprocessors" (ISCA 1993).

The library has three layers:

- :mod:`repro.mem` — the measurement substrate: cache simulators,
  single-pass stack-distance profiling, and a shared-address-space
  multiprocessor memory model;
- :mod:`repro.apps` — the five application classes (dense LU, CG, FFT,
  Barnes-Hut, volume rendering), each with a numerically validated
  kernel, a per-processor memory-trace generator, and the paper's
  analytical model;
- :mod:`repro.core` — the paper's methodology: working-set hierarchies,
  knee detection, MC/TC scaling, and grain-size analysis.

Quick start::

    from repro import profile_trace, MissRateCurve, default_capacity_grid
    from repro.apps.lu import LUTraceGenerator

    gen = LUTraceGenerator(n=96, block_size=8, num_processors=4)
    trace = gen.trace_for_processor(0)
    profile = profile_trace(trace)
    curve = MissRateCurve.from_profile(
        profile, default_capacity_grid(), metric="misses_per_flop",
        flops=gen.flops,
    )
    for knee in curve.knees():
        print(knee)
"""

from repro.core import (
    CM5,
    CommunicationPattern,
    GrainConfig,
    Knee,
    MachineSpec,
    MemoryConstrainedScaling,
    MissRateCurve,
    PARAGON,
    SustainabilityBand,
    TimeConstrainedScaling,
    WorkingSet,
    WorkingSetHierarchy,
    classify_ratio,
    find_knees,
    prototypical_configs,
)
from repro.core.analysis import ApplicationModel, Characterization, characterize
from repro.mem import (
    Access,
    AddressSpace,
    FullyAssociativeCache,
    MultiprocessorMemory,
    SetAssociativeCache,
    StackDistanceProfiler,
    Trace,
)
from repro.mem.stack_distance import default_capacity_grid, profile_trace
from repro.units import GB, KB, MB, format_size

__version__ = "1.0.0"

__all__ = [
    "Access",
    "AddressSpace",
    "ApplicationModel",
    "CM5",
    "Characterization",
    "CommunicationPattern",
    "FullyAssociativeCache",
    "GB",
    "GrainConfig",
    "KB",
    "Knee",
    "MB",
    "MachineSpec",
    "MemoryConstrainedScaling",
    "MissRateCurve",
    "MultiprocessorMemory",
    "PARAGON",
    "SetAssociativeCache",
    "StackDistanceProfiler",
    "SustainabilityBand",
    "TimeConstrainedScaling",
    "Trace",
    "WorkingSet",
    "WorkingSetHierarchy",
    "characterize",
    "classify_ratio",
    "default_capacity_grid",
    "find_knees",
    "format_size",
    "profile_trace",
    "prototypical_configs",
]
