"""Knee detection on miss-rate-versus-cache-size curves.

The paper identifies working sets as "knees in the resulting performance
(or miss rate) versus cache size curve" (Section 2.2).  A knee is a
capacity at which the miss rate drops sharply and then plateaus.  We
detect knees by segmenting the curve into plateaus: walk the capacities
in increasing order and emit a knee wherever the rate falls by more than
a relative threshold of the current plateau level (plus a small absolute
floor to suppress noise).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, List

from repro.units import format_size

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.curves import MissRateCurve


@dataclass(frozen=True)
class Knee:
    """One detected knee.

    Attributes:
        capacity_bytes: The smallest sampled capacity at which the
            post-drop plateau is reached — i.e. the measured working-set
            size.
        miss_rate_before: Plateau level left of the knee.
        miss_rate_after: Plateau level right of the knee.
    """

    capacity_bytes: int
    miss_rate_before: float
    miss_rate_after: float

    @property
    def drop(self) -> float:
        return self.miss_rate_before - self.miss_rate_after

    @property
    def drop_ratio(self) -> float:
        if self.miss_rate_after == 0:
            return float("inf")
        return self.miss_rate_before / self.miss_rate_after

    def __str__(self) -> str:
        return (
            f"knee @ {format_size(self.capacity_bytes)}: "
            f"{self.miss_rate_before:.4g} -> {self.miss_rate_after:.4g}"
        )


def find_knees(
    curve: "MissRateCurve",
    rel_threshold: float = 0.25,
    abs_threshold: float = 0.0,
    merge_adjacent: bool = True,
) -> List[Knee]:
    """Locate the knees of ``curve``.

    Args:
        curve: The sampled miss-rate curve (capacities increasing).
        rel_threshold: Minimum fractional drop, relative to the level at
            the left of the step, for a step to count as (part of) a
            knee.  0.25 means the miss rate must fall by at least 25%.
        abs_threshold: Minimum absolute drop; guards against declaring
            knees in the noise floor.
        merge_adjacent: Consecutive steep steps are merged into one knee
            (a physical working set often spans 2-3 grid points).

    Returns:
        Knees ordered by capacity.  The reported ``capacity_bytes`` is
        the capacity at which the drop completes, i.e. where the working
        set first fits.
    """
    capacities = curve.capacities
    rates = curve.miss_rates
    if len(capacities) < 2:
        return []

    knees: List[Knee] = []
    i = 0
    n = len(capacities)
    while i < n - 1:
        level = rates[i]
        step = level - rates[i + 1]
        is_steep = step > abs_threshold and (
            level > 0 and step / level >= rel_threshold
        )
        if not is_steep:
            i += 1
            continue
        # Extend across consecutive steep steps.
        j = i + 1
        if merge_adjacent:
            while j < n - 1:
                nxt = rates[j] - rates[j + 1]
                if rates[j] > 0 and nxt > abs_threshold and nxt / rates[j] >= rel_threshold:
                    j += 1
                else:
                    break
        knees.append(
            Knee(
                capacity_bytes=int(capacities[j]),
                miss_rate_before=float(rates[i]),
                miss_rate_after=float(rates[j]),
            )
        )
        i = j
    return knees


def match_knee(
    knees: List[Knee], expected_bytes: float, tolerance_factor: float = 4.0
) -> Knee:
    """Find the knee nearest ``expected_bytes`` within a multiplicative
    tolerance; raises ``LookupError`` if none qualifies.

    Used by tests and experiments to tie measured knees back to the
    paper's predicted working-set sizes.
    """
    if not knees:
        raise LookupError("no knees to match against")
    best = min(
        knees,
        key=lambda k: abs(
            _log_ratio(k.capacity_bytes, expected_bytes)
        ),
    )
    if max(best.capacity_bytes / expected_bytes, expected_bytes / best.capacity_bytes) > tolerance_factor:
        raise LookupError(
            f"no knee within {tolerance_factor}x of {expected_bytes:.0f} bytes "
            f"(closest at {best.capacity_bytes})"
        )
    return best


def _log_ratio(a: float, b: float) -> float:
    import math

    if a <= 0 or b <= 0:
        return float("inf")
    return abs(math.log(a / b))
