"""Node granularity (grain size) analysis.

Section 2.3: the grain size of a machine is "the amount of main memory
and cache per processor".  For each application the paper assesses a
prototypical 1-Gbyte problem at three granularities —

- coarse: 64 processors x 16 Mbytes,
- prototypical: 1024 processors x 1 Mbyte,
- fine: 16K processors x 64 Kbytes,

— combining the computation-to-communication ratio (against the
sustainability bands of :mod:`repro.core.machine`) with load balance and
concurrency checks.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence

from repro.core.machine import SustainabilityBand, classify_ratio
from repro.units import GB, KB, MB, format_size


@dataclass(frozen=True)
class GrainConfig:
    """One machine configuration for a fixed total problem size.

    Attributes:
        total_data_bytes: Total problem data-set size.
        num_processors: Processor count.
        label: Optional human-readable tag.
    """

    total_data_bytes: float
    num_processors: int
    label: str = ""

    @property
    def memory_per_processor(self) -> float:
        """The grain size, in bytes."""
        return self.total_data_bytes / self.num_processors

    def __str__(self) -> str:
        return (
            f"{self.label or 'config'}: P={self.num_processors}, "
            f"{format_size(self.memory_per_processor)}/processor"
        )


def prototypical_configs(total_data_bytes: float = GB) -> List[GrainConfig]:
    """The paper's three granularity variants for a 1-Gbyte problem."""
    return [
        GrainConfig(total_data_bytes, 64, "coarse (16 MB/node)"),
        GrainConfig(total_data_bytes, 1024, "prototypical (1 MB/node)"),
        GrainConfig(total_data_bytes, 16384, "fine (64 KB/node)"),
    ]


class GrainVerdict(enum.Enum):
    """Overall judgement for one configuration."""

    GOOD = "good parallel performance expected"
    MARGINAL = "sustainable but with some performance loss"
    POOR = "communication or load imbalance dominates"


@dataclass(frozen=True)
class LoadBalanceModel:
    """A simple work-units-per-processor load-balance criterion.

    The paper reasons about "blocks per processor" (LU: 380 good, 25
    marginal), "rays per processor" (volume rendering: 1000 good, 66 too
    few), and "particles per processor" (Barnes-Hut).  We formalize this
    as thresholds on units per processor.

    Attributes:
        unit_name: What a unit of schedulable work is.
        good_threshold: Units/processor at or above which imbalance is
            negligible.
        poor_threshold: Units/processor below which imbalance dominates.
    """

    unit_name: str
    good_threshold: float
    poor_threshold: float

    def assess(self, units_per_processor: float) -> GrainVerdict:
        if units_per_processor >= self.good_threshold:
            return GrainVerdict.GOOD
        if units_per_processor >= self.poor_threshold:
            return GrainVerdict.MARGINAL
        return GrainVerdict.POOR


@dataclass
class GrainAssessment:
    """The grain-size judgement for one application at one configuration.

    Attributes:
        config: The machine configuration assessed.
        flops_per_word: Computation-to-communication ratio.
        band: Sustainability band for the ratio.
        units_per_processor: Schedulable work units per processor.
        load_balance: Load-balance verdict.
        verdict: Combined judgement.
        notes: Free-form explanation mirroring the paper's reasoning.
    """

    config: GrainConfig
    flops_per_word: float
    band: SustainabilityBand
    units_per_processor: float
    load_balance: GrainVerdict
    verdict: GrainVerdict
    notes: str = ""

    def __str__(self) -> str:
        return (
            f"{self.config}\n"
            f"  comp/comm: {self.flops_per_word:.1f} FLOPs/word [{self.band.value}]\n"
            f"  work: {self.units_per_processor:.0f} units/processor "
            f"[{self.load_balance.value}]\n"
            f"  verdict: {self.verdict.value}"
            + (f"\n  note: {self.notes}" if self.notes else "")
        )


def combine_verdicts(
    band: SustainabilityBand, load_balance: GrainVerdict
) -> GrainVerdict:
    """Combine communication and load-balance judgements.

    The worse of the two wins: an easy ratio cannot rescue a starved
    load balance, and vice versa.
    """
    comm_verdict = {
        SustainabilityBand.EASY: GrainVerdict.GOOD,
        SustainabilityBand.SUSTAINABLE: GrainVerdict.MARGINAL,
        SustainabilityBand.EXTREMELY_DIFFICULT: GrainVerdict.POOR,
    }[band]
    order = [GrainVerdict.GOOD, GrainVerdict.MARGINAL, GrainVerdict.POOR]
    return max(comm_verdict, load_balance, key=order.index)


def assess_grain(
    config: GrainConfig,
    flops_per_word: float,
    units_per_processor: float,
    load_model: LoadBalanceModel,
    notes: str = "",
) -> GrainAssessment:
    """Build a :class:`GrainAssessment` from the model outputs."""
    band = classify_ratio(flops_per_word)
    lb = load_model.assess(units_per_processor)
    return GrainAssessment(
        config=config,
        flops_per_word=flops_per_word,
        band=band,
        units_per_processor=units_per_processor,
        load_balance=lb,
        verdict=combine_verdicts(band, lb),
        notes=notes,
    )


def desirable_grain_size(assessments: Sequence[GrainAssessment]) -> GrainConfig:
    """The finest configuration with a GOOD verdict; when none is GOOD,
    the finest MARGINAL one.

    This mirrors the paper's judgements: for LU "a 1 Mbyte grain size is
    easy to sustain ... a 64 Kbyte grain size is not so easy", so the
    desirable grain is the 1 MB point even though 64 KB is survivable.
    """
    for wanted in (GrainVerdict.GOOD, GrainVerdict.MARGINAL):
        candidates = [a for a in assessments if a.verdict is wanted]
        if candidates:
            finest = min(candidates, key=lambda a: a.config.memory_per_processor)
            return finest.config
    raise ValueError("no configuration is even marginally acceptable")
