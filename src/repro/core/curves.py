"""Miss-rate-versus-cache-size curves.

The central empirical object of the paper: for each application the
authors plot miss rate (misses per FLOP, or read miss rate) against
fully associative cache size on a log axis and read the working-set
hierarchy off the knees (Figures 2, 4, 5, 6, 7).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence

import numpy as np

from repro.mem.stack_distance import StackDistanceProfile
from repro.units import format_size


@dataclass
class MissRateCurve:
    """A sampled miss-rate curve.

    Attributes:
        capacities: Cache sizes in bytes, strictly increasing.
        miss_rates: Miss rate at each capacity.  Units depend on
            ``metric``.
        metric: ``"misses_per_flop"`` (LU/CG/FFT) or
            ``"read_miss_rate"`` (Barnes-Hut / volume rendering) or
            ``"miss_rate"``.
        label: Series label (e.g. ``"B=16"`` or ``"radix-8"``).
    """

    capacities: np.ndarray
    miss_rates: np.ndarray
    metric: str = "miss_rate"
    label: str = ""

    def __post_init__(self) -> None:
        self.capacities = np.asarray(self.capacities, dtype=np.int64)
        self.miss_rates = np.asarray(self.miss_rates, dtype=float)
        if self.capacities.shape != self.miss_rates.shape:
            raise ValueError("capacities and miss_rates must align")
        if len(self.capacities) and np.any(np.diff(self.capacities) <= 0):
            raise ValueError("capacities must be strictly increasing")

    @classmethod
    def from_profile(
        cls,
        profile: StackDistanceProfile,
        capacities: Sequence[int],
        metric: str = "miss_rate",
        label: str = "",
        flops: Optional[float] = None,
    ) -> "MissRateCurve":
        """Build a curve from a stack-distance profile.

        When ``metric == "misses_per_flop"``, ``flops`` must give the
        floating-point operation count of the traced computation.
        """
        caps = np.asarray(sorted(set(int(c) for c in capacities)), dtype=np.int64)
        if metric == "misses_per_flop":
            if flops is None:
                raise ValueError("flops required for misses_per_flop metric")
            rates = profile.misses_per_op(caps, flops)
        else:
            rates = profile.miss_rates(caps)
        return cls(caps, rates, metric=metric, label=label)

    @classmethod
    def from_model(
        cls,
        model: Callable[[float], float],
        capacities: Sequence[int],
        metric: str = "miss_rate",
        label: str = "",
    ) -> "MissRateCurve":
        """Sample an analytical miss-rate model at the given capacities."""
        caps = np.asarray(sorted(set(int(c) for c in capacities)), dtype=np.int64)
        rates = np.array([model(float(c)) for c in caps], dtype=float)
        return cls(caps, rates, metric=metric, label=label)

    def value_at(self, capacity_bytes: float) -> float:
        """Miss rate at ``capacity_bytes`` (step interpolation: the rate
        of the largest sampled capacity not exceeding it)."""
        index = int(np.searchsorted(self.capacities, capacity_bytes, side="right")) - 1
        if index < 0:
            return float(self.miss_rates[0])
        return float(self.miss_rates[index])

    @property
    def floor(self) -> float:
        """Miss rate with the largest simulated cache (≈ communication
        plus cold floor)."""
        return float(self.miss_rates[-1])

    @property
    def ceiling(self) -> float:
        """Miss rate with the smallest simulated cache."""
        return float(self.miss_rates[0])

    def drop_factor(self) -> float:
        """Ratio of worst to best miss rate across the sweep."""
        if self.floor == 0:
            return float("inf")
        return self.ceiling / self.floor

    def to_dict(self) -> dict:
        """JSON-serializable form (used by campaign checkpoints)."""
        return {
            "capacities": [int(c) for c in self.capacities],
            "miss_rates": [float(r) for r in self.miss_rates],
            "metric": self.metric,
            "label": self.label,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "MissRateCurve":
        return cls(
            np.asarray(payload["capacities"], dtype=np.int64),
            np.asarray(payload["miss_rates"], dtype=float),
            metric=str(payload.get("metric", "miss_rate")),
            label=str(payload.get("label", "")),
        )

    def knees(self, **kwargs) -> List["Knee"]:
        """Detect knees (working-set boundaries); see
        :func:`repro.core.knee.find_knees`."""
        from repro.core.knee import find_knees

        return find_knees(self, **kwargs)

    def render_ascii(self, width: int = 64, height: int = 16) -> str:
        """A terminal plot of the curve (log-x), used by the experiment
        drivers to mirror the paper's figures."""
        if len(self.capacities) < 2:
            return "(curve too short to plot)"
        xs = np.log2(self.capacities.astype(float))
        ys = self.miss_rates
        y_max = float(ys.max()) or 1.0
        grid = [[" "] * width for _ in range(height)]
        for x, y in zip(xs, ys):
            col = int((x - xs[0]) / (xs[-1] - xs[0]) * (width - 1))
            row = height - 1 - int(y / y_max * (height - 1))
            grid[row][col] = "*"
        lines = ["".join(row) for row in grid]
        header = f"{self.label or self.metric}  (y: 0..{y_max:.3g}, x: " \
                 f"{format_size(self.capacities[0])}..{format_size(self.capacities[-1])} log2)"
        return "\n".join([header] + lines)
