"""Core methodology of the paper: working-set hierarchies, knee
detection on miss-rate curves, problem-scaling models, and node
granularity analysis.

The paper's contribution is not a new system but a *characterization
methodology* (Section 2):

1. Simulate fully associative LRU caches of many sizes over an
   application's reference stream; knees in the miss-rate-versus-size
   curve identify the application's **working-set hierarchy**
   (:mod:`repro.core.curves`, :mod:`repro.core.knee`,
   :mod:`repro.core.working_set`).
2. Scale the problem under **memory-constrained** and
   **time-constrained** models and track how each working set grows
   (:mod:`repro.core.scaling`).
3. Combine communication-to-computation ratios, load balance and
   concurrency into a **desirable grain size** judgement against the
   sustainable bandwidth of real machines
   (:mod:`repro.core.machine`, :mod:`repro.core.grain`).
"""

from repro.core.curves import MissRateCurve
from repro.core.grain import (
    GrainConfig,
    GrainAssessment,
    GrainVerdict,
    LoadBalanceModel,
    prototypical_configs,
)
from repro.core.knee import Knee, find_knees
from repro.core.machine import (
    CommunicationPattern,
    MachineSpec,
    SustainabilityBand,
    classify_ratio,
    CM5,
    PARAGON,
)
from repro.core.speedup import SpeedupPoint, project_speedup, utilization_summary
from repro.core.scaling import (
    MemoryConstrainedScaling,
    ProblemScaler,
    ScaledProblem,
    TimeConstrainedScaling,
    solve_monotone,
)
from repro.core.working_set import WorkingSet, WorkingSetHierarchy

__all__ = [
    "CM5",
    "CommunicationPattern",
    "GrainAssessment",
    "GrainConfig",
    "GrainVerdict",
    "Knee",
    "LoadBalanceModel",
    "MachineSpec",
    "MemoryConstrainedScaling",
    "MissRateCurve",
    "PARAGON",
    "ProblemScaler",
    "ScaledProblem",
    "SpeedupPoint",
    "SustainabilityBand",
    "TimeConstrainedScaling",
    "WorkingSet",
    "WorkingSetHierarchy",
    "classify_ratio",
    "find_knees",
    "project_speedup",
    "prototypical_configs",
    "solve_monotone",
    "utilization_summary",
]
