"""Problem-scaling models: memory-constrained (MC) and time-constrained
(TC) scaling.

Section 2.2 of the paper: "Given a larger machine, the MC scaling model
assumes that a user will scale the problem to fill the available main
memory on the machine, regardless of the effect this has on execution
time.  The TC scaling model ... assumes that the user will increase the
problem size so that the new problem takes as much time to solve on the
new machine as the old problem took on the old machine."  (Following
Singh, Hennessy & Gupta 1993.)

Both models are expressed against a :class:`ProblemScaler`, which an
application supplies: monotone functions giving data-set size and
sequential work as a function of a scalar problem parameter ``n``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable


def solve_monotone(
    f: Callable[[float], float],
    target: float,
    lo: float,
    hi: float,
    tol: float = 1e-9,
    max_iter: int = 200,
) -> float:
    """Solve ``f(x) == target`` for monotonically increasing ``f`` by
    bisection, expanding ``hi`` geometrically until it brackets.

    Raises ``ValueError`` if the target is below ``f(lo)``.
    """
    if f(lo) > target * (1 + 1e-12):
        raise ValueError(
            f"target {target} below f(lo)={f(lo)}; cannot shrink past lo"
        )
    expansions = 0
    while f(hi) < target:
        hi *= 2.0
        expansions += 1
        if expansions > 200:
            raise ValueError("could not bracket target; f may not reach it")
    for _ in range(max_iter):
        mid = 0.5 * (lo + hi)
        if f(mid) < target:
            lo = mid
        else:
            hi = mid
        if hi - lo <= tol * max(1.0, abs(hi)):
            break
    return 0.5 * (lo + hi)


@dataclass(frozen=True)
class ProblemScaler:
    """Application-supplied growth laws for scaling analysis.

    Attributes:
        name: Application name.
        data_bytes: Data-set size in bytes as a function of ``n``.
        work_ops: Sequential operation count as a function of ``n``.
        n0: Baseline problem parameter.
        p0: Baseline processor count.
    """

    name: str
    data_bytes: Callable[[float], float]
    work_ops: Callable[[float], float]
    n0: float
    p0: int


@dataclass(frozen=True)
class ScaledProblem:
    """Result of applying a scaling model.

    Attributes:
        n: Scaled problem parameter.
        p: Scaled processor count.
        data_bytes: Scaled data-set size.
        work_ops: Scaled total work.
        time_units: Parallel time proxy, ``work_ops / p`` (the paper's
            model with fixed per-processor speed).
        memory_per_processor: ``data_bytes / p`` — the grain size.
    """

    n: float
    p: int
    data_bytes: float
    work_ops: float

    @property
    def time_units(self) -> float:
        return self.work_ops / self.p

    @property
    def memory_per_processor(self) -> float:
        return self.data_bytes / self.p


class MemoryConstrainedScaling:
    """MC scaling: grow the problem to keep memory per processor fixed."""

    name = "memory-constrained"

    def scale(self, scaler: ProblemScaler, p: int) -> ScaledProblem:
        """Problem that fills ``p`` processors at the baseline grain size."""
        if p < 1:
            raise ValueError("p must be >= 1")
        base_data = scaler.data_bytes(scaler.n0)
        grain = base_data / scaler.p0
        target_data = grain * p
        n = solve_monotone(
            scaler.data_bytes, target_data, lo=1.0, hi=max(2.0, scaler.n0)
        )
        return ScaledProblem(
            n=n, p=p, data_bytes=scaler.data_bytes(n), work_ops=scaler.work_ops(n)
        )


class TimeConstrainedScaling:
    """TC scaling: grow the problem to keep parallel execution time fixed."""

    name = "time-constrained"

    def scale(self, scaler: ProblemScaler, p: int) -> ScaledProblem:
        """Problem whose parallel time on ``p`` processors matches the
        baseline problem's time on ``p0`` processors."""
        if p < 1:
            raise ValueError("p must be >= 1")
        base_time = scaler.work_ops(scaler.n0) / scaler.p0
        target_work = base_time * p
        n = solve_monotone(
            scaler.work_ops, target_work, lo=1.0, hi=max(2.0, scaler.n0)
        )
        return ScaledProblem(
            n=n, p=p, data_bytes=scaler.data_bytes(n), work_ops=scaler.work_ops(n)
        )


def growth_exponent(
    f: Callable[[float], float], n: float, factor: float = 2.0
) -> float:
    """Finite-difference estimate of the local power-law exponent of
    ``f`` at ``n``: ``d log f / d log n``.

    Used by the Table-1 experiment to verify the paper's symbolic growth
    rates numerically (e.g. LU ops ~ n^3 -> exponent 3.0).
    """
    import math

    f1 = f(n)
    f2 = f(n * factor)
    if f1 <= 0 or f2 <= 0:
        raise ValueError("f must be positive to estimate a growth exponent")
    return math.log(f2 / f1) / math.log(factor)
