"""Working-set hierarchy representation.

The paper finds that every studied application has "a hierarchy of
well-defined per-processor working sets" (abstract): a few small sets
(lev1WS, lev2WS, ...) and one large one that usually comprises the
processor's entire partition of the data.  Each working set is a knee in
the miss-rate-versus-cache-size curve; the *important* working set is the
one whose accommodation brings the miss rate near the inherent
communication floor.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence

from repro.units import format_size


@dataclass(frozen=True)
class WorkingSet:
    """One level of an application's working-set hierarchy.

    Attributes:
        level: 1 for lev1WS, 2 for lev2WS, and so on.
        name: Algorithmic identity, e.g. ``"two block columns"`` for LU's
            lev1WS.
        size_bytes: Size of the working set for the problem instance at
            hand.
        miss_rate_after: Approximate miss rate once a cache accommodates
            this working set (the plateau to the right of the knee).
            Units follow the application's metric (misses/FLOP or read
            miss rate).
        important: True for the working set the paper identifies as
            critical to performance.
        scaling: Human-readable growth law, e.g. ``"const"``,
            ``"(1/theta^2) log n"``.
    """

    level: int
    name: str
    size_bytes: float
    miss_rate_after: float
    important: bool = False
    scaling: str = "const"

    def __str__(self) -> str:
        star = " *" if self.important else ""
        return (
            f"lev{self.level}WS{star}: {self.name} — {format_size(self.size_bytes)}"
            f" (miss rate after: {self.miss_rate_after:.4g}, scales as {self.scaling})"
        )


@dataclass
class WorkingSetHierarchy:
    """The full hierarchy for one application and problem instance.

    Attributes:
        application: Application name (``"LU"``, ``"Barnes-Hut"`` ...).
        problem: Human-readable problem description.
        levels: Working sets ordered by level.
        dataset_bytes: Total data-set size of the problem.
        per_processor_bytes: The processor's partition (the large,
            bimodal working set the paper contrasts the small ones with).
    """

    application: str
    problem: str
    levels: List[WorkingSet] = field(default_factory=list)
    dataset_bytes: float = 0.0
    per_processor_bytes: float = 0.0

    def add(self, working_set: WorkingSet) -> None:
        self.levels.append(working_set)
        self.levels.sort(key=lambda ws: ws.level)

    def level(self, level: int) -> WorkingSet:
        for ws in self.levels:
            if ws.level == level:
                return ws
        raise KeyError(f"no level-{level} working set in {self.application}")

    @property
    def important_working_set(self) -> WorkingSet:
        """The working set the paper flags as critical to performance."""
        for ws in self.levels:
            if ws.important:
                return ws
        raise ValueError(
            f"{self.application}: no working set marked important"
        )

    def cache_size_recommendation(self, slack: float = 2.0) -> float:
        """Bytes of fully associative cache needed for good performance.

        ``slack`` inflates the important working set to absorb imperfect
        LRU behaviour; the paper notes measured sizes are "aggressive
        estimates of desirable cache size".
        """
        if slack < 1.0:
            raise ValueError("slack must be >= 1")
        return self.important_working_set.size_bytes * slack

    def is_bimodal(self, gap_factor: float = 8.0) -> bool:
        """True when the hierarchy matches the paper's bimodality claim:
        the largest working set dwarfs all the others by ``gap_factor``.
        """
        if len(self.levels) < 2:
            return False
        sizes = sorted(ws.size_bytes for ws in self.levels)
        return sizes[-1] >= gap_factor * sizes[-2]

    def describe(self) -> str:
        lines = [f"{self.application}: {self.problem}"]
        lines.extend(f"  {ws}" for ws in self.levels)
        lines.append(
            f"  data set: {format_size(self.dataset_bytes)}, "
            f"per-processor partition: {format_size(self.per_processor_bytes)}"
        )
        return "\n".join(lines)
