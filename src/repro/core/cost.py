"""Cost-performance exploration of node designs (paper Section 8).

The discussion section speculates: "it may turn out that designs that
split the cost equally between processors and memory will be the most
competitive, in that they will be within a small constant factor of the
optimal design for any given application."  This module makes that
conjecture testable: given component prices and an application's
characterization (working sets, grain requirements), it searches node
designs (processor count, cache size, memory size) under a fixed budget
and scores them with a simple execution-time model.

The performance model is deliberately the paper's own coarse one:

- per-processor compute time ~ work / P;
- memory-stall time ~ miss rate(cache) x miss penalty per operation;
- communication time ~ comm volume at the sustainable node bandwidth;
- an efficiency factor from the load-balance verdict.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence

from repro.core.analysis import ApplicationModel
from repro.core.grain import GrainConfig, GrainVerdict
from repro.units import GB, KB, MB


@dataclass(frozen=True)
class ComponentPrices:
    """Early-1990s-flavoured component prices (arbitrary units).

    Attributes:
        processor: Cost of one processor (the paper's example: a $1000
            node should not carry $50 of memory).
        dram_per_mb: Main-memory cost per MB.
        sram_per_kb: Cache (SRAM) cost per KB — an order of magnitude
            pricier per byte than DRAM.
    """

    processor: float = 1000.0
    dram_per_mb: float = 40.0
    sram_per_kb: float = 1.0

    def node_cost(self, cache_bytes: float, memory_bytes: float) -> float:
        return (
            self.processor
            + self.sram_per_kb * cache_bytes / KB
            + self.dram_per_mb * memory_bytes / MB
        )


@dataclass(frozen=True)
class NodeDesign:
    """One candidate machine design.

    Attributes:
        num_processors: P.
        cache_bytes: Cache per node.
        memory_bytes: DRAM per node.
    """

    num_processors: int
    cache_bytes: float
    memory_bytes: float

    def total_cost(self, prices: ComponentPrices) -> float:
        return self.num_processors * prices.node_cost(
            self.cache_bytes, self.memory_bytes
        )

    def memory_cost_fraction(self, prices: ComponentPrices) -> float:
        """Fraction of the machine's cost spent on memory (DRAM+SRAM)."""
        node = prices.node_cost(self.cache_bytes, self.memory_bytes)
        memory = node - prices.processor
        return memory / node


@dataclass
class DesignEvaluation:
    """A scored design.

    Attributes:
        design: The candidate.
        time_units: Modeled execution time (lower is better).
        feasible: Whether the problem fits in total memory.
        notes: Diagnostic commentary.
    """

    design: NodeDesign
    time_units: float
    feasible: bool
    notes: str = ""


#: Miss penalty in operation-equivalents per miss (a remote/local mix
#: typical of the era's large-scale machines).
MISS_PENALTY_OPS = 30.0
#: Efficiency multipliers per load-balance verdict.
BALANCE_EFFICIENCY = {
    GrainVerdict.GOOD: 1.0,
    GrainVerdict.MARGINAL: 0.7,
    GrainVerdict.POOR: 0.35,
}


def evaluate_design(
    model: ApplicationModel,
    design: NodeDesign,
    total_data_bytes: float,
    work_ops: float,
    miss_rate_fn: Callable[[float], float],
    comm_words: Optional[float] = None,
) -> DesignEvaluation:
    """Score one design for one application.

    Args:
        model: The application's analytical model (supplies the
            load-balance judgement and communication ratio).
        design: The candidate node design.
        total_data_bytes: Problem size.
        work_ops: Total operation count of the problem.
        miss_rate_fn: Misses per operation as a function of cache bytes
            (the application's ``miss_rate_model``).
        comm_words: Total communicated double words (None: derive from
            the model's FLOPs/word at this configuration).

    Returns:
        A :class:`DesignEvaluation`.
    """
    total_memory = design.num_processors * design.memory_bytes
    feasible = total_memory >= total_data_bytes
    config = GrainConfig(total_data_bytes, design.num_processors)
    if comm_words is None:
        ratio = model.flops_per_word(config)
        comm_words = work_ops / ratio if ratio > 0 else 0.0
    compute = work_ops / design.num_processors
    stalls = (
        miss_rate_fn(design.cache_bytes)
        * MISS_PENALTY_OPS
        * work_ops
        / design.num_processors
    )
    # Communication at ~1 word per operation-equivalent of network time.
    comm = comm_words / design.num_processors
    verdict = model.load_model.assess(model.units_per_processor(config))
    efficiency = BALANCE_EFFICIENCY[verdict]
    time_units = (compute + stalls + comm) / efficiency
    notes = "" if feasible else "problem does not fit in memory"
    return DesignEvaluation(
        design=design,
        time_units=time_units if feasible else math.inf,
        feasible=feasible,
        notes=notes,
    )


def enumerate_designs(
    budget: float,
    total_data_bytes: float,
    prices: ComponentPrices = ComponentPrices(),
    cache_choices: Sequence[float] = (4 * KB, 64 * KB, 256 * KB, 1 * MB),
    processor_counts: Sequence[int] = (64, 128, 256, 512, 1024, 2048, 4096, 8192, 16384),
) -> List[NodeDesign]:
    """All designs that spend the budget: for each (P, cache) choice,
    the remaining money buys DRAM, split evenly across nodes.

    Designs whose memory cannot hold the problem are still returned
    (the evaluator marks them infeasible) so studies can show the
    feasibility frontier.
    """
    designs = []
    for num_processors in processor_counts:
        for cache_bytes in cache_choices:
            fixed = num_processors * (
                prices.processor + prices.sram_per_kb * cache_bytes / KB
            )
            remaining = budget - fixed
            if remaining <= 0:
                continue
            memory_bytes = remaining / num_processors / prices.dram_per_mb * MB
            designs.append(
                NodeDesign(
                    num_processors=num_processors,
                    cache_bytes=cache_bytes,
                    memory_bytes=memory_bytes,
                )
            )
    return designs


def best_design(
    evaluations: Sequence[DesignEvaluation],
) -> DesignEvaluation:
    """The feasible evaluation with the lowest modeled time."""
    feasible = [e for e in evaluations if e.feasible]
    if not feasible:
        raise ValueError("no feasible design under this budget")
    return min(feasible, key=lambda e: e.time_units)
