"""Application characterization: the two-part treatment the paper
applies to each application (working sets, then grain size).

Every application package in :mod:`repro.apps` exposes a model class
implementing :class:`ApplicationModel`; :func:`characterize` runs the
paper's full per-application analysis over it.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from repro.core.grain import (
    GrainAssessment,
    GrainConfig,
    LoadBalanceModel,
    assess_grain,
    desirable_grain_size,
    prototypical_configs,
)
from repro.core.working_set import WorkingSetHierarchy


class ApplicationModel(abc.ABC):
    """The per-application analytical model interface.

    Concrete subclasses live in ``repro.apps.<app>.model`` and encode the
    paper's Section 3-7 formulas for one application class.
    """

    #: Application name as used in the paper's tables.
    name: str = ""
    #: Miss-rate metric: "misses_per_flop" or "read_miss_rate".
    metric: str = "miss_rate"
    #: Load-balance thresholds for the grain analysis.
    load_model: LoadBalanceModel

    @abc.abstractmethod
    def working_sets(self) -> WorkingSetHierarchy:
        """The working-set hierarchy for this model's problem instance."""

    @abc.abstractmethod
    def flops_per_word(self, config: GrainConfig) -> float:
        """Computation-to-communication ratio at a machine configuration."""

    @abc.abstractmethod
    def units_per_processor(self, config: GrainConfig) -> float:
        """Schedulable work units (blocks/rays/particles/points) per
        processor at a configuration."""

    def grain_notes(self, config: GrainConfig) -> str:
        """Optional free-form commentary for a configuration."""
        return ""

    def grain_assessments(
        self, configs: Optional[Sequence[GrainConfig]] = None
    ) -> List[GrainAssessment]:
        """Assess all configurations (defaults to the paper's three)."""
        if configs is None:
            configs = prototypical_configs()
        return [
            assess_grain(
                config,
                self.flops_per_word(config),
                self.units_per_processor(config),
                self.load_model,
                notes=self.grain_notes(config),
            )
            for config in configs
        ]


@dataclass
class Characterization:
    """The complete per-application result, mirroring one paper section."""

    model_name: str
    working_sets: WorkingSetHierarchy
    assessments: List[GrainAssessment] = field(default_factory=list)

    @property
    def desirable_grain(self) -> GrainConfig:
        return desirable_grain_size(self.assessments)

    def describe(self) -> str:
        lines = [f"=== {self.model_name} ===", self.working_sets.describe(), ""]
        lines.extend(str(a) for a in self.assessments)
        grain = self.desirable_grain
        lines.append(f"desirable grain: {grain}")
        return "\n".join(lines)


def characterize(
    model: ApplicationModel,
    configs: Optional[Sequence[GrainConfig]] = None,
) -> Characterization:
    """Run the paper's full two-part analysis for one application."""
    return Characterization(
        model_name=model.name,
        working_sets=model.working_sets(),
        assessments=model.grain_assessments(configs),
    )
