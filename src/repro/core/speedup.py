"""Parallel-performance projection.

Turns the paper's per-application characterization into speedup-versus-
processors curves using its own coarse model (Section 2.3/2.4
assumptions): fixed per-processor speed, communication costed against
the machine's sustainable bandwidth, load imbalance from the
units-per-processor verdict, and an optional unparallelized fraction
(e.g. the CG global sum at O(log P), or a partitioning step).

This is the machinery behind statements like "a 1024-processor machine
with 1 Mbyte of data per processor would produce good processor
utilization" — it makes the implied utilization number explicit.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence

from repro.core.analysis import ApplicationModel
from repro.core.grain import GrainConfig, GrainVerdict
from repro.core.machine import (
    CommunicationPattern,
    MachineSpec,
    PARAGON,
)

#: Load-balance efficiency per verdict (same constants as core.cost).
BALANCE_EFFICIENCY = {
    GrainVerdict.GOOD: 1.0,
    GrainVerdict.MARGINAL: 0.7,
    GrainVerdict.POOR: 0.35,
}


@dataclass
class SpeedupPoint:
    """Projected performance at one machine size.

    Attributes:
        num_processors: P.
        speedup: Projected speedup over one processor.
        efficiency: speedup / P.
        comm_fraction: Fraction of time spent waiting on communication.
    """

    num_processors: int
    speedup: float
    comm_fraction: float

    @property
    def efficiency(self) -> float:
        return self.speedup / self.num_processors


def project_speedup(
    model: ApplicationModel,
    total_data_bytes: float,
    processor_counts: Sequence[int],
    machine: MachineSpec = PARAGON,
    pattern: CommunicationPattern = CommunicationPattern.NEAREST_NEIGHBOR,
    serial_fraction: Callable[[int], float] = lambda p: 0.0,
) -> List[SpeedupPoint]:
    """Project speedup at each machine size for a fixed problem.

    The model: per-processor time = compute/P x (1 + comm overhead) /
    balance efficiency, plus a serial term.  Communication overhead is
    the ratio of the machine's sustainable FLOPs/word to the
    application's FLOPs/word (when the application communicates more
    intensively than the network sustains, processors wait).

    Args:
        model: The application model.
        total_data_bytes: Problem size (fixed-problem speedup).
        processor_counts: Machine sizes to project.
        machine: Network/node parameters for sustainability.
        pattern: Traffic locality class.
        serial_fraction: Unparallelized fraction of the work as a
            function of P (e.g. ``lambda p: 1e-4 * math.log2(p)`` for a
            global-sum term).

    Returns:
        One :class:`SpeedupPoint` per processor count.
    """
    points = []
    for p in processor_counts:
        config = GrainConfig(total_data_bytes, p)
        app_ratio = model.flops_per_word(config)
        if p == 1:
            sustainable = float("inf")
        else:
            try:
                sustainable = machine.sustainable_ratio(pattern, p)
            except ValueError:
                sustainable = machine.sustainable_ratio(pattern, _square_below(p))
        comm_overhead = (
            sustainable / app_ratio if math.isfinite(sustainable) and app_ratio > 0
            else 0.0
        )
        verdict = model.load_model.assess(model.units_per_processor(config))
        efficiency = BALANCE_EFFICIENCY[verdict]
        serial = max(0.0, min(1.0, serial_fraction(p)))
        parallel_time = (1.0 - serial) / p * (1.0 + comm_overhead) / efficiency
        time = serial + parallel_time
        speedup = 1.0 / time
        comm_fraction = (
            parallel_time
            * comm_overhead
            / (1.0 + comm_overhead)
            / time
        )
        points.append(
            SpeedupPoint(
                num_processors=p, speedup=speedup, comm_fraction=comm_fraction
            )
        )
    return points


def _square_below(p: int) -> int:
    """The largest perfect square not exceeding p (for mesh bisection)."""
    side = int(math.isqrt(p))
    return max(1, side * side)


def utilization_summary(points: Sequence[SpeedupPoint]) -> str:
    """One-line-per-size rendering of a projection."""
    lines = []
    for point in points:
        lines.append(
            f"P={point.num_processors:>6}: speedup {point.speedup:>9.1f}"
            f" (efficiency {point.efficiency:.0%},"
            f" comm wait {point.comm_fraction:.0%})"
        )
    return "\n".join(lines)
