"""Plain-text rendering of tables and figure series.

The experiment drivers print the same rows/series the paper reports;
these helpers keep the formatting consistent across experiments.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence

from repro.core.curves import MissRateCurve


def format_table(headers: Sequence[str], rows: Iterable[Sequence[object]]) -> str:
    """Render an ASCII table with column alignment.

    >>> print(format_table(["a", "b"], [[1, "x"], [22, "yy"]]))
    a  | b
    ---+---
    1  | x
    22 | yy
    """
    materialized: List[List[str]] = [[str(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in materialized:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    def fmt_row(cells: Sequence[str]) -> str:
        return " | ".join(cell.ljust(widths[i]) for i, cell in enumerate(cells))
    sep = "-+-".join("-" * w for w in widths)
    lines = [fmt_row(list(headers)), sep]
    lines.extend(fmt_row(row) for row in materialized)
    return "\n".join(lines)


def format_curve_series(curves: Sequence[MissRateCurve]) -> str:
    """Tabulate several miss-rate curves side by side, one row per
    cache size (the union of sampled capacities)."""
    from repro.units import format_size

    capacities = sorted(
        {int(c) for curve in curves for c in curve.capacities}
    )
    headers = ["cache size"] + [curve.label or f"series{i}" for i, curve in enumerate(curves)]
    rows = []
    for cap in capacities:
        row: List[object] = [format_size(cap)]
        for curve in curves:
            row.append(f"{curve.value_at(cap):.4g}")
        rows.append(row)
    return format_table(headers, rows)


def banner(title: str, width: int = 72) -> str:
    """A section banner for experiment output."""
    pad = max(0, width - len(title) - 2)
    left = pad // 2
    right = pad - left
    return f"{'=' * left} {title} {'=' * right}"
