"""Machine models and communication sustainability bands.

Section 2.3 calibrates what computation-to-communication ratios are
sustainable using the Intel Paragon and Thinking Machines CM-5 as
reference points, then adopts coarse bands:

- 1-15 FLOPs/word: *extremely difficult* to sustain,
- 15-75 FLOPs/word: *sustainable but not easy*,
- above 75 FLOPs/word: *quite easy* to sustain.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass

from repro.units import DOUBLE_WORD


class CommunicationPattern(enum.Enum):
    """Locality class of an application's traffic (Section 2.3)."""

    NEAREST_NEIGHBOR = "nearest-neighbor"
    GENERAL = "general"  # random; bisection-limited


class SustainabilityBand(enum.Enum):
    """The paper's coarse sustainability judgement for a ratio."""

    EXTREMELY_DIFFICULT = "extremely difficult (1-15 FLOPs/word)"
    SUSTAINABLE = "sustainable but not easy (15-75 FLOPs/word)"
    EASY = "quite easy (>75 FLOPs/word)"


#: Band boundaries in FLOPs per word (Section 2.3).
DIFFICULT_BELOW = 15.0
EASY_ABOVE = 75.0


def classify_ratio(flops_per_word: float) -> SustainabilityBand:
    """Classify a computation-to-communication ratio into the paper's
    sustainability bands."""
    if flops_per_word < 0:
        raise ValueError("ratio must be non-negative")
    if flops_per_word < DIFFICULT_BELOW:
        return SustainabilityBand.EXTREMELY_DIFFICULT
    if flops_per_word <= EASY_ABOVE:
        return SustainabilityBand.SUSTAINABLE
    return SustainabilityBand.EASY


@dataclass(frozen=True)
class MachineSpec:
    """A large-scale multiprocessor's node and network parameters.

    Attributes:
        name: Machine name.
        mflops_per_node: Peak node floating-point rate (MFLOPS).
        nn_bandwidth_mbps: Per-node nearest-neighbor channel bandwidth
            (Mbytes/second).
        general_bandwidth_mbps: Per-node sustainable bandwidth for
            random traffic.  ``None`` means derive it from the mesh
            bisection (:meth:`bisection_limited_bandwidth`).
        mesh_side: For mesh networks, processors per side (used in the
            bisection computation).
    """

    name: str
    mflops_per_node: float
    nn_bandwidth_mbps: float
    general_bandwidth_mbps: float = None  # type: ignore[assignment]
    mesh_side: int = 0

    def bisection_limited_bandwidth(self, num_processors: int) -> float:
        """Per-node bandwidth when half of all random messages cross a
        mesh bisector (Section 2.3's Paragon argument).

        For a ``sqrt(P) x sqrt(P)`` mesh the paper counts ``2*sqrt(P)``
        links across a bisector (one per direction): "For a 32x32 (1024)
        node Paragon, the number of network links across a bisector is
        64."  With half of all random messages crossing, each processor
        can generate ``links / (P/2)`` as much traffic as in the
        nearest-neighbor case — 64/512 = 1/8 for the 1024-node Paragon.
        """
        side = int(round(math.sqrt(num_processors)))
        if side * side != num_processors:
            raise ValueError("bisection model expects a square mesh")
        links_across = 2 * side
        per_processor_share = links_across / (num_processors / 2)
        return self.nn_bandwidth_mbps * per_processor_share

    def sustainable_ratio(
        self,
        pattern: CommunicationPattern,
        num_processors: int = 1024,
    ) -> float:
        """FLOPs per double word sustainable at full node speed.

        Reproduces the paper's Paragon arithmetic: 200 MFLOPS node with a
        200 MB/s channel gives 200 / (200/8) = 8 FLOPs per double word
        nearest-neighbor, and 64 FLOPs/word for random traffic at 1024
        nodes.
        """
        if pattern is CommunicationPattern.NEAREST_NEIGHBOR:
            bandwidth = self.nn_bandwidth_mbps
        elif self.general_bandwidth_mbps is not None:
            bandwidth = self.general_bandwidth_mbps
        else:
            bandwidth = self.bisection_limited_bandwidth(num_processors)
        words_per_second = bandwidth / (DOUBLE_WORD / 1e6) / 1e6  # Mwords/s
        return self.mflops_per_node / words_per_second


#: Intel Paragon: 4 x 50-MFLOPS processors per node, 200 MB/s channels,
#: 2-D mesh (Section 2.3).
PARAGON = MachineSpec(
    name="Intel Paragon",
    mflops_per_node=200.0,
    nn_bandwidth_mbps=200.0,
    mesh_side=32,
)

#: Thinking Machines CM-5: 128-MFLOPS vector nodes, 20 MB/s
#: nearest-neighbor, 5 MB/s general bandwidth (Section 2.3).
CM5 = MachineSpec(
    name="Thinking Machines CM-5",
    mflops_per_node=128.0,
    nn_bandwidth_mbps=20.0,
    general_bandwidth_mbps=5.0,
)
