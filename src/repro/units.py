"""Size and unit helpers shared across the library.

The paper reports working-set sizes in bytes/Kbytes/Mbytes and cache miss
rates either as *double-word read misses per floating-point operation*
(LU, CG, FFT) or as *read misses per read reference* (Barnes-Hut, volume
rendering).  This module centralizes the unit conventions so that every
model and simulator agrees on them.
"""

from __future__ import annotations

#: Bytes in one kilobyte / megabyte / gigabyte (binary, as the paper uses).
KB = 1024
MB = 1024 * KB
GB = 1024 * MB

#: The paper measures misses at double-word granularity: one double-precision
#: floating-point number is 8 bytes.
DOUBLE_WORD = 8

#: A single-precision word (used for FLOPs-per-word communication ratios).
WORD = 4


def doublewords(nbytes: float) -> float:
    """Convert a size in bytes to double words."""
    return nbytes / DOUBLE_WORD


def bytes_from_doublewords(ndw: float) -> float:
    """Convert a count of double words to bytes."""
    return ndw * DOUBLE_WORD


def format_size(nbytes: float) -> str:
    """Render a byte count the way the paper does (``260 bytes``, ``80 KB``,
    ``1 MB``, ``18 TB``).

    >>> format_size(260)
    '260 B'
    >>> format_size(80 * KB)
    '80.0 KB'
    >>> format_size(1.5 * MB)
    '1.5 MB'
    """
    if nbytes < KB:
        return f"{nbytes:.0f} B"
    for unit, size in (("TB", GB * 1024), ("GB", GB), ("MB", MB), ("KB", KB)):
        if nbytes >= size:
            return f"{nbytes / size:.1f} {unit}"
    raise AssertionError("unreachable")


def parse_size(text: str) -> int:
    """Parse ``'64KB'``, ``'1 MB'``, ``'512'`` (bytes) into a byte count.

    >>> parse_size('64KB')
    65536
    >>> parse_size('1 MB')
    1048576
    """
    text = text.strip().upper().replace(" ", "")
    multipliers = {"TB": 1024 * GB, "GB": GB, "MB": MB, "KB": KB, "B": 1}
    for suffix, mult in multipliers.items():
        if text.endswith(suffix):
            return int(float(text[: -len(suffix)]) * mult)
    return int(float(text))
