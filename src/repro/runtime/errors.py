"""Error taxonomy and structured failure records for the campaign engine.

Every failure the engine captures is classified into one of four
categories, mirroring the three phases of a trace-driven experiment
(generate a trace, simulate it, analyze the results) plus the budget
mechanism:

- :class:`TraceGenerationError` — the application-level trace generator
  (``repro.apps.*``) failed.
- :class:`SimulationError` — the memory-system instrument
  (``repro.mem``) failed.
- :class:`AnalysisError` — knee detection, model comparison, or report
  assembly (``repro.core`` / the experiment driver itself) failed.
- :class:`BudgetExceeded` — the experiment's wall-clock budget ran out
  (raised by the cooperative deadline checks in the simulation loops).

The hard-isolation backend (:mod:`repro.runtime.workers`) adds a
worker branch for failures of the containing *process* rather than the
experiment code: :class:`WorkerCrashError` (died without a payload),
:class:`WorkerTimeoutError` (killed at the hard deadline), and
:class:`WorkerMemoryError` (hit its address-space rlimit).

Exceptions that are not already taxonomy members are classified by
walking their traceback and attributing the failure to the deepest
``repro`` layer that appears in it (:func:`classify_exception`).
"""

from __future__ import annotations

import time
import traceback as traceback_module
from dataclasses import dataclass, field
from typing import Dict, Optional, Type


class ExperimentError(Exception):
    """Base class of the campaign error taxonomy."""

    #: Short machine-readable category name, overridden by subclasses.
    category = "experiment"


class TraceGenerationError(ExperimentError):
    """Trace generation (``repro.apps``) failed."""

    category = "trace-generation"


class SimulationError(ExperimentError):
    """Cache/memory simulation (``repro.mem``) failed."""

    category = "simulation"


class KernelDivergenceError(SimulationError):
    """A vectorized simulation kernel disagreed with the pure-Python
    oracle (or failed its structural sanity checks).  The kernel is
    quarantined for the rest of the process and the campaign continues
    on the oracle path — this error is recorded in events and repro
    bundles, not raised through the experiment."""

    category = "kernel-divergence"


class AnalysisError(ExperimentError):
    """Analysis or report assembly failed."""

    category = "analysis"


class BudgetExceeded(ExperimentError):
    """An experiment exceeded its wall-clock budget."""

    category = "budget"


class CheckpointCorruptError(ExperimentError):
    """A checkpoint file failed its integrity check on load."""

    category = "checkpoint-corrupt"


class CheckpointWriteError(ExperimentError):
    """The durability layer could not persist a checkpoint (ENOSPC,
    EIO, ...) even after a retry.  The campaign state on disk is still
    consistent — the journal never recorded the commit — but the run
    cannot honestly continue claiming results it cannot store."""

    category = "checkpoint-write"


class TraceFileWriteError(ExperimentError):
    """Saving a trace archive failed at the I/O layer (ENOSPC, EIO).
    The partial temporary file has been unlinked; the destination holds
    either its previous contents or nothing."""

    category = "trace-write"


class JournalError(ExperimentError):
    """Base class of the write-ahead-journal branch."""

    category = "journal"


class JournalCorruptError(JournalError):
    """The journal has damage *before* its tail — something no crash of
    the single-writer append discipline can produce.  Recovery refuses
    to truncate through committed records; a human (or ``validate``)
    must look."""

    category = "journal-corrupt"


class LeaseError(ExperimentError):
    """Base class of the supervisor-lease branch."""

    category = "lease"


class LeaseHeldError(LeaseError):
    """A *live* supervisor already owns the run directory (fresh
    heartbeat, live PID).  Refusing is the only safe answer; a stale
    lease would have been reclaimed instead."""

    category = "lease-held"


class ValidationError(ExperimentError):
    """Base class of the result-integrity branch: an artifact or result
    failed a :mod:`repro.validate` check.  These are *rejections*, not
    crashes — every validator and fuzz target raises (or records) a
    subclass of this instead of propagating raw exceptions."""

    category = "validation"


class ResultRejectedError(ValidationError):
    """An :class:`~repro.experiments.runner.ExperimentResult` violated
    an invariant oracle (miss rate out of range, non-monotone curve,
    ...).  Raised by the engine's ``--validate`` post-attempt hook so
    the rejection feeds the ordinary retry-with-degradation policy."""

    category = "result-rejected"


class SelfCheckError(ValidationError):
    """An application's mathematical self-check failed (LU residual,
    CG convergence, FFT round-trip, Barnes-Hut momentum conservation,
    volume-renderer octree bounds)."""

    category = "self-check"


class WorkerError(ExperimentError):
    """Base class for failures of the *worker process* rather than the
    experiment code it was running (hard-isolation backend)."""

    category = "worker"


class WorkerCrashError(WorkerError):
    """A worker process died (exit code, signal, or unusable payload)
    without delivering a classified result."""

    category = "worker-crash"


class WorkerTimeoutError(WorkerError):
    """The supervisor killed a worker at its hard wall-clock deadline
    (SIGTERM then SIGKILL) — the hang was not cooperatively catchable."""

    category = "worker-timeout"


class WorkerMemoryError(WorkerError):
    """A worker hit its address-space rlimit (``--max-rss-mb``) and the
    allocation failure was contained to that one worker."""

    category = "worker-rlimit"


class FencingViolationError(WorkerError):
    """A worker payload arrived stamped with a fencing token older than
    the supervisor's current one — the worker belongs to a superseded
    supervisor generation and its result must not be committed."""

    category = "fencing-stale"


class NodeDeadError(WorkerError):
    """The node executing an assignment died or was partitioned away
    before delivering a result (multi-node dispatch fabric).  The
    dispatcher normally re-dispatches transparently; this surfaces only
    when an assignment cannot be retried."""

    category = "node-dead"


class NoLiveNodesError(WorkerError):
    """Every node of the dispatch fabric is dead or fenced — there is
    nowhere to run the attempt.  Classified under the worker branch so
    the engine's ordinary retry policy (and the service's circuit
    breaker) see it as an infrastructure failure, not an experiment
    bug."""

    category = "no-live-nodes"


#: Module-prefix -> taxonomy class, most specific attribution first.
_LAYER_CATEGORIES = (
    ("repro.apps", TraceGenerationError),
    ("repro.mem", SimulationError),
)


def classify_exception(exc: BaseException) -> Type[ExperimentError]:
    """Map an arbitrary exception onto the taxonomy.

    Taxonomy members classify as themselves.  Anything else is
    attributed by traceback: the deepest frame inside ``repro.apps``
    marks a trace-generation failure, the deepest frame inside
    ``repro.mem`` a simulation failure, and everything else an
    analysis failure.
    """
    if isinstance(exc, ExperimentError):
        return type(exc)
    deepest: Dict[str, Type[ExperimentError]] = {}
    order = []
    tb = exc.__traceback__
    while tb is not None:
        module = tb.tb_frame.f_globals.get("__name__", "")
        for prefix, category in _LAYER_CATEGORIES:
            if module == prefix or module.startswith(prefix + "."):
                deepest[prefix] = category
                order.append(prefix)
        tb = tb.tb_next
    if order:
        return deepest[order[-1]]
    return AnalysisError


@dataclass
class ExperimentFailure:
    """One captured failure of one experiment attempt.

    Attributes:
        experiment_id: The failed experiment.
        attempt: 1-based attempt number within the retry loop.
        category: Taxonomy category name (``"simulation"``, ...).
        error_type: The concrete exception class name.
        message: ``str(exception)``.
        traceback_text: Formatted traceback for forensics.
        degraded: True when the failed attempt already ran with the
            degraded (quick) parameterization.
        elapsed_seconds: Wall-clock time the attempt consumed.
        timestamp: Unix time the failure was recorded.
    """

    experiment_id: str
    attempt: int
    category: str
    error_type: str
    message: str
    traceback_text: str = ""
    degraded: bool = False
    elapsed_seconds: float = 0.0
    timestamp: float = field(default_factory=time.time)

    @classmethod
    def from_exception(
        cls,
        experiment_id: str,
        exc: BaseException,
        attempt: int = 1,
        degraded: bool = False,
        elapsed_seconds: float = 0.0,
    ) -> "ExperimentFailure":
        """Capture ``exc`` (with classification and traceback)."""
        return cls(
            experiment_id=experiment_id,
            attempt=attempt,
            category=classify_exception(exc).category,
            error_type=type(exc).__name__,
            message=str(exc),
            traceback_text="".join(
                traceback_module.format_exception(type(exc), exc, exc.__traceback__)
            ),
            degraded=degraded,
            elapsed_seconds=elapsed_seconds,
        )

    def summary(self) -> str:
        """One-line description used in campaign reports."""
        mode = "degraded" if self.degraded else "full"
        return (
            f"{self.experiment_id} attempt {self.attempt} ({mode}): "
            f"[{self.category}] {self.error_type}: {self.message}"
        )

    def to_dict(self) -> Dict[str, object]:
        return {
            "experiment_id": self.experiment_id,
            "attempt": self.attempt,
            "category": self.category,
            "error_type": self.error_type,
            "message": self.message,
            "traceback_text": self.traceback_text,
            "degraded": self.degraded,
            "elapsed_seconds": self.elapsed_seconds,
            "timestamp": self.timestamp,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "ExperimentFailure":
        return cls(
            experiment_id=str(payload["experiment_id"]),
            attempt=int(payload["attempt"]),
            category=str(payload["category"]),
            error_type=str(payload["error_type"]),
            message=str(payload["message"]),
            traceback_text=str(payload.get("traceback_text", "")),
            degraded=bool(payload.get("degraded", False)),
            elapsed_seconds=float(payload.get("elapsed_seconds", 0.0)),
            timestamp=float(payload.get("timestamp", 0.0)),
        )
