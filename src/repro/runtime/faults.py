"""Deterministic fault injection for the campaign engine.

Recovery code that is never exercised is broken code.  This module
injects the failure modes the engine must survive — crashes, hangs
(cooperative and non-cooperative), memory blowups, sudden worker death,
and corrupted trace archives — at precisely controlled points, so the
isolation/retry/degradation/checkpoint paths are themselves under test
(the same philosophy as the checkpointed workload harnesses used by
production-scale studies; cf. PAPERS.md).

A :class:`FaultInjector` is handed to the
:class:`~repro.runtime.engine.CampaignEngine`; before each attempt of
each experiment the engine calls :meth:`FaultInjector.before_attempt`,
which consults the plan and triggers the configured fault:

- ``"crash"`` — raise a taxonomy exception
  (:class:`~repro.runtime.errors.SimulationError` by default).
- ``"hang"`` (cooperative, the default) — spin on the attempt's budget
  until the cooperative deadline check raises
  :class:`~repro.runtime.errors.BudgetExceeded`, exactly as a runaway
  simulation loop would.
- ``"hang"`` with ``cooperative=False`` — a busy loop that *never*
  polls the ambient budget: invisible to cooperative enforcement, only
  the worker backend's SIGTERM→SIGKILL escalation can stop it.
- ``"memhog"`` — allocate memory without bound until the worker's
  address-space rlimit fires (worker backend only).
- ``"die"`` — ``os._exit`` without writing a result payload, like a
  segfault or OOM kill (worker backend only).
- ``"corrupt-trace"`` — write a real trace archive, flip a byte in it,
  and load it back, so the failure travels the genuine
  :class:`~repro.mem.tracefile.TraceFileCorruptError` path.

The non-containable kinds (non-cooperative hang, memhog, die) are
refused when fired in-process: they would do to the campaign exactly
what the worker backend exists to prevent.  The worker entry point
fires them with ``in_worker=True``.

Every fault fires on the first ``fail_attempts`` attempts and then
stands down, which lets tests script "fails once, succeeds degraded"
scenarios deterministically.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

from repro.runtime import errors as errors_module
from repro.runtime.budget import Budget
from repro.runtime.errors import ExperimentError, SimulationError

FAULT_KINDS = ("crash", "hang", "corrupt-trace", "memhog", "die")

#: Fault kinds (plus the non-cooperative hang) that cannot be contained
#: by the in-process backend and are only allowed inside a worker.
WORKER_ONLY_KINDS = ("memhog", "die")


def corrupt_file(path: Union[str, Path], offset: int = -1, flip: int = 0xFF) -> None:
    """Flip one byte of ``path`` in place (bit-level corruption).

    Args:
        path: File to damage.
        offset: Byte offset; negative offsets index from the end.
        flip: XOR mask applied to the byte (default inverts it).
    """
    path = Path(path)
    data = bytearray(path.read_bytes())
    if not data:
        raise ValueError(f"cannot corrupt empty file {path}")
    data[offset] ^= flip
    path.write_bytes(bytes(data))


@dataclass
class FaultSpec:
    """What to inject into one experiment.

    Attributes:
        kind: One of :data:`FAULT_KINDS`.
        fail_attempts: How many initial attempts the fault hits; later
            attempts run clean (so retry/degradation can succeed).
        exception: Exception class raised by ``"crash"`` faults.
        message: Message for ``"crash"`` faults.
        cooperative: For ``"hang"``: True spins on the ambient budget
            (catchable in-process); False busy-loops without ever
            polling it (only a process kill can stop it).
        exit_code: Exit status used by ``"die"`` faults.
    """

    kind: str
    fail_attempts: int = 1
    exception: type = SimulationError
    message: str = "injected fault"
    cooperative: bool = True
    exit_code: int = 1

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; choices: {FAULT_KINDS}"
            )
        if self.fail_attempts < 1:
            raise ValueError("fail_attempts must be >= 1")

    def to_dict(self) -> Dict[str, object]:
        """JSON-serializable form (shipped to worker processes)."""
        return {
            "kind": self.kind,
            "fail_attempts": self.fail_attempts,
            "exception": self.exception.__name__,
            "message": self.message,
            "cooperative": self.cooperative,
            "exit_code": self.exit_code,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "FaultSpec":
        """Rebuild a spec on the worker side of the pipe.

        The exception class is resolved by name against the error
        taxonomy (then builtins); unknown names fall back to
        :class:`SimulationError` rather than failing the round-trip.
        """
        name = str(payload.get("exception", "SimulationError"))
        exception = getattr(errors_module, name, None)
        if not (isinstance(exception, type) and issubclass(exception, BaseException)):
            import builtins

            exception = getattr(builtins, name, None)
        if not (isinstance(exception, type) and issubclass(exception, BaseException)):
            exception = SimulationError
        return cls(
            kind=str(payload["kind"]),
            fail_attempts=int(payload.get("fail_attempts", 1)),
            exception=exception,
            message=str(payload.get("message", "injected fault")),
            cooperative=bool(payload.get("cooperative", True)),
            exit_code=int(payload.get("exit_code", 1)),
        )


def fire_fault(
    spec: FaultSpec,
    experiment_id: str,
    attempt: int,
    budget: Optional[Budget] = None,
    workspace: Optional[Path] = None,
    in_worker: bool = False,
) -> None:
    """Trigger ``spec`` for one attempt.

    Shared by the in-process :class:`FaultInjector` and the worker
    entry point (:func:`repro.experiments.runner.worker_main`).  The
    kinds that can only be contained by killing a process are refused
    unless ``in_worker`` is True.
    """
    uncontainable = spec.kind in WORKER_ONLY_KINDS or (
        spec.kind == "hang" and not spec.cooperative
    )
    if uncontainable and not in_worker:
        raise ExperimentError(
            f"fault {spec.kind!r}"
            f"{'' if spec.cooperative else ' (non-cooperative)'} for "
            f"{experiment_id!r} can only be contained by the worker "
            "backend; refusing to fire it in-process"
        )
    if spec.kind == "crash":
        raise spec.exception(
            f"{spec.message} (experiment {experiment_id}, attempt {attempt})"
        )
    if spec.kind == "hang":
        if spec.cooperative:
            _hang_cooperative(experiment_id, budget)
        else:
            _hang_hard()
        return
    if spec.kind == "memhog":
        _memhog()
        return
    if spec.kind == "die":
        os._exit(spec.exit_code)
    if spec.kind == "corrupt-trace":
        _corrupt_trace(experiment_id, workspace)


def _hang_cooperative(experiment_id: str, budget: Optional[Budget]) -> None:
    """Busy-wait on the budget like a runaway simulation loop."""
    if budget is None or budget.seconds is None:
        # Refuse to spin forever: an unbudgeted cooperative hang would
        # do exactly what the engine exists to prevent.
        raise ExperimentError(
            f"cooperative hang fault for {experiment_id!r} requires a "
            "finite budget"
        )
    while True:
        budget.check(f"injected hang in {experiment_id}")


def _hang_hard() -> None:
    """Busy loop that never polls the ambient budget.

    Models a hang in un-instrumented code (a numpy kernel, an octree
    build): cooperative deadline checks cannot see it, so only the
    supervisor's SIGTERM→SIGKILL escalation ends it.
    """
    while True:
        pass


def _memhog(chunk_bytes: int = 16 * 1024 * 1024) -> None:
    """Allocate without bound until the address-space rlimit fires."""
    hog = []
    while True:
        block = bytearray(chunk_bytes)
        # Touch the pages so the allocation is real, not lazily mapped.
        block[::4096] = b"\xff" * len(block[::4096])
        hog.append(block)


def _corrupt_trace(experiment_id: str, workspace: Optional[Path]) -> None:
    """Round-trip a trace through a deliberately damaged archive."""
    import numpy as np

    from repro.mem.trace import Trace
    from repro.mem.tracefile import load_trace, save_trace

    if workspace is None:
        raise ExperimentError(
            "corrupt-trace fault requires a workspace directory"
        )
    workspace = Path(workspace)
    workspace.mkdir(parents=True, exist_ok=True)
    path = workspace / f"{experiment_id}-injected.npz"
    trace = Trace(
        np.arange(0, 256 * 8, 8, dtype=np.int64),
        np.zeros(256, dtype=np.uint8),
    )
    save_trace(path, trace)
    # Flip a byte in the middle of the archive: inside the
    # compressed array data, so decompression or the checksum fails.
    corrupt_file(path, offset=path.stat().st_size // 2)
    load_trace(path)  # raises TraceFileCorruptError


@dataclass
class FaultInjector:
    """Injects planned faults into campaign attempts.

    Attributes:
        plan: experiment id -> :class:`FaultSpec`.
        workspace: Directory for the corrupt-trace scratch archive
            (required only when the plan contains ``"corrupt-trace"``).
        triggered: Log of ``(experiment_id, attempt, kind)`` tuples,
            appended every time a fault fires — lets tests assert the
            exact injection sequence.
    """

    plan: Dict[str, FaultSpec] = field(default_factory=dict)
    workspace: Optional[Path] = None
    triggered: List[Tuple[str, int, str]] = field(default_factory=list)

    def spec_for(self, experiment_id: str, attempt: int) -> Optional[FaultSpec]:
        """The fault armed for this attempt, or None (stood down)."""
        spec = self.plan.get(experiment_id)
        if spec is None or attempt > spec.fail_attempts:
            return None
        return spec

    def record(self, experiment_id: str, attempt: int, kind: str) -> None:
        """Log one firing (the worker backend records at ship time)."""
        self.triggered.append((experiment_id, attempt, kind))

    def before_attempt(
        self, experiment_id: str, attempt: int, budget: Budget
    ) -> None:
        """Fire the planned fault for this attempt in-process, if any."""
        spec = self.spec_for(experiment_id, attempt)
        if spec is None:
            return
        self.record(experiment_id, attempt, spec.kind)
        fire_fault(
            spec,
            experiment_id,
            attempt,
            budget=budget,
            workspace=self.workspace,
            in_worker=False,
        )
