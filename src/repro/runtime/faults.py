"""Deterministic fault injection for the campaign engine.

Recovery code that is never exercised is broken code.  This module
injects the three failure modes the engine must survive — crashes,
hangs, and corrupted trace archives — at precisely controlled points,
so the isolation/retry/degradation/checkpoint paths are themselves
under test (the same philosophy as the checkpointed workload harnesses
used by production-scale studies; cf. PAPERS.md).

A :class:`FaultInjector` is handed to the
:class:`~repro.runtime.engine.CampaignEngine`; before each attempt of
each experiment the engine calls :meth:`FaultInjector.before_attempt`,
which consults the plan and triggers the configured fault:

- ``"crash"`` — raise a taxonomy exception
  (:class:`~repro.runtime.errors.SimulationError` by default).
- ``"hang"`` — spin on the attempt's budget until the cooperative
  deadline check raises :class:`~repro.runtime.errors.BudgetExceeded`,
  exactly as a runaway simulation loop would.
- ``"corrupt-trace"`` — write a real trace archive, flip a byte in it,
  and load it back, so the failure travels the genuine
  :class:`~repro.mem.tracefile.TraceFileCorruptError` path.

Every fault fires on the first ``fail_attempts`` attempts and then
stands down, which lets tests script "fails once, succeeds degraded"
scenarios deterministically.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

from repro.runtime.budget import Budget
from repro.runtime.errors import ExperimentError, SimulationError

FAULT_KINDS = ("crash", "hang", "corrupt-trace")


def corrupt_file(path: Union[str, Path], offset: int = -1, flip: int = 0xFF) -> None:
    """Flip one byte of ``path`` in place (bit-level corruption).

    Args:
        path: File to damage.
        offset: Byte offset; negative offsets index from the end.
        flip: XOR mask applied to the byte (default inverts it).
    """
    path = Path(path)
    data = bytearray(path.read_bytes())
    if not data:
        raise ValueError(f"cannot corrupt empty file {path}")
    data[offset] ^= flip
    path.write_bytes(bytes(data))


@dataclass
class FaultSpec:
    """What to inject into one experiment.

    Attributes:
        kind: ``"crash"``, ``"hang"``, or ``"corrupt-trace"``.
        fail_attempts: How many initial attempts the fault hits; later
            attempts run clean (so retry/degradation can succeed).
        exception: Exception class raised by ``"crash"`` faults.
        message: Message for ``"crash"`` faults.
    """

    kind: str
    fail_attempts: int = 1
    exception: type = SimulationError
    message: str = "injected fault"

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; choices: {FAULT_KINDS}"
            )
        if self.fail_attempts < 1:
            raise ValueError("fail_attempts must be >= 1")


@dataclass
class FaultInjector:
    """Injects planned faults into campaign attempts.

    Attributes:
        plan: experiment id -> :class:`FaultSpec`.
        workspace: Directory for the corrupt-trace scratch archive
            (required only when the plan contains ``"corrupt-trace"``).
        triggered: Log of ``(experiment_id, attempt, kind)`` tuples,
            appended every time a fault fires — lets tests assert the
            exact injection sequence.
    """

    plan: Dict[str, FaultSpec] = field(default_factory=dict)
    workspace: Optional[Path] = None
    triggered: List[Tuple[str, int, str]] = field(default_factory=list)

    def before_attempt(
        self, experiment_id: str, attempt: int, budget: Budget
    ) -> None:
        """Fire the planned fault for this attempt, if any."""
        spec = self.plan.get(experiment_id)
        if spec is None or attempt > spec.fail_attempts:
            return
        self.triggered.append((experiment_id, attempt, spec.kind))
        if spec.kind == "crash":
            raise spec.exception(
                f"{spec.message} (experiment {experiment_id}, attempt {attempt})"
            )
        if spec.kind == "hang":
            self._hang(experiment_id, budget)
            return
        if spec.kind == "corrupt-trace":
            self._corrupt_trace(experiment_id)

    def _hang(self, experiment_id: str, budget: Budget) -> None:
        """Busy-wait on the budget like a runaway simulation loop."""
        if budget.seconds is None:
            # Refuse to spin forever: an unbudgeted hang would do
            # exactly what the engine exists to prevent.
            raise ExperimentError(
                f"hang fault for {experiment_id!r} requires a finite budget"
            )
        while True:
            budget.check(f"injected hang in {experiment_id}")

    def _corrupt_trace(self, experiment_id: str) -> None:
        """Round-trip a trace through a deliberately damaged archive."""
        import numpy as np

        from repro.mem.trace import Trace
        from repro.mem.tracefile import load_trace, save_trace

        if self.workspace is None:
            raise ExperimentError(
                "corrupt-trace fault requires a workspace directory"
            )
        workspace = Path(self.workspace)
        workspace.mkdir(parents=True, exist_ok=True)
        path = workspace / f"{experiment_id}-injected.npz"
        trace = Trace(
            np.arange(0, 256 * 8, 8, dtype=np.int64),
            np.zeros(256, dtype=np.uint8),
        )
        save_trace(path, trace)
        # Flip a byte in the middle of the archive: inside the
        # compressed array data, so decompression or the checksum fails.
        corrupt_file(path, offset=path.stat().st_size // 2)
        load_trace(path)  # raises TraceFileCorruptError
