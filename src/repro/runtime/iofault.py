"""Fault-injectable I/O primitives and crash-consistent atomic writes.

Two jobs live here, deliberately in one dependency-free module:

1. **The durable write discipline.**  :func:`atomic_write_bytes` /
   :func:`atomic_write_text` are the one shared implementation of
   "replace a file so the change survives a crash": write to a
   temporary file in the destination directory, flush, ``fsync`` the
   *file*, ``os.replace`` into place, then ``fsync`` the *directory*
   entry.  The directory fsync is the half everyone forgets — on POSIX
   a rename is only durable once the directory's own metadata has
   reached disk, so an ``os.replace`` without it can be silently
   undone by power loss.  :mod:`repro.runtime.checkpoint`,
   :mod:`repro.runtime.journal`, :mod:`repro.runtime.lease`, and
   :mod:`repro.mem.tracefile` all write through these helpers.

2. **The deterministic I/O fault injector.**  Every durability-relevant
   syscall in this repo goes through the ``io_*`` wrappers below, each
   tagged with a *site* name (``"journal"``, ``"checkpoint"``,
   ``"events"``, ``"tracefile"``, ``"lease"``).  An installed
   :class:`IOFaultInjector` counts matching calls and fires a
   configured fault at the Nth one: ``enospc`` and ``eio`` raise the
   real ``OSError``; ``short-write`` writes a torn prefix of the data
   and then raises ``ENOSPC``; ``fsync-fail`` fails the fsync; and
   ``kill`` SIGKILLs the calling process mid-write — the primitive the
   chaos harness (:mod:`repro.runtime.chaos`) uses to park a SIGKILL
   *inside* a journal or checkpoint write.  With no injector installed
   every wrapper is a plain syscall.

The injector can be installed programmatically (:func:`install`) or via
the ``REPRO_IOFAULT`` environment variable (testing/chaos only; see
:func:`install_from_env`), whose value is one or more comma-separated
``SITE:OP:KIND:NTH`` quads, e.g. ``journal:write:kill:3``.
"""

from __future__ import annotations

import contextlib
import errno as errno_module
import os
import signal
import tempfile
import threading
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Sequence, Tuple, Union

#: Environment variable consulted by :func:`install_from_env`.
IOFAULT_ENV = "REPRO_IOFAULT"

#: Recognized fault kinds.
FAULT_KINDS = ("enospc", "eio", "short-write", "fsync-fail", "kill")

#: Recognized operation names (``"*"`` matches any).
FAULT_OPS = ("write", "fsync", "replace", "*")


@dataclass
class IOFault:
    """One scheduled I/O fault.

    Attributes:
        site: Site name the fault applies to (``"journal"``,
            ``"checkpoint"``, ... or ``"*"`` for any site).
        op: Operation (``"write"``, ``"fsync"``, ``"replace"``, or
            ``"*"``).
        kind: One of :data:`FAULT_KINDS`.
        nth: Fire at the Nth matching call (1-based).
        repeat: Fire on every matching call from ``nth`` on, instead of
            exactly once (a persistently full disk rather than a
            transient hiccup).
    """

    site: str
    op: str
    kind: str
    nth: int = 1
    repeat: bool = False

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; choices: {FAULT_KINDS}"
            )
        if self.op not in FAULT_OPS:
            raise ValueError(
                f"unknown fault op {self.op!r}; choices: {FAULT_OPS}"
            )
        if self.nth < 1:
            raise ValueError(f"nth must be >= 1 (got {self.nth})")

    def matches(self, site: str, op: str) -> bool:
        return self.site in ("*", site) and self.op in ("*", op)

    @classmethod
    def parse(cls, text: str) -> "IOFault":
        """Parse one ``SITE:OP:KIND:NTH[:repeat]`` spec."""
        parts = text.split(":")
        if len(parts) < 3 or len(parts) > 5:
            raise ValueError(
                f"bad I/O fault spec {text!r}: expected SITE:OP:KIND[:NTH[:repeat]]"
            )
        site, op, kind = parts[0], parts[1], parts[2]
        nth = int(parts[3]) if len(parts) > 3 and parts[3] else 1
        repeat = len(parts) > 4 and parts[4] == "repeat"
        return cls(site=site, op=op, kind=kind, nth=nth, repeat=repeat)


class IOFaultInjector:
    """Counts tagged I/O calls and fires scheduled faults.

    Deterministic by construction: firing depends only on the sequence
    of matching calls, never on wall-clock time.  Thread-safe — the
    worker-pool supervisor threads share one injector.
    """

    def __init__(self, faults: Sequence[IOFault]) -> None:
        self.faults = list(faults)
        self._fault_counts = [0] * len(self.faults)
        self._fired: List[Tuple[str, str, str, int]] = []
        self._lock = threading.Lock()

    @classmethod
    def parse(cls, text: str) -> "IOFaultInjector":
        """Build an injector from a comma-separated spec string."""
        return cls([IOFault.parse(part) for part in text.split(",") if part])

    @property
    def fired(self) -> List[Tuple[str, str, str, int]]:
        """``(site, op, kind, call_index)`` for every fault fired."""
        with self._lock:
            return list(self._fired)

    def check(self, site: str, op: str) -> Optional[IOFault]:
        """Record one call at ``(site, op)``; return the fault to fire.

        Each fault counts the calls its own pattern matches, so two
        faults with overlapping patterns fire independently.  The
        caller applies the fault's effect (so ``short-write`` can tear
        the data it alone holds).  ``kill`` is applied here — it never
        returns.
        """
        due: Optional[IOFault] = None
        with self._lock:
            for index, fault in enumerate(self.faults):
                if not fault.matches(site, op):
                    continue
                self._fault_counts[index] += 1
                count = self._fault_counts[index]
                if due is None and (
                    count == fault.nth or (fault.repeat and count > fault.nth)
                ):
                    due = fault
                    self._fired.append((site, op, fault.kind, count))
            if due is None:
                return None
        if due.kind == "kill":
            # Simulate a supervisor SIGKILL landing inside the write.
            os.kill(os.getpid(), signal.SIGKILL)
        return due


#: The ambient injector (None = all wrappers are plain syscalls).
_ACTIVE: Optional[IOFaultInjector] = None


def active_injector() -> Optional[IOFaultInjector]:
    return _ACTIVE


@contextlib.contextmanager
def install(injector: Optional[IOFaultInjector]) -> Iterator[Optional[IOFaultInjector]]:
    """Install ``injector`` as the ambient fault source for a scope."""
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = injector
    try:
        yield injector
    finally:
        _ACTIVE = previous


def install_from_env(environ: Optional[Dict[str, str]] = None) -> Optional[IOFaultInjector]:
    """Install an injector described by ``REPRO_IOFAULT`` (if set).

    Unlike :func:`install` this is *not* scoped — it arms the injector
    for the life of the process, which is exactly what the chaos
    harness wants when it plants a ``kill`` inside a child supervisor.
    Returns the installed injector, or None when the variable is unset.
    """
    global _ACTIVE
    value = (environ if environ is not None else os.environ).get(IOFAULT_ENV, "")
    if not value:
        return None
    injector = IOFaultInjector.parse(value)
    _ACTIVE = injector
    return injector


def _raise_io_error(err: int, site: str, op: str) -> None:
    raise OSError(
        err,
        f"{os.strerror(err)} [injected at {site}:{op}]",
    )


def _consult(site: str, op: str) -> Optional[IOFault]:
    if _ACTIVE is None:
        return None
    fault = _ACTIVE.check(site, op)
    if fault is None:
        return None
    if fault.kind == "enospc":
        _raise_io_error(errno_module.ENOSPC, site, op)
    if fault.kind in ("eio", "fsync-fail"):
        _raise_io_error(errno_module.EIO, site, op)
    return fault  # short-write: caller applies the tear


# -- tagged syscall wrappers ----------------------------------------------


def check_io(site: str, op: str) -> None:
    """Explicit injection point for writes the wrappers cannot carry.

    Callers that hand their bytes to a third-party writer (numpy's
    ``savez``) call this where the write begins, so ``enospc`` /
    ``eio`` / ``kill`` faults can land deterministically inside the
    operation.  ``short-write`` degrades to ``enospc`` here — there is
    no buffer to tear.
    """
    fault = _consult(site, op)
    if fault is not None and fault.kind == "short-write":
        _raise_io_error(errno_module.ENOSPC, site, op)


def io_write(fd: int, data: bytes, site: str) -> int:
    """``os.write`` with full-write semantics, tagged for injection."""
    fault = _consult(site, "write")
    if fault is not None and fault.kind == "short-write":
        torn = data[: max(1, len(data) // 2)]
        written = 0
        while written < len(torn):
            written += os.write(fd, torn[written:])
        _raise_io_error(errno_module.ENOSPC, site, "write")
    written = 0
    view = memoryview(data)
    while written < len(view):
        written += os.write(fd, view[written:])
    return written


def io_fsync(fd: int, site: str) -> None:
    """``os.fsync``, tagged for injection."""
    _consult(site, "fsync")
    os.fsync(fd)


def io_replace(src: Union[str, Path], dst: Union[str, Path], site: str) -> None:
    """``os.replace``, tagged for injection."""
    _consult(site, "replace")
    os.replace(src, dst)


def fsync_directory(path: Union[str, Path], site: str = "dir") -> None:
    """fsync a directory so a rename inside it is durable.

    Best-effort: platforms or filesystems that refuse to fsync a
    directory fd (some network mounts, non-POSIX systems) degrade to a
    no-op — the rename is still atomic, just not power-loss-durable.
    Injected fsync faults do propagate (the whole point of testing
    them).
    """
    _consult(site, "fsync")
    try:
        fd = os.open(os.fspath(path), os.O_RDONLY)
    except OSError:  # pragma: no cover - platform-dependent
        return
    try:
        os.fsync(fd)
    except OSError:  # pragma: no cover - platform-dependent
        pass
    finally:
        os.close(fd)


# -- the shared atomic write ----------------------------------------------


def atomic_write_bytes(
    path: Union[str, Path],
    data: bytes,
    site: str = "atomic",
    durable: bool = True,
) -> None:
    """Atomically (and, by default, durably) replace ``path`` with ``data``.

    Stages the bytes in a temporary file in the destination directory,
    fsyncs the file, renames it into place, and fsyncs the directory
    entry, so the replacement survives both a crash of this process and
    a power loss immediately after return.  On any failure the
    temporary file is unlinked — a failed write never leaves ``*.tmp``
    litter — and the previous contents of ``path`` are untouched.

    Args:
        path: Destination file.
        data: Full new contents.
        site: Injection-site tag for :class:`IOFaultInjector`.
        durable: When False, skip both fsyncs (callers that only need
            atomicity, e.g. high-rate heartbeats).
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp_name = tempfile.mkstemp(
        prefix=f".{path.name}.", suffix=".tmp", dir=path.parent
    )
    try:
        try:
            io_write(fd, data, site)
            if durable:
                io_fsync(fd, site)
        finally:
            os.close(fd)
        io_replace(tmp_name, path, site)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise
    if durable:
        fsync_directory(path.parent, site)


def atomic_write_text(
    path: Union[str, Path],
    text: str,
    site: str = "atomic",
    durable: bool = True,
) -> None:
    """:func:`atomic_write_bytes` for UTF-8 text."""
    atomic_write_bytes(path, text.encode("utf-8"), site=site, durable=durable)
