"""Kill/disk-fault chaos harness for the campaign supervisor.

The durability layer (:mod:`repro.runtime.journal`,
:mod:`repro.runtime.lease`, :mod:`repro.runtime.iofault`) makes strong
claims: a SIGKILL of the supervisor at *any* instruction — including
inside a journal or checkpoint write — leaves a run directory from
which ``--resume`` completes the campaign with no lost committed
attempt and no double-execution.  This module tests the claim the only
honest way: by actually killing real supervisors at seeded random
points, resuming, and auditing the wreckage.

One chaos *cycle*:

1. launch ``python -m repro.experiments --quick --run-dir <dir> ...``
   as a real subprocess (its own session, so the whole process group
   dies together);
2. SIGKILL it at a seeded random delay — or, on io-fault cycles, plant
   ``REPRO_IOFAULT=<site>:write:kill:<n>`` so the process SIGKILLs
   *itself* inside the Nth journal/checkpoint/events write, the
   nastiest possible crash point;
3. relaunch with ``--resume``; repeat the kill up to the cycle's kill
   budget, then let the final launch run to completion;
4. assert the aftermath:

   - the final run exits 0,
   - :func:`repro.validate.artifacts.validate_run_dir` reports no
     error-severity finding (journal audit included),
   - ``summary.json`` is byte-identical to an uninterrupted reference
     run's (the summary payload is deterministic by construction),
   - the journal shows at most one ``attempt-end`` per ``attempt_uid``
     and at most one *committed* ``attempt-end`` per experiment
     (no double-execution of a committed attempt),
   - ``events.jsonl`` agrees (at most one ``attempt-end`` event per
     ``attempt_uid``).

ENOSPC cycles swap the SIGKILL for a transient injected disk-full at a
checkpoint write; the supervisor must retry, complete, and leave an
audit-clean directory without any restart at all.

Node chaos (``nodes=N``) aims the violence at the dispatch fabric
instead of the supervisor: campaigns run with ``--nodes N`` and seeded
``REPRO_NODE_FAULT`` directives make worker *nodes* SIGKILL themselves
mid-attempt or mid-heartbeat (``node-kill`` cycles) or go silent and
buffer their outbound traffic for longer than the heartbeat TTL
(``node-partition`` cycles — the healed node's late results must be
fenced, not recorded).  The supervisor itself is never killed in these
cycles, so a single launch must exit 0: the fabric absorbs every node
death by re-dispatching onto survivors and respawning the dead node
under a new fencing incarnation.  The audit adds the dispatch WAL
(exactly-once ``dispatch-complete`` per attempt uid, via
``validate_run_dir``) and compares ``summary.json`` byte-for-byte
against an uninterrupted single-node (``--nodes 1``) reference.

Everything is seeded: a failing cycle is rerun exactly with
``--seed``/``--cycles``.
"""

from __future__ import annotations

import os
import random
import shutil
import signal
import subprocess
import sys
import tempfile
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.runtime.iofault import IOFAULT_ENV
from repro.runtime.journal import (
    COMMITTED_STATUSES,
    JOURNAL_FILENAME,
    read_journal,
)

#: Default experiment subset: three quick experiments with distinct
#: runtimes, so kills land before, between, and inside experiments.
DEFAULT_EXPERIMENTS = ("table1", "cost", "fig2")

#: Sites (and write-count ranges) eligible for self-kill injection.
#: The upper bound keeps the Nth write inside the count a quick
#: three-experiment campaign actually performs at that site.
IO_KILL_SITES = {
    "journal": (1, 10),
    "checkpoint": (1, 4),
    "events": (1, 12),
}

#: Streamed-campaign kill sites: inside a trace-shard write
#: (mid-generation) and inside a simulator-snapshot write
#: (mid-simulation).  Only meaningful with ``--jobs 0`` — the worker
#: environment deliberately strips ``REPRO_IOFAULT``, so planted
#: faults fire only when the supervisor itself runs the experiments.
STREAM_IO_KILL_SITES = {
    "shard": (1, 4),
    "simckpt": (1, 3),
}

#: Hard ceiling on restarts per cycle, over and above the kill budget
#: (a safety net: the loop should always terminate via completion).
MAX_RESTARTS = 20

#: How long a node partition must outlast the default heartbeat TTL
#: (3s) so the dispatcher actually declares the node dead and
#: re-dispatches; the heal then delivers the buffered stale results,
#: which MUST be fenced.
PARTITION_SECONDS = (3.5, 6.0)


@dataclass
class CycleResult:
    """The audited outcome of one chaos cycle."""

    cycle: int
    kind: str  # "time-kill", "io-kill", or "enospc"
    kills: int = 0
    launches: int = 0
    problems: List[str] = field(default_factory=list)
    detail: str = ""

    @property
    def passed(self) -> bool:
        return not self.problems

    def summary(self) -> str:
        verdict = "ok" if self.passed else "FAIL"
        line = (
            f"cycle {self.cycle:3d} [{self.kind}] "
            f"{self.launches} launch(es), {self.kills} kill(s): {verdict}"
        )
        if self.detail:
            line += f" ({self.detail})"
        return line


@dataclass
class ChaosReport:
    """Aggregate over all cycles."""

    cycles: List[CycleResult] = field(default_factory=list)
    reference_dir: Optional[str] = None
    work_dir: Optional[str] = None

    @property
    def passed(self) -> bool:
        return bool(self.cycles) and all(c.passed for c in self.cycles)

    @property
    def total_kills(self) -> int:
        return sum(c.kills for c in self.cycles)

    def render(self) -> str:
        lines = ["== chaos report =="]
        for cycle in self.cycles:
            lines.append("  " + cycle.summary())
            for problem in cycle.problems:
                lines.append(f"      problem: {problem}")
        failed = sum(1 for c in self.cycles if not c.passed)
        lines.append(
            f"  total: {len(self.cycles)} cycle(s), {self.total_kills} "
            f"SIGKILL(s), {failed} failure(s)"
        )
        return "\n".join(lines)


def _campaign_env(
    io_fault: Optional[str] = None, node_fault: Optional[str] = None
) -> Dict[str, str]:
    """Environment for a chaos-launched supervisor.

    Propagates ``sys.path`` (the harness may run from a source tree) and
    sets/strips ``REPRO_IOFAULT`` / ``REPRO_NODE_FAULT`` explicitly so
    one cycle's fault can never leak into the next.
    """
    from repro.service.dispatch import NODE_FAULT_ENV

    env = dict(os.environ)
    entries = [entry for entry in sys.path if entry]
    if entries:
        env["PYTHONPATH"] = os.pathsep.join(entries)
    if io_fault is None:
        env.pop(IOFAULT_ENV, None)
    else:
        env[IOFAULT_ENV] = io_fault
    if node_fault is None:
        env.pop(NODE_FAULT_ENV, None)
    else:
        env[NODE_FAULT_ENV] = node_fault
    return env


def _launch(
    run_dir: Path,
    experiments: Sequence[str],
    jobs: int,
    resume: bool,
    io_fault: Optional[str] = None,
    stream: bool = False,
    shard_refs: Optional[int] = None,
    nodes: Optional[int] = None,
    node_fault: Optional[str] = None,
) -> subprocess.Popen:
    """Start one real supervisor over ``run_dir`` (own session)."""
    cmd = [
        sys.executable,
        "-m",
        "repro.experiments",
        "--quick",
        "--jobs",
        str(jobs),
    ]
    if nodes is not None:
        cmd.extend(["--nodes", str(nodes)])
    if stream:
        cmd.append("--stream")
        if shard_refs is not None:
            cmd.extend(["--shard-refs", str(shard_refs)])
    cmd += [
        "--resume" if resume else "--run-dir",
        str(run_dir),
        *experiments,
    ]
    return subprocess.Popen(
        cmd,
        stdout=subprocess.DEVNULL,  # progress spam must never fill a pipe
        stderr=subprocess.PIPE,
        text=True,
        env=_campaign_env(io_fault, node_fault),
        start_new_session=True,  # killable (and self-killable) as a group
    )


def _killpg(proc: subprocess.Popen) -> None:
    """SIGKILL the supervisor's whole process group, workers included."""
    try:
        os.killpg(os.getpgid(proc.pid), signal.SIGKILL)
    except (ProcessLookupError, PermissionError, OSError):
        try:
            proc.kill()
        except (ProcessLookupError, OSError):
            pass


def _finish(proc: subprocess.Popen, timeout: float) -> Tuple[int, str]:
    """Wait for ``proc``; on harness timeout, kill it and report."""
    try:
        _, stderr = proc.communicate(timeout=timeout)
    except subprocess.TimeoutExpired:
        _killpg(proc)
        _, stderr = proc.communicate()
        return -1 * signal.SIGKILL, (stderr or "") + "\n[harness timeout]"
    return proc.returncode, stderr or ""


def run_reference(
    work_dir: Path,
    experiments: Sequence[str],
    jobs: int,
    timeout: float,
    stream: bool = False,
    shard_refs: Optional[int] = None,
    nodes: Optional[int] = None,
) -> Tuple[Path, float, bytes]:
    """One uninterrupted campaign: the oracle every cycle compares to.

    Returns ``(run_dir, duration_seconds, summary_bytes)``.
    """
    run_dir = work_dir / "reference"
    started = time.monotonic()
    proc = _launch(
        run_dir, experiments, jobs, resume=False,
        stream=stream, shard_refs=shard_refs, nodes=nodes,
    )
    returncode, stderr = _finish(proc, timeout)
    duration = time.monotonic() - started
    if returncode != 0:
        raise RuntimeError(
            f"reference campaign failed with exit {returncode}:\n"
            f"{stderr[-2000:]}"
        )
    summary_path = run_dir / "summary.json"
    if not summary_path.is_file():
        raise RuntimeError("reference campaign left no summary.json")
    return run_dir, duration, summary_path.read_bytes()


def audit_run_dir(
    run_dir: Path,
    reference_summary: bytes,
    experiments: Sequence[str],
    deep: bool = False,
) -> List[str]:
    """Every post-recovery invariant the durability layer promises.

    Returns human-readable problem strings (empty = audit-clean).
    """
    problems: List[str] = []

    # 1. Artifact validation (includes the journal/lease audit).
    from repro.validate.artifacts import validate_run_dir

    report = validate_run_dir(run_dir, deep=deep)
    for finding in report.errors:
        problems.append(f"validate: [{finding.code}] {finding.message}")

    # 2. Summary byte-equivalence with the uninterrupted reference.
    summary_path = run_dir / "summary.json"
    if not summary_path.is_file():
        problems.append("no summary.json after final run")
    elif summary_path.read_bytes() != reference_summary:
        problems.append(
            "summary.json differs from the uninterrupted reference run"
        )

    # 3. Journal invariants: exactly-once commits, no double-execution.
    replay = read_journal(run_dir / JOURNAL_FILENAME)
    end_counts: Dict[str, int] = {}
    committed_ends: Dict[str, int] = {}
    last_token = 0
    for record in replay.records:
        token = record.get("token")
        if isinstance(token, int):
            if token < last_token:
                problems.append(
                    f"journal: fencing token went backwards "
                    f"({last_token} -> {token} at seq {record.get('seq')})"
                )
            last_token = max(last_token, token)
        if record.get("type") != "attempt-end":
            continue
        uid = str(record.get("attempt_uid", ""))
        end_counts[uid] = end_counts.get(uid, 0) + 1
        if record.get("status") in COMMITTED_STATUSES:
            experiment_id = str(record.get("experiment_id"))
            committed_ends[experiment_id] = (
                committed_ends.get(experiment_id, 0) + 1
            )
    for uid, count in sorted(end_counts.items()):
        if count > 1:
            problems.append(
                f"journal: attempt uid {uid} has {count} attempt-end "
                "records (exactly-once violated)"
            )
    for experiment_id, count in sorted(committed_ends.items()):
        if count > 1:
            problems.append(
                f"journal: experiment {experiment_id} committed {count} "
                "times (double-execution of a committed attempt)"
            )
    for experiment_id in experiments:
        if not (run_dir / "results" / f"{experiment_id}.json").is_file():
            problems.append(
                f"lost committed attempt: no checkpoint for {experiment_id}"
            )

    # 4. The event log agrees with the journal.
    from repro.runtime.events import read_events

    event_ends: Dict[str, int] = {}
    for event in read_events(run_dir / "events.jsonl"):
        if event.get("event") != "attempt-end":
            continue
        uid = str(event.get("attempt_uid", ""))
        event_ends[uid] = event_ends.get(uid, 0) + 1
    for uid, count in sorted(event_ends.items()):
        if count > 1:
            problems.append(
                f"events: attempt uid {uid} has {count} attempt-end "
                "events (exactly-once violated)"
            )
    return problems


def _node_fault_directives(
    rng: random.Random,
    nodes: int,
    kind: str,
    reference_duration: float,
) -> Tuple[str, int]:
    """Seeded ``REPRO_NODE_FAULT`` directives for one node-chaos cycle.

    Kill delays are drawn from two windows on purpose: a short one
    (0.05–0.4s) that lands during node startup / between heartbeats,
    and a long one that lands mid-attempt while experiments are
    executing.  Directives always target incarnation ``#1`` — the
    respawned replacement (incarnation 2) must survive untouched, or
    the cycle could never complete.

    Returns ``(directive_string, kills_planned)``.
    """
    horizon = max(0.5, 0.9 * reference_duration)
    if kind == "node-partition":
        node = rng.randrange(nodes)
        at = rng.uniform(0.1, max(0.3, 0.6 * horizon))
        dur = rng.uniform(*PARTITION_SECONDS)
        return f"node-{node}#1:partition@{at:.2f}+{dur:.2f}", 0
    count = min(nodes - 1, rng.randint(1, 2)) if nodes > 1 else 1
    count = max(1, count)
    targets = rng.sample(range(nodes), count)
    parts = []
    for index, node in enumerate(targets):
        if index == 0 and rng.random() < 0.5:
            delay = rng.uniform(0.05, 0.4)  # mid-heartbeat / startup
        else:
            delay = rng.uniform(0.3, 0.4 + horizon)  # mid-attempt
        parts.append(f"node-{node}#1:kill@{delay:.2f}")
    return ",".join(parts), count


def run_cycle(
    cycle: int,
    rng: random.Random,
    work_dir: Path,
    experiments: Sequence[str],
    jobs: int,
    reference_duration: float,
    reference_summary: bytes,
    timeout: float,
    kind: str,
    deep: bool = False,
    stream: bool = False,
    shard_refs: Optional[int] = None,
    nodes: Optional[int] = None,
) -> CycleResult:
    """One kill/resume (or ENOSPC) cycle; see the module docstring."""
    result = CycleResult(cycle=cycle, kind=kind)
    run_dir = work_dir / f"cycle-{cycle:03d}"

    if kind in ("node-kill", "node-partition"):
        # Node chaos: the *fabric* takes the kills, the supervisor
        # stays up, so exactly one launch must carry the campaign to a
        # clean exit (re-dispatch + respawn are the mechanisms under
        # test, not --resume).
        node_fault, kills = _node_fault_directives(
            rng, nodes or 1, kind, reference_duration
        )
        result.detail = node_fault
        result.kills = kills
        proc = _launch(
            run_dir, experiments, jobs, resume=False,
            stream=stream, shard_refs=shard_refs,
            nodes=nodes, node_fault=node_fault,
        )
        result.launches = 1
        returncode, stderr = _finish(proc, timeout)
        if returncode != 0:
            result.problems.append(
                f"fabric campaign exited {returncode} (the dispatcher "
                f"must absorb node deaths): {stderr[-500:]}"
            )
            return result
        result.problems.extend(
            audit_run_dir(run_dir, reference_summary, experiments, deep=deep)
        )
        if result.passed:
            shutil.rmtree(run_dir, ignore_errors=True)
        return result

    kills_planned = 0 if kind == "enospc" else rng.randint(1, 3)
    io_fault: Optional[str] = None
    if kind == "io-kill":
        # Streamed campaigns aim every planted kill at the streaming
        # substrate itself — mid-shard-write and mid-snapshot-write —
        # which only fires in-process (--jobs 0); the classic sites
        # stay covered by the non-streamed chaos runs.
        sites = (
            STREAM_IO_KILL_SITES if stream and jobs == 0 else IO_KILL_SITES
        )
        site = rng.choice(sorted(sites))
        low, high = sites[site]
        io_fault = f"{site}:write:kill:{rng.randint(low, high)}"
        result.detail = io_fault
    elif kind == "enospc":
        # Transient disk-full at a checkpoint write: the engine's
        # bounded retry must absorb it without any restart.
        io_fault = f"checkpoint:write:enospc:{rng.randint(1, 3)}"
        result.detail = io_fault

    while result.launches < MAX_RESTARTS:
        resume = result.launches > 0
        # The planted io fault applies to the first launch only; resumed
        # supervisors run fault-free (the crash already happened).
        fault_now = io_fault if result.launches == 0 else None
        proc = _launch(
            run_dir, experiments, jobs, resume, fault_now,
            stream=stream, shard_refs=shard_refs,
        )
        result.launches += 1

        if kind == "time-kill" and result.kills < kills_planned:
            delay = rng.uniform(0.05, max(0.2, 0.9 * reference_duration))
            try:
                proc.wait(timeout=delay)
            except subprocess.TimeoutExpired:
                _killpg(proc)
            proc.communicate()
        else:
            returncode, stderr = _finish(proc, timeout)
            if returncode == 0:
                break
            if returncode == -signal.SIGKILL and kind == "io-kill":
                # The planted fault fired: the supervisor killed itself
                # mid-write, exactly as intended.  Resume.
                result.kills += 1
                continue
            result.problems.append(
                f"launch {result.launches} exited {returncode} "
                f"unexpectedly: {stderr[-500:]}"
            )
            return result

        if proc.returncode == 0:
            break  # finished before the kill landed — cycle still counts
        result.kills += 1

    else:
        result.problems.append(
            f"campaign did not complete within {MAX_RESTARTS} launches"
        )
        return result

    result.problems.extend(
        audit_run_dir(run_dir, reference_summary, experiments, deep=deep)
    )
    if result.passed:
        shutil.rmtree(run_dir, ignore_errors=True)
    return result


def run_chaos(
    cycles: int = 10,
    seed: int = 0,
    experiments: Sequence[str] = DEFAULT_EXPERIMENTS,
    jobs: int = 1,
    enospc_cycles: int = 1,
    work_dir: Optional[Union[str, Path]] = None,
    timeout: float = 300.0,
    deep: bool = False,
    stream: bool = False,
    shard_refs: Optional[int] = None,
    nodes: Optional[int] = None,
) -> ChaosReport:
    """Run the full chaos campaign; see the module docstring.

    Args:
        cycles: SIGKILL/resume cycles (alternating timed kills and
            in-write self-kills; with ``nodes``, node-kill cycles with
            every third a node-partition cycle).
        seed: Master seed; the whole campaign is a function of it.
        experiments: Experiment ids for every run (quick mode).
        jobs: ``--jobs`` for the campaigns under test.
        enospc_cycles: Additional transient disk-full cycles.
        work_dir: Where run directories live (default: a fresh temp
            dir, removed when every cycle passes).
        timeout: Harness ceiling per uninterrupted launch, seconds.
        deep: Run the invariant oracles during the audit (slower).
        stream: Run every campaign (reference and cycles alike) with
            ``--stream``, and aim io-kill cycles at the shard and
            simulator-checkpoint writes so the kills land
            mid-generation and mid-simulation.  Use ``jobs=0`` so the
            planted faults fire in the supervisor process.
        shard_refs: ``--shard-refs`` for streamed campaigns (pick a
            value small enough that the quick traces split into
            several shards, or the mid-simulation checkpoints never
            happen).
        nodes: Run every cycle on an N-node dispatch fabric and aim
            the chaos at the *nodes* (seeded self-kills and
            partitions) instead of the supervisor.  The reference run
            uses ``--nodes 1`` — the acceptance bar is that a chaotic
            N-node campaign's summary is byte-identical to an
            uninterrupted single-node one.  Requires ``jobs >= 1``.
    """
    if nodes is not None and nodes < 1:
        raise ValueError("nodes must be >= 1")
    if nodes is not None and jobs < 1:
        raise ValueError("node chaos requires jobs >= 1")
    report = ChaosReport()
    owns_work_dir = work_dir is None
    work_path = Path(
        tempfile.mkdtemp(prefix="repro-chaos-") if owns_work_dir else work_dir
    )
    work_path.mkdir(parents=True, exist_ok=True)
    report.work_dir = str(work_path)

    reference_dir, duration, reference_summary = run_reference(
        work_path, experiments, jobs, timeout,
        stream=stream, shard_refs=shard_refs,
        nodes=1 if nodes is not None else None,
    )
    report.reference_dir = str(reference_dir)

    for cycle in range(cycles):
        rng = random.Random((seed << 20) ^ (cycle * 0x9E3779B1))
        if nodes is not None:
            # Node chaos: mostly node kills, every third cycle a
            # partition (silent node, buffered stale results).
            kind = "node-partition" if cycle % 3 == 2 else "node-kill"
        else:
            # Alternate timed kills with self-kills planted inside the
            # durability writes themselves.
            kind = "io-kill" if cycle % 2 else "time-kill"
        report.cycles.append(
            run_cycle(
                cycle, rng, work_path, experiments, jobs,
                duration, reference_summary, timeout, kind, deep=deep,
                stream=stream, shard_refs=shard_refs, nodes=nodes,
            )
        )
    for extra in range(enospc_cycles):
        cycle = cycles + extra
        rng = random.Random((seed << 20) ^ (cycle * 0x9E3779B1))
        report.cycles.append(
            run_cycle(
                cycle, rng, work_path, experiments, jobs,
                duration, reference_summary, timeout, "enospc", deep=deep,
                stream=stream, shard_refs=shard_refs,
            )
        )

    if report.passed and owns_work_dir:
        shutil.rmtree(work_path, ignore_errors=True)
    return report
