"""Append-only write-ahead journal of campaign state transitions.

PRs 1–3 made *worker* failures survivable; this module makes the
**supervisor** itself crash-consistent.  Every state transition the
campaign engine makes — campaign start, attempt start/end, checkpoint
flush, summary flush, interruption, recovery — is appended to
``<run_dir>/journal.wal`` *before* the engine acts on it, with an
fsync per record, so a ``kill -9`` of ``python -m repro.experiments``
at any instruction leaves a journal from which the exact campaign
state can be reconstructed.

**Record framing.**  One record per line::

    WAL1 <crc32:08x> <canonical-json>\\n

The CRC32 covers the JSON bytes.  A record is accepted only when the
magic, CRC, and JSON decode all agree; anything else is either a
*torn tail* (damage at the very end of the file — the only damage a
single-writer append-fsync discipline can produce on crash) or
*corruption* (damage anywhere earlier, which the discipline cannot
produce and which therefore indicts the storage).  Replay truncates a
torn tail; corruption is surfaced, never silently skipped.

**Record contents.**  Every record carries ``seq`` (per-journal,
strictly increasing), ``token`` (the supervisor's fencing token, see
:mod:`repro.runtime.lease`), ``t_wall``, and ``type``; records about an
attempt also carry ``attempt_uid`` — ``"<experiment_id>@<token>.<attempt>"``
— which is unique across supervisor generations because every
restart bumps the token.

**Recovery.**  :func:`recover` replays the journal against the
checkpoint store and ``events.jsonl`` and classifies every experiment:

- ``committed`` — the journal records a successful ``attempt-end`` (or
  the crash landed in the tiny window after the checkpoint rename but
  before the journal append — detected by a valid checkpoint plus a
  corroborating ``checkpointed`` event) **and** the checkpoint on disk
  verifies.  Resume skips these; re-executing one would be the
  double-execution the acceptance gate forbids.
- ``in_doubt`` — an ``attempt-start`` with no ``attempt-end``: the
  supervisor died mid-attempt.  The attempt may have done arbitrary
  partial work but committed nothing; resume re-runs it under a new
  fencing token (a new ``attempt_uid``).
- ``lost`` — the journal committed an attempt but the checkpoint is
  missing or fails its checksum (a disk fault ate it).  Resume re-runs
  the experiment and the loss is recorded rather than silently
  forgotten.

Recovery is idempotent: replaying an already-recovered journal
reclassifies identically, and tail truncation on an intact file is a
no-op.
"""

from __future__ import annotations

import json
import os
import time
import zlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional, Union

from repro.obs import metrics as obs_metrics
from repro.runtime.errors import JournalCorruptError
from repro.runtime.iofault import fsync_directory, io_fsync, io_write

#: Filename inside a campaign run directory.
JOURNAL_FILENAME = "journal.wal"

#: Line magic; bumped if the framing ever changes.
JOURNAL_MAGIC = "WAL1"

#: Record types the engine writes (validated by the journal schema).
#: ``cache-hit`` and the ``submission-*`` pair belong to
#: :mod:`repro.service` (``cache-hit`` marks an experiment committed
#: from the content-addressed cache instead of an attempt; the
#: ``submission-*`` pair frames the service-level WAL around each
#: accepted campaign submission).  ``shard-sealed`` and
#: ``sim-checkpoint`` belong to the streaming trace substrate
#: (:mod:`repro.mem.shards` / :mod:`repro.mem.streamsim`): one per
#: sealed trace shard (``shards.wal`` inside a ``.trd`` directory) and
#: one per simulator snapshot (``<key>.ckpt.wal``).  The ``dispatch-*``
#: family belongs to the multi-node dispatch fabric
#: (:mod:`repro.service.dispatch`): its assignment WAL
#: (``dispatch.wal``) records every assignment handed to a node
#: (``dispatch-assign``), re-dispatch after a node death or partition
#: (``dispatch-requeue``), hedged duplicates for stragglers
#: (``dispatch-hedge``), the single accepted result per attempt uid
#: (``dispatch-complete``), and every fenced-out late/stale result
#: (``dispatch-fenced``).
RECORD_TYPES = (
    "campaign-start",
    "attempt-start",
    "attempt-end",
    "checkpoint-flushed",
    "summary-flushed",
    "interrupted",
    "recovered",
    "cache-hit",
    "submission-accepted",
    "submission-done",
    "shard-sealed",
    "sim-checkpoint",
    "dispatch-assign",
    "dispatch-complete",
    "dispatch-requeue",
    "dispatch-hedge",
    "dispatch-fenced",
    "breaker-transition",
)

#: ``attempt-end`` statuses that commit an experiment.
COMMITTED_STATUSES = ("ok", "degraded")


def attempt_uid(experiment_id: str, token: int, attempt: int) -> str:
    """The globally unique id of one attempt execution.

    Unique across supervisor restarts because every restart bumps the
    fencing token; "exactly-once per attempt uid" is therefore a
    meaningful invariant even for experiments that were legitimately
    re-run after a crash.
    """
    return f"{experiment_id}@{token}.{attempt}"


def frame_record(record: Dict[str, object]) -> bytes:
    """Encode one record into its CRC-framed line."""
    payload = json.dumps(record, sort_keys=True, separators=(",", ":"))
    data = payload.encode("utf-8")
    return (
        f"{JOURNAL_MAGIC} {zlib.crc32(data):08x} ".encode("ascii")
        + data
        + b"\n"
    )


class Journal:
    """The append side: fsync-disciplined CRC-framed record writer.

    Args:
        path: The ``journal.wal`` file (parent created on first append).
        token: Fencing token stamped into every record (see
            :mod:`repro.runtime.lease`); mutable — a reclaim mid-test
            can bump it.
        fsync: fsync the journal fd after every record (the default;
            disable only in throughput tests).
        wall_clock: Injectable time source.
    """

    def __init__(
        self,
        path: Union[str, Path],
        token: int = 0,
        fsync: bool = True,
        wall_clock: Callable[[], float] = time.time,
    ) -> None:
        self.path = Path(path)
        self.token = token
        self.fsync = fsync
        self._wall_clock = wall_clock
        self._fd: Optional[int] = None
        self._seq = 0
        import threading

        self._lock = threading.Lock()

    def _ensure_open(self) -> int:
        if self._fd is None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            existed = self.path.exists()
            self._fd = os.open(
                self.path, os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644
            )
            if not existed:
                fsync_directory(self.path.parent, "journal")
            # Continue the sequence of whatever is already on disk so
            # appends after a resume stay strictly increasing.
            if existed and self._seq == 0:
                replay = read_journal(self.path)
                if replay.records:
                    self._seq = int(replay.records[-1].get("seq", 0))
        return self._fd

    def append(self, record_type: str, **fields: object) -> Dict[str, object]:
        """Append one record and (by default) fsync it to disk.

        Returns the record as written.  Raises ``OSError`` if the disk
        rejects the write — the caller decides whether that is fatal;
        the framing guarantees a failed append is at worst a torn tail.
        """
        if record_type not in RECORD_TYPES:
            raise ValueError(
                f"unknown journal record type {record_type!r}; "
                f"choices: {RECORD_TYPES}"
            )
        with self._lock:
            fd = self._ensure_open()
            self._seq += 1
            record: Dict[str, object] = {
                "seq": self._seq,
                "token": self.token,
                "t_wall": self._wall_clock(),
                "type": record_type,
            }
            for key, value in fields.items():
                if value is not None:
                    record[key] = value
            io_write(fd, frame_record(record), "journal")
            if self.fsync:
                with obs_metrics.timed("runtime.journal.fsync_seconds"):
                    io_fsync(fd, "journal")
            obs_metrics.inc("runtime.journal.appends")
            return record

    def close(self) -> None:
        with self._lock:
            if self._fd is not None:
                os.close(self._fd)
                self._fd = None

    def __enter__(self) -> "Journal":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


@dataclass
class JournalReplay:
    """The decoded contents of one journal file.

    Attributes:
        records: Every intact record, in file order.
        good_bytes: File offset just past the last intact record.
        torn_tail: True when bytes after ``good_bytes`` exist but do
            not frame a complete record (the expected crash signature).
        corrupt: ``(line_number, reason)`` for every damaged line that
            is *not* the tail — storage corruption, not a crash.
    """

    records: List[Dict[str, object]] = field(default_factory=list)
    good_bytes: int = 0
    torn_tail: bool = False
    corrupt: List[tuple] = field(default_factory=list)

    @property
    def last_token(self) -> int:
        """The highest fencing token recorded (0 for an empty journal)."""
        best = 0
        for record in self.records:
            token = record.get("token")
            if isinstance(token, int) and token > best:
                best = token
        return best


def _decode_line(line: bytes) -> Dict[str, object]:
    """Decode one framed line; raises ``ValueError`` on any defect."""
    if not line.endswith(b"\n"):
        raise ValueError("record has no terminating newline")
    body = line[:-1]
    parts = body.split(b" ", 2)
    if len(parts) != 3 or parts[0] != JOURNAL_MAGIC.encode("ascii"):
        raise ValueError("bad record framing (magic/field count)")
    try:
        stated_crc = int(parts[1], 16)
    except ValueError:
        raise ValueError(f"unparseable CRC field {parts[1]!r}")
    actual_crc = zlib.crc32(parts[2])
    if stated_crc != actual_crc:
        raise ValueError(
            f"CRC mismatch (stated {stated_crc:08x}, actual {actual_crc:08x})"
        )
    record = json.loads(parts[2].decode("utf-8"))
    if not isinstance(record, dict):
        raise ValueError("record payload is not a JSON object")
    return record


def read_journal(path: Union[str, Path]) -> JournalReplay:
    """Replay a journal file, tolerating (and locating) damage.

    Never raises on damaged content: a damaged final region is
    reported as ``torn_tail``; damage anywhere earlier is collected
    into ``corrupt``.  A missing file replays as empty.
    """
    path = Path(path)
    replay = JournalReplay()
    if not path.is_file():
        return replay
    data = path.read_bytes()
    offset = 0
    lineno = 0
    pending: List[tuple] = []  # damage seen since the last good record
    while offset < len(data):
        newline = data.find(b"\n", offset)
        if newline < 0:
            # Unterminated final line: the canonical torn tail.
            replay.torn_tail = True
            break
        lineno += 1
        line = data[offset : newline + 1]
        try:
            record = _decode_line(line)
        except (ValueError, json.JSONDecodeError) as exc:
            pending.append((lineno, str(exc)))
        else:
            # Damage *followed by* a good record cannot be a torn tail.
            replay.corrupt.extend(pending)
            pending = []
            replay.records.append(record)
            replay.good_bytes = newline + 1
        offset = newline + 1
    if pending:
        # Damaged-but-terminated lines at the very end: still the tail
        # (e.g. a short write that happened to include the newline).
        replay.torn_tail = True
    return replay


def truncate_torn_tail(path: Union[str, Path]) -> int:
    """Truncate a journal to its last intact record.

    Returns the number of bytes dropped (0 when the file is intact or
    missing).  Raises :class:`JournalCorruptError` when the journal has
    mid-file corruption — truncating would silently discard committed
    records, so that case must be surfaced to a human.
    """
    path = Path(path)
    replay = read_journal(path)
    if replay.corrupt:
        first = replay.corrupt[0]
        raise JournalCorruptError(
            f"journal {path} is corrupt before its tail "
            f"(first damage at line {first[0]}: {first[1]}); refusing to "
            "truncate through committed records"
        )
    if not path.is_file():
        return 0
    total = path.stat().st_size
    dropped = total - replay.good_bytes
    if dropped > 0:
        with open(path, "rb+") as handle:
            handle.truncate(replay.good_bytes)
            handle.flush()
            io_fsync(handle.fileno(), "journal")
    return dropped


@dataclass
class RecoveryReport:
    """What :func:`recover` concluded about a run directory.

    Attributes:
        committed: Experiment ids resume may safely skip.
        in_doubt: Ids whose last attempt started but never ended.
        lost: Ids the journal committed but whose checkpoint is gone.
        truncated_bytes: Torn-tail bytes dropped from the journal.
        torn_tail: Whether a torn tail was found (and truncated).
        last_token: Highest fencing token seen in the journal.
        notes: Human-readable reconciliation notes.
    """

    committed: List[str] = field(default_factory=list)
    in_doubt: List[str] = field(default_factory=list)
    lost: List[str] = field(default_factory=list)
    truncated_bytes: int = 0
    torn_tail: bool = False
    last_token: int = 0
    notes: List[str] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        """True when nothing was torn, lost, or in doubt."""
        return not (self.torn_tail or self.lost or self.in_doubt)

    def to_dict(self) -> Dict[str, object]:
        return {
            "committed": list(self.committed),
            "in_doubt": list(self.in_doubt),
            "lost": list(self.lost),
            "truncated_bytes": self.truncated_bytes,
            "torn_tail": self.torn_tail,
            "last_token": self.last_token,
            "notes": list(self.notes),
        }

    def render(self) -> str:
        lines = ["== journal recovery =="]
        lines.append(
            f"  committed: {len(self.committed)}, in-doubt: "
            f"{len(self.in_doubt)}, lost: {len(self.lost)}"
        )
        if self.torn_tail:
            lines.append(
                f"  torn tail truncated ({self.truncated_bytes} byte(s))"
            )
        for note in self.notes:
            lines.append(f"  note: {note}")
        return "\n".join(lines)


def recover(
    run_dir: Union[str, Path],
    journal_path: Optional[Union[str, Path]] = None,
) -> Optional[RecoveryReport]:
    """Reconcile the journal against the checkpoint store and event log.

    Returns None when the run directory has no journal (a pre-journal
    run dir, or a campaign that never started): the caller falls back
    to checkpoint-presence resume.  Raises
    :class:`JournalCorruptError` on mid-file journal corruption.
    """
    run_dir = Path(run_dir)
    journal_path = Path(journal_path or run_dir / JOURNAL_FILENAME)
    if not journal_path.is_file():
        return None

    from repro.runtime.checkpoint import CheckpointStore
    from repro.runtime.events import read_events

    report = RecoveryReport()
    report.truncated_bytes = truncate_torn_tail(journal_path)
    replay = read_journal(journal_path)
    report.torn_tail = report.truncated_bytes > 0
    report.last_token = replay.last_token

    store = CheckpointStore(run_dir)
    events = read_events(store.events_path)
    checkpointed_event_ids = {
        str(event.get("experiment_id"))
        for event in events
        if event.get("event") == "checkpointed"
        and event.get("status") in COMMITTED_STATUSES
    }

    # Last journal verdict per experiment id, in journal order.
    started: Dict[str, Dict[str, object]] = {}
    ended: Dict[str, str] = {}
    flushed: set = set()
    for record in replay.records:
        record_type = record.get("type")
        experiment_id = record.get("experiment_id")
        if not isinstance(experiment_id, str):
            continue
        if record_type == "attempt-start":
            started[experiment_id] = record
            ended.pop(experiment_id, None)
            flushed.discard(experiment_id)
        elif record_type == "attempt-end":
            started.pop(experiment_id, None)
            ended[experiment_id] = str(record.get("status", ""))
        elif record_type == "checkpoint-flushed" and (
            record.get("status") in COMMITTED_STATUSES
        ):
            flushed.add(experiment_id)

    seen: List[str] = []
    for experiment_id, status in ended.items():
        seen.append(experiment_id)
        if status not in COMMITTED_STATUSES:
            continue  # failed attempts never commit; resume re-runs them
        if store.has_result(experiment_id):
            report.committed.append(experiment_id)
        else:
            report.lost.append(experiment_id)
            report.notes.append(
                f"{experiment_id}: journal committed it but its checkpoint "
                "is missing or corrupt — re-running"
            )
    for experiment_id, record in started.items():
        seen.append(experiment_id)
        # The crash window between the checkpoint rename and the
        # journal's attempt-end append: the checkpoint is valid and
        # either the checkpoint-flushed journal record or the
        # ``checkpointed`` event corroborates that the flush completed.
        corroborated = (
            experiment_id in flushed or experiment_id in checkpointed_event_ids
        )
        if store.has_result(experiment_id) and corroborated:
            report.committed.append(experiment_id)
            report.notes.append(
                f"{experiment_id}: in-doubt in the journal but its "
                "checkpoint verifies and the event log corroborates — "
                "promoted to committed"
            )
        else:
            report.in_doubt.append(experiment_id)

    # Valid checkpoints the journal never mentions (an older campaign's
    # leftovers, or a journal that was recreated): trust the checksum,
    # but say so.
    for experiment_id in store.completed_ids():
        if experiment_id not in seen:
            report.committed.append(experiment_id)
            report.notes.append(
                f"{experiment_id}: valid checkpoint with no journal record "
                "(pre-journal run dir or recreated journal) — trusted on "
                "its checksum"
            )
    return report
