"""The fault-tolerant campaign engine.

Replaces the fragile "for experiment in list: run()" loop of
``python -m repro.experiments`` with a pipeline that survives partial
failure:

- **Isolation** — each experiment runs as its own unit of work; any
  exception is captured into a structured
  :class:`~repro.runtime.errors.ExperimentFailure` (classified via the
  taxonomy) and the campaign moves on to the next experiment.
- **Budgets** — every attempt runs under a wall-clock
  :class:`~repro.runtime.budget.Budget` installed as the ambient
  budget, which the simulation loops in :mod:`repro.mem` poll
  cooperatively; a hang surfaces as
  :class:`~repro.runtime.errors.BudgetExceeded`.
- **Retry with graceful degradation** — a failed or over-budget
  full-size experiment is retried after exponential backoff with its
  quick (reduced-scale) parameterization, and a success obtained that
  way is annotated as *degraded* rather than silently passed off as a
  full-quality result.
- **Checkpoint/resume** — finished results are persisted through a
  :class:`~repro.runtime.checkpoint.CheckpointStore` the moment they
  complete, and already-checkpointed experiments are skipped on
  resume.
- **Crash consistency** — when a :class:`~repro.runtime.journal.Journal`
  is attached, every state transition (attempt start/end, checkpoint
  flush, interruption) is journaled *write-ahead* with an fsync per
  record, and resume decisions come from the journal's recovery
  classification rather than bare checkpoint presence: the checkpoint
  store is a derived snapshot, the journal is the source of truth.
  Every record and worker attempt is stamped with the supervisor's
  fencing token (:mod:`repro.runtime.lease`), so a superseded
  supervisor generation cannot commit results.

Sleep and clock are injectable so the retry/backoff/deadline behaviour
is deterministic under test.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.experiments.runner import ExperimentResult
from repro.obs import metrics as obs_metrics
from repro.obs import timeline as obs_timeline
from repro.obs import tracing
from repro.runtime.budget import Budget, activate
from repro.runtime.checkpoint import CheckpointStore
from repro.runtime.errors import CheckpointWriteError, ExperimentFailure
from repro.runtime.events import EventLog
from repro.runtime.faults import FaultInjector
from repro.runtime.journal import Journal, RecoveryReport, attempt_uid

#: Outcome statuses.
STATUS_OK = "ok"
STATUS_DEGRADED = "degraded"
STATUS_FAILED = "failed"


class CampaignAborted(Exception):
    """Internal: a supervisor thread observed the engine's abort flag.

    Raised inside worker-pool threads after an interrupt so they
    unwind without recording half-finished outcomes; never escapes the
    pool."""


#: Signature of an attempt runner: ``(experiment_id, attempt, degraded,
#: kwargs, budget) -> (result, failure)`` with exactly one of the pair
#: non-None.  The in-process backend and the worker pool both implement
#: it, so the retry/degradation policy in :meth:`CampaignEngine.run_one`
#: is backend-agnostic.
AttemptRunner = Callable[
    [str, int, bool, Dict[str, object], Budget],
    Tuple[Optional[ExperimentResult], Optional[ExperimentFailure]],
]


@dataclass
class EngineConfig:
    """Campaign-wide policy knobs.

    Attributes:
        quick: Run every experiment at its quick parameterization from
            the start (results are *not* marked degraded: quick was
            asked for, not fallen back to).
        budget_seconds: Wall-clock allowance per attempt (None =
            unlimited), enforced cooperatively inside the attempt.
        max_attempts: Total attempts per experiment (first try
            included).
        backoff_base_seconds: Sleep before the first retry.
        backoff_factor: Multiplier applied per subsequent retry.
        jobs: Concurrent experiments on the worker-pool backend (each
            attempt in its own supervised subprocess); ``0`` selects
            the in-process serial backend (debugging, fault-injection
            tests, unshippable runners).
        validate: Run the invariant oracles
            (:func:`repro.validate.oracles.validate_result`) over every
            successful attempt's result.  A result that fails them is
            *rejected* — converted into a
            :class:`~repro.runtime.errors.ResultRejectedError` failure
            that feeds the normal retry-with-degradation policy — so a
            buggy instrument cannot checkpoint plausible-but-wrong
            numbers as a finished experiment.
        hard_timeout_seconds: Hard per-attempt wall-clock deadline
            enforced by the supervisor with SIGTERM→SIGKILL (worker
            backend only).  Defaults to ``2×budget_seconds + 30`` when
            a budget is set, else unbounded.
        max_rss_mb: Address-space rlimit per worker (MiB); an OOM then
            kills one worker, not the campaign (worker backend only).
        term_grace_seconds: Grace between SIGTERM and SIGKILL.
        sleep, clock: Injectable time sources (tests pass fakes).
    """

    quick: bool = False
    budget_seconds: Optional[float] = None
    max_attempts: int = 3
    backoff_base_seconds: float = 0.5
    backoff_factor: float = 2.0
    jobs: int = 1
    validate: bool = False
    hard_timeout_seconds: Optional[float] = None
    max_rss_mb: Optional[int] = None
    term_grace_seconds: float = 5.0
    sleep: Callable[[float], None] = time.sleep
    clock: Callable[[], float] = time.monotonic

    def __post_init__(self) -> None:
        if self.budget_seconds is not None and self.budget_seconds <= 0:
            raise ValueError(
                f"budget_seconds must be positive (got {self.budget_seconds})"
            )
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.backoff_base_seconds < 0:
            raise ValueError("backoff_base_seconds must be >= 0")
        if self.backoff_factor < 1:
            raise ValueError("backoff_factor must be >= 1")
        if self.jobs < 0:
            raise ValueError(f"jobs must be >= 0 (got {self.jobs})")
        if self.hard_timeout_seconds is not None and self.hard_timeout_seconds <= 0:
            raise ValueError(
                "hard_timeout_seconds must be positive "
                f"(got {self.hard_timeout_seconds})"
            )
        if self.max_rss_mb is not None and self.max_rss_mb <= 0:
            raise ValueError(f"max_rss_mb must be positive (got {self.max_rss_mb})")
        if self.term_grace_seconds < 0:
            raise ValueError("term_grace_seconds must be >= 0")

    def backoff_delay(self, retry_index: int) -> float:
        """Delay before the ``retry_index``-th retry (0-based)."""
        return self.backoff_base_seconds * self.backoff_factor**retry_index


@dataclass
class ExperimentOutcome:
    """Everything the campaign knows about one experiment.

    Attributes:
        experiment_id: The experiment.
        status: ``"ok"``, ``"degraded"``, or ``"failed"``.
        result: The :class:`ExperimentResult` (None when failed).
        failures: Captured failures, one per unsuccessful attempt.
        attempts: Attempts actually made.
        elapsed_seconds: Total wall-clock spent on the experiment.
        resumed: True when the outcome was loaded from a checkpoint
            instead of re-run.
    """

    experiment_id: str
    status: str
    result: Optional[ExperimentResult] = None
    failures: List[ExperimentFailure] = field(default_factory=list)
    attempts: int = 0
    elapsed_seconds: float = 0.0
    resumed: bool = False

    @property
    def succeeded(self) -> bool:
        return self.status in (STATUS_OK, STATUS_DEGRADED)

    def summary(self) -> str:
        extra = " (resumed)" if self.resumed else ""
        return (
            f"{self.experiment_id}: {self.status}{extra} "
            f"[{self.attempts} attempt(s), {self.elapsed_seconds:.1f}s, "
            f"{len(self.failures)} failure(s)]"
        )

    def to_dict(self) -> Dict[str, object]:
        return {
            "experiment_id": self.experiment_id,
            "status": self.status,
            "result": None if self.result is None else self.result.to_dict(),
            "failures": [f.to_dict() for f in self.failures],
            "attempts": self.attempts,
            "elapsed_seconds": self.elapsed_seconds,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "ExperimentOutcome":
        result = payload.get("result")
        return cls(
            experiment_id=str(payload["experiment_id"]),
            status=str(payload["status"]),
            result=None if result is None else ExperimentResult.from_dict(result),
            failures=[
                ExperimentFailure.from_dict(f)
                for f in payload.get("failures", [])
            ],
            attempts=int(payload.get("attempts", 0)),
            elapsed_seconds=float(payload.get("elapsed_seconds", 0.0)),
        )


@dataclass
class CampaignReport:
    """The aggregate outcome of one campaign run."""

    outcomes: List[ExperimentOutcome] = field(default_factory=list)

    @property
    def ok_ids(self) -> List[str]:
        return [o.experiment_id for o in self.outcomes if o.status == STATUS_OK]

    @property
    def degraded_ids(self) -> List[str]:
        return [
            o.experiment_id for o in self.outcomes if o.status == STATUS_DEGRADED
        ]

    @property
    def failed_ids(self) -> List[str]:
        return [o.experiment_id for o in self.outcomes if o.status == STATUS_FAILED]

    @property
    def succeeded(self) -> bool:
        """True when every experiment finished (possibly degraded)."""
        return not self.failed_ids

    def outcome(self, experiment_id: str) -> ExperimentOutcome:
        for outcome in self.outcomes:
            if outcome.experiment_id == experiment_id:
                return outcome
        raise KeyError(f"no outcome for experiment {experiment_id!r}")

    def render(self) -> str:
        """Human-readable campaign summary."""
        lines = ["== campaign summary =="]
        for outcome in self.outcomes:
            lines.append("  " + outcome.summary())
            for failure in outcome.failures:
                lines.append("    " + failure.summary())
        lines.append(
            f"  total: {len(self.ok_ids)} ok, {len(self.degraded_ids)} degraded,"
            f" {len(self.failed_ids)} failed"
        )
        return "\n".join(lines)


class CampaignEngine:
    """Run an experiment campaign with isolation, retry, and resume.

    Args:
        registry: experiment id -> ``(runner, kwargs)``.  ``runner`` is
            anything with a ``run(**kwargs) -> ExperimentResult``
            (the modules in :mod:`repro.experiments`), or a bare
            callable.
        quick_overrides: experiment id -> kwargs overriding the
            full-scale defaults for a reduced-size run; used both by
            ``--quick`` and as the degradation target after failures.
        config: Policy knobs (:class:`EngineConfig`).
        store: Optional checkpoint store enabling persist + resume.
        faults: Optional fault injector (tests of the engine itself).
        on_event: Optional callback ``(event, outcome_or_failure)``
            used by the CLI for progress lines; events are
            ``"start"``, ``"retry"``, ``"finish"``, ``"resume"``,
            ``"interrupted"``.
        event_log: Optional :class:`~repro.runtime.events.EventLog`
            receiving every engine/supervisor event as a JSONL line.
        journal: Optional write-ahead :class:`~repro.runtime.journal.Journal`.
            When present, every state transition is journaled (with an
            fsync) *before* the engine acts on it, and the commit point
            of an experiment becomes the journal's ``attempt-end``
            record rather than the checkpoint rename.
        recovery: Optional :class:`~repro.runtime.journal.RecoveryReport`
            from :func:`repro.runtime.journal.recover`.  When present,
            resume skips exactly the experiments recovery classified
            ``committed`` (in-doubt and lost ones re-run even if a
            checkpoint file exists); without it, resume falls back to
            checkpoint presence.
        pool_factory: Optional callable ``(engine) -> pool`` selecting
            the parallel backend; the returned pool must expose
            ``run(wanted, collected)`` like
            :class:`~repro.runtime.workers.WorkerPool`.  None (the
            default) selects the single-host worker pool; the
            multi-node dispatch fabric (:mod:`repro.service.dispatch`)
            installs itself through this seam so ``repro.runtime``
            never imports ``repro.service``.
    """

    def __init__(
        self,
        registry: Mapping[str, Tuple[object, Dict[str, object]]],
        quick_overrides: Optional[Mapping[str, Dict[str, object]]] = None,
        config: Optional[EngineConfig] = None,
        store: Optional[CheckpointStore] = None,
        faults: Optional[FaultInjector] = None,
        on_event: Optional[Callable[[str, object], None]] = None,
        event_log: Optional[EventLog] = None,
        journal: Optional[Journal] = None,
        recovery: Optional[RecoveryReport] = None,
        pool_factory: Optional[Callable[["CampaignEngine"], object]] = None,
    ) -> None:
        self.registry = dict(registry)
        self.quick_overrides = dict(quick_overrides or {})
        self.config = config or EngineConfig()
        self.store = store
        self.faults = faults
        self.on_event = on_event
        self.event_log = event_log
        self.journal = journal
        self.recovery = recovery
        self.pool_factory = pool_factory
        # The store and callbacks are shared by worker-pool supervisor
        # threads; serialize access so checkpoint flushes and progress
        # lines never interleave.
        self._store_lock = threading.RLock()
        self._emit_lock = threading.Lock()
        self._abort = threading.Event()
        # Per-attempt observability detail (worker RSS peak, span
        # counts), keyed by attempt_uid; folded into metrics.json.
        self._obs_lock = threading.Lock()
        self._obs_attempts: Dict[str, Dict[str, object]] = {}

    @property
    def fencing_token(self) -> int:
        """The supervisor generation stamped into journal records and
        worker attempts (0 when running without a journal/lease)."""
        return self.journal.token if self.journal is not None else 0

    def journal_append(self, record_type: str, **fields: object) -> None:
        """Write-ahead one state transition (no-op without a journal)."""
        if self.journal is not None:
            self.journal.append(record_type, **fields)

    # -- public API --------------------------------------------------

    def run(self, experiment_ids: Optional[Sequence[str]] = None) -> CampaignReport:
        """Run (or resume) the campaign over ``experiment_ids``.

        Unknown ids raise ``KeyError`` before anything runs; failures
        *during* experiments never escape — they are captured into the
        returned report.  ``config.jobs == 0`` runs everything serially
        in-process; otherwise up to ``jobs`` experiments run
        concurrently, each attempt hard-isolated in its own supervised
        subprocess (:mod:`repro.runtime.workers`).

        A ``KeyboardInterrupt`` (Ctrl-C, or SIGTERM on the worker-pool
        backend) is re-raised, but only after live workers are killed,
        every already-finished outcome is flushed, a partial summary is
        written to the store, and an ``interrupted`` event is emitted —
        so ``--resume`` always has a valid store to start from.
        """
        wanted = list(experiment_ids) if experiment_ids else list(self.registry)
        unknown = [i for i in wanted if i not in self.registry]
        if unknown:
            raise KeyError(
                f"unknown experiments: {unknown}; choices: {list(self.registry)}"
            )
        if self.store is not None:
            manifest = {
                "experiments": wanted,
                "quick": self.config.quick,
                "budget_seconds": self.config.budget_seconds,
                "max_attempts": self.config.max_attempts,
                "jobs": self.config.jobs,
                "validate": self.config.validate,
                "hard_timeout_seconds": self.config.hard_timeout_seconds,
                "max_rss_mb": self.config.max_rss_mb,
            }
            self._store_write_with_retry(
                lambda: self.store.write_manifest(manifest), "manifest"
            )
        self.journal_append(
            "campaign-start",
            experiments=wanted,
            quick=self.config.quick,
            jobs=self.config.jobs,
        )
        self._abort.clear()
        collected: List[ExperimentOutcome] = []
        try:
            with tracing.span(
                "campaign.run",
                experiments=len(wanted),
                jobs=self.config.jobs,
                quick=self.config.quick,
            ):
                if self.config.jobs == 0:
                    for experiment_id in wanted:
                        collected.append(self.run_one(experiment_id))
                elif self.pool_factory is not None:
                    self.pool_factory(self).run(wanted, collected)
                else:
                    from repro.runtime.workers import WorkerPool

                    WorkerPool(self, jobs=self.config.jobs).run(wanted, collected)
        except KeyboardInterrupt:
            self._finalize_interrupt(collected, wanted)
            raise
        report = CampaignReport(outcomes=collected)
        self._write_summary("complete", collected, wanted)
        self._write_obs_snapshot()
        return report

    def run_one(
        self,
        experiment_id: str,
        attempt_runner: Optional[AttemptRunner] = None,
    ) -> ExperimentOutcome:
        """Run one experiment through the full recovery policy.

        ``attempt_runner`` executes a single attempt and is the backend
        seam: None selects the in-process executor; the worker pool
        passes its subprocess executor.
        """
        with self._store_lock:
            if self.store is not None and self._resume_skips(experiment_id):
                outcome = self.store.load_outcome(experiment_id)
                outcome.resumed = True
                obs_metrics.inc("engine.resumed")
                self._emit("resume", outcome, experiment_id=experiment_id)
                return outcome

        run_attempt = attempt_runner or self._attempt_in_process
        _, base_kwargs = self.registry[experiment_id]
        config = self.config
        started = config.clock()
        failures: List[ExperimentFailure] = []
        outcome: Optional[ExperimentOutcome] = None

        final_attempt = 0
        for attempt in range(1, config.max_attempts + 1):
            self._check_abort()
            # First attempt runs full-scale (unless the whole campaign
            # is quick); retries degrade to the quick parameterization.
            degraded = attempt > 1 and not config.quick
            kwargs = dict(base_kwargs)
            if config.quick or degraded:
                kwargs.update(self.quick_overrides.get(experiment_id, {}))
            uid = attempt_uid(experiment_id, self.fencing_token, attempt)
            self.journal_append(
                "attempt-start",
                experiment_id=experiment_id,
                attempt=attempt,
                attempt_uid=uid,
                degraded=degraded,
            )
            self._emit(
                "retry" if attempt > 1 else "start",
                experiment_id,
                experiment_id=experiment_id,
                attempt=attempt,
                attempt_uid=uid,
                degraded=degraded,
            )
            budget = Budget(config.budget_seconds, clock=config.clock)
            obs_metrics.inc("engine.attempts")
            if attempt > 1:
                obs_metrics.inc("engine.retries")
            # Timeline rows written by an in-process attempt carry the
            # attempt identity; isolated workers stamp their own labels
            # from the spec (runner.worker_main).
            obs_timeline.set_labels(
                experiment_id=experiment_id, attempt_uid=uid
            )
            try:
                with tracing.span(
                    "engine.attempt",
                    experiment_id=experiment_id,
                    attempt=attempt,
                    attempt_uid=uid,
                    degraded=degraded,
                ):
                    result, failure = run_attempt(
                        experiment_id, attempt, degraded, kwargs, budget
                    )
                    self._drain_kernel_events(experiment_id)
                    if failure is None and config.validate:
                        failure = self._validate_attempt(
                            experiment_id, result, attempt, degraded
                        )
                        if failure is not None:
                            result = None
            finally:
                obs_timeline.clear_labels()
            self._note_attempt_obs(uid)
            if failure is not None:
                obs_metrics.inc(f"engine.failures.{failure.category}")
                failures.append(failure)
                # A failed attempt commits nothing; its attempt-end can
                # be journaled immediately.
                self.journal_append(
                    "attempt-end",
                    experiment_id=experiment_id,
                    attempt=attempt,
                    attempt_uid=uid,
                    status=STATUS_FAILED,
                    category=failure.category,
                )
                self.log_event(
                    "attempt-end",
                    experiment_id,
                    attempt=attempt,
                    attempt_uid=uid,
                    status=STATUS_FAILED,
                )
                self._check_abort()
                if attempt < config.max_attempts:
                    self._backoff_sleep(config.backoff_delay(attempt - 1))
                continue
            if degraded:
                result.notes.append(
                    f"DEGRADED result: full-scale run failed "
                    f"({failures[-1].category}); reran with quick "
                    f"parameterization on attempt {attempt}"
                )
            outcome = ExperimentOutcome(
                experiment_id=experiment_id,
                status=STATUS_DEGRADED if degraded else STATUS_OK,
                result=result,
                failures=failures,
                attempts=attempt,
                elapsed_seconds=config.clock() - started,
            )
            final_attempt = attempt
            break

        if outcome is None:
            outcome = ExperimentOutcome(
                experiment_id=experiment_id,
                status=STATUS_FAILED,
                result=None,
                failures=failures,
                attempts=config.max_attempts,
                elapsed_seconds=config.clock() - started,
            )

        if self.store is not None:
            path = self._flush_outcome(outcome)
            # Commit protocol: checkpoint rename -> journal
            # checkpoint-flushed -> event -> journal attempt-end.  A
            # crash in any gap is recoverable: before the flush record
            # the attempt is in-doubt (re-run); after it, recovery
            # promotes the valid checkpoint to committed; the
            # attempt-end record is the commit point proper.
            self.journal_append(
                "checkpoint-flushed",
                experiment_id=experiment_id,
                status=outcome.status,
                path=str(path.name),
            )
            self.log_event(
                "checkpointed",
                experiment_id,
                status=outcome.status,
                path=str(path),
            )
        if outcome.succeeded:
            # The successful attempt's end is journaled only now, after
            # the checkpoint flush — it is the commit record.
            uid = attempt_uid(experiment_id, self.fencing_token, final_attempt)
            self.journal_append(
                "attempt-end",
                experiment_id=experiment_id,
                attempt=final_attempt,
                attempt_uid=uid,
                status=outcome.status,
            )
            self.log_event(
                "attempt-end",
                experiment_id,
                attempt=final_attempt,
                attempt_uid=uid,
                status=outcome.status,
            )
        if outcome.status == STATUS_DEGRADED:
            self.log_event(
                "degraded",
                experiment_id,
                attempts=outcome.attempts,
                last_failure=failures[-1].category if failures else None,
            )
        obs_metrics.inc(f"engine.outcomes.{outcome.status}")
        obs_metrics.observe(
            "engine.experiment_seconds",
            outcome.elapsed_seconds,
            buckets=obs_metrics.LATENCY_BUCKETS_S,
        )
        self._write_obs_snapshot()
        self._emit(
            "finish",
            outcome,
            experiment_id=experiment_id,
            status=outcome.status,
            attempts=outcome.attempts,
        )
        return outcome

    def _resume_skips(self, experiment_id: str) -> bool:
        """Should resume skip ``experiment_id`` as already committed?

        With a recovery report (journal-backed resume) the journal's
        classification is authoritative: only ``committed`` experiments
        are skipped — an in-doubt or lost experiment re-runs even when
        a checkpoint file happens to exist.  Without one (legacy run
        dirs), checkpoint presence decides, as before.
        """
        if self.store is None:
            return False
        if self.recovery is not None:
            return (
                experiment_id in self.recovery.committed
                and self.store.has_result(experiment_id)
            )
        return self.store.has_result(experiment_id)

    def _store_write_with_retry(
        self,
        write: Callable[[], object],
        what: str,
        experiment_id: Optional[str] = None,
    ):
        """Run one store write with bounded retry on transient I/O faults.

        A transient ``ENOSPC``/``EIO`` (disk momentarily full, NFS
        hiccup) gets two retries after backoff; a persistent one
        becomes a typed
        :class:`~repro.runtime.errors.CheckpointWriteError`.  Every
        store write — manifest, outcome checkpoint, summary — goes
        through here, so no single hiccup at the checkpoint site can
        abort a campaign.
        """
        last_error: Optional[OSError] = None
        for flush_try in range(3):
            if flush_try:
                try:
                    self._backoff_sleep(
                        self.config.backoff_delay(flush_try - 1)
                    )
                except CampaignAborted:
                    pass  # the interrupt path still gets its retries
            try:
                return write()
            except OSError as exc:
                last_error = exc
                self.log_event(
                    "checkpoint-retry",
                    experiment_id,
                    target=what,
                    attempt=flush_try + 1,
                    error=str(exc),
                )
        raise CheckpointWriteError(
            f"cannot write {what} after 3 tries: {last_error}"
        ) from last_error

    def _flush_outcome(self, outcome: "ExperimentOutcome"):
        """Persist ``outcome`` with bounded retry on transient I/O faults.

        On persistent failure the journal has no ``attempt-end`` yet,
        so a resumed campaign re-runs the experiment instead of
        trusting a checkpoint that never hit the disk.
        """

        def write():
            with self._store_lock:
                if outcome.succeeded:
                    return self.store.save_outcome(outcome)
                return self.store.save_failure(outcome)

        return self._store_write_with_retry(
            write,
            f"checkpoint for {outcome.experiment_id!r}",
            outcome.experiment_id,
        )

    def _validate_attempt(
        self,
        experiment_id: str,
        result: ExperimentResult,
        attempt: int,
        degraded: bool,
    ) -> Optional[ExperimentFailure]:
        """Run the invariant oracles over a successful attempt's result.

        Returns None when the result passes; otherwise an
        :class:`ExperimentFailure` wrapping a
        :class:`~repro.runtime.errors.ResultRejectedError`, so the
        retry/degradation policy treats a rejected result exactly like
        a crashed attempt.
        """
        from repro.runtime.errors import ResultRejectedError
        from repro.validate.oracles import validate_result

        report = validate_result(result)
        self.log_event(
            "validated",
            experiment_id,
            attempt=attempt,
            checks=report.checks_run,
            errors=len(report.errors),
            warnings=len(report.warnings),
            codes=report.codes() or None,
        )
        if report.ok:
            return None
        try:
            report.raise_if_failed(ResultRejectedError)
        except ResultRejectedError as exc:
            return ExperimentFailure.from_exception(
                experiment_id, exc, attempt=attempt, degraded=degraded
            )
        return None  # pragma: no cover - raise_if_failed always raises here

    # -- interruption ------------------------------------------------

    def abort(self) -> None:
        """Ask every in-flight supervisor thread to stand down."""
        self._abort.set()

    @property
    def aborted(self) -> bool:
        return self._abort.is_set()

    def _check_abort(self) -> None:
        if self._abort.is_set():
            raise CampaignAborted()

    def _backoff_sleep(self, delay: float) -> None:
        """Backoff that an interrupt can cut short.

        Injected fake sleeps (tests) are called as-is; the real sleep
        waits on the abort flag so Ctrl-C does not stall on a pending
        retry's backoff.
        """
        if self.config.sleep is not time.sleep:
            self.config.sleep(delay)
            self._check_abort()
            return
        if self._abort.wait(timeout=delay):
            raise CampaignAborted()

    def _finalize_interrupt(
        self, collected: List[ExperimentOutcome], wanted: Sequence[str]
    ) -> None:
        """Flush what finished and mark the run interrupted (satellite
        of the hard-isolation work: never lose completed outcomes to a
        Ctrl-C)."""
        try:
            self.journal_append(
                "interrupted",
                completed=len(collected),
                requested=len(wanted),
            )
        except OSError:
            pass  # a dying disk must not mask the interrupt itself
        self._write_summary("interrupted", collected, wanted)
        partial = CampaignReport(outcomes=list(collected))
        self._emit(
            "interrupted",
            partial,
            completed=len(collected),
            requested=len(wanted),
        )

    def _write_summary(
        self,
        status: str,
        collected: List[ExperimentOutcome],
        wanted: Sequence[str],
    ) -> None:
        if self.store is None:
            return

        def write():
            with self._store_lock:
                self.store.write_summary(
                    {
                        "status": status,
                        "requested": list(wanted),
                        "completed": [o.experiment_id for o in collected],
                        "statuses": {
                            o.experiment_id: o.status for o in collected
                        },
                    }
                )

        self._store_write_with_retry(write, "summary")
        self.journal_append("summary-flushed", status=status)

    # -- internals ---------------------------------------------------

    def _attempt_in_process(
        self,
        experiment_id: str,
        attempt: int,
        degraded: bool,
        kwargs: Dict[str, object],
        budget: Budget,
    ) -> Tuple[Optional[ExperimentResult], Optional[ExperimentFailure]]:
        """The in-process attempt executor (``jobs == 0``)."""
        runner, _ = self.registry[experiment_id]
        config = self.config
        attempt_started = config.clock()
        try:
            with activate(budget):
                if self.faults is not None:
                    self.faults.before_attempt(experiment_id, attempt, budget)
                result = self._invoke(runner, kwargs)
        except BaseException as exc:  # noqa: BLE001 — isolation is the point
            if isinstance(exc, (KeyboardInterrupt, SystemExit, CampaignAborted)):
                raise
            return None, ExperimentFailure.from_exception(
                experiment_id,
                exc,
                attempt=attempt,
                degraded=degraded,
                elapsed_seconds=config.clock() - attempt_started,
            )
        return result, None

    @staticmethod
    def _invoke(runner: object, kwargs: Dict[str, object]) -> ExperimentResult:
        run = getattr(runner, "run", runner)
        result = run(**kwargs)
        if not isinstance(result, ExperimentResult):
            raise TypeError(
                f"experiment runner {runner!r} returned {type(result).__name__},"
                " expected ExperimentResult"
            )
        return result

    # -- observability ------------------------------------------------

    def _drain_kernel_events(self, experiment_id: str) -> None:
        """Log any kernel divergence/fallback records from this process.

        In-process attempts leave their records in the kernels module;
        worker attempts ship theirs through the payload ``obs`` block
        (see :meth:`record_worker_obs`).
        """
        try:
            from repro.mem.kernels import drain_kernel_events
        except ImportError:  # pragma: no cover - numpy-less install
            return
        for event in drain_kernel_events():
            self.log_event("kernel-fallback", experiment_id, **event)

    def record_worker_obs(self, spec, obs: Dict[str, object]) -> None:
        """Fold one worker's shipped telemetry into the campaign rollup.

        Called by the worker supervisor (from its pool thread, inside
        the attempt span) with the ``obs`` block of a worker payload:
        worker-process metrics merge into the campaign registry, worker
        spans are re-emitted into the campaign span log under the
        current attempt span, and the RSS peak is kept per attempt_uid
        for ``metrics.json``.
        """
        uid = attempt_uid(spec.experiment_id, spec.fencing_token, spec.attempt)
        entry: Dict[str, object] = {}
        rss = obs.get("rss_peak_kb")
        if isinstance(rss, (int, float)):
            entry["rss_peak_kb"] = int(rss)
            obs_metrics.set_gauge("worker.last_rss_peak_kb", int(rss))
        metrics_snap = obs.get("metrics")
        if isinstance(metrics_snap, dict) and obs_metrics.obs_enabled():
            try:
                obs_metrics.get_registry().merge_snapshot(metrics_snap)
                entry["metrics_merged"] = True
            except (ValueError, TypeError, KeyError):
                entry["metrics_merged"] = False
        kernel_events = obs.get("kernel_events")
        if isinstance(kernel_events, list):
            for event in kernel_events:
                if isinstance(event, dict):
                    self.log_event(
                        "kernel-fallback",
                        spec.experiment_id,
                        **{str(k): v for k, v in event.items()},
                    )
        spans = obs.get("spans")
        if isinstance(spans, list) and spans:
            tracer = tracing.get_tracer()
            if tracer is not None:
                entry["spans"] = tracer.ingest(
                    spans, parent_id=tracer.current_span_id()
                )
        with self._obs_lock:
            self._obs_attempts.setdefault(uid, {}).update(entry)

    def _note_attempt_obs(self, uid: str) -> None:
        """Ensure every attempt has a metrics.json entry (in-process
        attempts have no worker to ship one)."""
        if not obs_metrics.obs_enabled():
            return
        with self._obs_lock:
            entry = self._obs_attempts.setdefault(uid, {})
            if "rss_peak_kb" not in entry:
                try:
                    import resource

                    entry["rss_peak_kb"] = int(
                        resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
                    )
                except (ImportError, OSError):  # pragma: no cover - platform
                    pass
        self._write_obs_snapshot()

    def _write_obs_snapshot(self) -> None:
        """Atomically refresh ``<run_dir>/metrics.json``.

        Best-effort telemetry: an unwritable snapshot is logged, never
        fatal — observability must not be able to fail a campaign.
        """
        if self.store is None or not obs_metrics.obs_enabled():
            return
        from repro.obs.metrics import METRICS_FORMAT
        from repro.runtime.iofault import atomic_write_text

        tracer = tracing.get_tracer()
        with self._obs_lock:
            snapshot = {
                "format": METRICS_FORMAT,
                "written_wall": time.time(),
                "trace_id": tracer.trace_id if tracer is not None else None,
                "campaign": obs_metrics.get_registry().snapshot(),
                "attempts": {
                    uid: dict(entry)
                    for uid, entry in sorted(self._obs_attempts.items())
                },
            }
        import json as _json

        try:
            atomic_write_text(
                self.store.run_dir / obs_metrics.METRICS_FILENAME,
                _json.dumps(snapshot, indent=1, sort_keys=True),
                site="metrics",
                durable=False,
            )
        except OSError as exc:
            self.log_event("obs-snapshot-failed", error=str(exc))

    def log_event(
        self, event: str, experiment_id: Optional[str] = None, **detail: object
    ) -> None:
        """Append to the JSONL event log (no-op without one)."""
        if self.event_log is not None:
            self.event_log.emit(event, experiment_id=experiment_id, **detail)

    def _emit(
        self,
        event: str,
        payload: object,
        experiment_id: Optional[str] = None,
        **detail: object,
    ) -> None:
        self.log_event(event, experiment_id=experiment_id, **detail)
        if self.on_event is not None:
            with self._emit_lock:
                self.on_event(event, payload)
