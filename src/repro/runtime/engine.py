"""The fault-tolerant campaign engine.

Replaces the fragile "for experiment in list: run()" loop of
``python -m repro.experiments`` with a pipeline that survives partial
failure:

- **Isolation** — each experiment runs as its own unit of work; any
  exception is captured into a structured
  :class:`~repro.runtime.errors.ExperimentFailure` (classified via the
  taxonomy) and the campaign moves on to the next experiment.
- **Budgets** — every attempt runs under a wall-clock
  :class:`~repro.runtime.budget.Budget` installed as the ambient
  budget, which the simulation loops in :mod:`repro.mem` poll
  cooperatively; a hang surfaces as
  :class:`~repro.runtime.errors.BudgetExceeded`.
- **Retry with graceful degradation** — a failed or over-budget
  full-size experiment is retried after exponential backoff with its
  quick (reduced-scale) parameterization, and a success obtained that
  way is annotated as *degraded* rather than silently passed off as a
  full-quality result.
- **Checkpoint/resume** — finished results are persisted through a
  :class:`~repro.runtime.checkpoint.CheckpointStore` the moment they
  complete, and already-checkpointed experiments are skipped on
  resume.

Sleep and clock are injectable so the retry/backoff/deadline behaviour
is deterministic under test.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.experiments.runner import ExperimentResult
from repro.runtime.budget import Budget, activate
from repro.runtime.checkpoint import CheckpointStore
from repro.runtime.errors import ExperimentFailure
from repro.runtime.faults import FaultInjector

#: Outcome statuses.
STATUS_OK = "ok"
STATUS_DEGRADED = "degraded"
STATUS_FAILED = "failed"


@dataclass
class EngineConfig:
    """Campaign-wide policy knobs.

    Attributes:
        quick: Run every experiment at its quick parameterization from
            the start (results are *not* marked degraded: quick was
            asked for, not fallen back to).
        budget_seconds: Wall-clock allowance per attempt (None =
            unlimited).
        max_attempts: Total attempts per experiment (first try
            included).
        backoff_base_seconds: Sleep before the first retry.
        backoff_factor: Multiplier applied per subsequent retry.
        sleep, clock: Injectable time sources (tests pass fakes).
    """

    quick: bool = False
    budget_seconds: Optional[float] = None
    max_attempts: int = 3
    backoff_base_seconds: float = 0.5
    backoff_factor: float = 2.0
    sleep: Callable[[float], None] = time.sleep
    clock: Callable[[], float] = time.monotonic

    def __post_init__(self) -> None:
        if self.budget_seconds is not None and self.budget_seconds <= 0:
            raise ValueError(
                f"budget_seconds must be positive (got {self.budget_seconds})"
            )
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.backoff_base_seconds < 0:
            raise ValueError("backoff_base_seconds must be >= 0")
        if self.backoff_factor < 1:
            raise ValueError("backoff_factor must be >= 1")

    def backoff_delay(self, retry_index: int) -> float:
        """Delay before the ``retry_index``-th retry (0-based)."""
        return self.backoff_base_seconds * self.backoff_factor**retry_index


@dataclass
class ExperimentOutcome:
    """Everything the campaign knows about one experiment.

    Attributes:
        experiment_id: The experiment.
        status: ``"ok"``, ``"degraded"``, or ``"failed"``.
        result: The :class:`ExperimentResult` (None when failed).
        failures: Captured failures, one per unsuccessful attempt.
        attempts: Attempts actually made.
        elapsed_seconds: Total wall-clock spent on the experiment.
        resumed: True when the outcome was loaded from a checkpoint
            instead of re-run.
    """

    experiment_id: str
    status: str
    result: Optional[ExperimentResult] = None
    failures: List[ExperimentFailure] = field(default_factory=list)
    attempts: int = 0
    elapsed_seconds: float = 0.0
    resumed: bool = False

    @property
    def succeeded(self) -> bool:
        return self.status in (STATUS_OK, STATUS_DEGRADED)

    def summary(self) -> str:
        extra = " (resumed)" if self.resumed else ""
        return (
            f"{self.experiment_id}: {self.status}{extra} "
            f"[{self.attempts} attempt(s), {self.elapsed_seconds:.1f}s, "
            f"{len(self.failures)} failure(s)]"
        )

    def to_dict(self) -> Dict[str, object]:
        return {
            "experiment_id": self.experiment_id,
            "status": self.status,
            "result": None if self.result is None else self.result.to_dict(),
            "failures": [f.to_dict() for f in self.failures],
            "attempts": self.attempts,
            "elapsed_seconds": self.elapsed_seconds,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "ExperimentOutcome":
        result = payload.get("result")
        return cls(
            experiment_id=str(payload["experiment_id"]),
            status=str(payload["status"]),
            result=None if result is None else ExperimentResult.from_dict(result),
            failures=[
                ExperimentFailure.from_dict(f)
                for f in payload.get("failures", [])
            ],
            attempts=int(payload.get("attempts", 0)),
            elapsed_seconds=float(payload.get("elapsed_seconds", 0.0)),
        )


@dataclass
class CampaignReport:
    """The aggregate outcome of one campaign run."""

    outcomes: List[ExperimentOutcome] = field(default_factory=list)

    @property
    def ok_ids(self) -> List[str]:
        return [o.experiment_id for o in self.outcomes if o.status == STATUS_OK]

    @property
    def degraded_ids(self) -> List[str]:
        return [
            o.experiment_id for o in self.outcomes if o.status == STATUS_DEGRADED
        ]

    @property
    def failed_ids(self) -> List[str]:
        return [o.experiment_id for o in self.outcomes if o.status == STATUS_FAILED]

    @property
    def succeeded(self) -> bool:
        """True when every experiment finished (possibly degraded)."""
        return not self.failed_ids

    def outcome(self, experiment_id: str) -> ExperimentOutcome:
        for outcome in self.outcomes:
            if outcome.experiment_id == experiment_id:
                return outcome
        raise KeyError(f"no outcome for experiment {experiment_id!r}")

    def render(self) -> str:
        """Human-readable campaign summary."""
        lines = ["== campaign summary =="]
        for outcome in self.outcomes:
            lines.append("  " + outcome.summary())
            for failure in outcome.failures:
                lines.append("    " + failure.summary())
        lines.append(
            f"  total: {len(self.ok_ids)} ok, {len(self.degraded_ids)} degraded,"
            f" {len(self.failed_ids)} failed"
        )
        return "\n".join(lines)


class CampaignEngine:
    """Run an experiment campaign with isolation, retry, and resume.

    Args:
        registry: experiment id -> ``(runner, kwargs)``.  ``runner`` is
            anything with a ``run(**kwargs) -> ExperimentResult``
            (the modules in :mod:`repro.experiments`), or a bare
            callable.
        quick_overrides: experiment id -> kwargs overriding the
            full-scale defaults for a reduced-size run; used both by
            ``--quick`` and as the degradation target after failures.
        config: Policy knobs (:class:`EngineConfig`).
        store: Optional checkpoint store enabling persist + resume.
        faults: Optional fault injector (tests of the engine itself).
        on_event: Optional callback ``(event, outcome_or_failure)``
            used by the CLI for progress lines; events are
            ``"start"``, ``"retry"``, ``"finish"``, ``"resume"``.
    """

    def __init__(
        self,
        registry: Mapping[str, Tuple[object, Dict[str, object]]],
        quick_overrides: Optional[Mapping[str, Dict[str, object]]] = None,
        config: Optional[EngineConfig] = None,
        store: Optional[CheckpointStore] = None,
        faults: Optional[FaultInjector] = None,
        on_event: Optional[Callable[[str, object], None]] = None,
    ) -> None:
        self.registry = dict(registry)
        self.quick_overrides = dict(quick_overrides or {})
        self.config = config or EngineConfig()
        self.store = store
        self.faults = faults
        self.on_event = on_event

    # -- public API --------------------------------------------------

    def run(self, experiment_ids: Optional[Sequence[str]] = None) -> CampaignReport:
        """Run (or resume) the campaign over ``experiment_ids``.

        Unknown ids raise ``KeyError`` before anything runs; failures
        *during* experiments never escape — they are captured into the
        returned report.
        """
        wanted = list(experiment_ids) if experiment_ids else list(self.registry)
        unknown = [i for i in wanted if i not in self.registry]
        if unknown:
            raise KeyError(
                f"unknown experiments: {unknown}; choices: {list(self.registry)}"
            )
        if self.store is not None:
            self.store.write_manifest(
                {
                    "experiments": wanted,
                    "quick": self.config.quick,
                    "budget_seconds": self.config.budget_seconds,
                    "max_attempts": self.config.max_attempts,
                }
            )
        report = CampaignReport()
        for experiment_id in wanted:
            report.outcomes.append(self.run_one(experiment_id))
        return report

    def run_one(self, experiment_id: str) -> ExperimentOutcome:
        """Run one experiment through the full recovery policy."""
        if self.store is not None and self.store.has_result(experiment_id):
            outcome = self.store.load_outcome(experiment_id)
            outcome.resumed = True
            self._emit("resume", outcome)
            return outcome

        runner, base_kwargs = self.registry[experiment_id]
        config = self.config
        started = config.clock()
        failures: List[ExperimentFailure] = []
        outcome: Optional[ExperimentOutcome] = None

        for attempt in range(1, config.max_attempts + 1):
            # First attempt runs full-scale (unless the whole campaign
            # is quick); retries degrade to the quick parameterization.
            degraded = attempt > 1 and not config.quick
            kwargs = dict(base_kwargs)
            if config.quick or degraded:
                kwargs.update(self.quick_overrides.get(experiment_id, {}))
            self._emit("retry" if attempt > 1 else "start", experiment_id)
            attempt_started = config.clock()
            budget = Budget(config.budget_seconds, clock=config.clock)
            try:
                with activate(budget):
                    if self.faults is not None:
                        self.faults.before_attempt(experiment_id, attempt, budget)
                    result = self._invoke(runner, kwargs)
            except BaseException as exc:  # noqa: BLE001 — isolation is the point
                if isinstance(exc, (KeyboardInterrupt, SystemExit)):
                    raise
                failure = ExperimentFailure.from_exception(
                    experiment_id,
                    exc,
                    attempt=attempt,
                    degraded=degraded,
                    elapsed_seconds=config.clock() - attempt_started,
                )
                failures.append(failure)
                if attempt < config.max_attempts:
                    config.sleep(config.backoff_delay(attempt - 1))
                continue
            if degraded:
                result.notes.append(
                    f"DEGRADED result: full-scale run failed "
                    f"({failures[-1].category}); reran with quick "
                    f"parameterization on attempt {attempt}"
                )
            outcome = ExperimentOutcome(
                experiment_id=experiment_id,
                status=STATUS_DEGRADED if degraded else STATUS_OK,
                result=result,
                failures=failures,
                attempts=attempt,
                elapsed_seconds=config.clock() - started,
            )
            break

        if outcome is None:
            outcome = ExperimentOutcome(
                experiment_id=experiment_id,
                status=STATUS_FAILED,
                result=None,
                failures=failures,
                attempts=config.max_attempts,
                elapsed_seconds=config.clock() - started,
            )

        if self.store is not None:
            if outcome.succeeded:
                self.store.save_outcome(outcome)
            else:
                self.store.save_failure(outcome)
        self._emit("finish", outcome)
        return outcome

    # -- internals ---------------------------------------------------

    @staticmethod
    def _invoke(runner: object, kwargs: Dict[str, object]) -> ExperimentResult:
        run = getattr(runner, "run", runner)
        result = run(**kwargs)
        if not isinstance(result, ExperimentResult):
            raise TypeError(
                f"experiment runner {runner!r} returned {type(result).__name__},"
                " expected ExperimentResult"
            )
        return result

    def _emit(self, event: str, payload: object) -> None:
        if self.on_event is not None:
            self.on_event(event, payload)
