"""Supervisor lease with heartbeat and monotonic fencing token.

A campaign run directory must have at most one live supervisor.  Two
failure modes make that hard:

- a supervisor is SIGKILLed and a replacement must be able to take
  over *without* human cleanup, and
- a second supervisor is started by mistake while the first is alive,
  and must be refused before it can interleave writes.

``<run_dir>/supervisor.lease`` arbitrates both.  The file (written
atomically through :func:`repro.runtime.iofault.atomic_write_text`)
holds the owner's PID, a **fencing token**, and a heartbeat timestamp
refreshed by a daemon thread.  :meth:`Lease.acquire` refuses a *live*
lease with a typed :class:`~repro.runtime.errors.LeaseHeldError`; it
reclaims a *stale* one (owner PID dead, or heartbeat older than the
TTL — a hung-but-alive owner is presumed dead once it stops
heartbeating) and bumps the token.

The token is the fencing mechanism of classic lease protocols: it
only ever increases (each acquire takes ``max(lease, journal) + 1``,
so even a deleted lease file cannot rewind it — the journal remembers).
Every journal record and every worker attempt is stamped with the
issuing supervisor's token, and a payload carrying an older token than
the current one is rejected
(:class:`~repro.runtime.errors.FencingViolationError`) instead of being
committed — a worker orphaned by a dead supervisor generation cannot
smuggle results past its successor.
"""

from __future__ import annotations

import json
import os
import socket
import threading
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Dict, Optional, Union

from repro.obs import metrics as obs_metrics
from repro.runtime.errors import LeaseHeldError
from repro.runtime.iofault import atomic_write_text

#: Filename inside a campaign run directory.
LEASE_FILENAME = "supervisor.lease"

#: Default staleness threshold; a holder that has not heartbeat for
#: this long is presumed dead even if its PID is still occupied.
DEFAULT_TTL_SECONDS = 30.0


@dataclass
class LeaseState:
    """The decoded contents of a lease file."""

    pid: int
    token: int
    acquired_wall: float
    heartbeat_wall: float
    hostname: str = ""

    def to_json(self) -> str:
        return json.dumps(
            {
                "pid": self.pid,
                "token": self.token,
                "acquired_wall": self.acquired_wall,
                "heartbeat_wall": self.heartbeat_wall,
                "hostname": self.hostname,
            },
            sort_keys=True,
        )

    @classmethod
    def from_json(cls, text: str) -> "LeaseState":
        payload = json.loads(text)
        return cls(
            pid=int(payload["pid"]),
            token=int(payload["token"]),
            acquired_wall=float(payload["acquired_wall"]),
            heartbeat_wall=float(payload["heartbeat_wall"]),
            hostname=str(payload.get("hostname", "")),
        )


def read_lease(path: Union[str, Path]) -> Optional[LeaseState]:
    """Read a lease file; None when absent or undecodable.

    An undecodable lease (torn write from a crashed owner on a
    filesystem without atomic rename) is treated as absent — the
    journal still floors the token, so no fencing is lost.
    """
    path = Path(path)
    try:
        return LeaseState.from_json(path.read_text(encoding="utf-8"))
    except (OSError, ValueError, KeyError, TypeError):
        return None


def pid_alive(pid: int) -> bool:
    """Whether ``pid`` currently names a process we could signal."""
    if pid <= 0:
        return False
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:  # someone else's live process
        return True
    except OSError:  # pragma: no cover - exotic platforms
        return False
    return True


def lease_is_stale(
    state: LeaseState,
    ttl_seconds: float = DEFAULT_TTL_SECONDS,
    now: Optional[float] = None,
) -> bool:
    """Whether a lease may be reclaimed.

    Stale when the holder PID is dead, or when its heartbeat is older
    than the TTL (covers both a hung supervisor and PID reuse after a
    reboot).  A heartbeat from the *future* (clock step) is treated as
    fresh — refusing is the safe direction.

    A TTL-only verdict (live PID, old-looking heartbeat) compares the
    *owner's* wall clock against the *reader's*: a reader whose clock
    runs more than one TTL ahead sees every live lease as stale.  This
    function is therefore only a snapshot; before acting on a TTL-only
    verdict, :meth:`Lease.acquire` additionally dwells on its own
    monotonic clock and re-reads, so heartbeat *progress* (which no
    wall-clock skew can forge or hide) gets the final say.
    """
    if not pid_alive(state.pid):
        return True
    now = time.time() if now is None else now
    return (now - state.heartbeat_wall) > ttl_seconds


class Lease:
    """An acquired supervisor lease (see module docstring).

    Construct via :meth:`acquire`; release with :meth:`release` (also a
    context manager).  While held, call :meth:`start_heartbeat` (or
    :meth:`heartbeat` manually) so concurrent supervisors keep being
    refused.
    """

    def __init__(
        self,
        path: Path,
        state: LeaseState,
        ttl_seconds: float,
        wall_clock: Callable[[], float],
    ) -> None:
        self.path = path
        self.state = state
        self.ttl_seconds = ttl_seconds
        self._wall_clock = wall_clock
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None

    @property
    def token(self) -> int:
        return self.state.token

    @classmethod
    def acquire(
        cls,
        run_dir: Union[str, Path],
        ttl_seconds: float = DEFAULT_TTL_SECONDS,
        token_floor: int = 0,
        wall_clock: Callable[[], float] = time.time,
        monotonic_clock: Callable[[], float] = time.monotonic,
        sleep: Callable[[float], None] = time.sleep,
    ) -> "Lease":
        """Acquire (or reclaim) the lease for ``run_dir``.

        Args:
            run_dir: The campaign run directory.
            ttl_seconds: Staleness threshold for reclaiming.
            token_floor: Minimum previous token (pass the journal's
                last recorded token so a deleted lease file cannot
                rewind the fencing sequence).
            wall_clock: Injectable time source.
            monotonic_clock: Injectable monotonic source, used (with
                ``sleep``) for the skew-proof dwell before a TTL-only
                reclaim.
            sleep: Injectable sleep, paired with ``monotonic_clock``.

        Raises:
            LeaseHeldError: A live supervisor holds the lease.
        """
        if ttl_seconds <= 0:
            raise ValueError(f"ttl_seconds must be positive (got {ttl_seconds})")
        run_dir = Path(run_dir)
        path = run_dir / LEASE_FILENAME
        now = wall_clock()
        previous = read_lease(path)
        previous_token = token_floor
        if previous is not None:
            if not lease_is_stale(previous, ttl_seconds, now=now):
                raise LeaseHeldError(
                    f"run directory {run_dir} is owned by a live supervisor "
                    f"(pid {previous.pid}, token {previous.token}, heartbeat "
                    f"{now - previous.heartbeat_wall:.1f}s ago); refusing to "
                    "run two supervisors against one run directory"
                )
            if pid_alive(previous.pid):
                # TTL-only staleness with a live PID: either a hung
                # owner, or *our* wall clock running more than one TTL
                # ahead of a perfectly healthy one.  The wall clocks
                # cannot arbitrate that — heartbeat progress can.  A
                # live owner refreshes every ttl/3 seconds, so dwell
                # ttl/2 on our own monotonic clock and re-read: any
                # change to the lease proves a live writer and we
                # refuse; a byte-identical lease after a full dwell is
                # a genuinely silent owner and may be reclaimed.
                dwell = ttl_seconds / 2.0
                deadline = monotonic_clock() + dwell
                while monotonic_clock() < deadline:
                    sleep(min(1.0, dwell))
                current = read_lease(path)
                if current is not None and (
                    current.pid != previous.pid
                    or current.token != previous.token
                    or current.heartbeat_wall != previous.heartbeat_wall
                    or current.acquired_wall != previous.acquired_wall
                ):
                    raise LeaseHeldError(
                        f"run directory {run_dir} looked stale by wall-clock "
                        f"TTL but its lease advanced during a "
                        f"{dwell:.1f}s monotonic dwell (pid {current.pid}, "
                        f"token {current.token}) — the owner is alive and "
                        "the staleness verdict was clock skew; refusing"
                    )
                now = wall_clock()
            previous_token = max(previous_token, previous.token)
        state = LeaseState(
            pid=os.getpid(),
            token=previous_token + 1,
            acquired_wall=now,
            heartbeat_wall=now,
            hostname=socket.gethostname(),
        )
        run_dir.mkdir(parents=True, exist_ok=True)
        atomic_write_text(path, state.to_json(), site="lease")
        return cls(path, state, ttl_seconds, wall_clock)

    # -- heartbeat ---------------------------------------------------

    def heartbeat(self) -> None:
        """Refresh the heartbeat timestamp on disk.

        Durability is deliberately skipped (``durable=False``): losing
        a heartbeat to power loss only makes the lease look *staler*,
        which fails safe, and fsyncing twice a TTL forever is real I/O.
        """
        self.state.heartbeat_wall = self._wall_clock()
        with obs_metrics.timed("runtime.lease.heartbeat_seconds"):
            atomic_write_text(
                self.path, self.state.to_json(), site="lease", durable=False
            )
        obs_metrics.inc("runtime.lease.heartbeats")

    def start_heartbeat(self, interval_seconds: Optional[float] = None) -> None:
        """Refresh the heartbeat from a daemon thread until release."""
        if self._thread is not None:
            return
        interval = (
            max(0.5, self.ttl_seconds / 3.0)
            if interval_seconds is None
            else interval_seconds
        )

        def _beat() -> None:
            while not self._stop.wait(interval):
                try:
                    self.heartbeat()
                except OSError:  # disk trouble: the TTL decides our fate
                    pass

        self._thread = threading.Thread(
            target=_beat, name="lease-heartbeat", daemon=True
        )
        self._thread.start()

    # -- release -----------------------------------------------------

    def release(self) -> None:
        """Stop heartbeating and remove the lease file (if still ours).

        A lease that was reclaimed out from under us (token on disk
        newer than ours) is left alone — deleting the new owner's file
        would be the exact bug fencing exists to prevent.
        """
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None
        on_disk = read_lease(self.path)
        if on_disk is not None and (
            on_disk.pid == self.state.pid and on_disk.token == self.state.token
        ):
            try:
                os.unlink(self.path)
            except OSError:
                pass

    def __enter__(self) -> "Lease":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.release()

    def describe(self) -> Dict[str, object]:
        return {
            "pid": self.state.pid,
            "token": self.state.token,
            "ttl_seconds": self.ttl_seconds,
        }
