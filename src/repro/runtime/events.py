"""Structured JSONL event log for campaign post-mortems.

A failed or interrupted campaign must be reconstructible without
scraping stdout.  :class:`EventLog` appends one JSON object per engine
event to ``events.jsonl`` inside the run directory:

```
{"seq": 3, "t_mono": 1.042, "t_wall": 1754450000.1,
 "event": "worker-killed", "experiment_id": "fig6",
 "attempt": 1, "signal": "SIGKILL"}
```

- ``seq`` is a strictly increasing sequence number, so interleavings
  from the parallel supervisor threads have a total order even when
  timestamps tie.
- ``t_mono`` is a monotonic timestamp relative to the log's creation
  (safe for measuring intervals); ``t_wall`` is Unix time (for
  correlating with the outside world).
- Everything else is the event name plus free-form detail fields.

Writes are line-buffered, flushed per event, and serialized by a lock,
so the log is safe to write from the worker-pool supervisor threads
and each line is intact even if the supervisor itself is killed
mid-campaign (the torn line, if any, is the last one — readers skip
undecodable lines).
"""

from __future__ import annotations

import json
import threading
import time
from pathlib import Path
from typing import Callable, Dict, List, Optional, Union

#: Default filename inside a campaign run directory.
EVENTS_FILENAME = "events.jsonl"


class EventLog:
    """Append-only JSONL log of engine events.

    Args:
        path: Destination file; parent directories are created.
        clock: Monotonic time source (injectable for tests).
        wall_clock: Wall time source (injectable for tests).
    """

    def __init__(
        self,
        path: Union[str, Path],
        clock: Callable[[], float] = time.monotonic,
        wall_clock: Callable[[], float] = time.time,
    ) -> None:
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._clock = clock
        self._wall_clock = wall_clock
        self._origin = clock()
        self._seq = 0
        self._lock = threading.Lock()
        self._handle = open(self.path, "a", encoding="utf-8")

    def emit(
        self, event: str, experiment_id: Optional[str] = None, **detail: object
    ) -> Dict[str, object]:
        """Append one event line; returns the record that was written."""
        with self._lock:
            self._seq += 1
            record: Dict[str, object] = {
                "seq": self._seq,
                "t_mono": self._clock() - self._origin,
                "t_wall": self._wall_clock(),
                "event": event,
            }
            if experiment_id is not None:
                record["experiment_id"] = experiment_id
            for key, value in detail.items():
                if value is not None:
                    record[key] = value
            self._handle.write(json.dumps(record, sort_keys=True) + "\n")
            self._handle.flush()
            return record

    def close(self) -> None:
        with self._lock:
            if not self._handle.closed:
                self._handle.close()

    def __enter__(self) -> "EventLog":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


def read_events(path: Union[str, Path]) -> List[Dict[str, object]]:
    """Parse an events file, skipping any torn trailing line."""
    events: List[Dict[str, object]] = []
    path = Path(path)
    if not path.is_file():
        return events
    for line in path.read_text(encoding="utf-8").splitlines():
        line = line.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError:
            continue
        if isinstance(record, dict):
            events.append(record)
    return events
