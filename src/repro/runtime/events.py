"""Structured JSONL event log for campaign post-mortems.

A failed or interrupted campaign must be reconstructible without
scraping stdout.  :class:`EventLog` appends one JSON object per engine
event to ``events.jsonl`` inside the run directory:

```
{"seq": 3, "t_mono": 1.042, "t_wall": 1754450000.1,
 "event": "worker-killed", "experiment_id": "fig6",
 "attempt": 1, "signal": "SIGKILL"}
```

- ``seq`` is a strictly increasing sequence number, so interleavings
  from the parallel supervisor threads have a total order even when
  timestamps tie.
- ``t_mono`` is a monotonic timestamp relative to the log's creation
  (safe for measuring intervals); ``t_wall`` is Unix time (for
  correlating with the outside world).
- Everything else is the event name plus free-form detail fields.

Each event line is written with a single ``write`` syscall (through
the fault-injectable shim in :mod:`repro.runtime.iofault`, site
``"events"``) and serialized by a lock, so the log is safe to write
from the worker-pool supervisor threads and each line is intact even
if the supervisor itself is SIGKILLed mid-campaign (the torn line, if
any, is the last one — readers skip undecodable lines).  Pass
``fsync=True`` for power-loss durability per event; the default relies
on the kernel having the bytes, which kill semantics preserve.
"""

from __future__ import annotations

import json
import os
import threading
import time
from pathlib import Path
from typing import Callable, Dict, List, Optional, Union

from repro.runtime.iofault import io_fsync, io_write

#: Default filename inside a campaign run directory.
EVENTS_FILENAME = "events.jsonl"


def _prepare_for_append(path: Path) -> int:
    """Make an existing log safe to append to after a crash.

    Truncates torn trailing lines (unterminated, or terminated but
    undecodable — a short write that happened to include a newline) and
    returns the last surviving record's ``seq`` (0 for a fresh or empty
    log).  Damage *before* intact lines is left alone: the strict
    validator reports it as storage corruption, and rewriting history
    is not this writer's job.
    """
    if not path.is_file():
        return 0
    data = path.read_bytes()
    end = len(data)
    last_seq = 0
    # Walk backwards over whole lines, dropping the damaged tail.
    while end > 0:
        start = data.rfind(b"\n", 0, end - 1) + 1
        line = data[start:end]
        record: Optional[Dict[str, object]] = None
        if line.endswith(b"\n"):
            try:
                decoded = json.loads(line.decode("utf-8"))
                if isinstance(decoded, dict):
                    record = decoded
            except (json.JSONDecodeError, UnicodeDecodeError):
                record = None
        if record is not None:
            seq = record.get("seq")
            if isinstance(seq, int):
                last_seq = seq
            break
        end = start
    if end < len(data):
        with open(path, "rb+") as handle:
            handle.truncate(end)
            handle.flush()
            os.fsync(handle.fileno())
    return last_seq


class EventLog:
    """Append-only JSONL log of engine events.

    Args:
        path: Destination file; parent directories are created.
        clock: Monotonic time source (injectable for tests).
        wall_clock: Wall time source (injectable for tests).
        fsync: fsync after every event (power-loss durability; off by
            default — process-kill durability needs only the write).
    """

    def __init__(
        self,
        path: Union[str, Path],
        clock: Callable[[], float] = time.monotonic,
        wall_clock: Callable[[], float] = time.time,
        fsync: bool = False,
    ) -> None:
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._clock = clock
        self._wall_clock = wall_clock
        self._origin = clock()
        # Resume discipline: drop any torn tail the previous (killed)
        # writer left — appending after one would weld two lines into
        # mid-file garbage — and continue its sequence so ``seq`` stays
        # strictly increasing across supervisor generations.
        self._seq = _prepare_for_append(self.path)
        self._fsync = fsync
        self._lock = threading.Lock()
        self._fd: Optional[int] = os.open(
            self.path, os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644
        )

    def emit(
        self, event: str, experiment_id: Optional[str] = None, **detail: object
    ) -> Dict[str, object]:
        """Append one event line; returns the record that was written."""
        with self._lock:
            self._seq += 1
            record: Dict[str, object] = {
                "seq": self._seq,
                "t_mono": self._clock() - self._origin,
                "t_wall": self._wall_clock(),
                "event": event,
            }
            if experiment_id is not None:
                record["experiment_id"] = experiment_id
            for key, value in detail.items():
                if value is not None:
                    record[key] = value
            if self._fd is not None:
                line = json.dumps(record, sort_keys=True) + "\n"
                io_write(self._fd, line.encode("utf-8"), "events")
                if self._fsync:
                    io_fsync(self._fd, "events")
            return record

    def close(self) -> None:
        with self._lock:
            if self._fd is not None:
                os.close(self._fd)
                self._fd = None

    def __enter__(self) -> "EventLog":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


def read_events(path: Union[str, Path]) -> List[Dict[str, object]]:
    """Parse an events file, skipping any torn trailing line."""
    events: List[Dict[str, object]] = []
    path = Path(path)
    if not path.is_file():
        return events
    for line in path.read_text(encoding="utf-8", errors="replace").splitlines():
        line = line.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError:
            continue
        if isinstance(record, dict):
            events.append(record)
    return events
