"""Cooperative wall-clock budgets for trace-driven experiments.

A :class:`Budget` bounds how long one experiment may run.  Because the
simulation loops are pure Python (no signals, no threads), enforcement
is *cooperative*: the engine installs the budget as the ambient budget
(:func:`activate`), and the hot loops in :mod:`repro.mem` poll it every
few thousand iterations via :func:`check_active_budget`, raising
:class:`~repro.runtime.errors.BudgetExceeded` once the deadline passes.
A hang (or a full-size experiment that is simply too large for its
budget) therefore surfaces as an ordinary, catchable exception, which
the engine converts into a degraded retry.

The clock is injectable so tests can drive deadlines deterministically
without sleeping.
"""

from __future__ import annotations

import contextlib
import time
from typing import Callable, Iterator, Optional

from repro.runtime.errors import BudgetExceeded

#: How many loop iterations the simulation loops run between deadline
#: polls.  Must be a power of two (the loops test ``i & MASK == 0``).
CHECK_INTERVAL = 8192

#: Bitmask form of :data:`CHECK_INTERVAL` for the hot loops.
CHECK_MASK = CHECK_INTERVAL - 1


class Budget:
    """A wall-clock allowance for one unit of work.

    Args:
        seconds: Allowance in seconds; ``None`` means unlimited (checks
            never raise).
        clock: Monotonic time source (injectable for tests).
    """

    def __init__(
        self,
        seconds: Optional[float] = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if seconds is not None and seconds <= 0:
            raise ValueError(f"budget seconds must be positive (got {seconds})")
        self.seconds = seconds
        self._clock = clock
        self._started = clock()

    @classmethod
    def unlimited(cls) -> "Budget":
        return cls(None)

    @property
    def started(self) -> float:
        return self._started

    def restart(self) -> None:
        """Reset the deadline to ``seconds`` from now."""
        self._started = self._clock()

    def elapsed(self) -> float:
        return self._clock() - self._started

    def remaining(self) -> Optional[float]:
        """Seconds left, or ``None`` when unlimited."""
        if self.seconds is None:
            return None
        return self.seconds - self.elapsed()

    def exceeded(self) -> bool:
        remaining = self.remaining()
        return remaining is not None and remaining <= 0

    def check(self, context: str = "") -> None:
        """Raise :class:`BudgetExceeded` if the deadline has passed."""
        if self.exceeded():
            where = f" in {context}" if context else ""
            raise BudgetExceeded(
                f"wall-clock budget of {self.seconds:.3g}s exceeded"
                f"{where} (elapsed {self.elapsed():.3g}s)"
            )

    def __repr__(self) -> str:
        limit = "unlimited" if self.seconds is None else f"{self.seconds:.3g}s"
        return f"Budget({limit}, elapsed={self.elapsed():.3g}s)"


#: The ambient budget consulted by the simulation loops.  A plain
#: module-level slot (not a contextvar): the campaign engine is
#: single-threaded by design, and the loops must read it cheaply.
_active: Optional[Budget] = None


def active_budget() -> Optional[Budget]:
    """The currently installed budget, or ``None``."""
    return _active


@contextlib.contextmanager
def activate(budget: Optional[Budget]) -> Iterator[Optional[Budget]]:
    """Install ``budget`` as the ambient budget for the dynamic extent.

    Nests: the previous ambient budget is restored on exit.
    """
    global _active
    previous = _active
    _active = budget
    try:
        yield budget
    finally:
        _active = previous


def check_active_budget(context: str = "") -> None:
    """Poll the ambient budget (no-op when none is installed)."""
    if _active is not None:
        _active.check(context)
