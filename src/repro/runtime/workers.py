"""Hard process isolation: the supervised worker-pool backend.

The cooperative :class:`~repro.runtime.budget.Budget` can only stop
code that polls it.  A hang in un-instrumented code (a numpy kernel,
an octree build, a trace generator stuck in pure Python), a memory
blowup, or a hard crash takes the whole campaign down with it.  This
module contains those failures *outside* the failing code: every
experiment attempt runs in its own spawned subprocess, and the
supervisor enforces what the child cannot be trusted to enforce on
itself:

- **Hard deadlines** — a worker that outlives its hard wall-clock
  deadline is sent SIGTERM, given a grace period, then SIGKILLed.
  The attempt is classified as
  :class:`~repro.runtime.errors.WorkerTimeoutError`.
- **Memory guards** — the worker applies
  ``resource.setrlimit(RLIMIT_AS)`` to itself before running, so an
  allocation blowup raises ``MemoryError`` inside (classified
  :class:`~repro.runtime.errors.WorkerMemoryError`) or kills that one
  process — never the campaign.
- **Death classification** — a worker that exits nonzero, dies on a
  signal, or returns an unusable payload becomes a structured
  :class:`~repro.runtime.errors.WorkerCrashError` failure feeding the
  engine's ordinary retry/degradation policy.
- **Parallelism** — up to ``jobs`` experiments run concurrently, each
  driven by a supervisor thread that blocks on its worker subprocess;
  the final report and summary are ordered by the requested id list
  regardless of completion order.
- **Graceful interruption** — SIGINT/SIGTERM in the supervisor kills
  live workers (TERM, grace, KILL), flushes completed outcomes and the
  partial summary through the engine, and re-raises so the CLI exits
  with the documented contract; ``--resume`` then skips everything
  checkpointed.

The wire protocol is deliberately dumb: the supervisor writes one JSON
:class:`AttemptSpec` to the worker's stdin; the worker
(:func:`repro.experiments.runner.worker_main`) replies with one JSON
payload on stdout — ``{"ok": true, "result": ...}`` (an
:class:`~repro.experiments.runner.ExperimentResult` round-trip) or
``{"ok": false, "failure": ...}`` (a pre-classified
:class:`~repro.runtime.errors.ExperimentFailure`).  A malformed or
truncated payload is a *classified failure*, never a supervisor crash.
Experiment runners are shipped by importable reference
(``module`` or ``module:qualname``), so only registry entries that
resolve back to themselves are eligible — checked up front by
:func:`runner_ref`.
"""

from __future__ import annotations

import contextlib
import json
import os
import signal
import subprocess
import sys
import threading
from concurrent.futures import FIRST_COMPLETED, ThreadPoolExecutor, wait
from dataclasses import dataclass, field
from importlib import import_module
from typing import Callable, Dict, Iterator, List, Optional, Sequence, Tuple

from repro.experiments.runner import ExperimentResult
from repro.obs import metrics as obs_metrics
from repro.obs import tracing
from repro.runtime.errors import (
    ExperimentFailure,
    FencingViolationError,
    WorkerCrashError,
    WorkerTimeoutError,
)
from repro.runtime.iofault import IOFAULT_ENV

#: Module invoked as the worker entry point (``python -m ...``).
WORKER_MODULE = "repro.experiments.runner"

#: How much of a dead worker's stderr is kept for forensics.
STDERR_TAIL_CHARS = 2000


# -- runner references ----------------------------------------------------


def runner_ref(runner: object) -> str:
    """An importable reference to ``runner`` (``module`` or
    ``module:qualname``).

    The reference is resolved back immediately and must return the
    *same object*, guaranteeing the worker process will rebuild exactly
    what the supervisor registered.  Instances (which carry state a
    fresh process cannot see) are rejected with ``TypeError``.
    """
    name = getattr(runner, "__name__", None)
    if name is not None and getattr(runner, "__spec__", None) is not None:
        ref = name  # a module
    else:
        module = getattr(runner, "__module__", None)
        qualname = getattr(runner, "__qualname__", None)
        if not module or not qualname or "<locals>" in qualname:
            raise TypeError(
                f"experiment runner {runner!r} is not shippable to a worker "
                "process: it must be a module, or a module-level "
                "function/class (use jobs=0 for in-process runners)"
            )
        ref = f"{module}:{qualname}"
    if resolve_runner_ref(ref) is not runner:
        raise TypeError(
            f"experiment runner {runner!r} is not shippable to a worker "
            f"process: reference {ref!r} does not resolve back to it "
            "(use jobs=0 for in-process runners)"
        )
    return ref


def resolve_runner_ref(ref: str) -> object:
    """Import the object named by a :func:`runner_ref` reference."""
    module_name, _, qualname = ref.partition(":")
    obj: object = import_module(module_name)
    if qualname:
        for part in qualname.split("."):
            obj = getattr(obj, part)
    return obj


# -- the wire protocol ----------------------------------------------------


@dataclass
class AttemptSpec:
    """Everything a worker needs to run one experiment attempt.

    JSON-serialized onto the worker's stdin.  ``kwargs`` must be
    JSON-representable (tuples arrive as lists — the experiment
    drivers take ``Sequence`` parameters).
    """

    experiment_id: str
    runner: str
    kwargs: Dict[str, object] = field(default_factory=dict)
    attempt: int = 1
    degraded: bool = False
    budget_seconds: Optional[float] = None
    max_rss_mb: Optional[int] = None
    fault: Optional[Dict[str, object]] = None
    workspace: Optional[str] = None
    fencing_token: int = 0
    obs: bool = False
    trace_id: Optional[str] = None
    parent_span_id: Optional[str] = None

    def to_json(self) -> str:
        return json.dumps(
            {
                "experiment_id": self.experiment_id,
                "runner": self.runner,
                "kwargs": self.kwargs,
                "attempt": self.attempt,
                "degraded": self.degraded,
                "budget_seconds": self.budget_seconds,
                "max_rss_mb": self.max_rss_mb,
                "fault": self.fault,
                "workspace": self.workspace,
                "fencing_token": self.fencing_token,
                "obs": self.obs,
                "trace_id": self.trace_id,
                "parent_span_id": self.parent_span_id,
            }
        )

    @classmethod
    def from_json(cls, text: str) -> "AttemptSpec":
        payload = json.loads(text)
        return cls(
            experiment_id=str(payload["experiment_id"]),
            runner=str(payload["runner"]),
            kwargs=dict(payload.get("kwargs") or {}),
            attempt=int(payload.get("attempt", 1)),
            degraded=bool(payload.get("degraded", False)),
            budget_seconds=payload.get("budget_seconds"),
            max_rss_mb=payload.get("max_rss_mb"),
            fault=payload.get("fault"),
            workspace=payload.get("workspace"),
            fencing_token=int(payload.get("fencing_token", 0)),
            obs=bool(payload.get("obs", False)),
            trace_id=payload.get("trace_id"),
            parent_span_id=payload.get("parent_span_id"),
        )


def apply_address_space_limit(max_rss_mb: Optional[int]) -> bool:
    """Apply ``RLIMIT_AS`` to the *current* process (worker side).

    Returns True when a limit was installed.  Platforms without
    ``resource`` (or refusing the call) degrade to no limit — the
    supervisor's hard deadline still bounds the worker.
    """
    if max_rss_mb is None:
        return False
    try:
        import resource
    except ImportError:  # pragma: no cover - non-POSIX platforms
        return False
    limit = int(max_rss_mb) * 1024 * 1024
    try:
        resource.setrlimit(resource.RLIMIT_AS, (limit, limit))
    except (ValueError, OSError):  # pragma: no cover - platform quirks
        return False
    return True


def parse_worker_payload(
    spec: AttemptSpec,
    stdout: str,
    stderr_tail: str = "",
    expected_token: Optional[int] = None,
    obs_sink: Optional[Callable[[Dict[str, object]], None]] = None,
) -> Tuple[Optional[ExperimentResult], Optional[ExperimentFailure]]:
    """Decode a worker's stdout into ``(result, failure)``.

    Any malformed, truncated, or wrongly-shaped payload becomes a
    classified :class:`WorkerCrashError` failure — the supervisor never
    crashes on what a dying worker managed to write.

    When ``expected_token`` is given, the payload's echoed fencing
    token must match it: a payload stamped with an older token comes
    from a worker spawned by a superseded supervisor generation (see
    :mod:`repro.runtime.lease`) and is rejected as a
    :class:`~repro.runtime.errors.FencingViolationError` failure rather
    than committed.  A payload with no token field counts as token 0,
    so any fenced supervisor (token >= 1) rejects it too.

    ``obs_sink`` receives the payload's optional ``obs`` block (worker
    metrics snapshot, buffered spans, RSS peak) once the payload passes
    the fencing check — telemetry from a fenced-out worker generation
    is dropped with its result.
    """
    try:
        payload = json.loads(stdout)
        if not isinstance(payload, dict):
            raise ValueError(f"payload is {type(payload).__name__}, not object")
        if expected_token is not None:
            stated = int(payload.get("token", 0))
            if stated != expected_token:
                return None, _worker_failure(
                    spec,
                    FencingViolationError,
                    f"worker for {spec.experiment_id} returned a payload "
                    f"stamped with fencing token {stated}, but the current "
                    f"supervisor generation is {expected_token}; the result "
                    "is from a superseded supervisor and was rejected",
                    stderr_tail,
                )
        obs = payload.get("obs")
        if obs_sink is not None and isinstance(obs, dict):
            obs_sink(obs)
        if payload.get("ok"):
            return ExperimentResult.from_dict(payload["result"]), None
        return None, ExperimentFailure.from_dict(payload["failure"])
    except Exception as exc:  # noqa: BLE001 — classification is the point
        excerpt = stdout.strip()[:200] or "<empty>"
        return None, _worker_failure(
            spec,
            WorkerCrashError,
            f"worker for {spec.experiment_id} exited cleanly but returned an "
            f"unusable result payload ({type(exc).__name__}: {exc}; "
            f"payload excerpt: {excerpt!r})",
            stderr_tail,
        )


def _worker_failure(
    spec: AttemptSpec,
    error_class: type,
    message: str,
    stderr_tail: str = "",
    elapsed_seconds: float = 0.0,
) -> ExperimentFailure:
    """A supervisor-side failure record for a dead/killed worker."""
    forensics = ""
    if stderr_tail.strip():
        forensics = f"worker stderr (tail):\n{stderr_tail.strip()}\n"
    return ExperimentFailure(
        experiment_id=spec.experiment_id,
        attempt=spec.attempt,
        category=error_class.category,
        error_type=error_class.__name__,
        message=message,
        traceback_text=forensics,
        degraded=spec.degraded,
        elapsed_seconds=elapsed_seconds,
    )


def _signal_name(signum: int) -> str:
    try:
        return signal.Signals(signum).name
    except ValueError:
        return f"signal {signum}"


def worker_environment() -> Dict[str, str]:
    """Environment for worker processes.

    Propagates the supervisor's full ``sys.path`` through
    ``PYTHONPATH`` so the worker resolves the exact same packages
    (including test-only registries), however the supervisor itself was
    launched.

    ``REPRO_IOFAULT`` is deliberately stripped: injected I/O faults
    (:mod:`repro.runtime.iofault`) target the *supervisor's* durability
    writes; a worker inheriting the variable would consume the fault's
    call counter in the wrong process and make chaos kill points
    non-deterministic.
    """
    env = dict(os.environ)
    env.pop(IOFAULT_ENV, None)
    entries = [entry for entry in sys.path if entry]
    if entries:
        env["PYTHONPATH"] = os.pathsep.join(entries)
    return env


class WorkerSupervisor:
    """Spawns worker subprocesses and enforces hard containment.

    Thread-safe: one supervisor serves all pool threads, tracking live
    workers so an interrupt can kill every one of them.

    Args:
        hard_timeout_seconds: Wall-clock deadline per attempt; None
            waits forever (the in-worker cooperative budget may still
            bound the attempt).
        term_grace_seconds: How long a worker gets between SIGTERM and
            SIGKILL.
        python: Interpreter for workers (default: this interpreter).
        on_event: Callback ``(event, experiment_id, detail_dict)`` —
            the engine routes these into its event log
            (``worker-killed`` etc.).
        current_token: Callable returning the supervisor's *current*
            fencing token; payloads are checked against it at parse
            time (not spawn time), so a token bumped mid-flight by a
            lease reclaim fences out workers already running.  None
            disables the check (legacy callers).
        obs_sink: Callback ``(spec, obs_dict)`` receiving the telemetry
            block a worker shipped in its payload (the pool wires the
            engine's campaign rollup here).
    """

    def __init__(
        self,
        hard_timeout_seconds: Optional[float] = None,
        term_grace_seconds: float = 5.0,
        python: Optional[str] = None,
        on_event: Optional[Callable[[str, str, Dict[str, object]], None]] = None,
        current_token: Optional[Callable[[], int]] = None,
        obs_sink: Optional[
            Callable[[AttemptSpec, Dict[str, object]], None]
        ] = None,
    ) -> None:
        if hard_timeout_seconds is not None and hard_timeout_seconds <= 0:
            raise ValueError("hard_timeout_seconds must be positive")
        if term_grace_seconds < 0:
            raise ValueError("term_grace_seconds must be >= 0")
        self.hard_timeout_seconds = hard_timeout_seconds
        self.term_grace_seconds = term_grace_seconds
        self.python = python or sys.executable
        self.on_event = on_event
        self.current_token = current_token
        self.obs_sink = obs_sink
        self._live: Dict[int, subprocess.Popen] = {}
        self._lock = threading.Lock()

    # -- lifecycle ---------------------------------------------------

    def run_attempt(
        self, spec: AttemptSpec
    ) -> Tuple[Optional[ExperimentResult], Optional[ExperimentFailure]]:
        """Run one attempt in a fresh worker; classify however it ends."""
        with tracing.span(
            "worker.spawn", experiment_id=spec.experiment_id, attempt=spec.attempt
        ) as spawn_span:
            proc = subprocess.Popen(
                [self.python, "-m", WORKER_MODULE],
                stdin=subprocess.PIPE,
                stdout=subprocess.PIPE,
                stderr=subprocess.PIPE,
                text=True,
                env=worker_environment(),
                start_new_session=True,  # own process group: killable as a unit
            )
            if spawn_span is not None:
                spawn_span.attrs["worker_pid"] = proc.pid
        obs_metrics.inc("worker.spawns")
        with self._lock:
            self._live[proc.pid] = proc
        try:
            with tracing.span(
                "worker.attempt",
                experiment_id=spec.experiment_id,
                attempt=spec.attempt,
                worker_pid=proc.pid,
            ):
                return self._converse(spec, proc)
        finally:
            with self._lock:
                self._live.pop(proc.pid, None)

    def _converse(
        self, spec: AttemptSpec, proc: subprocess.Popen
    ) -> Tuple[Optional[ExperimentResult], Optional[ExperimentFailure]]:
        killed_at_deadline = False
        try:
            stdout, stderr = proc.communicate(
                input=spec.to_json(), timeout=self.hard_timeout_seconds
            )
        except subprocess.TimeoutExpired:
            killed_at_deadline = True
            stdout, stderr = self._escalate(spec, proc)
        except BaseException:
            # The supervisor thread itself is unwinding (interrupt,
            # internal error): never leak a live worker.
            self._kill(proc, signal.SIGKILL)
            proc.wait()
            raise
        stderr_tail = (stderr or "")[-STDERR_TAIL_CHARS:]

        if killed_at_deadline:
            return None, _worker_failure(
                spec,
                WorkerTimeoutError,
                f"worker for {spec.experiment_id} exceeded its hard deadline "
                f"of {self.hard_timeout_seconds:.3g}s and was killed "
                "(SIGTERM, then SIGKILL after "
                f"{self.term_grace_seconds:.3g}s grace)",
                stderr_tail,
                elapsed_seconds=self.hard_timeout_seconds or 0.0,
            )
        returncode = proc.returncode
        if returncode == 0:
            expected = (
                self.current_token() if self.current_token is not None else None
            )
            sink = None
            if self.obs_sink is not None:
                obs_sink = self.obs_sink

                def sink(obs: Dict[str, object]) -> None:
                    obs_sink(spec, obs)

            return parse_worker_payload(
                spec,
                stdout or "",
                stderr_tail,
                expected_token=expected,
                obs_sink=sink,
            )
        if returncode < 0:
            return None, _worker_failure(
                spec,
                WorkerCrashError,
                f"worker for {spec.experiment_id} was killed by "
                f"{_signal_name(-returncode)}",
                stderr_tail,
            )
        return None, _worker_failure(
            spec,
            WorkerCrashError,
            f"worker for {spec.experiment_id} exited with status {returncode} "
            "without delivering a result",
            stderr_tail,
        )

    def _escalate(
        self, spec: AttemptSpec, proc: subprocess.Popen
    ) -> Tuple[str, str]:
        """SIGTERM, wait out the grace period, then SIGKILL."""
        obs_metrics.inc("worker.deadline_kills")
        self._emit(
            "worker-killed",
            spec.experiment_id,
            {"attempt": spec.attempt, "signal": "SIGTERM",
             "reason": "hard-deadline", "pid": proc.pid},
        )
        self._kill(proc, signal.SIGTERM)
        try:
            return proc.communicate(timeout=self.term_grace_seconds)
        except subprocess.TimeoutExpired:
            self._emit(
                "worker-killed",
                spec.experiment_id,
                {"attempt": spec.attempt, "signal": "SIGKILL",
                 "reason": "term-grace-expired", "pid": proc.pid},
            )
            self._kill(proc, signal.SIGKILL)
            return proc.communicate()

    @staticmethod
    def _kill(proc: subprocess.Popen, signum: int) -> None:
        """Signal the worker's whole process group (best effort)."""
        if proc.poll() is not None:
            return
        try:
            os.killpg(os.getpgid(proc.pid), signum)
        except (ProcessLookupError, PermissionError, OSError):
            try:
                proc.send_signal(signum)
            except (ProcessLookupError, OSError):
                pass

    # -- interruption ------------------------------------------------

    def kill_all(self, term_grace_seconds: Optional[float] = None) -> int:
        """TERM every live worker, grace, then KILL the stragglers.

        Returns how many workers were signalled.  Called from the main
        thread on SIGINT/SIGTERM; the pool threads blocked in
        ``communicate`` observe the deaths and classify them, but the
        engine's abort flag stops those failures from being retried or
        recorded.
        """
        grace = (
            self.term_grace_seconds
            if term_grace_seconds is None
            else term_grace_seconds
        )
        with self._lock:
            victims = list(self._live.values())
        for proc in victims:
            self._kill(proc, signal.SIGTERM)
        deadline = _monotonic() + grace
        for proc in victims:
            remaining = deadline - _monotonic()
            if remaining > 0:
                try:
                    proc.wait(timeout=remaining)
                except subprocess.TimeoutExpired:
                    pass
            if proc.poll() is None:
                self._kill(proc, signal.SIGKILL)
        return len(victims)

    def live_count(self) -> int:
        with self._lock:
            return len(self._live)

    def _emit(self, event: str, experiment_id: str, detail: Dict[str, object]) -> None:
        if self.on_event is not None:
            self.on_event(event, experiment_id, detail)


def _monotonic() -> float:
    import time

    return time.monotonic()


@contextlib.contextmanager
def sigterm_as_interrupt() -> Iterator[None]:
    """Deliver SIGTERM to the supervisor as ``KeyboardInterrupt``.

    SIGTERM (a batch scheduler's shutdown, ``kill <pid>``) then travels
    the same drain path as Ctrl-C: kill workers, flush checkpoints,
    exit under the documented contract.  No-op outside the main thread
    (signal handlers can only be installed there).
    """
    if threading.current_thread() is not threading.main_thread():
        yield
        return

    def _handler(signum: int, frame: object) -> None:
        raise KeyboardInterrupt(f"received {_signal_name(signum)}")

    previous = signal.signal(signal.SIGTERM, _handler)
    try:
        yield
    finally:
        signal.signal(signal.SIGTERM, previous)


class WorkerPool:
    """Schedules experiments onto supervised worker subprocesses.

    One supervisor thread per in-flight experiment runs the engine's
    ordinary retry/degradation policy (``run_one``), with each attempt
    executed in a fresh subprocess via :class:`WorkerSupervisor`.  The
    thread count — not the subprocess count — is the concurrency cap:
    at most ``jobs`` workers are ever alive.

    Args:
        engine: The owning :class:`~repro.runtime.engine.CampaignEngine`.
        jobs: Concurrent experiments (>= 1).
    """

    def __init__(self, engine, jobs: int) -> None:
        if jobs < 1:
            raise ValueError(f"worker pool needs jobs >= 1 (got {jobs})")
        self.engine = engine
        self.jobs = jobs
        config = engine.config
        self.supervisor = WorkerSupervisor(
            hard_timeout_seconds=self._hard_deadline(config),
            term_grace_seconds=config.term_grace_seconds,
            on_event=self._supervisor_event,
            current_token=lambda: engine.fencing_token,
            obs_sink=getattr(engine, "record_worker_obs", None),
        )
        # Submit timestamps for queue-wait accounting (experiment id ->
        # monotonic submit time); written once before the threads start.
        self._submitted: Dict[str, float] = {}

    @staticmethod
    def _hard_deadline(config) -> Optional[float]:
        """The enforced per-attempt deadline.

        Explicit ``hard_timeout_seconds`` wins; otherwise a campaign
        with a cooperative budget gets a derived backstop (twice the
        budget plus startup slack) so even non-cooperative hangs are
        bounded; otherwise None (unbounded, interruptible only).
        """
        if config.hard_timeout_seconds is not None:
            return config.hard_timeout_seconds
        if config.budget_seconds is not None:
            return config.budget_seconds * 2 + 30.0
        return None

    def check_shippable(self, experiment_ids: Sequence[str]) -> None:
        """Fail fast (before any spawn) on unshippable registry entries."""
        for experiment_id in experiment_ids:
            runner, _ = self.engine.registry[experiment_id]
            runner_ref(runner)

    def run_attempt(
        self,
        experiment_id: str,
        attempt: int,
        degraded: bool,
        kwargs: Dict[str, object],
        budget,
    ) -> Tuple[Optional[ExperimentResult], Optional[ExperimentFailure]]:
        """The engine-facing attempt runner (one subprocess per call)."""
        engine = self.engine
        runner, _ = engine.registry[experiment_id]
        fault_dict = None
        if engine.faults is not None:
            fault_spec = engine.faults.spec_for(experiment_id, attempt)
            if fault_spec is not None:
                engine.faults.record(experiment_id, attempt, fault_spec.kind)
                fault_dict = fault_spec.to_dict()
        workspace = None
        if engine.faults is not None and engine.faults.workspace is not None:
            workspace = str(engine.faults.workspace)
        tracer = tracing.get_tracer()
        spec = AttemptSpec(
            experiment_id=experiment_id,
            runner=runner_ref(runner),
            kwargs=kwargs,
            attempt=attempt,
            degraded=degraded,
            budget_seconds=engine.config.budget_seconds,
            max_rss_mb=engine.config.max_rss_mb,
            fault=fault_dict,
            workspace=workspace,
            fencing_token=engine.fencing_token,
            obs=obs_metrics.obs_enabled(),
            trace_id=tracer.trace_id if tracer is not None else None,
            parent_span_id=(
                tracer.current_span_id() if tracer is not None else None
            ),
        )
        return self.supervisor.run_attempt(spec)

    def run(self, wanted: Sequence[str], collected: List) -> None:
        """Run ``wanted`` with up to ``jobs`` concurrent workers.

        Appends finished outcomes to ``collected`` in *requested* order
        (not completion order) — also on interruption, so the partial
        summary the engine flushes is deterministic.  Re-raises
        ``KeyboardInterrupt`` after killing workers and draining
        threads; the engine finalizes and propagates.
        """
        self.check_shippable(wanted)
        engine = self.engine
        outcomes: Dict[str, object] = {}
        now = _monotonic()
        self._submitted = {experiment_id: now for experiment_id in wanted}
        executor = ThreadPoolExecutor(
            max_workers=self.jobs, thread_name_prefix="campaign-worker"
        )
        futures = {
            executor.submit(self._run_one_guarded, experiment_id): experiment_id
            for experiment_id in wanted
        }
        try:
            with sigterm_as_interrupt():
                pending = set(futures)
                while pending:
                    done, pending = wait(pending, return_when=FIRST_COMPLETED)
                    for future in done:
                        outcome = future.result()
                        if outcome is not None:
                            outcomes[futures[future]] = outcome
            executor.shutdown(wait=True)
        except KeyboardInterrupt:
            engine.abort()
            self.supervisor.kill_all()
            executor.shutdown(wait=True, cancel_futures=True)
            for future, experiment_id in futures.items():
                if future.done() and not future.cancelled():
                    try:
                        outcome = future.result()
                    except BaseException:  # noqa: BLE001 — draining
                        continue
                    if outcome is not None:
                        outcomes[experiment_id] = outcome
            raise
        except BaseException:
            # Any other supervisor-side failure (a checkpoint disk
            # full, a journal write error) must not leak threads or
            # live workers either.
            engine.abort()
            self.supervisor.kill_all()
            executor.shutdown(wait=True, cancel_futures=True)
            raise
        finally:
            for experiment_id in wanted:
                if experiment_id in outcomes:
                    collected.append(outcomes[experiment_id])

    def _run_one_guarded(self, experiment_id: str):
        """Thread body: run one experiment; swallow abort, return None."""
        from repro.runtime.engine import CampaignAborted

        submitted = self._submitted.get(experiment_id)
        if submitted is not None:
            wait_s = max(0.0, _monotonic() - submitted)
            obs_metrics.observe("worker.queue_wait_seconds", wait_s)
            tracer = tracing.get_tracer()
            if tracer is not None:
                import time as _time

                tracer.record(
                    "worker.queue_wait",
                    t_wall=_time.time() - wait_s,
                    dur_s=wait_s,
                    experiment_id=experiment_id,
                )
        try:
            return self.engine.run_one(
                experiment_id, attempt_runner=self.run_attempt
            )
        except CampaignAborted:
            return None

    def _supervisor_event(
        self, event: str, experiment_id: str, detail: Dict[str, object]
    ) -> None:
        self.engine.log_event(event, experiment_id, **detail)
