"""Fault-tolerant campaign runtime.

The paper's evaluation is a long trace-driven campaign: 19 experiments,
several of which generate millions of references (Barnes-Hut force
phases, Figure-6 scale).  This subpackage turns that campaign from a
fragile for-loop into a pipeline that survives partial failure:

- :mod:`repro.runtime.errors` — the error taxonomy
  (:class:`TraceGenerationError`, :class:`SimulationError`,
  :class:`AnalysisError`, :class:`BudgetExceeded`) and the structured
  :class:`ExperimentFailure` record the engine captures instead of
  letting one exception abort the whole run.
- :mod:`repro.runtime.budget` — cooperative wall-clock budgets.  A
  :class:`Budget` is installed around each experiment; the
  trace-simulation loops in :mod:`repro.mem` poll it and raise
  :class:`BudgetExceeded` when the deadline passes, so a runaway
  experiment cannot hang the campaign.
- :mod:`repro.runtime.checkpoint` — completed results are serialized
  to a run directory with atomic write-rename and a content checksum;
  ``python -m repro.experiments --resume <run-dir>`` skips them.
- :mod:`repro.runtime.faults` — deterministic fault injection
  (crashes, hangs, corrupted trace files) so the recovery paths are
  themselves testable.
- :mod:`repro.runtime.engine` — the :class:`CampaignEngine` that ties
  it together: isolation per experiment, retry with exponential
  backoff, and graceful degradation to the quick parameterization.
- :mod:`repro.runtime.workers` — hard process isolation: each attempt
  in its own supervised subprocess with SIGTERM→SIGKILL deadlines,
  address-space rlimits, and worker-death classification
  (:class:`WorkerCrashError` / :class:`WorkerTimeoutError` /
  :class:`WorkerMemoryError`); the default backend of the engine.
- :mod:`repro.runtime.events` — structured JSONL event log
  (``events.jsonl`` in the run directory) for campaign post-mortems.

Layering note: :mod:`repro.mem` polls the ambient budget, so this
package's ``__init__`` eagerly imports only the dependency-free
``errors`` and ``budget`` modules; the engine/checkpoint/faults names
(which sit *above* :mod:`repro.experiments`) are loaded lazily on first
attribute access to keep the import graph acyclic.
"""

from importlib import import_module

from repro.runtime.budget import Budget, activate, active_budget, check_active_budget
from repro.runtime.errors import (
    AnalysisError,
    BudgetExceeded,
    CheckpointCorruptError,
    ExperimentError,
    ExperimentFailure,
    SimulationError,
    TraceGenerationError,
    WorkerCrashError,
    WorkerError,
    WorkerMemoryError,
    WorkerTimeoutError,
    classify_exception,
)

#: name -> defining module, for the lazily imported upper layer.
_LAZY = {
    "CheckpointStore": "repro.runtime.checkpoint",
    "file_lock": "repro.runtime.checkpoint",
    "EventLog": "repro.runtime.events",
    "read_events": "repro.runtime.events",
    "FaultInjector": "repro.runtime.faults",
    "FaultSpec": "repro.runtime.faults",
    "corrupt_file": "repro.runtime.faults",
    "fire_fault": "repro.runtime.faults",
    "CampaignEngine": "repro.runtime.engine",
    "CampaignReport": "repro.runtime.engine",
    "EngineConfig": "repro.runtime.engine",
    "ExperimentOutcome": "repro.runtime.engine",
    "AttemptSpec": "repro.runtime.workers",
    "WorkerPool": "repro.runtime.workers",
    "WorkerSupervisor": "repro.runtime.workers",
    "runner_ref": "repro.runtime.workers",
    "resolve_runner_ref": "repro.runtime.workers",
}

__all__ = [
    "AnalysisError",
    "AttemptSpec",
    "Budget",
    "BudgetExceeded",
    "CampaignEngine",
    "CampaignReport",
    "CheckpointCorruptError",
    "CheckpointStore",
    "EngineConfig",
    "EventLog",
    "ExperimentError",
    "ExperimentFailure",
    "ExperimentOutcome",
    "FaultInjector",
    "FaultSpec",
    "SimulationError",
    "TraceGenerationError",
    "WorkerCrashError",
    "WorkerError",
    "WorkerMemoryError",
    "WorkerPool",
    "WorkerSupervisor",
    "WorkerTimeoutError",
    "activate",
    "active_budget",
    "check_active_budget",
    "classify_exception",
    "corrupt_file",
    "file_lock",
    "fire_fault",
    "read_events",
    "resolve_runner_ref",
    "runner_ref",
]


def __getattr__(name: str):
    module_name = _LAZY.get(name)
    if module_name is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    value = getattr(import_module(module_name), name)
    globals()[name] = value
    return value


def __dir__():
    return sorted(set(globals()) | set(_LAZY))
