"""Fault-tolerant campaign runtime.

The paper's evaluation is a long trace-driven campaign: 19 experiments,
several of which generate millions of references (Barnes-Hut force
phases, Figure-6 scale).  This subpackage turns that campaign from a
fragile for-loop into a pipeline that survives partial failure:

- :mod:`repro.runtime.errors` — the error taxonomy
  (:class:`TraceGenerationError`, :class:`SimulationError`,
  :class:`AnalysisError`, :class:`BudgetExceeded`) and the structured
  :class:`ExperimentFailure` record the engine captures instead of
  letting one exception abort the whole run.
- :mod:`repro.runtime.budget` — cooperative wall-clock budgets.  A
  :class:`Budget` is installed around each experiment; the
  trace-simulation loops in :mod:`repro.mem` poll it and raise
  :class:`BudgetExceeded` when the deadline passes, so a runaway
  experiment cannot hang the campaign.
- :mod:`repro.runtime.checkpoint` — completed results are serialized
  to a run directory with atomic write-rename and a content checksum;
  ``python -m repro.experiments --resume <run-dir>`` skips them.
- :mod:`repro.runtime.faults` — deterministic fault injection
  (crashes, hangs, corrupted trace files) so the recovery paths are
  themselves testable.
- :mod:`repro.runtime.engine` — the :class:`CampaignEngine` that ties
  it together: isolation per experiment, retry with exponential
  backoff, and graceful degradation to the quick parameterization.
- :mod:`repro.runtime.workers` — hard process isolation: each attempt
  in its own supervised subprocess with SIGTERM→SIGKILL deadlines,
  address-space rlimits, and worker-death classification
  (:class:`WorkerCrashError` / :class:`WorkerTimeoutError` /
  :class:`WorkerMemoryError`); the default backend of the engine.
- :mod:`repro.runtime.events` — structured JSONL event log
  (``events.jsonl`` in the run directory) for campaign post-mortems.
- :mod:`repro.runtime.iofault` — the shared crash-consistent atomic
  write (file fsync + rename + directory fsync) and the deterministic
  I/O fault injector (``ENOSPC``, ``EIO``, torn writes, in-write
  SIGKILL) every durability-relevant syscall goes through.
- :mod:`repro.runtime.journal` — the append-only, CRC-framed,
  fsync-disciplined write-ahead journal (``journal.wal``) of campaign
  state transitions, and the idempotent :func:`recover` that
  reconciles it with the checkpoint store after a crash.
- :mod:`repro.runtime.lease` — the heartbeat supervisor lease
  (``supervisor.lease``) with a monotonic fencing token: concurrent
  supervisors are refused, dead ones are reclaimed, and stale worker
  results are fenced out.
- :mod:`repro.runtime.chaos` — the SIGKILL/resume and disk-fault chaos
  harness that proves all of the above against real processes.

Layering note: :mod:`repro.mem` polls the ambient budget, so this
package's ``__init__`` eagerly imports only the dependency-free
``errors`` and ``budget`` modules; the engine/checkpoint/faults names
(which sit *above* :mod:`repro.experiments`) are loaded lazily on first
attribute access to keep the import graph acyclic.
"""

from importlib import import_module

from repro.runtime.budget import Budget, activate, active_budget, check_active_budget
from repro.runtime.errors import (
    AnalysisError,
    BudgetExceeded,
    CheckpointCorruptError,
    CheckpointWriteError,
    ExperimentError,
    ExperimentFailure,
    FencingViolationError,
    JournalCorruptError,
    JournalError,
    LeaseError,
    LeaseHeldError,
    SimulationError,
    TraceFileWriteError,
    TraceGenerationError,
    WorkerCrashError,
    WorkerError,
    WorkerMemoryError,
    WorkerTimeoutError,
    classify_exception,
)

#: name -> defining module, for the lazily imported upper layer.
_LAZY = {
    "CheckpointStore": "repro.runtime.checkpoint",
    "file_lock": "repro.runtime.checkpoint",
    "EventLog": "repro.runtime.events",
    "read_events": "repro.runtime.events",
    "FaultInjector": "repro.runtime.faults",
    "FaultSpec": "repro.runtime.faults",
    "corrupt_file": "repro.runtime.faults",
    "fire_fault": "repro.runtime.faults",
    "CampaignEngine": "repro.runtime.engine",
    "CampaignReport": "repro.runtime.engine",
    "EngineConfig": "repro.runtime.engine",
    "ExperimentOutcome": "repro.runtime.engine",
    "AttemptSpec": "repro.runtime.workers",
    "WorkerPool": "repro.runtime.workers",
    "WorkerSupervisor": "repro.runtime.workers",
    "runner_ref": "repro.runtime.workers",
    "resolve_runner_ref": "repro.runtime.workers",
    "IOFault": "repro.runtime.iofault",
    "IOFaultInjector": "repro.runtime.iofault",
    "atomic_write_bytes": "repro.runtime.iofault",
    "atomic_write_text": "repro.runtime.iofault",
    "install": "repro.runtime.iofault",
    "install_from_env": "repro.runtime.iofault",
    "Journal": "repro.runtime.journal",
    "JournalReplay": "repro.runtime.journal",
    "RecoveryReport": "repro.runtime.journal",
    "attempt_uid": "repro.runtime.journal",
    "read_journal": "repro.runtime.journal",
    "recover": "repro.runtime.journal",
    "truncate_torn_tail": "repro.runtime.journal",
    "Lease": "repro.runtime.lease",
    "LeaseState": "repro.runtime.lease",
    "lease_is_stale": "repro.runtime.lease",
    "read_lease": "repro.runtime.lease",
    "ChaosReport": "repro.runtime.chaos",
    "run_chaos": "repro.runtime.chaos",
}

__all__ = [
    "AnalysisError",
    "AttemptSpec",
    "Budget",
    "BudgetExceeded",
    "CampaignEngine",
    "CampaignReport",
    "ChaosReport",
    "CheckpointCorruptError",
    "CheckpointStore",
    "CheckpointWriteError",
    "EngineConfig",
    "EventLog",
    "ExperimentError",
    "ExperimentFailure",
    "ExperimentOutcome",
    "FaultInjector",
    "FaultSpec",
    "FencingViolationError",
    "IOFault",
    "IOFaultInjector",
    "Journal",
    "JournalCorruptError",
    "JournalError",
    "JournalReplay",
    "Lease",
    "LeaseError",
    "LeaseHeldError",
    "LeaseState",
    "RecoveryReport",
    "SimulationError",
    "TraceFileWriteError",
    "TraceGenerationError",
    "WorkerCrashError",
    "WorkerError",
    "WorkerMemoryError",
    "WorkerPool",
    "WorkerSupervisor",
    "WorkerTimeoutError",
    "activate",
    "active_budget",
    "atomic_write_bytes",
    "atomic_write_text",
    "attempt_uid",
    "check_active_budget",
    "classify_exception",
    "corrupt_file",
    "file_lock",
    "fire_fault",
    "install",
    "install_from_env",
    "lease_is_stale",
    "read_events",
    "read_journal",
    "read_lease",
    "recover",
    "resolve_runner_ref",
    "run_chaos",
    "runner_ref",
    "truncate_torn_tail",
]


def __getattr__(name: str):
    module_name = _LAZY.get(name)
    if module_name is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    value = getattr(import_module(module_name), name)
    globals()[name] = value
    return value


def __dir__():
    return sorted(set(globals()) | set(_LAZY))
