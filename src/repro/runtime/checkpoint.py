"""Checkpoint/resume persistence for experiment campaigns.

Each completed experiment is written to ``<run_dir>/results/<id>.json``
as soon as it finishes, so a crashed or interrupted campaign can be
resumed with ``python -m repro.experiments --resume <run_dir>``: the
engine consults :meth:`CheckpointStore.completed_ids` and re-runs only
the unfinished experiments.

Integrity matters as much as existence — a half-written checkpoint
must never masquerade as a finished experiment.  Two mechanisms
guarantee that:

- **Durable atomic write-rename**: every envelope goes through the
  shared :func:`repro.runtime.iofault.atomic_write_text` — temp file
  in the destination directory, file fsync, ``os.replace``, directory
  fsync — so an interruption leaves either the old file or the new
  one (never a truncated one), and the rename itself survives
  power-loss/kill semantics rather than only process death.
- **Content checksum**: the envelope stores a SHA-256 of the payload;
  :meth:`CheckpointStore.load` recomputes and compares it, raising
  :class:`~repro.runtime.errors.CheckpointCorruptError` on mismatch
  (or on any undecodable file).

Failed attempts are also recorded, under ``<run_dir>/failures/``, for
forensics only — they never count as completed.
"""

from __future__ import annotations

import contextlib
import hashlib
import json
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Union

from repro.obs import metrics as obs_metrics
from repro.obs import tracing
from repro.runtime.errors import CheckpointCorruptError
from repro.runtime.iofault import atomic_write_text as _shared_atomic_write_text

try:  # POSIX-only; the lock degrades to a no-op elsewhere.
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX platforms
    fcntl = None  # type: ignore[assignment]

#: Bumped when the checkpoint envelope layout changes.
CHECKPOINT_FORMAT = 1

_RESULTS_DIR = "results"
_FAILURES_DIR = "failures"
_MANIFEST = "manifest.json"
_SUMMARY = "summary.json"
_LOCKFILE = ".store.lock"
_EVENTS = "events.jsonl"


@contextlib.contextmanager
def file_lock(path: Union[str, Path]) -> Iterator[None]:
    """Advisory exclusive lock on ``path`` (created if missing).

    Serializes checkpoint writes across *processes* as well as threads:
    the parallel supervisor and any concurrent campaign sharing a run
    directory take this lock around every envelope write, so two
    flushes can never interleave inside one file.  No-op where
    ``fcntl`` is unavailable (atomic rename still protects readers).
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    if fcntl is None:  # pragma: no cover - non-POSIX platforms
        yield
        return
    with open(path, "a+b") as handle:
        fcntl.flock(handle.fileno(), fcntl.LOCK_EX)
        try:
            yield
        finally:
            fcntl.flock(handle.fileno(), fcntl.LOCK_UN)


def atomic_write_text(path: Union[str, Path], text: str) -> None:
    """Durably replace ``path`` with ``text``.

    Delegates to the shared crash-consistent helper in
    :mod:`repro.runtime.iofault` (file fsync + atomic rename +
    directory-entry fsync), tagged with the ``checkpoint`` injection
    site.  Kept under its historical name — callers throughout the
    runtime and tests import it from here.
    """
    _shared_atomic_write_text(path, text, site="checkpoint")


def _payload_digest(payload: Dict[str, object]) -> str:
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


class CheckpointStore:
    """Atomic, checksummed persistence of campaign outcomes.

    Args:
        run_dir: Root directory of one campaign run.  Created on
            first write.
    """

    def __init__(self, run_dir: Union[str, Path]) -> None:
        self.run_dir = Path(run_dir)

    # -- paths -------------------------------------------------------

    @property
    def results_dir(self) -> Path:
        return self.run_dir / _RESULTS_DIR

    @property
    def failures_dir(self) -> Path:
        return self.run_dir / _FAILURES_DIR

    def result_path(self, experiment_id: str) -> Path:
        return self.results_dir / f"{experiment_id}.json"

    def failure_path(self, experiment_id: str) -> Path:
        return self.failures_dir / f"{experiment_id}.json"

    @property
    def lock_path(self) -> Path:
        return self.run_dir / _LOCKFILE

    @property
    def events_path(self) -> Path:
        """Where the campaign's JSONL event log lives."""
        return self.run_dir / _EVENTS

    @property
    def summary_path(self) -> Path:
        return self.run_dir / _SUMMARY

    # -- envelope ----------------------------------------------------

    def _write_envelope(self, path: Path, payload: Dict[str, object]) -> None:
        envelope = {
            "format": CHECKPOINT_FORMAT,
            "sha256": _payload_digest(payload),
            "payload": payload,
        }
        # Single-writer discipline: the cross-process lock serializes
        # every envelope flush touching this run directory.
        with tracing.span("checkpoint.write", file=path.name):
            with file_lock(self.lock_path):
                with obs_metrics.timed("runtime.checkpoint.write_seconds"):
                    atomic_write_text(
                        path, json.dumps(envelope, indent=1, sort_keys=True)
                    )
        obs_metrics.inc("runtime.checkpoint.writes")

    def _read_envelope(self, path: Path) -> Dict[str, object]:
        try:
            raw = path.read_text(encoding="utf-8")
        except OSError as exc:
            raise CheckpointCorruptError(f"cannot read checkpoint {path}: {exc}")
        try:
            envelope = json.loads(raw)
        except json.JSONDecodeError as exc:
            raise CheckpointCorruptError(
                f"checkpoint {path} is not valid JSON: {exc}"
            )
        if not isinstance(envelope, dict) or "payload" not in envelope:
            raise CheckpointCorruptError(
                f"checkpoint {path} has no payload envelope"
            )
        fmt = envelope.get("format")
        if fmt != CHECKPOINT_FORMAT:
            raise CheckpointCorruptError(
                f"checkpoint {path} has format {fmt!r} "
                f"(expected {CHECKPOINT_FORMAT})"
            )
        payload = envelope["payload"]
        digest = _payload_digest(payload)
        if digest != envelope.get("sha256"):
            raise CheckpointCorruptError(
                f"checkpoint {path} failed its integrity check "
                f"(stored sha256 {envelope.get('sha256')!r}, "
                f"recomputed {digest!r})"
            )
        return payload

    # -- outcomes ----------------------------------------------------

    def save_outcome(self, outcome) -> Path:
        """Persist a finished (ok/degraded) outcome; returns its path."""
        path = self.result_path(outcome.experiment_id)
        self._write_envelope(path, outcome.to_dict())
        return path

    def save_failure(self, outcome) -> Path:
        """Persist a failed outcome for forensics (never a checkpoint)."""
        path = self.failure_path(outcome.experiment_id)
        self._write_envelope(path, outcome.to_dict())
        return path

    def load_outcome(self, experiment_id: str):
        """Load one completed outcome; raises on corruption."""
        from repro.runtime.engine import ExperimentOutcome

        payload = self._read_envelope(self.result_path(experiment_id))
        return ExperimentOutcome.from_dict(payload)

    def completed_ids(self) -> List[str]:
        """Experiment ids with a (valid) result checkpoint on disk.

        Corrupt checkpoints are *not* reported as completed, so a
        resumed campaign re-runs the experiment instead of trusting a
        damaged file.
        """
        if not self.results_dir.is_dir():
            return []
        done = []
        for path in sorted(self.results_dir.glob("*.json")):
            try:
                self._read_envelope(path)
            except CheckpointCorruptError:
                continue
            done.append(path.stem)
        return done

    def has_result(self, experiment_id: str) -> bool:
        path = self.result_path(experiment_id)
        if not path.is_file():
            return False
        try:
            self._read_envelope(path)
        except CheckpointCorruptError:
            return False
        return True

    # -- manifest / summary ------------------------------------------

    def write_manifest(self, manifest: Dict[str, object]) -> None:
        self._write_envelope(self.run_dir / _MANIFEST, manifest)

    def read_manifest(self) -> Optional[Dict[str, object]]:
        path = self.run_dir / _MANIFEST
        if not path.is_file():
            return None
        return self._read_envelope(path)

    def write_summary(self, summary: Dict[str, object]) -> None:
        """Persist the campaign-level summary (also on interruption)."""
        self._write_envelope(self.summary_path, summary)

    def read_summary(self) -> Optional[Dict[str, object]]:
        if not self.summary_path.is_file():
            return None
        return self._read_envelope(self.summary_path)

    # -- integrity ---------------------------------------------------

    def verify_all(self) -> Dict[str, str]:
        """Check every envelope in the store.

        Returns a mapping of run-dir-relative path -> error message for
        each file that fails its integrity check; an empty dict means
        every envelope (manifest, summary, results, failures) verifies.
        """
        problems: Dict[str, str] = {}
        candidates: List[Path] = []
        for name in (_MANIFEST, _SUMMARY):
            path = self.run_dir / name
            if path.is_file():
                candidates.append(path)
        for directory in (self.results_dir, self.failures_dir):
            if directory.is_dir():
                candidates.extend(sorted(directory.glob("*.json")))
        for path in candidates:
            try:
                self._read_envelope(path)
            except CheckpointCorruptError as exc:
                problems[str(path.relative_to(self.run_dir))] = str(exc)
        return problems
