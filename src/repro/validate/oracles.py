"""Invariant oracles over results, curves, and stack-distance profiles.

The Mattson inclusion property gives fully-associative LRU miss-rate
curves a set of *exact* mathematical invariants, and the experiment
pipeline adds structural ones.  Every oracle here is registered in
:data:`RESULT_ORACLES` (for :class:`ExperimentResult` objects) or
exposed as a profile/trace-level check, so a silently wrong curve is
caught before it corrupts a downstream granularity conclusion:

- miss *rates* lie in ``[0, 1]``; misses-per-FLOP are finite and
  non-negative;
- capacities are strictly increasing and curves are monotone
  non-increasing versus cache size (inclusion under full
  associativity);
- a profile's cold-miss count equals the trace's distinct-block count
  (the compulsory-miss floor), and its histogram total matches the
  counted references;
- comparisons carry finite measured values.

:func:`validate_result` runs the registry and returns a
:class:`~repro.validate.report.ValidationReport`;
:func:`assert_valid_result` raises
:class:`~repro.runtime.errors.ResultRejectedError` instead — the form
the campaign engine's ``--validate`` hook uses so a rejected result
feeds the ordinary retry-with-degradation policy.
"""

from __future__ import annotations

import math
from typing import Callable, Dict, Optional

import numpy as np

from repro.core.curves import MissRateCurve
from repro.experiments.runner import ExperimentResult
from repro.mem.stack_distance import StackDistanceProfile
from repro.mem.trace import Trace
from repro.runtime.errors import ResultRejectedError
from repro.validate.report import SEVERITY_WARNING, ValidationReport
from repro.validate.schemas import RESULT_SCHEMA, check_schema

#: Metrics that are probabilities (bounded by 1); misses-per-FLOP can
#: legitimately exceed 1 (up to the refs-per-FLOP ratio).
RATE_METRICS = ("miss_rate", "read_miss_rate")

#: Absolute slack for the monotonicity oracle: float-level noise is
#: tolerated, real inversions are not.
MONOTONE_TOLERANCE = 1e-9


def _curve_path(result: ExperimentResult, index: int) -> str:
    curve = result.curves[index]
    tag = curve.label or curve.metric
    return f"{result.experiment_id}.curves[{index}]({tag})"


# -- result-level oracles --------------------------------------------------


def oracle_schema(result: ExperimentResult, report: ValidationReport) -> None:
    """The serialized form matches the versioned result schema."""
    report.tick()
    for error in check_schema(result.to_dict(), RESULT_SCHEMA):
        report.add("result-schema", error, path=result.experiment_id)


def oracle_curves_finite(
    result: ExperimentResult, report: ValidationReport
) -> None:
    """Every sampled miss rate is finite and non-negative."""
    for index, curve in enumerate(result.curves):
        report.tick()
        rates = np.asarray(curve.miss_rates, dtype=float)
        if rates.size and not np.all(np.isfinite(rates)):
            report.add(
                "curve-not-finite",
                "curve contains NaN or infinite miss rates",
                path=_curve_path(result, index),
            )
        elif rates.size and float(rates.min()) < 0:
            report.add(
                "curve-negative",
                f"curve contains negative miss rate {float(rates.min()):g}",
                path=_curve_path(result, index),
            )


def oracle_rate_bounds(
    result: ExperimentResult, report: ValidationReport
) -> None:
    """Probability metrics stay within [0, 1]."""
    for index, curve in enumerate(result.curves):
        if curve.metric not in RATE_METRICS:
            continue
        report.tick()
        rates = np.asarray(curve.miss_rates, dtype=float)
        if rates.size and np.isfinite(rates).all() and float(rates.max()) > 1.0:
            report.add(
                "rate-out-of-range",
                f"{curve.metric} exceeds 1.0 "
                f"(max {float(rates.max()):g})",
                path=_curve_path(result, index),
            )


def oracle_capacities_increasing(
    result: ExperimentResult, report: ValidationReport
) -> None:
    """Cache-size axes are strictly increasing and positive."""
    for index, curve in enumerate(result.curves):
        report.tick()
        caps = np.asarray(curve.capacities, dtype=np.int64)
        if caps.size and int(caps.min()) <= 0:
            report.add(
                "capacity-not-positive",
                f"curve has non-positive capacity {int(caps.min())}",
                path=_curve_path(result, index),
            )
        if caps.size > 1 and int(np.diff(caps).min()) <= 0:
            report.add(
                "capacity-not-increasing",
                "cache sizes are not strictly increasing",
                path=_curve_path(result, index),
            )


def oracle_curves_monotone(
    result: ExperimentResult, report: ValidationReport
) -> None:
    """Miss rate never rises with cache size (LRU inclusion).

    Fully-associative LRU satisfies this exactly; float-epsilon noise
    is tolerated via :data:`MONOTONE_TOLERANCE`, and marginal
    violations below 1e-6 of the curve ceiling are downgraded to
    warnings (limited-associativity instruments may produce them
    legitimately).
    """
    for index, curve in enumerate(result.curves):
        report.tick()
        rates = np.asarray(curve.miss_rates, dtype=float)
        if rates.size < 2 or not np.isfinite(rates).all():
            continue
        rise = float(np.diff(rates).max())
        if rise <= MONOTONE_TOLERANCE:
            continue
        ceiling = max(abs(float(rates.max())), 1e-30)
        severity = SEVERITY_WARNING if rise <= 1e-6 * ceiling else "error"
        report.add(
            "curve-not-monotone",
            f"miss rate rises by {rise:g} with increasing cache size",
            path=_curve_path(result, index),
            severity=severity,
        )


def oracle_comparisons_finite(
    result: ExperimentResult, report: ValidationReport
) -> None:
    """Measured comparison values are finite numbers."""
    for comp in result.comparisons:
        report.tick()
        if not math.isfinite(comp.measured_value):
            report.add(
                "comparison-not-finite",
                f"measured value of {comp.quantity!r} is "
                f"{comp.measured_value!r}",
                path=f"{result.experiment_id}.comparisons",
            )


#: The registry, name -> oracle.  Order is the report order.
RESULT_ORACLES: Dict[
    str, Callable[[ExperimentResult, ValidationReport], None]
] = {
    "schema": oracle_schema,
    "curves-finite": oracle_curves_finite,
    "rate-bounds": oracle_rate_bounds,
    "capacities-increasing": oracle_capacities_increasing,
    "curves-monotone": oracle_curves_monotone,
    "comparisons-finite": oracle_comparisons_finite,
}


def validate_result(result: ExperimentResult) -> ValidationReport:
    """Run every registered oracle over one experiment result."""
    report = ValidationReport(subject=f"result:{result.experiment_id}")
    for oracle in RESULT_ORACLES.values():
        oracle(result, report)
    return report


def assert_valid_result(result: ExperimentResult) -> ValidationReport:
    """Validate and raise :class:`ResultRejectedError` on any error."""
    report = validate_result(result)
    report.raise_if_failed(ResultRejectedError)
    return report


# -- profile/trace-level oracles -------------------------------------------


def validate_profile(
    profile: StackDistanceProfile,
    trace: Optional[Trace] = None,
    subject: str = "profile",
) -> ValidationReport:
    """Check a stack-distance profile's internal invariants.

    When ``trace`` is given and the profile counted every reference
    (no warmup, reads and writes), the exact Mattson identities are
    enforced:

    - counted references equal the trace length;
    - the cold-miss count equals the trace's distinct-block footprint
      (the compulsory-miss floor);
    - an infinite cache misses exactly the cold references
      (``misses_at(footprint) == cold_misses``).
    """
    report = ValidationReport(subject=subject)
    hist = np.asarray(profile.depth_histogram, dtype=np.int64)
    report.tick()
    if hist.size and int(hist.min()) < 0:
        report.add("profile-negative", "depth histogram has negative counts")
    report.tick()
    if hist.size and int(hist[0]) != 0:
        report.add(
            "profile-depth-zero",
            f"depth 0 is unreachable but holds {int(hist[0])} references",
        )
    report.tick()
    counted = int(hist.sum())  # finite-depth references
    if counted + profile.cold_misses != profile.total:
        report.add(
            "profile-total-mismatch",
            f"histogram ({counted}) + cold ({profile.cold_misses}) != "
            f"total ({profile.total})",
        )
    if trace is not None and profile.total == len(trace):
        footprint = trace.footprint(profile.block_size)
        report.tick()
        if profile.cold_misses != footprint:
            report.add(
                "cold-floor-mismatch",
                f"cold misses ({profile.cold_misses}) != distinct blocks "
                f"({footprint})",
            )
        report.tick()
        if profile.misses_at(max(footprint, 1)) != profile.cold_misses:
            report.add(
                "compulsory-floor-mismatch",
                "a footprint-sized cache does not reduce misses to the "
                "compulsory floor",
            )
    return report
