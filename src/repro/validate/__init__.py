"""The result-integrity layer.

``repro.validate`` is the repository's self-verification subsystem.  It
answers, mechanically, the question every reproduction must face: *why
believe these numbers?*  Four independent lines of defense:

- **Invariant oracles** (:mod:`~repro.validate.oracles`): structural
  checks over every :class:`~repro.experiments.runner.ExperimentResult`
  and stack-distance profile — rates in [0, 1], curves monotone
  non-increasing under full associativity, the cold-miss floor equal to
  the distinct-block footprint.
- **Per-app self-checks** (:mod:`~repro.validate.selfchecks`): each
  traced algorithm proves it still computes the right answer (LU
  reconstructs, CG converges, FFT inverts, exact N-body conserves
  momentum, the volrend octree bounds its voxels).
- **Differential cross-checks** (:mod:`~repro.validate.differential`):
  two independent simulators (Mattson profiler vs explicit LRU cache)
  must agree *exactly* on every corpus trace.
- **Artifact validation and fuzzing** (:mod:`~repro.validate.artifacts`,
  :mod:`~repro.validate.fuzz`): every file a campaign writes is
  schema-checked and checksum-verified, and every reader is
  adversarially tested to fail typed on corrupt input.

See ``docs/VALIDATION.md`` for the operator's view.
"""

from repro.validate.artifacts import (
    validate_events_file,
    validate_run_dir,
    validate_trace_file,
)
from repro.validate.corpus import CORPUS, CorpusEntry, build_corpus, corpus_entry
from repro.validate.differential import cross_check_corpus, cross_check_trace
from repro.validate.fuzz import FuzzReport, run_fuzz
from repro.validate.oracles import (
    RESULT_ORACLES,
    assert_valid_result,
    validate_profile,
    validate_result,
)
from repro.validate.report import (
    Finding,
    ValidationReport,
    merge_reports,
)
from repro.validate.schemas import SCHEMA_VERSION, check_schema, schema_for
from repro.validate.selfchecks import (
    SELF_CHECKS,
    assert_self_check,
    run_self_check,
)

__all__ = [
    "CORPUS",
    "CorpusEntry",
    "Finding",
    "FuzzReport",
    "RESULT_ORACLES",
    "SCHEMA_VERSION",
    "SELF_CHECKS",
    "ValidationReport",
    "assert_self_check",
    "assert_valid_result",
    "build_corpus",
    "check_schema",
    "corpus_entry",
    "cross_check_corpus",
    "cross_check_trace",
    "merge_reports",
    "run_fuzz",
    "run_self_check",
    "schema_for",
    "validate_events_file",
    "validate_profile",
    "validate_result",
    "validate_run_dir",
    "validate_trace_file",
]
