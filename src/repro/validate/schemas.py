"""Versioned JSON schemas for every artifact a campaign writes.

Each artifact class — checkpoint envelope, experiment outcome, result,
miss-rate curve, manifest, summary, JSONL event record, trace metadata
header — has a declarative schema below, checked by a small
self-contained validator (:func:`check_schema`).  The validator
supports the subset of JSON Schema this repo needs (``type``,
``properties``, ``required``, ``items``, ``enum``, ``minimum``,
``additionalProperties``) so validation works without any third-party
dependency and the schemas stay auditable in one file.

``SCHEMA_VERSION`` names the artifact-layout generation; it is included
in validation reports so a future layout change can be versioned rather
than silently diverging.
"""

from __future__ import annotations

from typing import Dict, List, Optional

#: Bumped whenever any artifact schema below changes shape.
SCHEMA_VERSION = 2

# -- the minimal validator -------------------------------------------------

_TYPE_CHECKS = {
    "object": lambda v: isinstance(v, dict),
    "array": lambda v: isinstance(v, list),
    "string": lambda v: isinstance(v, str),
    "integer": lambda v: isinstance(v, int) and not isinstance(v, bool),
    "number": lambda v: isinstance(v, (int, float)) and not isinstance(v, bool),
    "boolean": lambda v: isinstance(v, bool),
    "null": lambda v: v is None,
}


def check_schema(
    instance: object, schema: Dict[str, object], path: str = "$"
) -> List[str]:
    """Validate ``instance`` against ``schema``.

    Returns a list of error strings (empty when valid), each prefixed
    with a JSON-pointer-style path so findings name the exact field.
    """
    errors: List[str] = []
    types = schema.get("type")
    if types is not None:
        allowed = [types] if isinstance(types, str) else list(types)
        if not any(_TYPE_CHECKS[t](instance) for t in allowed):
            errors.append(
                f"{path}: expected {'/'.join(allowed)}, "
                f"got {type(instance).__name__}"
            )
            return errors  # structural checks below would be nonsense
    if "enum" in schema and instance not in schema["enum"]:
        errors.append(
            f"{path}: value {instance!r} not in {list(schema['enum'])!r}"
        )
    minimum = schema.get("minimum")
    if (
        minimum is not None
        and isinstance(instance, (int, float))
        and not isinstance(instance, bool)
        and instance < minimum
    ):
        errors.append(f"{path}: value {instance!r} below minimum {minimum}")
    if isinstance(instance, dict):
        properties: Dict[str, Dict[str, object]] = schema.get("properties", {})
        for name in schema.get("required", []):
            if name not in instance:
                errors.append(f"{path}: missing required field {name!r}")
        extra_schema = schema.get("additionalProperties")
        for key, value in instance.items():
            if not isinstance(key, str):
                errors.append(f"{path}: non-string key {key!r}")
                continue
            if key in properties:
                errors.extend(
                    check_schema(value, properties[key], f"{path}.{key}")
                )
            elif extra_schema is False:
                errors.append(f"{path}: unexpected field {key!r}")
            elif isinstance(extra_schema, dict):
                errors.extend(
                    check_schema(value, extra_schema, f"{path}.{key}")
                )
    if isinstance(instance, list):
        item_schema = schema.get("items")
        if isinstance(item_schema, dict):
            for index, item in enumerate(instance):
                errors.extend(
                    check_schema(item, item_schema, f"{path}[{index}]")
                )
    return errors


# -- artifact schemas ------------------------------------------------------

#: The integrity envelope every checkpointed JSON file is wrapped in
#: (see :mod:`repro.runtime.checkpoint`).
ENVELOPE_SCHEMA: Dict[str, object] = {
    "type": "object",
    "required": ["format", "sha256", "payload"],
    "properties": {
        "format": {"type": "integer", "minimum": 1},
        "sha256": {"type": "string"},
        "payload": {"type": "object"},
    },
}

CURVE_SCHEMA: Dict[str, object] = {
    "type": "object",
    "required": ["capacities", "miss_rates"],
    "properties": {
        "capacities": {"type": "array", "items": {"type": "integer", "minimum": 1}},
        "miss_rates": {"type": "array", "items": {"type": "number"}},
        "metric": {"type": "string"},
        "label": {"type": "string"},
    },
}

COMPARISON_SCHEMA: Dict[str, object] = {
    "type": "object",
    "required": ["quantity", "measured_value"],
    "properties": {
        "quantity": {"type": "string"},
        "paper_value": {"type": ["number", "null"]},
        "measured_value": {"type": "number"},
        "unit": {"type": "string"},
        "note": {"type": "string"},
    },
}

RESULT_SCHEMA: Dict[str, object] = {
    "type": "object",
    "required": ["experiment_id", "title"],
    "properties": {
        "experiment_id": {"type": "string"},
        "title": {"type": "string"},
        "curves": {"type": "array", "items": CURVE_SCHEMA},
        "comparisons": {"type": "array", "items": COMPARISON_SCHEMA},
        "tables": {"type": "object", "additionalProperties": {"type": "string"}},
        "notes": {"type": "array", "items": {"type": "string"}},
    },
}

FAILURE_SCHEMA: Dict[str, object] = {
    "type": "object",
    "required": ["experiment_id", "attempt", "category", "error_type", "message"],
    "properties": {
        "experiment_id": {"type": "string"},
        "attempt": {"type": "integer", "minimum": 1},
        "category": {"type": "string"},
        "error_type": {"type": "string"},
        "message": {"type": "string"},
        "traceback_text": {"type": "string"},
        "degraded": {"type": "boolean"},
        "elapsed_seconds": {"type": "number", "minimum": 0},
        "timestamp": {"type": "number"},
    },
}

OUTCOME_SCHEMA: Dict[str, object] = {
    "type": "object",
    "required": ["experiment_id", "status"],
    "properties": {
        "experiment_id": {"type": "string"},
        "status": {"type": "string", "enum": ["ok", "degraded", "failed"]},
        "result": {"type": ["object", "null"]},
        "failures": {"type": "array", "items": FAILURE_SCHEMA},
        "attempts": {"type": "integer", "minimum": 0},
        "elapsed_seconds": {"type": "number", "minimum": 0},
    },
}

MANIFEST_SCHEMA: Dict[str, object] = {
    "type": "object",
    "required": ["experiments"],
    "properties": {
        "experiments": {"type": "array", "items": {"type": "string"}},
        "quick": {"type": "boolean"},
        "budget_seconds": {"type": ["number", "null"]},
        "max_attempts": {"type": "integer", "minimum": 1},
        "jobs": {"type": "integer", "minimum": 0},
        "validate": {"type": "boolean"},
        "hard_timeout_seconds": {"type": ["number", "null"]},
        "max_rss_mb": {"type": ["integer", "null"]},
    },
}

SUMMARY_SCHEMA: Dict[str, object] = {
    "type": "object",
    "required": ["status", "requested", "completed"],
    "properties": {
        "status": {"type": "string", "enum": ["complete", "interrupted"]},
        "requested": {"type": "array", "items": {"type": "string"}},
        "completed": {"type": "array", "items": {"type": "string"}},
        "statuses": {
            "type": "object",
            "additionalProperties": {
                "type": "string",
                "enum": ["ok", "degraded", "failed"],
            },
        },
    },
}

EVENT_SCHEMA: Dict[str, object] = {
    "type": "object",
    "required": ["seq", "t_mono", "t_wall", "event"],
    "properties": {
        "seq": {"type": "integer", "minimum": 1},
        "t_mono": {"type": "number"},
        "t_wall": {"type": "number"},
        "event": {"type": "string"},
        "experiment_id": {"type": "string"},
    },
}

#: One CRC-framed record of the write-ahead journal
#: (:mod:`repro.runtime.journal`).  ``additionalProperties`` stays open:
#: each record type carries its own detail fields.
JOURNAL_RECORD_SCHEMA: Dict[str, object] = {
    "type": "object",
    "required": ["seq", "token", "t_wall", "type"],
    "properties": {
        "seq": {"type": "integer", "minimum": 1},
        "token": {"type": "integer", "minimum": 0},
        "t_wall": {"type": "number"},
        "type": {
            "type": "string",
            "enum": [
                "campaign-start",
                "attempt-start",
                "attempt-end",
                "checkpoint-flushed",
                "summary-flushed",
                "interrupted",
                "recovered",
                "cache-hit",
                "submission-accepted",
                "submission-done",
                "shard-sealed",
                "sim-checkpoint",
                "dispatch-assign",
                "dispatch-complete",
                "dispatch-requeue",
                "dispatch-hedge",
                "dispatch-fenced",
                "breaker-transition",
            ],
        },
        "experiment_id": {"type": "string"},
        "attempt": {"type": "integer", "minimum": 1},
        "attempt_uid": {"type": "string"},
        "status": {"type": "string"},
        "assignment_id": {"type": "string"},
        "node_id": {"type": "string"},
        "node_token": {"type": "integer", "minimum": 0},
        "reason": {"type": "string"},
        "breaker": {"type": "string"},
        "from_state": {"type": "string"},
        "to_state": {"type": "string"},
        "at_wall": {"type": "number"},
    },
}

#: The supervisor lease file (:mod:`repro.runtime.lease`).
LEASE_SCHEMA: Dict[str, object] = {
    "type": "object",
    "required": ["pid", "token", "acquired_wall", "heartbeat_wall"],
    "properties": {
        "pid": {"type": "integer", "minimum": 1},
        "token": {"type": "integer", "minimum": 1},
        "acquired_wall": {"type": "number"},
        "heartbeat_wall": {"type": "number"},
        "hostname": {"type": "string"},
    },
}

#: The reference-count header (:func:`repro.mem.tracefile.trace_header`)
#: that savers may embed in an archive's metadata.
TRACE_HEADER_SCHEMA: Dict[str, object] = {
    "type": "object",
    "properties": {
        "refs": {"type": "integer", "minimum": 0},
        "reads": {"type": "integer", "minimum": 0},
        "writes": {"type": "integer", "minimum": 0},
        "processor": {"type": ["integer", "null"]},
        "seed": {"type": ["integer", "null"]},
    },
}

#: One line of ``spans.jsonl`` (:mod:`repro.obs.tracing`).  ``attrs``
#: stays open: every span name carries its own detail attributes.
SPAN_SCHEMA: Dict[str, object] = {
    "type": "object",
    "required": ["name", "trace_id", "span_id", "t_wall", "dur_s", "status"],
    "properties": {
        "name": {"type": "string"},
        "trace_id": {"type": "string"},
        "span_id": {"type": "string"},
        "parent_id": {"type": "string"},
        "t_wall": {"type": "number"},
        "dur_s": {"type": "number", "minimum": 0},
        "status": {"type": "string", "enum": ["ok", "error"]},
        "attrs": {"type": "object"},
        "pid": {"type": "integer", "minimum": 0},
    },
}

#: One serialized histogram inside a metrics snapshot
#: (:meth:`repro.obs.metrics.Histogram.snapshot`).  ``counts`` has one
#: more slot than ``buckets`` (the +Inf overflow), checked by the
#: artifact validator rather than the schema language.
METRICS_HISTOGRAM_SCHEMA: Dict[str, object] = {
    "type": "object",
    "required": ["buckets", "counts", "sum", "count"],
    "properties": {
        "buckets": {"type": "array", "items": {"type": "number"}},
        "counts": {"type": "array", "items": {"type": "integer", "minimum": 0}},
        "sum": {"type": "number"},
        "count": {"type": "integer", "minimum": 0},
    },
}

#: The campaign metrics snapshot (``<run_dir>/metrics.json``, written
#: by :meth:`repro.runtime.engine.CampaignEngine._write_obs_snapshot`).
METRICS_SNAPSHOT_SCHEMA: Dict[str, object] = {
    "type": "object",
    "required": ["format", "written_wall", "campaign", "attempts"],
    "properties": {
        "format": {"type": "integer", "minimum": 1},
        "written_wall": {"type": "number"},
        "trace_id": {"type": ["string", "null"]},
        "campaign": {
            "type": "object",
            "required": ["counters", "gauges", "histograms"],
            "properties": {
                "counters": {
                    "type": "object",
                    "additionalProperties": {"type": "number"},
                },
                "gauges": {
                    "type": "object",
                    "additionalProperties": {"type": "number"},
                },
                "histograms": {
                    "type": "object",
                    "additionalProperties": METRICS_HISTOGRAM_SCHEMA,
                },
            },
        },
        "attempts": {
            "type": "object",
            "additionalProperties": {
                "type": "object",
                "properties": {
                    "rss_peak_kb": {"type": "integer", "minimum": 0},
                    "metrics_merged": {"type": "boolean"},
                    "spans": {"type": "integer", "minimum": 0},
                },
            },
        },
    },
}

#: One entry of the content-addressed result cache
#: (:mod:`repro.service.cache`): the payload inside the entry's
#: integrity envelope.  The stored key must both match the filename
#: and recompute from ``(experiment_id, params, code_fingerprint)`` —
#: checked by :func:`repro.service.cache.verify_entry_envelope`, not
#: expressible in the schema language.
CACHE_ENTRY_SCHEMA: Dict[str, object] = {
    "type": "object",
    "required": [
        "key",
        "experiment_id",
        "params",
        "code_fingerprint",
        "created_wall",
        "token",
        "outcome",
    ],
    "properties": {
        "key": {"type": "string"},
        "experiment_id": {"type": "string"},
        "params": {"type": "object"},
        "code_fingerprint": {"type": "string"},
        "created_wall": {"type": "number"},
        "token": {"type": "integer", "minimum": 0},
        "outcome": OUTCOME_SCHEMA,
    },
}

#: The cache's manifest index (``cache-manifest.json``).  The manifest
#: is an index, the entries are the truth; ``validate`` flags
#: disagreements between the two rather than trusting either blindly.
CACHE_MANIFEST_SCHEMA: Dict[str, object] = {
    "type": "object",
    "required": ["format", "entries"],
    "properties": {
        "format": {"type": "integer", "minimum": 1},
        "entries": {
            "type": "object",
            "additionalProperties": {
                "type": "object",
                "required": ["experiment_id", "file"],
                "properties": {
                    "experiment_id": {"type": "string"},
                    "file": {"type": "string"},
                    "created_wall": {"type": "number"},
                },
            },
        },
    },
}

#: One CRC-framed line of ``timeline.jsonl`` (:mod:`repro.obs.timeline`).
#: Recorders omit fields that do not apply to a row kind (cache rows
#: carry no ``misses`` vector, for example), so only the envelope
#: identity fields are required.
TIMELINE_ROW_SCHEMA: Dict[str, object] = {
    "type": "object",
    "required": ["v", "kind", "seq", "pid", "t_wall", "refs"],
    "properties": {
        "v": {"type": "integer", "minimum": 1},
        "kind": {
            "type": "string",
            "enum": ["stackdist", "fullassoc", "setassoc"],
        },
        "seq": {"type": "integer", "minimum": 0},
        "pid": {"type": "integer", "minimum": 1},
        "t_wall": {"type": "number"},
        "refs": {"type": "integer", "minimum": 1},
        "counted": {"type": "integer", "minimum": 0},
        "cold": {"type": "integer", "minimum": 0},
        "elapsed_s": {"type": "number", "minimum": 0},
        "refs_per_second": {"type": "number", "minimum": 0},
        "block_size": {"type": "integer", "minimum": 1},
        "ws_blocks": {"type": "integer", "minimum": 0},
        "footprint_blocks": {"type": "integer", "minimum": 0},
        "capacity_bytes": {"type": "integer", "minimum": 1},
        "misses_total": {"type": "integer", "minimum": 0},
        "cache_sizes": {"type": "array", "items": {"type": "integer", "minimum": 1}},
        "misses": {"type": "array", "items": {"type": "integer", "minimum": 0}},
        "depth_p50": {"type": "integer", "minimum": 0},
        "depth_p90": {"type": "integer", "minimum": 0},
        "depth_p99": {"type": "integer", "minimum": 0},
        "tier": {"type": "string", "enum": ["vector", "oracle"]},
        "experiment_id": {"type": "string"},
        "attempt_uid": {"type": "string"},
    },
}

#: One CRC-framed line of ``perf-archive.jsonl`` (:mod:`repro.obs.archive`).
#: ``git_sha`` is optional (omitted when unresolvable, never faked);
#: detail fields vary with ``kind`` so extras stay open.
ARCHIVE_ROW_SCHEMA: Dict[str, object] = {
    "type": "object",
    "required": ["v", "kind", "series", "timestamp", "hostname"],
    "properties": {
        "v": {"type": "integer", "minimum": 1},
        "kind": {"type": "string", "enum": ["campaign", "bench"]},
        "series": {"type": "string"},
        "timestamp": {"type": "string"},
        "hostname": {"type": "string"},
        "git_sha": {"type": "string"},
        "run_dir": {"type": "string"},
        "state": {"type": "string"},
        "experiments": {"type": "array", "items": {"type": "string"}},
        "bench": {"type": "string"},
        "refs_per_second": {"type": ["number", "null"]},
        "refs_simulated": {"type": ["integer", "null"]},
        "kernel_tier": {"type": "string"},
        "obs_overhead_pct": {"type": ["number", "null"]},
        "mean_seconds": {"type": ["number", "null"]},
        "phases": {"type": "object"},
        "knee_bytes": {"type": "object"},
        "miss_rates": {"type": "object"},
    },
}

#: Artifact-kind name -> payload schema (what sits inside an envelope).
PAYLOAD_SCHEMAS: Dict[str, Dict[str, object]] = {
    "manifest": MANIFEST_SCHEMA,
    "summary": SUMMARY_SCHEMA,
    "outcome": OUTCOME_SCHEMA,
    "result": RESULT_SCHEMA,
    "failure": FAILURE_SCHEMA,
    "event": EVENT_SCHEMA,
    "trace-header": TRACE_HEADER_SCHEMA,
    "journal-record": JOURNAL_RECORD_SCHEMA,
    "lease": LEASE_SCHEMA,
    "span": SPAN_SCHEMA,
    "metrics": METRICS_SNAPSHOT_SCHEMA,
    "cache-entry": CACHE_ENTRY_SCHEMA,
    "cache-manifest": CACHE_MANIFEST_SCHEMA,
    "timeline-row": TIMELINE_ROW_SCHEMA,
    "archive-row": ARCHIVE_ROW_SCHEMA,
}


def schema_for(kind: str) -> Dict[str, object]:
    """Look up the payload schema for an artifact kind."""
    try:
        return PAYLOAD_SCHEMAS[kind]
    except KeyError:
        raise KeyError(
            f"no schema for artifact kind {kind!r}; "
            f"choices: {sorted(PAYLOAD_SCHEMAS)}"
        )
