"""Differential cross-checks between independent cache simulators.

The repository has two ways of computing a fully associative LRU miss
count: the single-pass Mattson stack-distance profiler
(:mod:`repro.mem.stack_distance`, Fenwick-tree based) and the explicit
cache simulator (:mod:`repro.mem.cache`, LRU-list based).  They share
no code beyond the trace reader, so running both on the same trace and
demanding *exact* agreement at every sampled capacity catches
implementation drift in either — an off-by-one in eviction, a warmup
accounting slip, a Fenwick indexing bug — that no single-simulator test
can see.

Two further invariants tie in the limited-associativity simulator used
for the paper's Section 6.4 study:

- **per-set inclusion**: with the set count held fixed, each set sees
  the same reference substream regardless of associativity, so LRU
  stack inclusion applies set-by-set and the miss count is monotone
  non-increasing in the number of ways;
- **compulsory floor**: any cache, whatever its organization, must
  miss at least once per distinct block in the trace.

Note what is deliberately *not* checked: "set-associative misses are
bounded below by fully associative misses at equal capacity" is a
tempting invariant but a false one — LRU is not Belady-optimal, and a
partitioned cache can retain blocks that fully associative LRU evicts
(streaming sweeps slightly larger than the cache are the classic
case).  Running that check against this repository's own trace corpus
refutes it on every application, which is itself a useful property of
the corpus: the differential harness distinguishes true invariants
from folklore.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence

import numpy as np

from repro.mem.cache import FullyAssociativeCache
from repro.mem.setassoc import SetAssociativeCache
from repro.mem.stack_distance import StackDistanceProfiler
from repro.mem.trace import Trace
from repro.validate.oracles import validate_profile
from repro.validate.report import ValidationReport

#: Default associativities exercised by the lower-bound check.
DEFAULT_ASSOCIATIVITIES = (1, 2, 4)


def _kernel_tier_scope(kernel_tier: Optional[str]):
    """Context manager pinning the simulation kernel tier for one check.

    ``kernel_tier="oracle"`` forces the pure-Python reference loops,
    ``"vector"`` forces the vectorized kernels (still shadow-verified),
    and ``None`` leaves the ambient :mod:`repro.mem.kernels`
    configuration untouched — so existing callers see no behaviour
    change.
    """
    import contextlib

    if kernel_tier is None:
        return contextlib.nullcontext()
    from repro.mem import kernels

    return kernels.tier_override(kernel_tier)


def default_check_capacities(
    trace: Trace, block_size: int = 8, points: int = 6
) -> List[int]:
    """Sample capacities (bytes) spanning one block to past the
    trace footprint — the region where miss counts actually vary."""
    footprint_blocks = max(int(trace.footprint(block_size)), 1)
    grid = {1, 2}
    for fraction in np.linspace(0.25, 1.25, max(points - 2, 1)):
        grid.add(max(int(round(footprint_blocks * fraction)), 1))
    return sorted(blocks * block_size for blocks in grid)


def cross_check_trace(
    trace: Trace,
    capacities_bytes: Optional[Sequence[int]] = None,
    block_size: int = 8,
    associativities: Iterable[int] = DEFAULT_ASSOCIATIVITIES,
    subject: str = "trace",
    kernel_tier: Optional[str] = None,
) -> ValidationReport:
    """Cross-check the Mattson profiler against explicit simulation.

    At every sampled capacity the profiler's predicted miss count must
    equal the explicit fully associative simulator's *exactly* (both
    model ideal LRU; any discrepancy is a bug, not noise).  The
    set-associative simulator is then checked against per-set LRU
    inclusion (fixed set count, misses non-increasing in ways) and the
    compulsory-miss floor.

    Args:
        trace: The reference stream to replay.
        capacities_bytes: Capacities to sample (default:
            :func:`default_check_capacities`).
        block_size: Line size in bytes for all three instruments.
        associativities: Ways for the inclusion chain (ascending).
        subject: Label for the returned report.
        kernel_tier: ``"vector"``/``"oracle"`` to pin the simulation
            kernel tier for the whole check; None keeps the ambient
            :mod:`repro.mem.kernels` configuration.

    Returns:
        A :class:`~repro.validate.report.ValidationReport` whose error
        findings use codes ``differential-mismatch``,
        ``setassoc-inclusion``, and ``setassoc-below-cold-floor`` (plus
        any profile-oracle codes).
    """
    if kernel_tier is not None:
        with _kernel_tier_scope(kernel_tier):
            return cross_check_trace(
                trace,
                capacities_bytes=capacities_bytes,
                block_size=block_size,
                associativities=associativities,
                subject=subject,
            )
    report = ValidationReport(subject=f"differential {subject}")
    if capacities_bytes is None:
        capacities_bytes = default_check_capacities(trace, block_size)

    profile = StackDistanceProfiler(block_size=block_size).profile(trace)
    report.extend(validate_profile(profile, trace=trace, subject=subject))
    footprint = int(trace.footprint(block_size))

    for capacity in capacities_bytes:
        capacity = int(capacity)
        predicted = profile.misses_at(capacity // block_size)
        cache = FullyAssociativeCache(capacity, block_size)
        simulated = cache.run(trace).misses
        report.tick()
        if predicted != simulated:
            report.add(
                "differential-mismatch",
                f"capacity {capacity} B: Mattson profiler predicts "
                f"{predicted} misses but explicit simulation counts "
                f"{simulated}",
            )
            continue
        # Per-set inclusion chain: hold the set count at this capacity's
        # block count and widen each set — same index stream, larger
        # per-set LRU stacks, so misses must not increase.
        num_sets = capacity // block_size
        previous = None
        for ways in sorted(set(int(w) for w in associativities)):
            if ways < 1:
                continue
            sa = SetAssociativeCache(
                num_sets * ways * block_size,
                block_size=block_size,
                associativity=ways,
            )
            sa_misses = sa.run(trace).misses
            report.tick()
            if sa_misses < footprint:
                report.add(
                    "setassoc-below-cold-floor",
                    f"{num_sets} sets x {ways} ways: {sa_misses} misses "
                    f"below the compulsory floor of {footprint} distinct "
                    "blocks",
                )
            if previous is not None and sa_misses > previous[1]:
                report.add(
                    "setassoc-inclusion",
                    f"{num_sets} sets: widening {previous[0]} -> {ways} "
                    f"ways increased misses {previous[1]} -> {sa_misses}, "
                    "violating per-set LRU inclusion",
                )
            previous = (ways, sa_misses)
    return report


def cross_check_streamed(
    trace: Trace,
    work_dir,
    capacities_bytes: Optional[Sequence[int]] = None,
    block_size: int = 8,
    shard_refs: Optional[int] = None,
    subject: str = "trace",
    kernel_tier: Optional[str] = None,
) -> ValidationReport:
    """Demand EXACT agreement between streamed and in-memory paths.

    Shards ``trace`` into a multi-shard ``.trd`` directory under
    ``work_dir`` and replays all three simulators both ways.  Every
    comparison is exact — same misses, same histograms, same columns —
    because the streamed path feeds the identical hot loops chunk-wise;
    any divergence is a bug in the shard substrate, never noise.

    Error findings use the code ``streaming-mismatch``.
    ``kernel_tier`` pins the simulation kernel tier for both paths
    (see :func:`cross_check_trace`).
    """
    from pathlib import Path

    from repro.mem.shards import StreamingTraceBuilder

    if kernel_tier is not None:
        with _kernel_tier_scope(kernel_tier):
            return cross_check_streamed(
                trace,
                work_dir,
                capacities_bytes=capacities_bytes,
                block_size=block_size,
                shard_refs=shard_refs,
                subject=subject,
            )
    report = ValidationReport(subject=f"streaming {subject}")
    if capacities_bytes is None:
        capacities_bytes = default_check_capacities(trace, block_size)
    if shard_refs is None:
        # Force a genuinely multi-shard layout so chunk boundaries and
        # cross-shard state carry are actually exercised.
        shard_refs = max(len(trace) // 7, 1)

    builder = StreamingTraceBuilder(
        Path(work_dir) / f"{subject}.trd", shard_refs=shard_refs
    )
    builder.extend_arrays(trace.addrs, trace.kinds)
    streamed = builder.build()

    report.tick()
    if len(streamed) != len(trace) or not (
        np.array_equal(streamed.load().addrs, trace.addrs)
        and np.array_equal(streamed.load().kinds, trace.kinds)
    ):
        report.add(
            "streaming-mismatch",
            f"shard round-trip altered the reference stream "
            f"({len(trace)} refs in, {len(streamed)} out)",
        )
        return report

    profiler = StackDistanceProfiler(block_size=block_size)
    profile_mem = profiler.profile(trace)
    profile_str = profiler.profile(streamed)
    report.tick()
    if not (
        np.array_equal(
            profile_mem.depth_histogram, profile_str.depth_histogram
        )
        and profile_mem.cold_misses == profile_str.cold_misses
        and profile_mem.total == profile_str.total
    ):
        report.add(
            "streaming-mismatch",
            "streamed stack-distance profile differs from in-memory "
            f"(cold {profile_str.cold_misses} vs {profile_mem.cold_misses}, "
            f"total {profile_str.total} vs {profile_mem.total})",
        )

    for capacity in capacities_bytes:
        capacity = int(capacity)
        stats_mem = FullyAssociativeCache(capacity, block_size).run(trace)
        stats_str = FullyAssociativeCache(capacity, block_size).run(streamed)
        report.tick()
        if (
            stats_mem.reads,
            stats_mem.writes,
            stats_mem.read_misses,
            stats_mem.write_misses,
            stats_mem.cold_misses,
        ) != (
            stats_str.reads,
            stats_str.writes,
            stats_str.read_misses,
            stats_str.write_misses,
            stats_str.cold_misses,
        ):
            report.add(
                "streaming-mismatch",
                f"capacity {capacity} B: streamed fully associative stats "
                f"({stats_str.misses} misses) differ from in-memory "
                f"({stats_mem.misses} misses)",
            )
        num_blocks = max(capacity // block_size, 1)
        for ways in (1, 2):
            if num_blocks % ways:
                continue
            sa_mem = SetAssociativeCache(
                capacity, block_size=block_size, associativity=ways
            ).run(trace)
            sa_str = SetAssociativeCache(
                capacity, block_size=block_size, associativity=ways
            ).run(streamed)
            report.tick()
            if (sa_mem.misses, sa_mem.cold_misses) != (
                sa_str.misses,
                sa_str.cold_misses,
            ):
                report.add(
                    "streaming-mismatch",
                    f"capacity {capacity} B x {ways} way(s): streamed "
                    f"set-associative misses {sa_str.misses} differ from "
                    f"in-memory {sa_mem.misses}",
                )
    return report


def cross_check_corpus(
    names: Optional[Iterable[str]] = None,
    streamed_work_dir=None,
    kernel_tier: Optional[str] = None,
) -> ValidationReport:
    """Run :func:`cross_check_trace` over the pinned trace corpus.

    Args:
        names: Corpus entry names to check (default: all five apps).
        streamed_work_dir: When given, additionally run
            :func:`cross_check_streamed` for every entry, sharding into
            this directory — the acceptance oracle that the streamed
            simulators agree exactly with the in-memory path.
        kernel_tier: ``"vector"``/``"oracle"`` to pin the simulation
            kernel tier for every check; None keeps the ambient
            :mod:`repro.mem.kernels` configuration.
    """
    from repro.validate.corpus import CORPUS, corpus_entry
    from repro.validate.report import merge_reports

    entries = (
        list(CORPUS) if names is None else [corpus_entry(n) for n in names]
    )
    reports = []
    for entry in entries:
        trace = entry.build()
        reports.append(
            cross_check_trace(
                trace, subject=entry.name, kernel_tier=kernel_tier
            )
        )
        if streamed_work_dir is not None:
            reports.append(
                cross_check_streamed(
                    trace,
                    streamed_work_dir,
                    subject=entry.name,
                    kernel_tier=kernel_tier,
                )
            )
    return merge_reports("differential corpus", reports)
