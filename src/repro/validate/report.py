"""Typed findings and validation reports.

Every check in :mod:`repro.validate` — invariant oracles, differential
cross-checks, artifact/schema validation, fuzz targets — reports
problems as :class:`Finding` records collected into a
:class:`ValidationReport`.  A finding is *typed*: its ``code`` names
the corruption or violation class (``"trace-checksum"``,
``"curve-not-monotone"``, ``"events-torn"``, ...), so tests and CI can
assert that a specific fault produced a specific finding rather than
grepping prose.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

#: Finding severities.  ``error`` fails validation; ``warning`` is
#: surfaced but does not change the exit status.
SEVERITY_ERROR = "error"
SEVERITY_WARNING = "warning"


@dataclass(frozen=True)
class Finding:
    """One typed validation finding.

    Attributes:
        code: Machine-readable class of the problem (kebab-case, e.g.
            ``"trace-checksum"`` or ``"curve-not-monotone"``).
        message: Human-readable description.
        path: The artifact (file, or dotted object path) the finding is
            about; empty for object-level checks with no file.
        severity: ``"error"`` or ``"warning"``.
    """

    code: str
    message: str
    path: str = ""
    severity: str = SEVERITY_ERROR

    def render(self) -> str:
        where = f" [{self.path}]" if self.path else ""
        return f"{self.severity.upper()} {self.code}{where}: {self.message}"

    def to_dict(self) -> Dict[str, object]:
        return {
            "code": self.code,
            "message": self.message,
            "path": self.path,
            "severity": self.severity,
        }


@dataclass
class ValidationReport:
    """The aggregate outcome of one validation pass.

    Attributes:
        subject: What was validated (a run directory, an experiment id,
            an app name, ...).
        findings: Every problem found; empty means the subject passed.
        checks_run: Number of individual checks executed (for "passed
            clean" reports to show work actually happened).
    """

    subject: str
    findings: List[Finding] = field(default_factory=list)
    checks_run: int = 0

    @property
    def errors(self) -> List[Finding]:
        return [f for f in self.findings if f.severity == SEVERITY_ERROR]

    @property
    def warnings(self) -> List[Finding]:
        return [f for f in self.findings if f.severity == SEVERITY_WARNING]

    @property
    def ok(self) -> bool:
        """True when no error-severity finding was recorded."""
        return not self.errors

    def add(
        self,
        code: str,
        message: str,
        path: str = "",
        severity: str = SEVERITY_ERROR,
    ) -> Finding:
        finding = Finding(code=code, message=message, path=path, severity=severity)
        self.findings.append(finding)
        return finding

    def tick(self, count: int = 1) -> None:
        """Record that ``count`` checks ran (pass or fail)."""
        self.checks_run += count

    def extend(self, other: "ValidationReport") -> None:
        """Absorb another report's findings and check count."""
        self.findings.extend(other.findings)
        self.checks_run += other.checks_run

    def codes(self) -> List[str]:
        """The distinct finding codes, in first-seen order."""
        seen: List[str] = []
        for finding in self.findings:
            if finding.code not in seen:
                seen.append(finding.code)
        return seen

    def by_code(self, code: str) -> List[Finding]:
        return [f for f in self.findings if f.code == code]

    def render(self) -> str:
        """Human-readable report."""
        lines = [
            f"== validation: {self.subject} ==",
            f"  checks run: {self.checks_run}",
        ]
        for finding in self.findings:
            lines.append("  " + finding.render())
        verdict = "PASS" if self.ok else "FAIL"
        lines.append(
            f"  verdict: {verdict} ({len(self.errors)} error(s), "
            f"{len(self.warnings)} warning(s))"
        )
        return "\n".join(lines)

    def to_dict(self) -> Dict[str, object]:
        return {
            "subject": self.subject,
            "ok": self.ok,
            "checks_run": self.checks_run,
            "findings": [f.to_dict() for f in self.findings],
        }

    def raise_if_failed(self, exception: Optional[type] = None) -> None:
        """Raise a typed error summarizing the failures (no-op when ok).

        Args:
            exception: Exception class (default
                :class:`~repro.runtime.errors.ValidationError`).
        """
        if self.ok:
            return
        if exception is None:
            from repro.runtime.errors import ValidationError

            exception = ValidationError
        summary = "; ".join(
            f"[{f.code}] {f.message}" for f in self.errors[:5]
        )
        more = len(self.errors) - 5
        if more > 0:
            summary += f"; and {more} more"
        raise exception(f"{self.subject}: {summary}")


def merge_reports(
    subject: str, reports: Sequence[ValidationReport]
) -> ValidationReport:
    """Combine per-section reports into one."""
    merged = ValidationReport(subject=subject)
    for report in reports:
        merged.extend(report)
    return merged
