"""Deterministic fuzzing of the artifact readers.

Every on-disk reader in this repository promises to fail *typed* — a
damaged trace archive raises
:class:`~repro.mem.tracefile.TraceFileCorruptError`, a damaged
checkpoint raises
:class:`~repro.runtime.errors.CheckpointCorruptError`, and the strict
event-log validator reports findings instead of raising at all.  This
module tests that promise adversarially: it builds pristine artifacts
once, then applies seeded random mutations (truncation, bit flips,
byte substitution, zeroed spans, appended junk, emptying) and feeds
the mangled bytes back through the real readers.

Each case is classified:

- ``rejected`` — the reader raised its typed error (or, for the event
  log, reported an error finding): the contract held.
- ``accepted-identical`` — the reader accepted the bytes and produced
  data equal to the pristine artifact (the mutation hit slack bytes:
  zip padding, JSON whitespace, a truncation past the payload).  Also
  fine.
- ``accepted-divergent`` — the reader accepted the bytes but produced
  *different* data.  For checksummed artifacts (traces, checkpoints)
  this is a silent-corruption bug and fails the fuzz run; for the
  event log — which is deliberately unchecksummed — a mutation that
  keeps a line valid JSON is indistinguishable from a legitimate
  record, so divergence there is expected and counted separately.
- ``unexpected-error`` — the reader leaked an exception outside its
  typed contract (``KeyError``, ``TypeError``, a raw ``zlib.error``,
  ...).  Always a bug; always fails the run.

The whole campaign is a pure function of ``seed``, so a failure
reproduces with the case index alone.
"""

from __future__ import annotations

import dataclasses
import json
import shutil
from collections import Counter
from pathlib import Path
from typing import Callable, Dict, List, Optional, Tuple, Union

import numpy as np

from repro.mem.trace import Trace, TraceBuilder
from repro.mem.tracefile import (
    TraceFileCorruptError,
    load_metadata,
    load_trace,
    save_trace,
    trace_header,
)
from repro.runtime.checkpoint import CheckpointStore
from repro.runtime.errors import CheckpointCorruptError, ValidationError
from repro.validate.report import ValidationReport

#: Exceptions a reader is *allowed* to raise on corrupt input.
#: ``TraceFileCorruptError`` subclasses ``ValueError``; the bare
#: ``ValueError`` admits the documented version-mismatch rejection.
TYPED_REJECTIONS = (
    TraceFileCorruptError,
    CheckpointCorruptError,
    ValidationError,
    ValueError,
)

#: Case classifications.
REJECTED = "rejected"
ACCEPTED_IDENTICAL = "accepted-identical"
ACCEPTED_DIVERGENT = "accepted-divergent"
UNEXPECTED_ERROR = "unexpected-error"


# -- mutations -------------------------------------------------------------


def _mutate_truncate(data: bytes, rng: np.random.Generator) -> bytes:
    if not data:
        return data
    return data[: int(rng.integers(0, len(data)))]


def _mutate_bitflip(data: bytes, rng: np.random.Generator) -> bytes:
    if not data:
        return data
    buf = bytearray(data)
    pos = int(rng.integers(0, len(buf)))
    buf[pos] ^= 1 << int(rng.integers(0, 8))
    return bytes(buf)


def _mutate_byte(data: bytes, rng: np.random.Generator) -> bytes:
    if not data:
        return data
    buf = bytearray(data)
    buf[int(rng.integers(0, len(buf)))] = int(rng.integers(0, 256))
    return bytes(buf)


def _mutate_zero_span(data: bytes, rng: np.random.Generator) -> bytes:
    if not data:
        return data
    buf = bytearray(data)
    start = int(rng.integers(0, len(buf)))
    span = int(rng.integers(1, 33))
    buf[start : start + span] = b"\x00" * len(buf[start : start + span])
    return bytes(buf)


def _mutate_append(data: bytes, rng: np.random.Generator) -> bytes:
    junk = rng.integers(0, 256, size=int(rng.integers(1, 64)), dtype=np.uint8)
    return data + junk.tobytes()


def _mutate_empty(data: bytes, rng: np.random.Generator) -> bytes:
    return b""


MUTATIONS: Dict[str, Callable[[bytes, np.random.Generator], bytes]] = {
    "truncate": _mutate_truncate,
    "bitflip": _mutate_bitflip,
    "byte-substitute": _mutate_byte,
    "zero-span": _mutate_zero_span,
    "append-junk": _mutate_append,
    "empty": _mutate_empty,
}


# -- case records ----------------------------------------------------------


@dataclasses.dataclass(frozen=True)
class FuzzCase:
    """One executed fuzz case."""

    index: int
    target: str
    mutation: str
    classification: str
    detail: str = ""


@dataclasses.dataclass
class FuzzReport:
    """The outcome of one fuzz campaign."""

    seed: int
    cases: List[FuzzCase] = dataclasses.field(default_factory=list)

    @property
    def counts(self) -> Dict[str, int]:
        return dict(Counter(case.classification for case in self.cases))

    def problems(self) -> List[FuzzCase]:
        """Cases that violate a reader's contract."""
        return [
            c
            for c in self.cases
            if c.classification == UNEXPECTED_ERROR
            or (c.classification == ACCEPTED_DIVERGENT and c.target != "events")
        ]

    @property
    def ok(self) -> bool:
        return not self.problems()

    def to_validation_report(self) -> ValidationReport:
        report = ValidationReport(subject=f"fuzz seed={self.seed}")
        report.tick(len(self.cases))
        for case in self.problems():
            code = (
                "fuzz-unexpected-error"
                if case.classification == UNEXPECTED_ERROR
                else "fuzz-silent-corruption"
            )
            report.add(
                code,
                f"case {case.index} ({case.target}, {case.mutation}): "
                f"{case.detail}",
            )
        return report

    def render(self) -> str:
        lines = [f"== fuzz: {len(self.cases)} cases, seed {self.seed} =="]
        for name, count in sorted(self.counts.items()):
            lines.append(f"  {name}: {count}")
        problems = self.problems()
        lines.append(
            f"  verdict: {'PASS' if not problems else 'FAIL'} "
            f"({len(problems)} contract violation(s))"
        )
        for case in problems[:10]:
            lines.append(
                f"    case {case.index} {case.target}/{case.mutation}: "
                f"{case.detail}"
            )
        return "\n".join(lines)


# -- pristine artifacts ----------------------------------------------------


def _pristine_trace() -> Trace:
    tb = TraceBuilder()
    for sweep in range(3):
        for i in range(128):
            tb.read(8 * i)
            if i % 4 == 0:
                tb.write(8 * (i % 32))
    return tb.build()


def _build_targets(work_dir: Path) -> Dict[str, Tuple[Path, Callable[[Path], object]]]:
    """Create pristine artifacts; returns target -> (path, loader).

    Loaders return a canonical representation used for divergence
    detection; they raise on rejection.
    """
    from repro.experiments.runner import ExperimentResult
    from repro.runtime.engine import ExperimentOutcome
    from repro.runtime.events import EventLog
    from repro.core.curves import MissRateCurve

    work_dir.mkdir(parents=True, exist_ok=True)

    trace = _pristine_trace()
    trace_path = work_dir / "pristine.npz"
    save_trace(
        trace_path,
        trace,
        metadata={**trace_header(trace), "processor": 0, "seed": 0},
    )

    store = CheckpointStore(work_dir / "store")
    result = ExperimentResult(
        experiment_id="fuzz",
        title="Fuzz target",
        curves=[
            MissRateCurve(
                capacities=np.array([64, 128, 256]),
                miss_rates=np.array([0.5, 0.25, 0.125]),
                label="fuzz",
            )
        ],
    )
    outcome = ExperimentOutcome(
        experiment_id="fuzz", status="ok", result=result, attempts=1
    )
    checkpoint_path = store.save_outcome(outcome)

    # Deterministic clocks: the campaign must be a pure function of the
    # seed, so the pristine bytes cannot embed real timestamps.
    ticks = iter(range(100))
    events_path = work_dir / "events.jsonl"
    with EventLog(
        events_path,
        clock=lambda: float(next(ticks)),
        wall_clock=lambda: 1700000000.0,
    ) as log:
        for i in range(6):
            log.emit("fuzz-event", experiment_id="fuzz", attempt=i + 1)

    def load_trace_canonical(path: Path) -> object:
        loaded = load_trace(path)
        meta = load_metadata(path)
        return (
            loaded.addrs.tobytes(),
            loaded.kinds.tobytes(),
            json.dumps(meta, sort_keys=True),
        )

    def load_checkpoint_canonical(path: Path) -> object:
        payload = store._read_envelope(path)
        return json.dumps(payload, sort_keys=True)

    def load_events_canonical(path: Path) -> object:
        from repro.validate.artifacts import validate_events_file

        report = validate_events_file(path)
        if not report.ok:
            raise ValidationError(
                "; ".join(f.render() for f in report.errors[:3])
            )
        from repro.runtime.events import read_events

        return json.dumps(read_events(path), sort_keys=True)

    return {
        "trace": (trace_path, load_trace_canonical),
        "checkpoint": (checkpoint_path, load_checkpoint_canonical),
        "events": (events_path, load_events_canonical),
    }


# -- the campaign ----------------------------------------------------------


def run_fuzz(
    cases: int = 500,
    seed: int = 0,
    work_dir: Optional[Union[str, Path]] = None,
) -> FuzzReport:
    """Run a deterministic fuzz campaign over the artifact readers.

    Args:
        cases: Number of mutated artifacts to feed through readers.
        seed: RNG seed; the campaign is a pure function of it.
        work_dir: Scratch directory (a temporary one is created and
            removed when omitted).

    Returns:
        A :class:`FuzzReport`; ``report.ok`` is False iff any reader
        violated its typed-error contract.
    """
    import tempfile

    owns_dir = work_dir is None
    if owns_dir:
        work_dir = Path(tempfile.mkdtemp(prefix="repro-fuzz-"))
    work_dir = Path(work_dir)
    report = FuzzReport(seed=seed)
    try:
        targets = _build_targets(work_dir)
        pristine: Dict[str, Tuple[bytes, object]] = {}
        for name, (path, loader) in targets.items():
            pristine[name] = (path.read_bytes(), loader(path))

        rng = np.random.default_rng(seed)
        target_names = sorted(targets)
        mutation_names = sorted(MUTATIONS)
        scratch = work_dir / "case-under-test"
        for index in range(cases):
            target = target_names[int(rng.integers(0, len(target_names)))]
            mutation = mutation_names[int(rng.integers(0, len(mutation_names)))]
            original, baseline = pristine[target]
            mutated = MUTATIONS[mutation](original, rng)
            scratch.write_bytes(mutated)
            _, loader = targets[target]
            try:
                loaded = loader(scratch)
            except TYPED_REJECTIONS as exc:
                classification, detail = REJECTED, f"{type(exc).__name__}"
            except FileNotFoundError:
                classification, detail = REJECTED, "FileNotFoundError"
            except BaseException as exc:  # noqa: BLE001 — the contract under test
                classification = UNEXPECTED_ERROR
                detail = f"leaked {type(exc).__name__}: {exc}"
            else:
                if mutated == original or loaded == baseline:
                    classification, detail = ACCEPTED_IDENTICAL, ""
                else:
                    classification = ACCEPTED_DIVERGENT
                    detail = "reader accepted mutated bytes as different data"
            report.cases.append(
                FuzzCase(
                    index=index,
                    target=target,
                    mutation=mutation,
                    classification=classification,
                    detail=detail,
                )
            )
    finally:
        if owns_dir:
            shutil.rmtree(work_dir, ignore_errors=True)
    return report
