"""A small deterministic trace corpus spanning all five applications.

The result-integrity layer needs real traces to exercise: the
differential cross-checks replay them through two independent
simulators, the fuzzer mutates their serialized form, and the
determinism audit regenerates them and compares bytes.  This module
pins one quick, seeded configuration per application — small enough
that the whole corpus builds in a few seconds, large enough that every
generator's distinctive reference pattern (block reuse, streaming,
tree walks) is present.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping

from repro.mem.trace import Trace


@dataclass(frozen=True)
class CorpusEntry:
    """One pinned trace configuration.

    Attributes:
        name: Stable corpus key (also used in test ids and fuzz seeds).
        app: Application slug matching
            :data:`repro.validate.selfchecks.SELF_CHECKS`.
        params: The generator parameters, recorded for reporting.
        build: Zero-argument callable producing the trace.
    """

    name: str
    app: str
    params: Mapping[str, object]
    build: Callable[[], Trace] = field(compare=False)


def _lu_trace() -> Trace:
    from repro.apps.lu.trace import LUTraceGenerator

    return LUTraceGenerator(32, 8, 4, seed=0).trace_for_processor(0)


def _cg_trace() -> Trace:
    from repro.apps.cg.trace import CGTraceGenerator

    return CGTraceGenerator(16, 4, seed=0).trace_for_processor(0, iterations=1)


def _fft_trace() -> Trace:
    from repro.apps.fft.trace import FFTTraceGenerator

    return FFTTraceGenerator(256, 4, internal_radix=8, seed=0).trace_for_processor(0)


def _barnes_hut_trace() -> Trace:
    from repro.apps.barnes_hut.trace import BarnesHutTraceGenerator

    return BarnesHutTraceGenerator.from_plummer(
        48, seed=0, num_processors=4
    ).trace_for_processor(0)


def _volrend_trace() -> Trace:
    from repro.apps.volrend.trace import VolrendTraceGenerator

    return VolrendTraceGenerator.from_synthetic_head(
        16, seed=0, num_processors=4
    ).trace_for_processor(0)


#: The five pinned configurations, one per application.
CORPUS: List[CorpusEntry] = [
    CorpusEntry(
        name="lu-n32-b8-p4",
        app="lu",
        params={"n": 32, "block_size": 8, "num_processors": 4, "pid": 0},
        build=_lu_trace,
    ),
    CorpusEntry(
        name="cg-n16-p4",
        app="cg",
        params={"n": 16, "num_processors": 4, "iterations": 1, "pid": 0},
        build=_cg_trace,
    ),
    CorpusEntry(
        name="fft-n256-r8-p4",
        app="fft",
        params={"n": 256, "internal_radix": 8, "num_processors": 4, "pid": 0},
        build=_fft_trace,
    ),
    CorpusEntry(
        name="barnes-hut-n48-p4",
        app="barnes-hut",
        params={"n": 48, "seed": 0, "num_processors": 4, "pid": 0},
        build=_barnes_hut_trace,
    ),
    CorpusEntry(
        name="volrend-n16-p4",
        app="volrend",
        params={"n": 16, "seed": 0, "num_processors": 4, "pid": 0},
        build=_volrend_trace,
    ),
]


def corpus_entry(name: str) -> CorpusEntry:
    """Look up a corpus entry by name."""
    for entry in CORPUS:
        if entry.name == name:
            return entry
    raise KeyError(
        f"no corpus entry named {name!r}; known: {[e.name for e in CORPUS]}"
    )


def build_corpus() -> Dict[str, Trace]:
    """Build every corpus trace (deterministic; ~seconds)."""
    return {entry.name: entry.build() for entry in CORPUS}
