"""Artifact validation for campaign run directories.

A campaign run directory is the repository's unit of reproducibility:
``manifest.json`` records what was asked for, ``results/`` and
``failures/`` hold checksummed outcome envelopes, ``summary.json``
records how the run ended, ``events.jsonl`` is the forensic log, and
any ``.npz`` files are saved traces.  :func:`validate_run_dir` walks
all of it and returns a :class:`~repro.validate.report.ValidationReport`
with one typed finding per defect, each corruption class under its own
code:

==========================  =============================================
finding code                defect class
==========================  =============================================
``checkpoint-corrupt``      envelope fails its SHA-256 / JSON decode
``checkpoint-stale``        result for an experiment the manifest never
                            requested (left over from an older campaign)
``checkpoint-id-mismatch``  filename disagrees with the payload id
``outcome-schema``          outcome payload violates the schema
``manifest-schema``         manifest payload violates the schema
``summary-schema``          summary payload violates the schema
``summary-status-mismatch`` summary's per-experiment status disagrees
                            with the checkpoint on disk
``summary-dangling-id``     summary lists a completion with no checkpoint
``events-torn``             undecodable event line *before* the end of
                            the log (a crash can tear only the last line)
``events-seq``              sequence numbers not strictly increasing
``event-schema``            event record violates the schema
``trace-unreadable``        trace archive truncated / not a zip at all
``trace-corrupt``           trace decodes but fails checksum or fields
``trace-header-mismatch``   metadata header counts disagree with arrays
``trace-manifest-mismatch`` sharded trace directory's manifest missing,
                            undecodable, failing its self-checksum, or
                            disagreeing with the shards on disk
                            (totals, indexes, unexpected extras)
``trace-shard-missing``     manifest lists a shard file that is absent
``trace-shard-corrupt``     shard truncated, bit-flipped, failing its
                            SHA-256/CRC, or disagreeing with its
                            manifest entry
``trace-shard-incomplete``  ``.trd.tmp`` staging directory left by an
                            interrupted trace build (warning: the
                            expected crash signature; safe to delete)
``sim-checkpoint-corrupt``  damaged mid-simulation snapshot (warning:
                            resume safely restarts from shard zero)
``journal-torn``            torn record(s) at the journal's tail
                            (warning: the expected crash signature)
``journal-corrupt``         damaged record *before* the tail, or a
                            fencing token that goes backwards
``journal-schema``          journal record violates the record schema
``journal-seq``             journal sequence numbers not increasing
``journal-missing``         checkpoints exist but no journal (warning:
                            a pre-journal run directory)
``dispatch-torn``           torn record(s) at the dispatch WAL's tail
                            (warning: the expected crash signature)
``dispatch-corrupt``        damaged dispatch record before the tail,
                            or a closure (complete/requeue/fence) for
                            an assignment the WAL never opened
``dispatch-schema``         dispatch WAL record violates the journal
                            record schema
``dispatch-orphan-assignment``  an assignment was dispatched but its
                            attempt uid never completed, requeued, or
                            fenced (warning: in-doubt work; resume
                            re-dispatches the attempt)
``dispatch-double-complete``  more than one ``dispatch-complete`` for
                            one attempt uid — the exactly-once
                            recording invariant is broken
``lease-stale``             a supervisor lease file left behind by a
                            dead owner (warning: reclaimed on resume)
``lease-schema``            lease file undecodable / violates schema
``spans-torn``              undecodable span line *before* the end of
                            ``spans.jsonl`` (only the tail may tear)
``spans-schema``            span record violates the span schema
``timeline-torn``           undecodable ``timeline.jsonl`` frame before
                            the tail (error), or a torn trailing append
                            (warning: the expected crash signature)
``timeline-schema``         timeline row violates the row schema, or
                            its miss vector disagrees with its
                            capacity ladder
``archive-corrupt``         ``perf-archive.jsonl`` frame damaged (torn
                            tail warns), row violating the row schema,
                            or an unattributed row
``metrics-schema``          ``metrics.json`` undecodable or violates
                            the snapshot schema
``metrics-dangling-id``     metrics snapshot records telemetry for an
                            attempt uid the journal/events never saw
``cache-entry-corrupt``     cache entry envelope fails its checksum,
                            format, or the cache-entry schema
``cache-key-mismatch``      entry's filename, stored key, and the key
                            recomputed from its (app, params, code)
                            triple do not all agree
``cache-dangling-entry``    cache manifest indexes a key with no valid
                            entry on disk
``cache-unindexed-entry``   valid entry the manifest never indexed
                            (warning: the manifest is an index, the
                            entries are the truth)
``cache-quarantined``       quarantined entries present (warning:
                            forensic leftovers of served corruption)
``kernel-divergence-bundle``  a vectorized-kernel divergence repro
                            bundle under ``kernel-bundles/`` (warning:
                            results are oracle-correct, the fast path
                            misbehaved)
``kernel-bundle-undecodable``  divergence bundle unreadable — the
                            repro evidence is lost
``kernel-bundle-incomplete``  partially written bundle (``*.tmp``;
                            crash during divergence recording)
``kernel-quarantined``      nonzero ``mem.kernel.*.divergences``
                            counters in ``metrics.json`` (warning:
                            oracle fallback computed the results)
``result-*`` / ``curve-*``  invariant-oracle findings on stored results
==========================  =============================================

:func:`validate_cache_dir` audits a content-addressed result cache
(:mod:`repro.service.cache`), and :func:`validate_service_root` audits
a whole multi-tenant service root — every per-campaign run directory,
the service WAL, the service lease, and the shared cache.

Everything is read-only; validation never mutates a run directory.
"""

from __future__ import annotations

import dataclasses
import json
from pathlib import Path
from typing import Dict, List, Optional, Union

from repro.mem.tracefile import TraceFileCorruptError, load_metadata, load_trace
from repro.runtime.checkpoint import CheckpointStore
from repro.runtime.errors import CheckpointCorruptError
from repro.validate.oracles import validate_result
from repro.validate.report import SEVERITY_WARNING, Finding, ValidationReport
from repro.validate.schemas import check_schema, schema_for


def _with_path(report: ValidationReport, other: ValidationReport, path: str) -> None:
    """Merge ``other``'s findings into ``report``, stamping ``path``."""
    report.tick(other.checks_run)
    for finding in other.findings:
        report.findings.append(dataclasses.replace(finding, path=path))


def _schema_findings(
    report: ValidationReport,
    payload: object,
    kind: str,
    code: str,
    path: str,
) -> bool:
    """Schema-check ``payload``; returns True when it conforms."""
    problems = check_schema(payload, schema_for(kind))
    report.tick()
    for problem in problems:
        report.add(code, problem, path=path)
    return not problems


def _read_envelope(
    store: CheckpointStore, report: ValidationReport, path: Path
) -> Optional[Dict[str, object]]:
    """Read one checkpoint envelope, recording corruption findings."""
    rel = str(path.relative_to(store.run_dir))
    try:
        payload = store._read_envelope(path)
    except CheckpointCorruptError as exc:
        report.add("checkpoint-corrupt", str(exc), path=rel)
        return None
    finally:
        report.tick()
    return payload


def validate_events_file(path: Union[str, Path]) -> ValidationReport:
    """Validate an ``events.jsonl`` log line by line.

    Unlike :func:`repro.runtime.events.read_events` (which tolerantly
    skips undecodable lines for post-mortem use), this is the strict
    reader: a torn line anywhere but the very end of the file is an
    error, because the line-buffered single-writer discipline can only
    tear the final line.
    """
    path = Path(path)
    report = ValidationReport(subject=f"events {path.name}")
    if not path.is_file():
        return report
    lines = path.read_text(encoding="utf-8", errors="replace").splitlines()
    last_seq = 0
    for lineno, line in enumerate(lines, start=1):
        report.tick()
        stripped = line.strip()
        if not stripped:
            continue
        try:
            record = json.loads(stripped)
            if not isinstance(record, dict):
                raise ValueError("event line is not a JSON object")
        except (json.JSONDecodeError, ValueError) as exc:
            severity = "error" if lineno < len(lines) else SEVERITY_WARNING
            report.add(
                "events-torn",
                f"line {lineno} is not a JSON object ({exc})"
                + ("" if lineno < len(lines) else " [trailing line: tolerated]"),
                path=str(path.name),
                severity=severity,
            )
            continue
        for problem in check_schema(record, schema_for("event")):
            report.add(
                "event-schema", f"line {lineno}: {problem}", path=str(path.name)
            )
        seq = record.get("seq")
        if isinstance(seq, int):
            if seq <= last_seq:
                report.add(
                    "events-seq",
                    f"line {lineno}: seq {seq} does not increase past "
                    f"{last_seq}",
                    path=str(path.name),
                )
            last_seq = max(last_seq, seq)
    return report


def validate_journal_file(path: Union[str, Path]) -> ValidationReport:
    """Audit a write-ahead journal (``journal.wal``).

    Replays the CRC framing (:func:`repro.runtime.journal.read_journal`)
    and checks every intact record against the journal-record schema,
    sequence monotonicity, and fencing-token monotonicity.  A torn tail
    is a *warning* — it is the expected signature of a crashed
    supervisor, and recovery truncates it — while damage anywhere
    earlier (or a token that goes backwards) indicts the storage and is
    an error.
    """
    from repro.runtime.journal import read_journal

    path = Path(path)
    report = ValidationReport(subject=f"journal {path.name}")
    if not path.is_file():
        return report
    replay = read_journal(path)
    report.tick()
    for lineno, reason in replay.corrupt:
        report.add(
            "journal-corrupt",
            f"line {lineno} is damaged before the tail ({reason}); a "
            "single-writer append discipline cannot produce this",
            path=path.name,
        )
    if replay.torn_tail:
        report.add(
            "journal-torn",
            "torn record(s) at the tail (crash signature; recovery "
            "truncates this on the next resume)",
            path=path.name,
            severity=SEVERITY_WARNING,
        )
    last_seq = 0
    last_token = 0
    for index, record in enumerate(replay.records):
        report.tick()
        for problem in check_schema(record, schema_for("journal-record")):
            report.add(
                "journal-schema",
                f"record {index + 1}: {problem}",
                path=path.name,
            )
        seq = record.get("seq")
        if isinstance(seq, int):
            if seq <= last_seq:
                report.add(
                    "journal-seq",
                    f"record {index + 1}: seq {seq} does not increase "
                    f"past {last_seq}",
                    path=path.name,
                )
            last_seq = max(last_seq, seq)
        token = record.get("token")
        if isinstance(token, int):
            if token < last_token:
                report.add(
                    "journal-corrupt",
                    f"record {index + 1}: fencing token went backwards "
                    f"({last_token} -> {token}); tokens are monotonic by "
                    "protocol",
                    path=path.name,
                )
            last_token = max(last_token, token)
    return report


#: Dispatch WAL record types that *open* an assignment (a hedge is a
#: duplicate dispatch, so its record doubles as the opener) and the
#: types that *close* one.
_DISPATCH_OPENERS = ("dispatch-assign", "dispatch-hedge")
_DISPATCH_CLOSERS = (
    "dispatch-complete",
    "dispatch-requeue",
    "dispatch-fenced",
)


def validate_dispatch_file(path: Union[str, Path]) -> ValidationReport:
    """Audit a dispatch-fabric assignment WAL (``dispatch.wal``).

    Structural checks mirror :func:`validate_journal_file` (CRC
    framing, record schema, sequence monotonicity) under ``dispatch-*``
    codes, then the assignment state machine is replayed per
    ``attempt_uid``:

    - every closure (``dispatch-complete`` / ``dispatch-requeue`` /
      ``dispatch-fenced``) must reference an assignment the WAL opened
      (``dispatch-corrupt`` otherwise — tails tear, heads do not);
    - at most one ``dispatch-complete`` per attempt uid — more is
      ``dispatch-double-complete``, a broken exactly-once-recording
      invariant (the whole point of fencing);
    - an attempt uid that was assigned but never completed is
      ``dispatch-orphan-assignment``, a *warning*: it is the expected
      signature of a dispatcher that died mid-flight (resume simply
      re-dispatches), not of storage damage.  A hedge loser needs no
      closure record — its cancellation is silent by design — so only
      uids with *zero* completions are flagged.
    """
    from repro.runtime.journal import read_journal

    path = Path(path)
    report = ValidationReport(subject=f"dispatch {path.name}")
    if not path.is_file():
        return report
    replay = read_journal(path)
    report.tick()
    for lineno, reason in replay.corrupt:
        report.add(
            "dispatch-corrupt",
            f"line {lineno} is damaged before the tail ({reason}); a "
            "single-writer append discipline cannot produce this",
            path=path.name,
        )
    if replay.torn_tail:
        report.add(
            "dispatch-torn",
            "torn record(s) at the tail (crash signature; the dispatcher "
            "truncates this on the next resume)",
            path=path.name,
            severity=SEVERITY_WARNING,
        )
    last_seq = 0
    opened: Dict[str, str] = {}  # assignment_id -> attempt_uid
    completes: Dict[str, int] = {}  # attempt_uid -> dispatch-complete count
    assigned_uids: List[str] = []
    for index, record in enumerate(replay.records):
        report.tick()
        for problem in check_schema(record, schema_for("journal-record")):
            report.add(
                "dispatch-schema",
                f"record {index + 1}: {problem}",
                path=path.name,
            )
        seq = record.get("seq")
        if isinstance(seq, int):
            if seq <= last_seq:
                report.add(
                    "dispatch-corrupt",
                    f"record {index + 1}: seq {seq} does not increase "
                    f"past {last_seq}",
                    path=path.name,
                )
            last_seq = max(last_seq, seq)
        record_type = record.get("type")
        assignment_id = record.get("assignment_id")
        uid = record.get("attempt_uid")
        if not isinstance(assignment_id, str) or not isinstance(uid, str):
            continue
        if record_type in _DISPATCH_OPENERS:
            opened[assignment_id] = uid
            if uid not in assigned_uids:
                assigned_uids.append(uid)
        elif record_type in _DISPATCH_CLOSERS:
            if assignment_id not in opened:
                report.add(
                    "dispatch-corrupt",
                    f"record {index + 1}: {record_type} closes assignment "
                    f"{assignment_id} that was never opened by a "
                    "dispatch-assign/dispatch-hedge record (only the tail "
                    "of an append-only WAL can tear, never the head)",
                    path=path.name,
                )
            if record_type == "dispatch-complete":
                completes[uid] = completes.get(uid, 0) + 1
    for uid, count in sorted(completes.items()):
        if count > 1:
            report.add(
                "dispatch-double-complete",
                f"attempt {uid} recorded {count} dispatch-complete "
                "records; completion must be exactly-once (a stale or "
                "hedged duplicate slipped past the fence)",
                path=path.name,
            )
    for uid in assigned_uids:
        if completes.get(uid, 0) == 0:
            report.add(
                "dispatch-orphan-assignment",
                f"attempt {uid} was assigned but never completed "
                "(in-doubt dispatch; the crash signature of a dispatcher "
                "killed mid-flight — resume re-dispatches it)",
                path=path.name,
                severity=SEVERITY_WARNING,
            )
    return report


def validate_lease_file(path: Union[str, Path]) -> ValidationReport:
    """Audit a leftover supervisor lease (``supervisor.lease``).

    A run directory at rest should have no lease at all (supervisors
    remove theirs on exit).  One left by a dead or silent owner is a
    warning — the next supervisor reclaims it — and an undecodable or
    schema-violating one is an error.
    """
    from repro.runtime.lease import lease_is_stale, read_lease

    path = Path(path)
    report = ValidationReport(subject=f"lease {path.name}")
    if not path.is_file():
        return report
    report.tick()
    state = read_lease(path)
    if state is None:
        report.add(
            "lease-schema",
            "lease file exists but is undecodable",
            path=path.name,
        )
        return report
    import json as _json

    for problem in check_schema(
        _json.loads(state.to_json()), schema_for("lease")
    ):
        report.add("lease-schema", problem, path=path.name)
    if lease_is_stale(state):
        report.add(
            "lease-stale",
            f"lease held by dead/silent supervisor pid {state.pid} "
            f"(token {state.token}); the next supervisor will reclaim it",
            path=path.name,
            severity=SEVERITY_WARNING,
        )
    return report


def validate_trace_file(path: Union[str, Path]) -> ValidationReport:
    """Validate one saved ``.npz`` trace archive.

    Distinguishes structural unreadability (truncation — the archive is
    not even a zip) from decodable-but-corrupt contents (checksum or
    field failures), and cross-checks the metadata header's reference
    counts against the arrays actually stored.
    """
    path = Path(path)
    report = ValidationReport(subject=f"trace {path.name}")
    name = path.name
    try:
        trace = load_trace(path)
    except TraceFileCorruptError as exc:
        code = (
            "trace-unreadable"
            if "not a readable archive" in str(exc)
            else "trace-corrupt"
        )
        report.add(code, str(exc), path=name)
        return report
    except ValueError as exc:  # unsupported (but intact) format version
        report.add("trace-version", str(exc), path=name)
        return report
    finally:
        report.tick()
    try:
        metadata = load_metadata(path)
    except TraceFileCorruptError as exc:
        report.add("trace-corrupt", str(exc), path=name)
        return report
    finally:
        report.tick()
    header = {
        k: metadata[k] for k in ("refs", "reads", "writes") if k in metadata
    }
    if header:
        for problem in check_schema(metadata, schema_for("trace-header")):
            report.add("trace-header-schema", problem, path=name)
        reads = int((trace.kinds == 0).sum())
        writes = len(trace) - reads
        actual = {"refs": len(trace), "reads": reads, "writes": writes}
        report.tick()
        for key, value in header.items():
            if int(value) != actual[key]:
                report.add(
                    "trace-header-mismatch",
                    f"metadata claims {key}={int(value)} but the arrays "
                    f"hold {actual[key]}",
                    path=name,
                )
    return report


def validate_trace_dir(path: Union[str, Path]) -> ValidationReport:
    """Validate one sharded ``.trd`` trace directory (format v3).

    Audits the manifest's self-checksum, its agreement with the shards
    actually on disk (indexes, totals, no extras), and every shard's
    SHA-256, content CRC, and reference count, finishing with the
    combined content hash.  Damage maps onto three codes:
    ``trace-manifest-mismatch`` (the index lies),
    ``trace-shard-missing`` (a listed shard is gone), and
    ``trace-shard-corrupt`` (a shard's bytes are wrong).
    """
    import hashlib

    from repro.mem import shards as shard_format

    path = Path(path)
    report = ValidationReport(subject=f"trace directory {path.name}")
    manifest_rel = shard_format.MANIFEST_FILENAME
    try:
        manifest = shard_format.read_manifest(path)
    except shard_format.TraceShardCorruptError as exc:
        report.add("trace-manifest-mismatch", str(exc), path=manifest_rel)
        return report
    finally:
        report.tick()

    entries = manifest.get("shards", [])
    indexes = [int(entry.get("index", -1)) for entry in entries]
    report.tick()
    if indexes != list(range(len(entries))):
        report.add(
            "trace-manifest-mismatch",
            f"shard indexes {indexes} are not exactly "
            f"0..{len(entries) - 1} in order (duplicate or gap)",
            path=manifest_rel,
        )
    report.tick()
    for key in ("refs", "reads", "writes"):
        from_shards = sum(int(entry.get(key, 0)) for entry in entries)
        if int(manifest.get(key, -1)) != from_shards:
            report.add(
                "trace-manifest-mismatch",
                f"manifest total {key}={manifest.get(key)} but its shard "
                f"entries sum to {from_shards}",
                path=manifest_rel,
            )
    listed = {str(entry.get("name", "")) for entry in entries}
    report.tick()
    for extra in sorted(p.name for p in path.glob("*.npz")):
        if extra not in listed:
            report.add(
                "trace-manifest-mismatch",
                f"shard file {extra!r} is on disk but not in the manifest",
                path=manifest_rel,
            )

    addr_hash = hashlib.sha256()
    kind_hash = hashlib.sha256()
    damaged = False
    for entry in entries:
        name = str(entry.get("name", ""))
        shard_path = path / name
        report.tick()
        if not shard_path.is_file():
            report.add(
                "trace-shard-missing",
                f"manifest lists {name!r} "
                f"({entry.get('refs')} refs) but the file is absent",
                path=name,
            )
            damaged = True
            continue
        try:
            data = shard_path.read_bytes()
            addrs, kinds = shard_format._decode_shard(data, entry, shard_path)
        except shard_format.TraceShardCorruptError as exc:
            report.add("trace-shard-corrupt", str(exc), path=name)
            damaged = True
            continue
        except OSError as exc:
            report.add(
                "trace-shard-corrupt", f"shard unreadable: {exc}", path=name
            )
            damaged = True
            continue
        addr_bytes, kind_bytes = shard_format._canonical_columns(addrs, kinds)
        addr_hash.update(addr_bytes)
        kind_hash.update(kind_bytes)
    report.tick()
    combined = hashlib.sha256(
        addr_hash.digest() + kind_hash.digest()
    ).hexdigest()
    if not damaged and combined != manifest.get("content_sha256"):
        report.add(
            "trace-manifest-mismatch",
            "every shard verifies individually but the combined content "
            "SHA-256 disagrees with the manifest",
            path=manifest_rel,
        )
    return report


def validate_spans_file(path: Union[str, Path]) -> ValidationReport:
    """Validate a ``spans.jsonl`` trace-span log line by line.

    Same strictness contract as :func:`validate_events_file`: the span
    writer is line-buffered and single-writer per process, so a crash
    can only tear the final line.  An undecodable line anywhere earlier
    is an error (``spans-torn``); a torn trailing line is the expected
    crash signature and only warns.  Every intact record is checked
    against the span schema (``spans-schema``), plus one invariant the
    schema language cannot express: ``dur_s`` must not be NaN.
    """
    path = Path(path)
    report = ValidationReport(subject=f"spans {path.name}")
    if not path.is_file():
        return report
    lines = path.read_text(encoding="utf-8", errors="replace").splitlines()
    for lineno, line in enumerate(lines, start=1):
        report.tick()
        stripped = line.strip()
        if not stripped:
            continue
        try:
            record = json.loads(stripped)
            if not isinstance(record, dict):
                raise ValueError("span line is not a JSON object")
        except (json.JSONDecodeError, ValueError) as exc:
            severity = "error" if lineno < len(lines) else SEVERITY_WARNING
            report.add(
                "spans-torn",
                f"line {lineno} is not a JSON object ({exc})"
                + ("" if lineno < len(lines) else " [trailing line: tolerated]"),
                path=str(path.name),
                severity=severity,
            )
            continue
        for problem in check_schema(record, schema_for("span")):
            report.add(
                "spans-schema", f"line {lineno}: {problem}", path=str(path.name)
            )
        dur = record.get("dur_s")
        if isinstance(dur, float) and dur != dur:  # NaN sneaks past "number"
            report.add(
                "spans-schema",
                f"line {lineno}: dur_s is NaN",
                path=str(path.name),
            )
    return report


def validate_metrics_file(
    path: Union[str, Path],
    known_uids: Optional[List[str]] = None,
) -> ValidationReport:
    """Validate a campaign ``metrics.json`` snapshot.

    The snapshot is written atomically (tmp + rename) so partial JSON
    indicts the storage and is an error (``metrics-schema``), as is any
    schema violation or a histogram whose ``counts`` length is not
    ``len(buckets) + 1`` (the +Inf overflow slot).  When ``known_uids``
    is given, every per-attempt telemetry key must be an attempt uid
    the journal or event log actually issued (``metrics-dangling-id``)
    — telemetry for an attempt nobody started means the snapshot and
    the run directory disagree about history.
    """
    path = Path(path)
    report = ValidationReport(subject=f"metrics {path.name}")
    if not path.is_file():
        return report
    report.tick()
    try:
        snapshot = json.loads(path.read_text(encoding="utf-8"))
        if not isinstance(snapshot, dict):
            raise ValueError("metrics snapshot is not a JSON object")
    except (json.JSONDecodeError, ValueError, OSError) as exc:
        report.add("metrics-schema", f"undecodable: {exc}", path=path.name)
        return report
    for problem in check_schema(snapshot, schema_for("metrics")):
        report.add("metrics-schema", problem, path=path.name)
    campaign = snapshot.get("campaign")
    histograms = (
        campaign.get("histograms") if isinstance(campaign, dict) else None
    )
    if isinstance(histograms, dict):
        for name, hist in sorted(histograms.items()):
            if not isinstance(hist, dict):
                continue
            buckets = hist.get("buckets")
            counts = hist.get("counts")
            report.tick()
            if (
                isinstance(buckets, list)
                and isinstance(counts, list)
                and len(counts) != len(buckets) + 1
            ):
                report.add(
                    "metrics-schema",
                    f"histogram {name!r} has {len(counts)} count slot(s) "
                    f"for {len(buckets)} bucket bound(s); expected "
                    f"{len(buckets) + 1} (+Inf overflow)",
                    path=path.name,
                )
            elif (
                isinstance(counts, list)
                and isinstance(hist.get("count"), int)
                and all(isinstance(c, int) for c in counts)
                and sum(counts) != hist["count"]
            ):
                report.add(
                    "metrics-schema",
                    f"histogram {name!r} bucket counts sum to "
                    f"{sum(counts)} but count says {hist['count']}",
                    path=path.name,
                )
    attempts = snapshot.get("attempts")
    if known_uids is not None and isinstance(attempts, dict):
        known = set(known_uids)
        for uid in sorted(attempts):
            report.tick()
            if uid not in known:
                report.add(
                    "metrics-dangling-id",
                    f"per-attempt telemetry for uid {uid!r} which neither "
                    "the journal nor the event log ever started",
                    path=path.name,
                )
    return report


def validate_timeline_file(path: Union[str, Path]) -> ValidationReport:
    """Validate a ``timeline.jsonl`` working-set telemetry log.

    Timeline rows are CRC-framed single-``write`` appends, so damage
    anywhere but an unterminated final fragment is corruption
    (``timeline-torn``, error); the unterminated fragment itself is the
    expected crash signature and only warns.  Every decodable row is
    checked against the timeline-row schema plus one invariant the
    schema language cannot express: a ``misses`` vector must be as long
    as its ``cache_sizes`` ladder (``timeline-schema``).
    """
    path = Path(path)
    report = ValidationReport(subject=f"timeline {path.name}")
    if not path.is_file():
        return report
    from repro.obs.timeline import scan_timeline

    scan = scan_timeline(path)
    report.tick()
    for lineno in scan.damaged:
        report.add(
            "timeline-torn",
            f"line {lineno} fails its CRC frame before the tail "
            "(single-write appends may only tear the final line)",
            path=path.name,
        )
    if scan.torn_tail:
        report.add(
            "timeline-torn",
            "trailing line is a torn append (crash signature: tolerated)",
            path=path.name,
            severity=SEVERITY_WARNING,
        )
    for index, row in enumerate(scan.rows, start=1):
        report.tick()
        for problem in check_schema(row, schema_for("timeline-row")):
            report.add(
                "timeline-schema", f"row {index}: {problem}", path=path.name
            )
        sizes = row.get("cache_sizes")
        misses = row.get("misses")
        if (
            isinstance(sizes, list)
            and isinstance(misses, list)
            and len(sizes) != len(misses)
        ):
            report.add(
                "timeline-schema",
                f"row {index}: {len(misses)} miss slot(s) for "
                f"{len(sizes)} capacity ladder entr(ies)",
                path=path.name,
            )
    return report


def validate_archive_file(path: Union[str, Path]) -> ValidationReport:
    """Validate a ``perf-archive.jsonl`` cross-campaign perf archive.

    Same framing discipline as the timeline (``archive-corrupt`` for
    mid-file damage, warning for an unterminated torn tail).  Every
    decodable row must satisfy the archive-row schema *and* carry full
    attribution (git SHA, timestamp, hostname): the appenders refuse
    unattributed rows, so one on disk means the archive was edited
    outside the writers.
    """
    path = Path(path)
    report = ValidationReport(subject=f"archive {path.name}")
    if not path.is_file():
        return report
    from repro.obs.archive import ATTRIBUTION_KEYS, is_attributed, scan_archive

    scan = scan_archive(path)
    report.tick()
    for lineno in scan.damaged:
        report.add(
            "archive-corrupt",
            f"line {lineno} fails its CRC frame before the tail "
            "(single-write appends may only tear the final line)",
            path=path.name,
        )
    if scan.torn_tail:
        report.add(
            "archive-corrupt",
            "trailing line is a torn append (crash signature: tolerated)",
            path=path.name,
            severity=SEVERITY_WARNING,
        )
    for index, row in enumerate(scan.rows, start=1):
        report.tick()
        for problem in check_schema(row, schema_for("archive-row")):
            report.add(
                "archive-corrupt", f"row {index}: {problem}", path=path.name
            )
        if not is_attributed(row):
            missing = [
                key
                for key in ATTRIBUTION_KEYS
                if not (isinstance(row.get(key), str) and row.get(key))
            ]
            report.add(
                "archive-corrupt",
                f"row {index}: unattributed (missing "
                f"{', '.join(missing)}); the writers refuse such rows",
                path=path.name,
            )
    return report


def validate_cache_dir(cache_root: Union[str, Path]) -> ValidationReport:
    """Audit a content-addressed result cache (read-only).

    Every entry under ``objects/`` is re-verified exactly as the
    serving path would (envelope format, payload SHA-256, cache-entry
    schema, filename/stored/recomputed key agreement) — but without
    quarantining anything; findings use ``cache-entry-corrupt`` and
    ``cache-key-mismatch``.  The manifest index is schema-checked and
    cross-checked against the entries both ways: an indexed key with
    no valid entry is ``cache-dangling-entry`` (error — a hit the
    index promises but the store cannot serve), a valid entry the
    index missed is ``cache-unindexed-entry`` (warning — the entries
    are the truth, the index merely accelerates listing).
    """
    from repro.service.cache import (
        MANIFEST_FILENAME,
        ResultCache,
        verify_entry_envelope,
    )

    cache_root = Path(cache_root)
    report = ValidationReport(subject=f"cache {cache_root}")
    if not cache_root.is_dir():
        report.add("cache-missing", f"{cache_root} is not a directory")
        return report
    cache = ResultCache(cache_root)

    valid_keys: Dict[str, str] = {}  # key -> rel path
    if cache.objects_dir.is_dir():
        for path in sorted(cache.objects_dir.rglob("*.json")):
            rel = str(path.relative_to(cache_root))
            report.tick()
            try:
                envelope = json.loads(path.read_text(encoding="utf-8"))
            except (OSError, json.JSONDecodeError) as exc:
                report.add(
                    "cache-entry-corrupt", f"undecodable: {exc}", path=rel
                )
                continue
            problem = verify_entry_envelope(path.stem, envelope)
            if problem is not None:
                # The verifier's integrity message also says
                # "recomputed" (about the sha256), so match the two
                # key-disagreement messages precisely.
                code = (
                    "cache-key-mismatch"
                    if "does not recompute" in problem
                    or "filed under" in problem
                    else "cache-entry-corrupt"
                )
                report.add(code, problem, path=rel)
                continue
            valid_keys[path.stem] = rel

    manifest = cache.read_manifest()
    if cache.manifest_path.is_file():
        report.tick()
        if manifest is None:
            report.add(
                "cache-manifest-schema",
                "cache-manifest.json exists but is undecodable",
                path=MANIFEST_FILENAME,
            )
        elif _schema_findings(
            report,
            manifest,
            "cache-manifest",
            "cache-manifest-schema",
            MANIFEST_FILENAME,
        ):
            indexed = manifest.get("entries", {})
            for key in sorted(indexed):
                report.tick()
                if key not in valid_keys:
                    report.add(
                        "cache-dangling-entry",
                        f"manifest indexes key {key[:12]}… but objects/ "
                        "holds no valid entry for it",
                        path=MANIFEST_FILENAME,
                    )
            for key, rel in sorted(valid_keys.items()):
                report.tick()
                if key not in indexed:
                    report.add(
                        "cache-unindexed-entry",
                        f"valid entry {key[:12]}… is not in the manifest "
                        "index (lookups still work; listing is incomplete)",
                        path=rel,
                        severity=SEVERITY_WARNING,
                    )
    elif valid_keys:
        report.add(
            "cache-manifest-schema",
            "entries exist but there is no cache-manifest.json index",
            severity=SEVERITY_WARNING,
        )

    if cache.quarantine_dir.is_dir():
        quarantined = [
            p
            for p in cache.quarantine_dir.iterdir()
            if p.is_file() and not p.name.endswith(".reason")
        ]
        report.tick()
        if quarantined:
            report.add(
                "cache-quarantined",
                f"{len(quarantined)} quarantined entr"
                f"{'y' if len(quarantined) == 1 else 'ies'} present "
                "(corruption was detected and evicted; forensics under "
                "quarantine/)",
                path="quarantine",
                severity=SEVERITY_WARNING,
            )
    return report


def _merge_prefixed(
    report: ValidationReport, other: ValidationReport, prefix: str
) -> None:
    """Merge ``other`` into ``report``, prefixing every finding path."""
    report.tick(other.checks_run)
    for finding in other.findings:
        path = f"{prefix}/{finding.path}" if finding.path else prefix
        report.findings.append(dataclasses.replace(finding, path=path))


def validate_service_root(
    root: Union[str, Path], deep: bool = True
) -> ValidationReport:
    """Validate a whole multi-tenant service root.

    Audits every per-campaign run directory under
    ``campaigns/<tenant>/<id>/`` with :func:`validate_run_dir`, the
    service-level WAL (``service.wal``) with the journal auditor, any
    leftover service lease, and the shared content-addressed cache
    with :func:`validate_cache_dir`, merging all findings with
    path prefixes that name the offending tenant and campaign.
    """
    root = Path(root)
    report = ValidationReport(subject=f"service-root {root}")
    if not root.is_dir():
        report.add("run-dir-missing", f"{root} is not a directory")
        return report

    campaigns_dir = root / "campaigns"
    if campaigns_dir.is_dir():
        for campaign_dir in sorted(campaigns_dir.glob("*/*")):
            if not campaign_dir.is_dir():
                continue
            _merge_prefixed(
                report,
                validate_run_dir(campaign_dir, deep=deep),
                str(campaign_dir.relative_to(root)),
            )

    wal_path = root / "service.wal"
    if wal_path.is_file():
        report.extend(validate_journal_file(wal_path))
    report.extend(validate_lease_file(root / "supervisor.lease"))

    cache_root = root / "cache"
    if cache_root.is_dir():
        _merge_prefixed(report, validate_cache_dir(cache_root), "cache")

    report.extend(
        validate_metrics_file(root / "metrics.json", known_uids=None)
    )
    return report


def is_service_root(path: Union[str, Path]) -> bool:
    """Does ``path`` look like a service root rather than a run dir?"""
    path = Path(path)
    return (path / "campaigns").is_dir() or (path / "service.wal").is_file()


def validate_run_dir(
    run_dir: Union[str, Path], deep: bool = True
) -> ValidationReport:
    """Validate every artifact in a campaign run directory.

    Args:
        run_dir: The directory passed to ``--run-dir`` / ``--resume``.
        deep: Also run the result invariant oracles over every stored
            :class:`~repro.experiments.runner.ExperimentResult` (cheap;
            disable only for very large stores).

    Returns:
        A report whose ``ok`` is True iff the run directory is sound.
    """
    run_dir = Path(run_dir)
    report = ValidationReport(subject=f"run-dir {run_dir}")
    if not run_dir.is_dir():
        report.add("run-dir-missing", f"{run_dir} is not a directory")
        return report
    store = CheckpointStore(run_dir)

    # -- manifest ----------------------------------------------------
    requested: Optional[List[str]] = None
    manifest_path = run_dir / "manifest.json"
    if manifest_path.is_file():
        manifest = _read_envelope(store, report, manifest_path)
        if manifest is not None and _schema_findings(
            report, manifest, "manifest", "manifest-schema", "manifest.json"
        ):
            requested = [str(x) for x in manifest["experiments"]]
    else:
        report.add(
            "manifest-missing",
            "run directory has no manifest.json",
            severity=SEVERITY_WARNING,
        )

    # -- results / failures ------------------------------------------
    statuses_on_disk: Dict[str, str] = {}
    for directory, expected_statuses in (
        (store.results_dir, ("ok", "degraded")),
        (store.failures_dir, ("failed",)),
    ):
        if not directory.is_dir():
            continue
        for path in sorted(directory.glob("*.json")):
            rel = str(path.relative_to(run_dir))
            payload = _read_envelope(store, report, path)
            if payload is None:
                continue
            if not _schema_findings(
                report, payload, "outcome", "outcome-schema", rel
            ):
                continue
            experiment_id = str(payload["experiment_id"])
            status = str(payload["status"])
            if experiment_id != path.stem:
                report.add(
                    "checkpoint-id-mismatch",
                    f"file is named {path.stem!r} but records experiment "
                    f"{experiment_id!r}",
                    path=rel,
                )
            if status not in expected_statuses:
                report.add(
                    "outcome-status-misfiled",
                    f"status {status!r} does not belong under "
                    f"{directory.name}/",
                    path=rel,
                )
            if directory == store.results_dir:
                statuses_on_disk[experiment_id] = status
                if requested is not None and experiment_id not in requested:
                    report.add(
                        "checkpoint-stale",
                        f"result for {experiment_id!r} which the manifest "
                        "never requested (stale leftover from an earlier "
                        "campaign?)",
                        path=rel,
                    )
            report.tick()
            if deep and payload.get("result") is not None:
                from repro.experiments.runner import ExperimentResult

                try:
                    result = ExperimentResult.from_dict(payload["result"])
                except (KeyError, TypeError, ValueError) as exc:
                    report.add(
                        "result-undecodable",
                        f"stored result cannot be rebuilt: {exc}",
                        path=rel,
                    )
                else:
                    _with_path(report, validate_result(result), rel)

    # -- summary ------------------------------------------------------
    if store.summary_path.is_file():
        summary = _read_envelope(store, report, store.summary_path)
        if summary is not None and _schema_findings(
            report, summary, "summary", "summary-schema", "summary.json"
        ):
            statuses = summary.get("statuses", {})
            for experiment_id, status in statuses.items():
                if str(status) == "failed":
                    continue
                report.tick()
                disk = statuses_on_disk.get(str(experiment_id))
                if disk is None:
                    report.add(
                        "summary-dangling-id",
                        f"summary says {experiment_id!r} completed with "
                        f"status {status!r} but results/ has no valid "
                        "checkpoint for it",
                        path="summary.json",
                    )
                elif disk != str(status):
                    report.add(
                        "summary-status-mismatch",
                        f"summary records {experiment_id!r} as {status!r} "
                        f"but its checkpoint says {disk!r}",
                        path="summary.json",
                    )
    else:
        report.add(
            "summary-missing",
            "run directory has no summary.json (crashed before the first "
            "flush, or not a campaign directory)",
            severity=SEVERITY_WARNING,
        )

    # -- events --------------------------------------------------------
    report.extend(validate_events_file(store.events_path))

    # -- journal / lease ----------------------------------------------
    journal_path = run_dir / "journal.wal"
    report.extend(validate_journal_file(journal_path))
    if not journal_path.is_file() and statuses_on_disk:
        report.add(
            "journal-missing",
            "checkpoints exist but there is no journal.wal (pre-journal "
            "run directory; resume falls back to checkpoint presence)",
            severity=SEVERITY_WARNING,
        )
    report.extend(validate_lease_file(run_dir / "supervisor.lease"))

    # -- dispatch fabric WAL (only written by --nodes campaigns) ------
    report.extend(validate_dispatch_file(run_dir / "dispatch.wal"))

    # -- observability artifacts --------------------------------------
    report.extend(validate_spans_file(run_dir / "spans.jsonl"))
    report.extend(validate_timeline_file(run_dir / "timeline.jsonl"))
    report.extend(validate_archive_file(run_dir / "perf-archive.jsonl"))
    known_uids: List[str] = []
    if journal_path.is_file():
        from repro.runtime.journal import read_journal

        for record in read_journal(journal_path).records:
            uid = record.get("attempt_uid")
            if isinstance(uid, str):
                known_uids.append(uid)
    from repro.runtime.events import read_events

    for record in read_events(store.events_path):
        uid = record.get("attempt_uid")
        if isinstance(uid, str):
            known_uids.append(uid)
    report.extend(
        validate_metrics_file(run_dir / "metrics.json", known_uids=known_uids)
    )

    # -- traces --------------------------------------------------------
    trace_dirs = sorted(
        p for p in run_dir.rglob("*.trd") if p.is_dir()
    )
    staging_dirs = sorted(
        p for p in run_dir.rglob("*.trd.tmp") if p.is_dir()
    )
    shard_roots = set(trace_dirs) | set(staging_dirs)
    for path in sorted(run_dir.rglob("*.npz")):
        # Shards are audited by validate_trace_dir, not as single-file
        # archives; anything inside a staging dir is a crash leftover.
        if any(root in path.parents for root in shard_roots):
            continue
        trace_report = validate_trace_file(path)
        report.tick(trace_report.checks_run)
        rel = str(path.relative_to(run_dir))
        for finding in trace_report.findings:
            report.findings.append(dataclasses.replace(finding, path=rel))
    for trace_dir in trace_dirs:
        rel = str(trace_dir.relative_to(run_dir))
        dir_report = validate_trace_dir(trace_dir)
        report.tick(dir_report.checks_run)
        for finding in dir_report.findings:
            stamped = f"{rel}/{finding.path}" if finding.path else rel
            report.findings.append(dataclasses.replace(finding, path=stamped))
        wal = trace_dir / "shards.wal"
        if wal.is_file():
            _with_path(report, validate_journal_file(wal), f"{rel}/shards.wal")
    for staging in staging_dirs:
        report.tick()
        report.add(
            "trace-shard-incomplete",
            "staging directory left by an interrupted trace build (the "
            "expected crash signature; a retry regenerates the trace, so "
            "this is safe to delete)",
            path=str(staging.relative_to(run_dir)),
            severity=SEVERITY_WARNING,
        )

    # -- streaming simulator checkpoints ------------------------------
    from repro.mem.shards import load_sim_checkpoint

    for ckpt in sorted(run_dir.rglob("*.ckpt")):
        if not ckpt.is_file():
            continue
        report.tick()
        if load_sim_checkpoint(ckpt) is None:
            report.add(
                "sim-checkpoint-corrupt",
                "mid-simulation snapshot is damaged or unreadable (resume "
                "degrades safely: the simulation restarts from shard zero)",
                path=str(ckpt.relative_to(run_dir)),
                severity=SEVERITY_WARNING,
            )
    for wal in sorted(run_dir.rglob("*.ckpt.wal")):
        _with_path(
            report,
            validate_journal_file(wal),
            str(wal.relative_to(run_dir)),
        )

    # -- kernel divergence audit trail --------------------------------
    report.extend(validate_kernel_bundles(run_dir))

    return report


def validate_kernel_bundles(run_dir: Union[str, Path]) -> ValidationReport:
    """Audit the kernel trust harness's divergence artifacts.

    A campaign whose vectorized kernel diverged from the pure-Python
    oracle completes on the oracle path and leaves two traces behind:
    repro bundles under ``kernel-bundles/`` and nonzero
    ``mem.kernel.<kernel>.divergences`` counters in ``metrics.json``.
    Both are *warnings* — the results are oracle-correct — but an
    operator must know the fast path misbehaved, and an undecodable
    bundle is an error because the repro evidence is lost.
    """
    run_dir = Path(run_dir)
    report = ValidationReport(subject=f"kernel-bundles {run_dir}")
    bundle_dir = run_dir / "kernel-bundles"
    if bundle_dir.is_dir():
        for path in sorted(bundle_dir.glob("*.json")):
            rel = str(path.relative_to(run_dir))
            report.tick()
            try:
                payload = json.loads(path.read_text(encoding="utf-8"))
                if not isinstance(payload, dict):
                    raise ValueError("bundle is not a JSON object")
                for key in ("kernel", "chunk", "reason", "pre_state", "blocks"):
                    if key not in payload:
                        raise ValueError(f"bundle is missing {key!r}")
            except (OSError, ValueError) as exc:
                report.add(
                    "kernel-bundle-undecodable",
                    f"divergence repro bundle cannot be read: {exc}",
                    path=rel,
                )
                continue
            report.add(
                "kernel-divergence-bundle",
                f"{payload['kernel']} kernel diverged on chunk "
                f"{payload['chunk']} ({payload['reason']}); the campaign "
                "completed on the oracle path and this bundle reproduces "
                "the divergence",
                path=rel,
                severity=SEVERITY_WARNING,
            )
        for leftover in sorted(bundle_dir.glob("*.tmp")):
            report.tick()
            report.add(
                "kernel-bundle-incomplete",
                "partially written repro bundle (crash during divergence "
                "handling; safe to delete)",
                path=str(leftover.relative_to(run_dir)),
                severity=SEVERITY_WARNING,
            )
    metrics_path = run_dir / "metrics.json"
    if metrics_path.is_file():
        try:
            snapshot = json.loads(metrics_path.read_text(encoding="utf-8"))
            counters = snapshot.get("campaign", {}).get("counters", {})
        except (OSError, ValueError, AttributeError):
            counters = {}
        if isinstance(counters, dict):
            for name, value in sorted(counters.items()):
                if (
                    isinstance(name, str)
                    and name.startswith("mem.kernel.")
                    and name.endswith(".divergences")
                    and isinstance(value, (int, float))
                    and value > 0
                ):
                    kernel = name[len("mem.kernel."):-len(".divergences")]
                    report.tick()
                    report.add(
                        "kernel-quarantined",
                        f"the {kernel} kernel was quarantined after "
                        f"{int(value)} divergence(s); results were computed "
                        "by the pure-Python oracle fallback",
                        path="metrics.json",
                        severity=SEVERITY_WARNING,
                    )
    return report
