"""Per-application mathematical self-checks.

Each traced application has a ground-truth property that the underlying
numerical kernel must satisfy independently of any trace or cache
measurement: LU must reconstruct its input, CG must converge on an SPD
system, the FFT must invert and agree with ``numpy.fft``, exact
(theta=0) Barnes-Hut forces must conserve momentum, and the volrend
min-max octree must bound the actual voxel extrema.  These checks catch
the failure mode the miss-rate oracles cannot: a trace generator that
emits a perfectly plausible reference stream for an algorithm that has
silently stopped computing the right thing.

The checks are seeded and cheap (a few milliseconds at the default
sizes) so they can run inside experiment attempts.  App trace
generators expose them as ``generator.self_check()``, which delegates
to :func:`assert_self_check` here.
"""

from __future__ import annotations

from typing import Callable, Dict

import numpy as np

from repro.runtime.errors import SelfCheckError
from repro.validate.report import ValidationReport

#: Relative residual ceiling for the LU reconstruction check.
LU_RESIDUAL_TOL = 1e-10
#: Relative residual ceiling for the CG solution check.
CG_RESIDUAL_TOL = 1e-8
#: Absolute ceiling for FFT round-trip / reference mismatches.
FFT_TOL = 1e-9
#: Momentum drift ceiling for the exact-force N-body integration.
MOMENTUM_TOL = 1e-10


def check_lu(seed: int = 0, n: int = 32, block_size: int = 8) -> ValidationReport:
    """Factor a random diagonally dominant matrix and verify that
    ``L @ U`` reconstructs it to within :data:`LU_RESIDUAL_TOL`."""
    from repro.apps.lu.factor import (
        blocked_lu,
        random_diagonally_dominant,
        reconstruct,
    )

    report = ValidationReport(subject=f"self-check lu(n={n}, B={block_size})")
    a = random_diagonally_dominant(n, seed=seed)
    packed = blocked_lu(a.copy(), block_size)
    report.tick()
    rebuilt = reconstruct(packed)
    residual = float(
        np.linalg.norm(rebuilt - a) / max(np.linalg.norm(a), 1e-300)
    )
    report.tick()
    if not np.isfinite(residual):
        report.add("lu-residual-nonfinite", f"reconstruction residual is {residual}")
    elif residual > LU_RESIDUAL_TOL:
        report.add(
            "lu-residual",
            f"reconstruction residual {residual:.3e} exceeds {LU_RESIDUAL_TOL:.0e}",
        )
    return report


def check_cg(seed: int = 0, n: int = 16) -> ValidationReport:
    """Solve a 2-D Laplacian system with CG and verify convergence and
    the true (not recurrence) residual."""
    from repro.apps.cg.grid import Grid2D
    from repro.apps.cg.solver import conjugate_gradient

    report = ValidationReport(subject=f"self-check cg(n={n})")
    grid = Grid2D(n)
    rng = np.random.default_rng(seed)
    b = rng.standard_normal(n * n)
    result = conjugate_gradient(grid.laplacian_matvec, b, tol=1e-10)
    report.tick()
    if not result.converged:
        report.add(
            "cg-not-converged",
            f"CG failed to converge in {result.iterations} iterations "
            f"(residual {result.residual_norm:.3e})",
        )
        return report
    true_residual = float(
        np.linalg.norm(b - grid.laplacian_matvec(result.x))
        / np.linalg.norm(b)
    )
    report.tick()
    if not np.isfinite(true_residual) or true_residual > CG_RESIDUAL_TOL:
        report.add(
            "cg-residual",
            f"true relative residual {true_residual:.3e} exceeds "
            f"{CG_RESIDUAL_TOL:.0e}",
        )
    return report


def check_fft(seed: int = 0, n: int = 256) -> ValidationReport:
    """Transform a random complex vector and verify the inverse
    round-trip, agreement with ``numpy.fft``, and the four-step
    (blocked) variant."""
    from repro.apps.fft.transform import fft, four_step_fft, ifft

    report = ValidationReport(subject=f"self-check fft(n={n})")
    rng = np.random.default_rng(seed)
    x = rng.standard_normal(n) + 1j * rng.standard_normal(n)
    y = fft(x)
    report.tick()
    ref_err = float(np.max(np.abs(y - np.fft.fft(x))))
    if not np.isfinite(ref_err) or ref_err > FFT_TOL * n:
        report.add(
            "fft-reference-mismatch",
            f"fft disagrees with numpy.fft by {ref_err:.3e}",
        )
    round_err = float(np.max(np.abs(ifft(y) - x)))
    report.tick()
    if not np.isfinite(round_err) or round_err > FFT_TOL * n:
        report.add(
            "fft-roundtrip",
            f"ifft(fft(x)) deviates from x by {round_err:.3e}",
        )
    n1 = 1
    while n1 * n1 < n:
        n1 *= 2
    if n % n1 == 0:
        four_err = float(np.max(np.abs(four_step_fft(x, n1) - y)))
        report.tick()
        if not np.isfinite(four_err) or four_err > FFT_TOL * n:
            report.add(
                "fft-four-step-mismatch",
                f"four_step_fft(n1={n1}) disagrees with fft by {four_err:.3e}",
            )
    return report


def check_barnes_hut(seed: int = 0, n: int = 48) -> ValidationReport:
    """Integrate a seeded Plummer system with *exact* forces (theta=0,
    monopole only — every interaction is a symmetric pairwise one) and
    verify total momentum is conserved to :data:`MOMENTUM_TOL`."""
    from repro.apps.barnes_hut.bodies import plummer_model
    from repro.apps.barnes_hut.simulate import Simulation

    report = ValidationReport(subject=f"self-check barnes-hut(n={n})")
    bodies = plummer_model(n, seed=seed)
    momentum_before = (bodies.masses[:, None] * bodies.velocities).sum(axis=0)
    sim = Simulation(bodies, theta=0.0, dt=1e-3, quadrupole=False)
    sim.step(2)
    momentum_after = (bodies.masses[:, None] * bodies.velocities).sum(axis=0)
    drift = float(np.max(np.abs(momentum_after - momentum_before)))
    report.tick()
    if not np.isfinite(drift) or drift > MOMENTUM_TOL:
        report.add(
            "barnes-hut-momentum",
            f"exact-force integration drifted total momentum by {drift:.3e} "
            f"(ceiling {MOMENTUM_TOL:.0e})",
        )
    finite = np.isfinite(bodies.positions).all() and np.isfinite(
        bodies.velocities
    ).all()
    report.tick()
    if not finite:
        report.add(
            "barnes-hut-nonfinite",
            "integration produced non-finite positions or velocities",
        )
    return report


def check_volrend(seed: int = 0, n: int = 16) -> ValidationReport:
    """Verify the min-max octree against brute-force voxel extrema and
    check the rendered image stays within physical bounds."""
    from repro.apps.volrend.octree import MinMaxOctree
    from repro.apps.volrend.render import render_frame
    from repro.apps.volrend.volume import synthetic_head

    report = ValidationReport(subject=f"self-check volrend(n={n})")
    volume = synthetic_head(n, seed=seed)
    octree = MinMaxOctree(volume)
    opacities = volume.opacities
    for node in octree.nodes:
        sub = opacities[
            node.lo[0] : node.hi[0],
            node.lo[1] : node.hi[1],
            node.lo[2] : node.hi[2],
        ]
        report.tick()
        actual_min = float(sub.min())
        actual_max = float(sub.max())
        if not (
            np.isclose(node.min_opacity, actual_min)
            and np.isclose(node.max_opacity, actual_max)
        ):
            report.add(
                "volrend-octree-bounds",
                f"octree node {node.index} claims "
                f"[{node.min_opacity:.6f}, {node.max_opacity:.6f}] but the "
                f"voxels span [{actual_min:.6f}, {actual_max:.6f}]",
            )
            break
    image = render_frame(volume, angle=0.3, image_size=n, use_octree=True)
    report.tick()
    if not np.isfinite(image).all():
        report.add("volrend-image-nonfinite", "rendered image has non-finite pixels")
    elif float(image.min()) < 0.0 or float(image.max()) > 1.0 + 1e-12:
        report.add(
            "volrend-image-range",
            f"rendered intensities [{image.min():.4f}, {image.max():.4f}] "
            "fall outside [0, 1]",
        )
    return report


#: Registry of per-application self-checks, keyed by app slug.
SELF_CHECKS: Dict[str, Callable[..., ValidationReport]] = {
    "lu": check_lu,
    "cg": check_cg,
    "fft": check_fft,
    "barnes-hut": check_barnes_hut,
    "volrend": check_volrend,
}


def run_self_check(app: str, seed: int = 0, **params) -> ValidationReport:
    """Run the registered self-check for ``app`` and return its report.

    Raises:
        KeyError: If no self-check is registered for ``app``.
    """
    try:
        check = SELF_CHECKS[app]
    except KeyError:
        raise KeyError(
            f"no self-check registered for app {app!r}; "
            f"known: {sorted(SELF_CHECKS)}"
        ) from None
    return check(seed=seed, **params)


def assert_self_check(app: str, seed: int = 0, **params) -> ValidationReport:
    """Run the self-check for ``app`` and raise on failure.

    Returns the (passing) report so callers can log ``checks_run``.

    Raises:
        SelfCheckError: If any finding has error severity.
    """
    report = run_self_check(app, seed=seed, **params)
    report.raise_if_failed(SelfCheckError)
    return report
