"""Cross-campaign performance archive with regression detection.

``perf-archive.jsonl`` is an append-only, CRC-framed record of how
fast this reproduction runs over time: one row per finished campaign
(``python -m repro.experiments --archive PATH ...``) and one row per
benchmark (``benchmarks/compare_baseline.py --archive PATH``).  Every
row is attributed — git SHA, ISO timestamp, hostname — so a regression
can be walked back to the commit that introduced it, in the spirit of
fleet-level workload telemetry (Blue Waters): trends that no single
run can show.

Rows share the timeline module's framing discipline (magic ``PFA1``)
and its tolerant scanner; strict checking is ``repro.validate`` code
``archive-corrupt``.  Regression detection is robust: for each series
the newest row is compared against the *median* of its history, with a
median-absolute-deviation band so noisy hardware does not flag — see
:func:`detect_regressions` and the ``trends`` CLI subcommand.
"""

from __future__ import annotations

import json
import os
import socket
import subprocess
import time
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Union

from repro.obs.timeline import TimelineScan, frame_row, scan_framed

#: Frame magic for ``perf-archive.jsonl`` rows.
ARCHIVE_MAGIC = "PFA1"

#: Canonical artifact name (run directory or repository root).
ARCHIVE_FILENAME = "perf-archive.jsonl"

#: Row format version.
ARCHIVE_VERSION = 1

#: Attribution keys every archive row must carry to be trusted.
ATTRIBUTION_KEYS = ("git_sha", "timestamp", "hostname")

_MAD_SCALE = 1.4826


# -- attribution ------------------------------------------------------------


def git_sha(cwd: Optional[Union[str, Path]] = None) -> Optional[str]:
    """The current commit SHA, or ``None`` outside a git checkout."""
    try:
        proc = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=str(cwd) if cwd is not None else None,
            capture_output=True,
            text=True,
            timeout=10.0,
        )
    except (OSError, subprocess.SubprocessError):
        return None
    sha = proc.stdout.strip()
    return sha if proc.returncode == 0 and sha else None


def attribution(
    cwd: Optional[Union[str, Path]] = None, now: Optional[float] = None
) -> Dict[str, str]:
    """Best-effort row attribution; ``git_sha`` is omitted (not faked)
    when the SHA cannot be resolved — unattributed rows are *refused*
    by the archive writers, never silently invented."""
    out: Dict[str, str] = {
        "timestamp": time.strftime(
            "%Y-%m-%dT%H:%M:%S%z",
            time.localtime(time.time() if now is None else now),
        ),
        "hostname": socket.gethostname(),
    }
    sha = git_sha(cwd)
    if sha:
        out["git_sha"] = sha
    return out


def is_attributed(row: Dict[str, object]) -> bool:
    return all(
        isinstance(row.get(key), str) and row.get(key)
        for key in ATTRIBUTION_KEYS
    )


# -- reading / appending ----------------------------------------------------


def scan_archive(path: Union[str, Path]) -> TimelineScan:
    return scan_framed(path, ARCHIVE_MAGIC)


def read_archive(path: Union[str, Path]) -> List[Dict[str, object]]:
    """All decodable archive rows (tolerant of damage)."""
    return scan_archive(path).rows


def append_rows(
    path: Union[str, Path], rows: Sequence[Dict[str, object]]
) -> int:
    """Append attributed rows; returns the number written.

    Raises :class:`ValueError` on any unattributed row — an archive of
    anonymous numbers cannot be walked back to a commit, so it is
    worse than no archive at all.
    """
    rows = list(rows)
    for row in rows:
        if not is_attributed(row):
            missing = [
                key
                for key in ATTRIBUTION_KEYS
                if not (isinstance(row.get(key), str) and row.get(key))
            ]
            raise ValueError(
                "refusing unattributed archive row "
                f"(missing {', '.join(missing)}): "
                f"{json.dumps(row, sort_keys=True)[:200]}"
            )
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    fd = os.open(path, os.O_APPEND | os.O_CREAT | os.O_WRONLY, 0o644)
    try:
        for row in rows:
            os.write(fd, frame_row(row, ARCHIVE_MAGIC))
    finally:
        os.close(fd)
    return len(rows)


# -- row builders -----------------------------------------------------------


def campaign_rows(
    run_dir: Union[str, Path], now: Optional[float] = None
) -> List[Dict[str, object]]:
    """One archive row summarising a finished campaign run directory.

    Pulls throughput and kernel tier from the campaign status
    (metrics snapshot), and phase/knee estimates from the timeline
    artifact itself, so the row is self-contained and reproducible
    from the run directory alone.
    """
    from repro.obs.status import load_status
    from repro.obs.timeline import (
        TIMELINE_FILENAME,
        detect_phases,
        latest_attempt_rows,
        read_timeline,
    )

    run_dir = Path(run_dir)
    status = load_status(run_dir)
    if not status.requested and not status.experiments:
        return []
    experiments = sorted(status.experiments) or sorted(status.requested)
    row: Dict[str, object] = {
        "v": ARCHIVE_VERSION,
        "kind": "campaign",
        "series": "campaign:" + ",".join(experiments),
        "run_dir": run_dir.name,
        "state": status.state,
        "experiments": experiments,
    }
    # Attribute with the *code's* SHA (the checkout this module runs
    # from), not the run directory — run dirs usually live outside the
    # repository, and it is the code revision the numbers trace back to.
    row.update(attribution(cwd=Path(__file__).resolve().parent, now=now))
    if status.refs_per_second is not None:
        row["refs_per_second"] = float(status.refs_per_second)
    if status.refs_simulated is not None:
        row["refs_simulated"] = int(status.refs_simulated)
    if status.kernels:
        tiers = {entry.get("tier") for entry in status.kernels.values()}
        row["kernel_tier"] = (
            "vector" if tiers == {"vector"} else "mixed"
            if "vector" in tiers else "quarantined"
        )
    timeline_rows = read_timeline(run_dir / TIMELINE_FILENAME)
    if timeline_rows:
        knees: Dict[str, object] = {}
        phases_by_experiment: Dict[str, int] = {}
        miss_rates: Dict[str, float] = {}
        for experiment_id in experiments:
            rows = latest_attempt_rows(timeline_rows, experiment_id)
            if not rows:
                continue
            phases = detect_phases(rows)
            if not phases:
                continue
            phases_by_experiment[experiment_id] = len(phases)
            per_phase = [
                [int(k.capacity_bytes) for k in phase.knees()]
                for phase in phases
            ]
            knees[experiment_id] = per_phase
            rates = [
                phase.to_dict().get("miss_rate")
                for phase in phases
            ]
            rates = [r for r in rates if isinstance(r, (int, float))]
            if rates:
                miss_rates[experiment_id] = max(rates)
        if phases_by_experiment:
            row["phases"] = phases_by_experiment
        if knees:
            row["knee_bytes"] = knees
        if miss_rates:
            row["miss_rates"] = miss_rates
    return [row]


def bench_rows(
    payload: Dict[str, object], now: Optional[float] = None
) -> List[Dict[str, object]]:
    """Archive rows from a ``BENCH_results.json`` payload.

    Only rows stamped with attribution by ``benchmarks/conftest.py``
    are convertible; callers decide whether missing attribution is an
    error (``compare_baseline.py --archive`` refuses them).
    """
    out: List[Dict[str, object]] = []
    benchmarks = payload.get("benchmarks")
    if not isinstance(benchmarks, list):
        return out
    for entry in benchmarks:
        if not isinstance(entry, dict):
            continue
        name = entry.get("name")
        if not isinstance(name, str):
            continue
        extra = entry.get("extra_info")
        extra = extra if isinstance(extra, dict) else {}
        stats = entry.get("stats")
        stats = stats if isinstance(stats, dict) else {}
        row: Dict[str, object] = {
            "v": ARCHIVE_VERSION,
            "kind": "bench",
            "series": f"bench:{name}",
            "bench": name,
        }
        attr = entry.get("attribution")
        if isinstance(attr, dict):
            for key in ATTRIBUTION_KEYS:
                value = attr.get(key)
                if isinstance(value, str) and value:
                    row[key] = value
        rate = extra.get("refs_per_second")
        if isinstance(rate, (int, float)):
            row["refs_per_second"] = float(rate)
        overhead = extra.get("obs_overhead_pct")
        if isinstance(overhead, (int, float)):
            row["obs_overhead_pct"] = float(overhead)
        mean = stats.get("mean")
        if isinstance(mean, (int, float)):
            row["mean_seconds"] = float(mean)
        out.append(row)
    return out


# -- regression detection ---------------------------------------------------


def _series_metric(row: Dict[str, object], metric: str) -> Optional[float]:
    value = row.get(metric)
    return float(value) if isinstance(value, (int, float)) else None


def detect_regressions(
    rows: Sequence[Dict[str, object]],
    metric: str = "refs_per_second",
    threshold_pct: float = 10.0,
    mad_k: float = 3.0,
) -> List[Dict[str, object]]:
    """Robust per-series regression check: newest row vs history.

    For each series with at least two rows carrying ``metric``, the
    newest value is compared against the median of all earlier values.
    The flag threshold is the larger of ``threshold_pct`` and the
    series' own noise band (``mad_k`` scaled MADs as a percentage of
    the median), so a stable series flags at ``threshold_pct`` while a
    noisy one needs a genuinely out-of-band drop.  Returns one summary
    dict per series; ``regression=True`` marks a flagged drop.
    """
    import numpy as np

    by_series: Dict[str, List[Dict[str, object]]] = {}
    for row in rows:
        series = row.get("series")
        if isinstance(series, str) and _series_metric(row, metric) is not None:
            by_series.setdefault(series, []).append(row)
    out: List[Dict[str, object]] = []
    for series in sorted(by_series):
        series_rows = by_series[series]
        values = [_series_metric(r, metric) for r in series_rows]
        if len(values) < 2:
            out.append(
                {
                    "series": series,
                    "rows": len(values),
                    "current": values[-1],
                    "regression": False,
                    "note": "insufficient history",
                }
            )
            continue
        history = np.asarray(values[:-1], dtype=np.float64)
        current = float(values[-1])
        median = float(np.median(history))
        mad = float(np.median(np.abs(history - median)))
        drop_pct = (
            100.0 * (median - current) / median if median > 0.0 else 0.0
        )
        noise_pct = (
            100.0 * mad_k * _MAD_SCALE * mad / median if median > 0.0 else 0.0
        )
        threshold = max(threshold_pct, noise_pct)
        out.append(
            {
                "series": series,
                "rows": len(values),
                "current": current,
                "median": median,
                "mad": mad,
                "drop_pct": drop_pct,
                "threshold_pct": threshold,
                "regression": drop_pct > threshold,
                "last_sha": series_rows[-1].get("git_sha"),
            }
        )
    return out


def render_trends(findings: Sequence[Dict[str, object]]) -> str:
    """Terminal rendering of :func:`detect_regressions` output."""
    if not findings:
        return "perf archive: no series with trackable metrics"
    width = max(len(str(f.get("series"))) for f in findings)
    lines = [
        f"{'series':<{width}}  {'rows':>4} {'median':>14} {'current':>14} "
        f"{'drop':>8}  verdict"
    ]
    for finding in findings:
        median = finding.get("median")
        current = finding.get("current")
        drop = finding.get("drop_pct")
        if finding.get("note") == "insufficient history":
            verdict = "baseline (first row)"
        elif finding.get("regression"):
            verdict = (
                f"REGRESSION (> {finding.get('threshold_pct', 0.0):.1f}% "
                "band)"
            )
        else:
            verdict = "ok"
        lines.append(
            f"{finding.get('series'):<{width}}  "
            f"{finding.get('rows', 0):>4} "
            + (f"{median:>14,.1f} " if isinstance(median, float) else f"{'-':>14} ")
            + (f"{current:>14,.1f} " if isinstance(current, float) else f"{'-':>14} ")
            + (f"{drop:>+7.1f}%" if isinstance(drop, float) else f"{'-':>8}")
            + f"  {verdict}"
        )
    flagged = sum(1 for f in findings if f.get("regression"))
    lines.append(
        f"{flagged} regression(s) across {len(findings)} series"
        if flagged
        else f"no regressions across {len(findings)} series"
    )
    return "\n".join(lines)
