"""Leveled console logging for campaign progress output.

The experiment drivers used to ``print()`` progress straight to
stdout.  That was fine until three constraints piled up:

- ``--quiet`` must silence progress without silencing results,
- ``REPRO_LOG_LEVEL`` must control verbosity for cron/CI wrappers,
- worker-mode stdout is a machine protocol (`worker_main` redirects
  file descriptor 1 to stderr before experiment code runs) and no
  library print may leak into it.

:class:`Console` answers all three with deliberately boring code — no
stdlib ``logging`` handlers/propagation machinery, just a level check
and a ``print``.  Crucially it resolves ``sys.stdout`` **at call
time**, so it follows pytest's capsys redirection and, in worker
processes, lands on the (redirected) stderr instead of corrupting the
payload protocol.

Levels: ``debug`` < ``info`` < ``warning`` < ``error``.  ``info`` and
below go to stdout (CI greps progress there); ``warning`` and above go
to stderr.  Default level is ``info``; ``REPRO_LOG_LEVEL=debug``
opens the firehose and ``--quiet`` maps to ``warning``.
"""

from __future__ import annotations

import os
import sys
from typing import Optional, TextIO

LOG_LEVEL_ENV = "REPRO_LOG_LEVEL"

LEVELS = {
    "debug": 10,
    "info": 20,
    "warning": 30,
    "error": 40,
    "quiet": 100,  # alias: suppress everything below error... see --quiet
}

DEFAULT_LEVEL = "info"


def _resolve_level(name: Optional[str]) -> int:
    if not name:
        return LEVELS[DEFAULT_LEVEL]
    return LEVELS.get(name.strip().lower(), LEVELS[DEFAULT_LEVEL])


class Console:
    """A print with a level gate and call-time stream resolution."""

    def __init__(self, level: Optional[str] = None) -> None:
        env_level = os.environ.get(LOG_LEVEL_ENV)
        self.level = _resolve_level(level if level is not None else env_level)

    # -- configuration -------------------------------------------------

    def set_level(self, name: str) -> None:
        self.level = _resolve_level(name)

    def set_quiet(self, quiet: bool = True) -> None:
        """``--quiet``: progress off, warnings/errors still visible."""
        self.level = LEVELS["warning"] if quiet else _resolve_level(
            os.environ.get(LOG_LEVEL_ENV)
        )

    def is_enabled(self, name: str) -> bool:
        return LEVELS.get(name, 0) >= self.level

    # -- emission ------------------------------------------------------

    def _emit(self, text: str, stream: TextIO) -> None:
        print(text, file=stream)

    def debug(self, text: str = "") -> None:
        if self.level <= LEVELS["debug"]:
            self._emit(text, sys.stdout)

    def info(self, text: str = "") -> None:
        if self.level <= LEVELS["info"]:
            self._emit(text, sys.stdout)

    def warning(self, text: str = "") -> None:
        if self.level <= LEVELS["warning"]:
            self._emit(text, sys.stderr)

    def error(self, text: str = "") -> None:
        if self.level <= LEVELS["error"]:
            self._emit(text, sys.stderr)


_console = Console()


def get_console() -> Console:
    return _console


def set_level(name: str) -> None:
    _console.set_level(name)


def set_quiet(quiet: bool = True) -> None:
    _console.set_quiet(quiet)


def debug(text: str = "") -> None:
    _console.debug(text)


def info(text: str = "") -> None:
    _console.info(text)


def warning(text: str = "") -> None:
    _console.warning(text)


def error(text: str = "") -> None:
    _console.error(text)
