"""Live campaign status reconstructed from run-directory artifacts.

``python -m repro.experiments status <run-dir>`` answers "what is this
campaign doing *right now*" without talking to the supervisor at all:
everything is reconstructed read-only from the artifacts the runtime
already writes —

- ``events.jsonl`` (tolerant reader: a torn tail is skipped) gives the
  per-experiment state machine: start/retry/attempt-end/finish/resume;
- ``journal.wal`` (tolerant replay, **never** truncated here — status
  must be safe to run against a live campaign) corroborates in-doubt
  attempts and supplies failure categories;
- ``summary.json`` / ``manifest.json`` give the requested set and the
  terminal verdicts;
- ``supervisor.lease`` tells live from dead (heartbeat freshness);
- ``metrics.json`` supplies throughput (refs simulated, refs/sec);
- ``nodes.json`` (when the campaign ran on a ``--nodes`` dispatch
  fabric) gives per-node liveness, inflight load, death counts, and
  circuit-breaker state, and ``breaker-transition`` events reconstruct
  the breaker state-machine history (closed → open → half-open) with
  wall-clock timestamps.

:func:`load_status` builds a :class:`CampaignStatus`;
:func:`render_status` formats it for a terminal (the ``--follow`` mode
re-renders the same thing in a loop).  Every reader below tolerates
torn, missing, or corrupted files: status degrades to "unknown" fields,
it never raises on a damaged run directory.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Union

from repro.obs.metrics import METRICS_FILENAME, METRICS_FORMAT

#: Experiment states reported by status (superset of outcome statuses).
STATE_PENDING = "pending"
STATE_RUNNING = "running"
STATE_IN_DOUBT = "in-doubt"
STATE_OK = "ok"
STATE_DEGRADED = "degraded"
STATE_FAILED = "failed"

_TERMINAL_STATES = (STATE_OK, STATE_DEGRADED, STATE_FAILED)


@dataclass
class ExperimentStatus:
    """Reconstructed state of one experiment inside a campaign."""

    experiment_id: str
    state: str = STATE_PENDING
    attempts: int = 0
    retries: int = 0
    failed_attempts: int = 0
    worker_kills: int = 0
    resumed: bool = False
    degraded: bool = False
    started_wall: Optional[float] = None
    finished_wall: Optional[float] = None
    last_failure: Optional[str] = None
    last_attempt_uid: Optional[str] = None

    @property
    def terminal(self) -> bool:
        return self.state in _TERMINAL_STATES

    def elapsed_seconds(self, now: Optional[float] = None) -> Optional[float]:
        """Wall-clock from first start to finish (or to ``now``)."""
        if self.started_wall is None:
            return None
        end = self.finished_wall
        if end is None:
            if self.state != STATE_RUNNING:
                return None
            end = time.time() if now is None else now
        return max(0.0, end - self.started_wall)

    def to_dict(self) -> Dict[str, object]:
        return {
            "experiment_id": self.experiment_id,
            "state": self.state,
            "attempts": self.attempts,
            "retries": self.retries,
            "failed_attempts": self.failed_attempts,
            "worker_kills": self.worker_kills,
            "resumed": self.resumed,
            "degraded": self.degraded,
            "started_wall": self.started_wall,
            "finished_wall": self.finished_wall,
            "last_failure": self.last_failure,
            "last_attempt_uid": self.last_attempt_uid,
            "elapsed_seconds": self.elapsed_seconds(),
        }


@dataclass
class CampaignStatus:
    """The reconstructed state of one campaign run directory."""

    run_dir: str
    state: str = "empty"  # running | complete | interrupted | stopped | empty
    requested: List[str] = field(default_factory=list)
    experiments: Dict[str, ExperimentStatus] = field(default_factory=dict)
    supervisor: Optional[Dict[str, object]] = None
    events_seen: int = 0
    journal_records: int = 0
    refs_simulated: Optional[int] = None
    refs_per_second: Optional[float] = None
    stream_shards_done: Optional[int] = None
    stream_shards_total: Optional[int] = None
    trace_id: Optional[str] = None
    updated_wall: Optional[float] = None
    eta_seconds: Optional[float] = None
    nodes: Optional[Dict[str, object]] = None
    breaker_transitions: List[Dict[str, object]] = field(default_factory=list)
    dispatch: Optional[Dict[str, int]] = None
    kernels: Optional[Dict[str, Dict[str, object]]] = None
    working_set: Optional[Dict[str, object]] = None
    notes: List[str] = field(default_factory=list)

    def counts(self) -> Dict[str, int]:
        tally = {
            STATE_PENDING: 0,
            STATE_RUNNING: 0,
            STATE_IN_DOUBT: 0,
            STATE_OK: 0,
            STATE_DEGRADED: 0,
            STATE_FAILED: 0,
        }
        for exp in self.experiments.values():
            tally[exp.state] = tally.get(exp.state, 0) + 1
        return tally

    def to_dict(self) -> Dict[str, object]:
        return {
            "run_dir": self.run_dir,
            "state": self.state,
            "requested": list(self.requested),
            "counts": self.counts(),
            "experiments": {
                experiment_id: exp.to_dict()
                for experiment_id, exp in sorted(self.experiments.items())
            },
            "supervisor": self.supervisor,
            "events_seen": self.events_seen,
            "journal_records": self.journal_records,
            "refs_simulated": self.refs_simulated,
            "refs_per_second": self.refs_per_second,
            "stream_shards_done": self.stream_shards_done,
            "stream_shards_total": self.stream_shards_total,
            "trace_id": self.trace_id,
            "updated_wall": self.updated_wall,
            "eta_seconds": self.eta_seconds,
            "nodes": self.nodes,
            "breaker_transitions": list(self.breaker_transitions),
            "dispatch": self.dispatch,
            "kernels": self.kernels,
            "working_set": self.working_set,
            "notes": list(self.notes),
        }


# -- tolerant artifact readers --------------------------------------------


def _read_envelope_payload(path: Path) -> Optional[Dict[str, object]]:
    """Checksummed envelope payload, or None on any damage."""
    from repro.runtime.checkpoint import CheckpointStore
    from repro.runtime.errors import CheckpointCorruptError

    store = CheckpointStore(path.parent)
    try:
        return store._read_envelope(path)
    except CheckpointCorruptError:
        return None


def load_metrics_snapshot(
    run_dir: Union[str, Path]
) -> Optional[Dict[str, object]]:
    """Read ``<run_dir>/metrics.json``; None when absent or damaged."""
    path = Path(run_dir) / METRICS_FILENAME
    try:
        payload = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, ValueError):
        return None
    if not isinstance(payload, dict):
        return None
    if payload.get("format") != METRICS_FORMAT:
        return None
    return payload


#: Breaker-transition history is bounded: only the most recent entries
#: survive into the status payload (a long chaos run can flap a lot).
BREAKER_HISTORY_LIMIT = 20


def load_nodes_snapshot(
    run_dir: Union[str, Path]
) -> Optional[Dict[str, object]]:
    """Read ``<run_dir>/nodes.json`` (dispatch-fabric per-node health
    snapshot); None when absent, damaged, or not fabric-shaped."""
    from repro.service.dispatch import NODES_SNAPSHOT_FILENAME

    path = Path(run_dir) / NODES_SNAPSHOT_FILENAME
    try:
        payload = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, ValueError):
        return None
    if not isinstance(payload, dict):
        return None
    if not isinstance(payload.get("nodes"), dict):
        return None
    return payload


def _breaker_transitions_from_records(
    records: List[Dict[str, object]], wall_key: str
) -> List[Dict[str, object]]:
    """Normalise ``breaker-transition`` records (campaign events carry
    ``t_wall``, service WAL records carry ``at_wall``) into
    ``{breaker, from_state, to_state, at_wall}`` history entries."""
    history: List[Dict[str, object]] = []
    for record in records:
        old = record.get("from_state")
        new = record.get("to_state")
        if not isinstance(old, str) or not isinstance(new, str):
            continue
        wall = record.get(wall_key)
        history.append(
            {
                "breaker": str(record.get("breaker") or "service"),
                "from_state": old,
                "to_state": new,
                "at_wall": float(wall)
                if isinstance(wall, (int, float))
                else None,
            }
        )
    return history[-BREAKER_HISTORY_LIMIT:]


def _dispatch_counters_from_metrics(
    snapshot: Optional[Dict[str, object]]
) -> Optional[Dict[str, int]]:
    """Fabric activity counters (``node.*``) from a metrics snapshot;
    None when the campaign never ran on a dispatch fabric."""
    if snapshot is None:
        return None
    campaign = snapshot.get("campaign")
    if not isinstance(campaign, dict):
        return None
    counters = campaign.get("counters")
    if not isinstance(counters, dict):
        return None
    wanted = (
        "node.spawns",
        "node.deaths",
        "node.redispatches",
        "node.hedges",
        "node.stale_rejected",
        "node.results",
    )
    out = {
        name.split(".", 1)[1]: int(counters[name])
        for name in wanted
        if isinstance(counters.get(name), (int, float))
    }
    return out or None


def _throughput_from_metrics(
    snapshot: Optional[Dict[str, object]]
) -> tuple:
    """(total refs simulated, last refs/sec) from a metrics snapshot."""
    if snapshot is None:
        return None, None
    campaign = snapshot.get("campaign")
    if not isinstance(campaign, dict):
        return None, None
    refs: Optional[int] = None
    counters = campaign.get("counters")
    if isinstance(counters, dict):
        total = 0
        seen = False
        for name, value in counters.items():
            if name.endswith(".refs") and isinstance(value, (int, float)):
                total += int(value)
                seen = True
        refs = total if seen else None
    rate: Optional[float] = None
    gauges = campaign.get("gauges")
    if isinstance(gauges, dict):
        rates = [
            float(value)
            for name, value in gauges.items()
            if name.endswith(".last_refs_per_second")
            and isinstance(value, (int, float))
        ]
        if rates:
            rate = max(rates)
    return refs, rate


def _stream_progress_from_metrics(
    snapshot: Optional[Dict[str, object]]
) -> tuple:
    """(shards done, shards total) gauges published by the streaming
    simulators (:mod:`repro.mem.streamsim`); (None, None) when the
    campaign is not streamed."""
    if snapshot is None:
        return None, None
    campaign = snapshot.get("campaign")
    if not isinstance(campaign, dict):
        return None, None
    gauges = campaign.get("gauges")
    if not isinstance(gauges, dict):
        return None, None
    done = gauges.get("mem.stream.shards_done")
    total = gauges.get("mem.stream.shards_total")
    if isinstance(done, (int, float)) and isinstance(total, (int, float)):
        return int(done), int(total)
    return None, None


def _kernel_tallies_from_metrics(
    snapshot: Optional[Dict[str, object]]
) -> Optional[Dict[str, Dict[str, object]]]:
    """Per-kernel trust-harness tallies (``mem.kernel.*`` counters and
    tier gauges published by :mod:`repro.mem.kernels`); None when the
    campaign predates the vectorized kernels or never exercised them."""
    if snapshot is None:
        return None
    campaign = snapshot.get("campaign")
    if not isinstance(campaign, dict):
        return None
    counters = campaign.get("counters")
    gauges = campaign.get("gauges")
    counters = counters if isinstance(counters, dict) else {}
    gauges = gauges if isinstance(gauges, dict) else {}
    tallies: Dict[str, Dict[str, object]] = {}
    fields = ("chunks", "verified", "divergences", "fallback_chunks")
    for name, value in counters.items():
        if not name.startswith("mem.kernel.") or not isinstance(
            value, (int, float)
        ):
            continue
        parts = name.split(".")
        if len(parts) != 4 or parts[3] not in fields:
            continue
        tallies.setdefault(parts[2], {})[parts[3]] = int(value)
    for kind, entry in tallies.items():
        tier = gauges.get(f"mem.kernel.{kind}.tier")
        if isinstance(tier, (int, float)):
            entry["tier"] = "vector" if tier >= 1.0 else "quarantined"
        elif entry.get("divergences"):
            entry["tier"] = "quarantined"
        else:
            entry["tier"] = "vector"
    return tallies or None


# -- reconstruction --------------------------------------------------------


def load_status(
    run_dir: Union[str, Path], now: Optional[float] = None
) -> CampaignStatus:
    """Reconstruct campaign status from ``run_dir`` (read-only)."""
    from repro.runtime.events import read_events
    from repro.runtime.journal import JOURNAL_FILENAME, read_journal
    from repro.runtime.lease import LEASE_FILENAME, lease_is_stale, read_lease

    run_dir = Path(run_dir)
    now = time.time() if now is None else now
    status = CampaignStatus(run_dir=str(run_dir))

    manifest = _read_envelope_payload(run_dir / "manifest.json")
    summary = _read_envelope_payload(run_dir / "summary.json")
    events = read_events(run_dir / "events.jsonl")
    replay = read_journal(run_dir / JOURNAL_FILENAME)
    lease = read_lease(run_dir / LEASE_FILENAME)
    metrics = load_metrics_snapshot(run_dir)

    status.events_seen = len(events)
    status.journal_records = len(replay.records)
    if replay.torn_tail:
        status.notes.append(
            "journal has a torn tail (crash signature; truncated on resume)"
        )
    if replay.corrupt:
        status.notes.append(
            f"journal has {len(replay.corrupt)} damaged record(s) before "
            "the tail (storage corruption)"
        )

    # -- requested set -------------------------------------------------
    requested: List[str] = []
    if manifest is not None and isinstance(manifest.get("experiments"), list):
        requested = [str(x) for x in manifest["experiments"]]
    elif summary is not None and isinstance(summary.get("requested"), list):
        requested = [str(x) for x in summary["requested"]]
    else:
        for record in replay.records:
            if record.get("type") == "campaign-start" and isinstance(
                record.get("experiments"), list
            ):
                requested = [str(x) for x in record["experiments"]]
    status.requested = requested
    for experiment_id in requested:
        status.experiments[experiment_id] = ExperimentStatus(experiment_id)

    def exp(experiment_id: object) -> Optional[ExperimentStatus]:
        if not isinstance(experiment_id, str):
            return None
        return status.experiments.setdefault(
            experiment_id, ExperimentStatus(experiment_id)
        )

    # -- event-log state machine (authoritative for in-flight state) ---
    last_wall: Optional[float] = None
    for record in sorted(
        events,
        key=lambda r: r.get("seq") if isinstance(r.get("seq"), int) else 0,
    ):
        name = record.get("event")
        wall = record.get("t_wall")
        if isinstance(wall, (int, float)):
            last_wall = float(wall)
        entry = exp(record.get("experiment_id"))
        if entry is None:
            continue
        attempt = record.get("attempt")
        if isinstance(attempt, int):
            entry.attempts = max(entry.attempts, attempt)
        uid = record.get("attempt_uid")
        if isinstance(uid, str):
            entry.last_attempt_uid = uid
        if name in ("start", "retry"):
            if not entry.terminal:
                entry.state = STATE_RUNNING
            if entry.started_wall is None and isinstance(wall, (int, float)):
                entry.started_wall = float(wall)
            if name == "retry":
                entry.retries += 1
        elif name == "attempt-end":
            if record.get("status") == "failed":
                entry.failed_attempts += 1
        elif name == "worker-killed":
            entry.worker_kills += 1
        elif name == "finish":
            verdict = record.get("status")
            if isinstance(verdict, str) and verdict in _TERMINAL_STATES:
                entry.state = verdict
                entry.degraded = verdict == STATE_DEGRADED
            if isinstance(wall, (int, float)):
                entry.finished_wall = float(wall)
        elif name == "resume":
            entry.resumed = True
            if not entry.terminal:
                entry.state = STATE_OK  # refined by the summary below
    status.updated_wall = last_wall

    # -- journal overlay: categories and in-doubt attempts -------------
    open_attempts: Dict[str, Dict[str, object]] = {}
    for record in replay.records:
        record_type = record.get("type")
        experiment_id = record.get("experiment_id")
        if not isinstance(experiment_id, str):
            continue
        if record_type == "attempt-start":
            open_attempts[experiment_id] = record
        elif record_type == "attempt-end":
            open_attempts.pop(experiment_id, None)
            category = record.get("category")
            entry = exp(experiment_id)
            if entry is not None and isinstance(category, str):
                entry.last_failure = category

    # -- summary overlay: terminal verdicts ----------------------------
    if summary is not None and isinstance(summary.get("statuses"), dict):
        for experiment_id, verdict in summary["statuses"].items():
            entry = exp(experiment_id)
            if entry is None or not isinstance(verdict, str):
                continue
            if verdict in _TERMINAL_STATES and not entry.terminal:
                entry.state = verdict
            if verdict == STATE_DEGRADED:
                entry.state = STATE_DEGRADED
                entry.degraded = True

    # -- supervisor liveness -------------------------------------------
    live = False
    if lease is not None:
        stale = lease_is_stale(lease, now=now)
        live = not stale
        status.supervisor = {
            "pid": lease.pid,
            "token": lease.token,
            "hostname": lease.hostname,
            "heartbeat_age_seconds": max(0.0, now - lease.heartbeat_wall),
            "live": live,
        }

    # A journal attempt-start with no attempt-end is only "running" if
    # somebody is alive to be running it; otherwise it is in doubt and
    # resume will re-run it.
    for experiment_id in open_attempts:
        entry = exp(experiment_id)
        if entry is not None and not entry.terminal:
            entry.state = STATE_RUNNING if live else STATE_IN_DOUBT

    # -- campaign verdict ----------------------------------------------
    if live:
        status.state = "running"
    elif summary is not None and summary.get("status") in (
        "complete",
        "interrupted",
    ):
        status.state = str(summary["status"])
    elif events or replay.records:
        status.state = "stopped"  # died without a terminal summary
    else:
        status.state = "empty"
    if status.state != "running":
        # Nobody is executing: anything still marked running is in doubt.
        for entry in status.experiments.values():
            if entry.state == STATE_RUNNING:
                entry.state = STATE_IN_DOUBT

    # -- throughput and ETA --------------------------------------------
    status.refs_simulated, status.refs_per_second = _throughput_from_metrics(
        metrics
    )
    status.stream_shards_done, status.stream_shards_total = (
        _stream_progress_from_metrics(metrics)
    )
    if metrics is not None and isinstance(metrics.get("trace_id"), str):
        status.trace_id = metrics["trace_id"]

    # -- dispatch fabric: per-node health and breaker history ----------
    status.nodes = load_nodes_snapshot(run_dir)
    status.dispatch = _dispatch_counters_from_metrics(metrics)
    status.kernels = _kernel_tallies_from_metrics(metrics)

    # -- temporal working set: newest phase/knee from timeline.jsonl ---
    try:
        from repro.obs.timeline import load_working_set

        status.working_set = load_working_set(run_dir)
    except Exception:
        status.working_set = None
    status.breaker_transitions = _breaker_transitions_from_records(
        [r for r in events if r.get("event") == "breaker-transition"],
        "t_wall",
    )

    durations = [
        entry.elapsed_seconds()
        for entry in status.experiments.values()
        if entry.terminal and not entry.resumed
        and entry.elapsed_seconds() is not None
    ]
    remaining = [
        entry
        for entry in status.experiments.values()
        if not entry.terminal
    ]
    if status.state == "running" and durations and remaining:
        status.eta_seconds = (sum(durations) / len(durations)) * len(remaining)

    return status


# -- rendering -------------------------------------------------------------


def _format_seconds(value: Optional[float]) -> str:
    if value is None:
        return "-"
    if value < 60:
        return f"{value:.1f}s"
    minutes, seconds = divmod(value, 60.0)
    if minutes < 60:
        return f"{int(minutes)}m{seconds:02.0f}s"
    hours, minutes = divmod(minutes, 60.0)
    return f"{int(hours)}h{int(minutes):02d}m"


def _format_wall(value: Optional[float]) -> str:
    if value is None:
        return "-"
    return time.strftime("%H:%M:%S", time.localtime(value))


def _render_node_lines(nodes: Dict[str, object]) -> List[str]:
    """Shared per-node health table (campaign and service views)."""
    lines = [
        f"nodes: {nodes.get('live', 0)}/{nodes.get('total', 0)} live",
        (
            f"  {'node':<10} {'state':<6} {'pid':>7} {'inc':>4} "
            f"{'inflight':>8} {'deaths':>6} {'breaker':<9} last-heartbeat"
        ),
    ]
    entries = nodes.get("nodes")
    if not isinstance(entries, dict):
        return lines
    for node_id in sorted(entries):
        node = entries[node_id]
        if not isinstance(node, dict):
            continue
        heartbeat = node.get("last_heartbeat_wall")
        lines.append(
            f"  {node_id:<10} "
            f"{'live' if node.get('alive') else 'dead':<6} "
            f"{node.get('pid') or '-':>7} {node.get('token') or '-':>4} "
            f"{node.get('inflight', 0):>8} {node.get('deaths', 0):>6} "
            f"{node.get('breaker') or '-':<9} "
            f"{_format_wall(heartbeat if isinstance(heartbeat, (int, float)) else None)}"
        )
    return lines


def _render_breaker_history(
    transitions: List[Dict[str, object]]
) -> List[str]:
    if not transitions:
        return []
    lines = ["breaker transitions:"]
    for entry in transitions:
        lines.append(
            f"  {_format_wall(entry.get('at_wall'))}  "
            f"{entry.get('breaker')}: "
            f"{entry.get('from_state')} -> {entry.get('to_state')}"
        )
    return lines


def render_status(status: CampaignStatus) -> str:
    """Terminal rendering of one :class:`CampaignStatus`."""
    lines = [f"== campaign status: {status.run_dir} =="]
    verdict = status.state
    if status.supervisor is not None:
        sup = status.supervisor
        liveness = "live" if sup.get("live") else "stale"
        verdict += (
            f" (supervisor pid {sup.get('pid')} token {sup.get('token')}, "
            f"{liveness}, heartbeat "
            f"{_format_seconds(float(sup.get('heartbeat_age_seconds', 0.0)))} "
            "ago)"
        )
    lines.append(f"state: {verdict}")
    counts = status.counts()
    lines.append(
        f"experiments: {len(status.requested)} requested | "
        f"{counts[STATE_OK]} ok | {counts[STATE_DEGRADED]} degraded | "
        f"{counts[STATE_FAILED]} failed | {counts[STATE_RUNNING]} running | "
        f"{counts[STATE_IN_DOUBT]} in-doubt | {counts[STATE_PENDING]} pending"
    )
    throughput = []
    if status.refs_simulated is not None:
        throughput.append(f"{status.refs_simulated:,} refs simulated")
    if status.refs_per_second is not None:
        throughput.append(f"last {status.refs_per_second:,.0f} refs/s")
    if throughput:
        lines.append("throughput: " + ", ".join(throughput))
    if (
        status.stream_shards_done is not None
        and status.stream_shards_total is not None
    ):
        lines.append(
            f"streaming: shard {status.stream_shards_done}"
            f"/{status.stream_shards_total}"
        )
    if status.kernels:
        for kind in sorted(status.kernels):
            entry = status.kernels[kind]
            detail = (
                f"{entry.get('chunks', 0)} chunk(s), "
                f"{entry.get('verified', 0)} verified, "
                f"{entry.get('divergences', 0)} divergence(s), "
                f"{entry.get('fallback_chunks', 0)} fallback(s)"
            )
            lines.append(
                f"kernel {kind}: {entry.get('tier', 'vector')} ({detail})"
            )
    if status.working_set:
        from repro.units import format_size

        ws = status.working_set
        detail = f"phase {ws.get('phase')}/{ws.get('phases')}"
        if isinstance(ws.get("ws_bytes"), (int, float)):
            detail += f", ws ≈ {format_size(int(ws['ws_bytes']))}"
        if isinstance(ws.get("knee_bytes"), (int, float)):
            detail += f", knee ≈ {format_size(int(ws['knee_bytes']))}"
        if ws.get("experiment_id"):
            detail += f" ({ws['experiment_id']})"
        lines.append(f"working set: {detail}")
    if status.eta_seconds is not None:
        lines.append(f"eta: ~{_format_seconds(status.eta_seconds)}")
    if status.trace_id:
        lines.append(f"trace: {status.trace_id}")
    lines.append(
        f"artifacts: {status.events_seen} event(s), "
        f"{status.journal_records} journal record(s)"
    )
    if status.nodes is not None:
        lines.extend(_render_node_lines(status.nodes))
        if status.dispatch:
            lines.append(
                "dispatch: "
                + ", ".join(
                    f"{name.replace('_', ' ')} {value}"
                    for name, value in sorted(status.dispatch.items())
                )
            )
    lines.extend(_render_breaker_history(status.breaker_transitions))
    if status.experiments:
        lines.append("")
        lines.append(
            f"  {'id':<18} {'state':<9} {'attempts':>8} {'retries':>8} "
            f"{'elapsed':>8}  last-failure"
        )
        for experiment_id in sorted(status.experiments):
            entry = status.experiments[experiment_id]
            flags = ""
            if entry.resumed:
                flags = " (resumed)"
            elif entry.worker_kills:
                flags = f" ({entry.worker_kills} kill(s))"
            lines.append(
                f"  {experiment_id:<18} {entry.state:<9} "
                f"{entry.attempts:>8} {entry.retries:>8} "
                f"{_format_seconds(entry.elapsed_seconds()):>8}  "
                f"{entry.last_failure or '-'}{flags}"
            )
    for note in status.notes:
        lines.append(f"note: {note}")
    return "\n".join(lines)


# -- multi-tenant service rollup -------------------------------------------


def load_service_status(root: Union[str, Path]) -> Dict[str, object]:
    """Roll up a multi-tenant service root (read-only).

    A service root (``python -m repro.experiments serve <root>``) holds
    per-campaign run directories under ``campaigns/<tenant>/<id>/``,
    a shared cache, a service WAL, and a root ``metrics.json``.  The
    rollup reports, per tenant, campaign counts by state and queue
    depth (from the ``service.queue.depth.<tenant>`` gauges), plus the
    cache hit ratio, circuit-breaker state, breaker state-machine
    history (``breaker-transition`` records replayed from the service
    WAL), and — when the service runs a ``--nodes`` dispatch fabric —
    per-node health from the root ``nodes.json`` snapshot.  All
    reconstructed from artifacts, never by talking to the service.
    Tolerant of missing or damaged files, like :func:`load_status`.
    """
    from repro.runtime.journal import read_journal

    root = Path(root)
    snapshot = load_metrics_snapshot(root)
    counters: Dict[str, object] = {}
    gauges: Dict[str, object] = {}
    if snapshot is not None:
        campaign = snapshot.get("campaign")
        if isinstance(campaign, dict):
            if isinstance(campaign.get("counters"), dict):
                counters = campaign["counters"]
            if isinstance(campaign.get("gauges"), dict):
                gauges = campaign["gauges"]

    tenants: Dict[str, Dict[str, object]] = {}
    campaigns: List[Dict[str, object]] = []
    campaigns_dir = root / "campaigns"
    if campaigns_dir.is_dir():
        for tenant_dir in sorted(p for p in campaigns_dir.iterdir() if p.is_dir()):
            tenant = tenant_dir.name
            entry = tenants.setdefault(
                tenant,
                {"campaigns": 0, "states": {}, "queue_depth": 0},
            )
            for campaign_dir in sorted(p for p in tenant_dir.iterdir() if p.is_dir()):
                status = load_status(campaign_dir)
                entry["campaigns"] += 1
                states: Dict[str, int] = entry["states"]  # type: ignore[assignment]
                states[status.state] = states.get(status.state, 0) + 1
                campaigns.append(
                    {
                        "tenant": tenant,
                        "campaign_id": campaign_dir.name,
                        "state": status.state,
                        "counts": status.counts(),
                        "requested": len(status.requested),
                    }
                )
    for name, value in gauges.items():
        prefix = "service.queue.depth."
        if name.startswith(prefix) and isinstance(value, (int, float)):
            tenant = name[len(prefix):]
            tenants.setdefault(
                tenant, {"campaigns": 0, "states": {}, "queue_depth": 0}
            )["queue_depth"] = int(value)

    def _count(name: str) -> int:
        value = counters.get(name)
        return int(value) if isinstance(value, (int, float)) else 0

    hits = _count("service.cache.hits")
    misses = _count("service.cache.misses")
    lookups = hits + misses
    breaker_gauge = gauges.get("service.breaker.state")
    breaker_state = None
    if isinstance(breaker_gauge, (int, float)):
        breaker_state = {0: "closed", 1: "half-open", 2: "open"}.get(
            int(breaker_gauge), f"unknown({int(breaker_gauge)})"
        )
    # Breaker state-machine history: the service journals every
    # transition (its own breaker and the per-node fabric breakers) as
    # ``breaker-transition`` WAL records; replay is tolerant of a torn
    # tail, matching the read-only contract of this function.
    replay = read_journal(root / "service.wal")
    breaker_transitions = _breaker_transitions_from_records(
        [
            r
            for r in replay.records
            if r.get("type") == "breaker-transition"
        ],
        "at_wall",
    )
    return {
        "root": str(root),
        "tenants": tenants,
        "campaigns": campaigns,
        "queue_depth_total": int(gauges.get("service.queue.depth_total", 0))
        if isinstance(gauges.get("service.queue.depth_total"), (int, float))
        else 0,
        "cache": {
            "hits": hits,
            "misses": misses,
            "hit_ratio": (hits / lookups) if lookups else None,
            "quarantined": _count("service.cache.quarantined"),
            "entries": int(gauges.get("service.cache.entries", 0))
            if isinstance(gauges.get("service.cache.entries"), (int, float))
            else 0,
        },
        "breaker_state": breaker_state,
        "breaker_transitions": breaker_transitions,
        "nodes": load_nodes_snapshot(root),
        "submissions": {
            "accepted": _count("service.admission.accepted"),
            "rejected_tenant": _count("service.admission.rejected_tenant"),
            "rejected_service": _count("service.admission.rejected_service"),
        },
    }


def render_service_status(rollup: Dict[str, object]) -> str:
    """Terminal rendering of a :func:`load_service_status` rollup."""
    lines = [f"== service status: {rollup.get('root')} =="]
    cache = rollup.get("cache") or {}
    ratio = cache.get("hit_ratio")
    ratio_text = "-" if ratio is None else f"{100.0 * float(ratio):.0f}%"
    lines.append(
        f"cache: {cache.get('entries', 0)} entr"
        f"{'y' if cache.get('entries') == 1 else 'ies'}, "
        f"{cache.get('hits', 0)} hit(s) / {cache.get('misses', 0)} miss(es) "
        f"(hit ratio {ratio_text}), "
        f"{cache.get('quarantined', 0)} quarantined"
    )
    breaker = rollup.get("breaker_state")
    if breaker is not None:
        lines.append(f"breaker: {breaker}")
    nodes = rollup.get("nodes")
    if isinstance(nodes, dict):
        lines.extend(_render_node_lines(nodes))
    transitions = rollup.get("breaker_transitions")
    if isinstance(transitions, list) and transitions:
        lines.extend(_render_breaker_history(transitions))
    submissions = rollup.get("submissions") or {}
    lines.append(
        f"admission: {submissions.get('accepted', 0)} accepted, "
        f"{submissions.get('rejected_tenant', 0)} refused (tenant queue), "
        f"{submissions.get('rejected_service', 0)} refused (service full); "
        f"{rollup.get('queue_depth_total', 0)} queued now"
    )
    tenants = rollup.get("tenants") or {}
    if tenants:
        lines.append("")
        lines.append(f"  {'tenant':<20} {'campaigns':>9} {'queued':>7}  states")
        for tenant in sorted(tenants):
            entry = tenants[tenant]
            states = entry.get("states") or {}
            state_text = (
                ", ".join(f"{k}:{v}" for k, v in sorted(states.items())) or "-"
            )
            lines.append(
                f"  {tenant:<20} {entry.get('campaigns', 0):>9} "
                f"{entry.get('queue_depth', 0):>7}  {state_text}"
            )
    campaigns = rollup.get("campaigns") or []
    if campaigns:
        lines.append("")
        lines.append(f"  {'campaign':<34} {'state':<12} ok/deg/fail")
        for item in campaigns:
            counts = item.get("counts") or {}
            lines.append(
                f"  {item.get('tenant')}/{item.get('campaign_id'):<26} "
                f"{item.get('state'):<12} "
                f"{counts.get(STATE_OK, 0)}/{counts.get(STATE_DEGRADED, 0)}"
                f"/{counts.get(STATE_FAILED, 0)}"
            )
    return "\n".join(lines)
