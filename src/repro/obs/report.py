"""Static post-hoc campaign report (markdown or HTML).

``python -m repro.experiments report <run-dir>`` renders one document
answering "what happened and where did the time go" for a finished (or
interrupted) campaign: per-experiment timings and verdicts, the
retry/fault/validation story from ``events.jsonl``, miss-rate result
tables from the checkpointed outcomes, the campaign metrics rollup
from ``metrics.json``, and the slowest spans from ``spans.jsonl``.

Everything is reconstructed read-only through the same tolerant
readers as :mod:`repro.obs.status`; a torn or damaged artifact costs a
section, never the report.
"""

from __future__ import annotations

import html as _html
import json
import time
from pathlib import Path
from typing import Dict, List, Optional, Union

from repro.obs.status import (
    CampaignStatus,
    _format_seconds,
    load_metrics_snapshot,
    load_status,
)


def _md_table(headers: List[str], rows: List[List[object]]) -> List[str]:
    """Markdown table lines (empty when there are no rows)."""
    if not rows:
        return []
    lines = [
        "| " + " | ".join(headers) + " |",
        "| " + " | ".join("---" for _ in headers) + " |",
    ]
    for row in rows:
        lines.append("| " + " | ".join(str(cell) for cell in row) + " |")
    return lines


def _event_tallies(events: List[Dict[str, object]]) -> Dict[str, int]:
    tally: Dict[str, int] = {}
    for record in events:
        name = record.get("event")
        if isinstance(name, str):
            tally[name] = tally.get(name, 0) + 1
    return tally


def _result_sections(run_dir: Path) -> List[str]:
    """Paper-vs-measured tables from every valid result checkpoint."""
    from repro.experiments.runner import ExperimentResult
    from repro.runtime.checkpoint import CheckpointStore

    store = CheckpointStore(run_dir)
    lines: List[str] = []
    for experiment_id in store.completed_ids():
        try:
            outcome = store.load_outcome(experiment_id)
        except Exception:  # noqa: BLE001 - a bad checkpoint costs a section
            continue
        result = outcome.result
        if not isinstance(result, ExperimentResult):
            continue
        lines.append(f"### {experiment_id}: {result.title}")
        lines.append("")
        meta = [f"status **{outcome.status}**", f"{outcome.attempts} attempt(s)"]
        if outcome.elapsed_seconds:
            meta.append(f"{_format_seconds(outcome.elapsed_seconds)} elapsed")
        lines.append(", ".join(meta))
        lines.append("")
        if result.comparisons:
            lines.extend(
                _md_table(
                    ["quantity", "paper", "measured", "unit", "ratio", "note"],
                    [comp.row() for comp in result.comparisons],
                )
            )
            lines.append("")
        if result.curves:
            rows = []
            for curve in result.curves:
                rates = list(curve.miss_rates)
                rows.append(
                    [
                        curve.label or curve.metric,
                        len(curve.capacities),
                        f"{min(rates):.4g}" if rates else "-",
                        f"{max(rates):.4g}" if rates else "-",
                    ]
                )
            lines.extend(
                _md_table(["curve", "points", "min miss rate", "max miss rate"], rows)
            )
            lines.append("")
        for note in result.notes:
            lines.append(f"> note: {note}")
        if result.notes:
            lines.append("")
    return lines


def _metrics_sections(run_dir: Path) -> List[str]:
    snapshot = load_metrics_snapshot(run_dir)
    if snapshot is None:
        return ["_No readable `metrics.json` (campaign ran without obs?)._", ""]
    campaign = snapshot.get("campaign")
    lines: List[str] = []
    if isinstance(campaign, dict):
        counters = campaign.get("counters")
        if isinstance(counters, dict) and counters:
            lines.append("#### Counters")
            lines.append("")
            lines.extend(
                _md_table(
                    ["counter", "value"],
                    [[name, counters[name]] for name in sorted(counters)],
                )
            )
            lines.append("")
        gauges = campaign.get("gauges")
        if isinstance(gauges, dict) and gauges:
            lines.append("#### Gauges")
            lines.append("")
            lines.extend(
                _md_table(
                    ["gauge", "value"],
                    [[name, gauges[name]] for name in sorted(gauges)],
                )
            )
            lines.append("")
        histograms = campaign.get("histograms")
        if isinstance(histograms, dict) and histograms:
            rows = []
            for name in sorted(histograms):
                hist = histograms[name]
                if not isinstance(hist, dict):
                    continue
                count = hist.get("count", 0)
                total = hist.get("sum", 0.0)
                mean = (
                    f"{float(total) / float(count):.4g}"
                    if isinstance(count, (int, float)) and count
                    else "-"
                )
                rows.append([name, count, f"{float(total):.4g}", mean])
            lines.append("#### Histograms")
            lines.append("")
            lines.extend(_md_table(["histogram", "count", "sum", "mean"], rows))
            lines.append("")
    attempts = snapshot.get("attempts")
    if isinstance(attempts, dict) and attempts:
        rows = []
        for uid in sorted(attempts):
            entry = attempts[uid]
            if not isinstance(entry, dict):
                continue
            rss = entry.get("rss_peak_kb")
            rows.append(
                [
                    uid,
                    f"{int(rss):,}" if isinstance(rss, (int, float)) else "-",
                    entry.get("spans", "-"),
                ]
            )
        lines.append("#### Per-attempt telemetry")
        lines.append("")
        lines.extend(_md_table(["attempt uid", "rss peak (KiB)", "spans"], rows))
        lines.append("")
    return lines or ["_metrics.json holds no samples._", ""]


def _whole_run_knee_line(phases: List[object]) -> Optional[str]:
    """Knees of the summed (end-of-run) curve, for contrast with phases."""
    import numpy as np

    from repro.core.curves import MissRateCurve
    from repro.core.knee import find_knees
    from repro.units import format_size

    sizes: Optional[List[int]] = None
    total = None
    counted = 0
    for phase in phases:
        if phase.cache_sizes is None or phase.misses is None:
            continue
        if sizes is None:
            sizes = phase.cache_sizes
            total = np.zeros(len(sizes), dtype=np.int64)
        if phase.cache_sizes == sizes:
            total = total + phase.misses
            counted += phase.counted
    if sizes is None or not counted:
        return None
    curve = MissRateCurve(
        capacities=np.asarray(sizes, dtype=np.int64),
        miss_rates=total.astype(np.float64) / float(counted),
        label="whole run",
    )
    knees = find_knees(curve, rel_threshold=0.25)
    if not knees:
        return "End-of-run curve shows no knee at the default threshold."
    return (
        "End-of-run knee(s): "
        + ", ".join(format_size(int(k.capacity_bytes)) for k in knees)
        + " — the single estimate the per-phase rows above average over."
    )


def _timeline_groups(rows: List[Dict[str, object]]):
    """``(label, latest-attempt rows)`` per experiment found in rows."""
    from repro.obs.timeline import latest_attempt_rows

    experiment_ids = sorted(
        {str(r["experiment_id"]) for r in rows if r.get("experiment_id")}
    )
    if experiment_ids:
        return [
            (eid, latest_attempt_rows(rows, experiment_id=eid))
            for eid in experiment_ids
        ]
    return [(None, latest_attempt_rows(rows))]


def _working_set_sections(run_dir: Path) -> List[str]:
    """Per-phase knee tables from ``timeline.jsonl`` (tolerant)."""
    try:
        from repro.obs.timeline import TIMELINE_FILENAME, detect_phases, scan_timeline
        from repro.units import format_size

        scan = scan_timeline(run_dir / TIMELINE_FILENAME)
        if not scan.rows:
            return [
                "_No readable `timeline.jsonl` (campaign ran without obs?)._",
                "",
            ]
        lines: List[str] = []
        for experiment_id, group in _timeline_groups(scan.rows):
            phases = detect_phases(group)
            if not phases:
                continue
            label = experiment_id or "(unlabelled rows)"
            lines.append(
                f"### {label}: {len(phases)} phase(s) over "
                f"{len(group)} chunk(s)"
            )
            lines.append("")
            table_rows = []
            for phase in phases:
                info = phase.to_dict()
                knees = info["knee_bytes"]
                table_rows.append(
                    [
                        phase.index,
                        phase.rows,
                        f"{phase.refs:,}",
                        format_size(info["ws_bytes"]) if info["ws_bytes"] else "-",
                        ", ".join(format_size(k) for k in knees) or "-",
                        (
                            f"{info['miss_rate']:.4g}"
                            if info["miss_rate"] is not None
                            else "-"
                        ),
                    ]
                )
            lines.extend(
                _md_table(
                    [
                        "phase",
                        "chunks",
                        "refs",
                        "ws estimate",
                        "knee(s)",
                        "miss rate",
                    ],
                    table_rows,
                )
            )
            lines.append("")
            contrast = _whole_run_knee_line(phases)
            if contrast is not None:
                lines.append(contrast)
                lines.append("")
        if scan.damaged:
            lines.append(
                f"> {len(scan.damaged)} damaged timeline line(s) skipped."
            )
            lines.append("")
        if scan.torn_tail:
            lines.append(
                "> timeline ends in a torn tail (writer interrupted mid-append)."
            )
            lines.append("")
        return lines or ["_Timeline rows carry no phase signal._", ""]
    except Exception:  # noqa: BLE001 - a bad artifact costs a section
        return ["_Timeline unreadable; section skipped._", ""]


def _span_sections(run_dir: Path, top: int = 12) -> List[str]:
    from repro.obs.tracing import SPANS_FILENAME, read_spans

    spans = read_spans(run_dir / SPANS_FILENAME)
    if not spans:
        return ["_No readable `spans.jsonl`._", ""]
    slowest = sorted(spans, key=lambda s: s.dur_s, reverse=True)[:top]
    rows = []
    for span in slowest:
        detail = ", ".join(
            f"{key}={value}" for key, value in sorted(span.attrs.items())
        )
        rows.append(
            [span.name, _format_seconds(span.dur_s), span.status, detail or "-"]
        )
    lines = [f"{len(spans)} span(s) recorded; slowest {len(slowest)}:", ""]
    lines.extend(_md_table(["span", "duration", "status", "attributes"], rows))
    lines.append("")
    return lines


def render_report(
    run_dir: Union[str, Path],
    status: Optional[CampaignStatus] = None,
    now: Optional[float] = None,
) -> str:
    """Render the campaign report for ``run_dir`` as markdown."""
    from repro.runtime.events import read_events

    run_dir = Path(run_dir)
    status = load_status(run_dir, now=now) if status is None else status
    counts = status.counts()
    now = time.time() if now is None else now

    lines: List[str] = [
        f"# Campaign report: `{status.run_dir}`",
        "",
        f"Generated {time.strftime('%Y-%m-%d %H:%M:%S', time.localtime(now))}"
        f" — campaign state **{status.state}**.",
        "",
        "## Overview",
        "",
    ]
    lines.extend(
        _md_table(
            ["requested", "ok", "degraded", "failed", "in-doubt", "pending"],
            [
                [
                    len(status.requested),
                    counts["ok"],
                    counts["degraded"],
                    counts["failed"],
                    counts["in-doubt"],
                    counts["pending"],
                ]
            ],
        )
    )
    lines.append("")
    if status.refs_simulated is not None or status.refs_per_second is not None:
        bits = []
        if status.refs_simulated is not None:
            bits.append(f"{status.refs_simulated:,} references simulated")
        if status.refs_per_second is not None:
            bits.append(f"last hot-loop rate {status.refs_per_second:,.0f} refs/s")
        lines.append("Throughput: " + ", ".join(bits) + ".")
        lines.append("")
    if status.kernels:
        for kind in sorted(status.kernels):
            entry = status.kernels[kind]
            lines.append(
                f"Kernel `{kind}`: **{entry.get('tier', 'vector')}** tier — "
                f"{entry.get('chunks', 0)} chunk(s), "
                f"{entry.get('verified', 0)} shadow-verified, "
                f"{entry.get('divergences', 0)} divergence(s), "
                f"{entry.get('fallback_chunks', 0)} oracle fallback(s)."
            )
        lines.append("")
    if status.trace_id:
        lines.append(f"Trace id: `{status.trace_id}`.")
        lines.append("")

    # -- timings -------------------------------------------------------
    lines.append("## Experiment timings")
    lines.append("")
    rows = []
    for experiment_id in sorted(status.experiments):
        entry = status.experiments[experiment_id]
        rows.append(
            [
                experiment_id,
                entry.state + (" (resumed)" if entry.resumed else ""),
                entry.attempts,
                entry.retries,
                _format_seconds(entry.elapsed_seconds(now)),
                entry.last_failure or "-",
            ]
        )
    lines.extend(
        _md_table(
            ["experiment", "state", "attempts", "retries", "elapsed", "last failure"],
            rows,
        )
        or ["_No experiments recorded._"]
    )
    lines.append("")

    # -- retries / faults / validation ---------------------------------
    lines.append("## Retries, faults, and validation")
    lines.append("")
    events = read_events(run_dir / "events.jsonl")
    tallies = _event_tallies(events)
    failed_attempts = sum(
        entry.failed_attempts for entry in status.experiments.values()
    )
    kills = sum(entry.worker_kills for entry in status.experiments.values())
    lines.extend(
        _md_table(
            ["signal", "count"],
            [
                ["retries", tallies.get("retry", 0)],
                ["failed attempts", failed_attempts],
                ["worker kills", kills],
                ["checkpoint write retries", tallies.get("checkpoint-retry", 0)],
                ["validated results", tallies.get("validated", 0)],
                ["resumed experiments", tallies.get("resume", 0)],
                ["obs snapshot failures", tallies.get("obs-snapshot-failed", 0)],
                ["kernel fallbacks", tallies.get("kernel-fallback", 0)],
            ],
        )
    )
    lines.append("")
    categories: Dict[str, int] = {}
    for entry in status.experiments.values():
        if entry.last_failure:
            categories[entry.last_failure] = categories.get(entry.last_failure, 0) + 1
    if categories:
        lines.extend(
            _md_table(
                ["last failure category", "experiments"],
                [[name, categories[name]] for name in sorted(categories)],
            )
        )
        lines.append("")

    # -- results -------------------------------------------------------
    lines.append("## Results")
    lines.append("")
    result_lines = _result_sections(run_dir)
    lines.extend(result_lines or ["_No valid result checkpoints._", ""])

    # -- temporal working sets -----------------------------------------
    lines.append("## Temporal working sets")
    lines.append("")
    lines.extend(_working_set_sections(run_dir))

    # -- metrics / spans -----------------------------------------------
    lines.append("## Metrics rollup")
    lines.append("")
    lines.extend(_metrics_sections(run_dir))
    lines.append("## Spans")
    lines.append("")
    lines.extend(_span_sections(run_dir))

    for note in status.notes:
        lines.append(f"> {note}")
    if status.notes:
        lines.append("")
    return "\n".join(lines).rstrip() + "\n"


def _sparkline_svg(
    values: List[float], width: int = 280, height: int = 40, color: str = "#2a6fdb"
) -> str:
    """A dependency-free inline-SVG sparkline (empty below 2 points)."""
    points = [float(v) for v in values if isinstance(v, (int, float))]
    if len(points) < 2:
        return ""
    lo, hi = min(points), max(points)
    span = (hi - lo) or 1.0
    step = width / (len(points) - 1)
    coords = " ".join(
        f"{i * step:.1f},{height - 2 - (height - 4) * (v - lo) / span:.1f}"
        for i, v in enumerate(points)
    )
    return (
        f'<svg width="{width}" height="{height}" '
        f'viewBox="0 0 {width} {height}" '
        'xmlns="http://www.w3.org/2000/svg" role="img">'
        f'<polyline fill="none" stroke="{color}" stroke-width="1.5" '
        f'points="{coords}"/></svg>'
    )


def _row_chunk_miss_rate(row: Dict[str, object]) -> Optional[float]:
    """Per-chunk miss rate: mid-ladder capacity for stack-distance rows,
    the simulated capacity for explicit-cache rows."""
    counted = row.get("counted")
    if not isinstance(counted, (int, float)) or counted <= 0:
        return None
    misses = row.get("misses")
    if isinstance(misses, list) and misses:
        return float(misses[len(misses) // 2]) / float(counted)
    total = row.get("misses_total")
    if isinstance(total, (int, float)):
        return float(total) / float(counted)
    return None


def _timeline_html_section(run_dir: Union[str, Path]) -> str:
    """Raw-HTML sparkline section (not escaped with the markdown body)."""
    try:
        from repro.obs.timeline import TIMELINE_FILENAME, read_timeline

        rows = read_timeline(Path(run_dir) / TIMELINE_FILENAME)
        if not rows:
            return ""
        parts: List[str] = []
        for experiment_id, group in _timeline_groups(rows):
            ws = [
                r["ws_blocks"] * r.get("block_size", 8)
                for r in group
                if isinstance(r.get("ws_blocks"), int)
            ]
            rates = [
                rate
                for rate in (_row_chunk_miss_rate(r) for r in group)
                if rate is not None
            ]
            label = _html.escape(str(experiment_id or "(unlabelled rows)"))
            charts: List[str] = []
            ws_svg = _sparkline_svg(ws)
            if ws_svg:
                charts.append(
                    f"<div>working set per chunk (bytes): {ws_svg}</div>"
                )
            rate_svg = _sparkline_svg(rates, color="#c4453c")
            if rate_svg:
                charts.append(
                    "<div>miss rate per chunk (mid-ladder capacity): "
                    f"{rate_svg}</div>"
                )
            if charts:
                parts.append(f"<h3>{label}</h3>" + "".join(charts))
        if not parts:
            return ""
        return (
            '<section class="sparklines">\n<h2>Timeline sparklines</h2>\n'
            + "\n".join(parts)
            + "\n</section>"
        )
    except Exception:  # noqa: BLE001 - a bad artifact costs a section
        return ""


def render_report_html(
    run_dir: Union[str, Path],
    status: Optional[CampaignStatus] = None,
    now: Optional[float] = None,
) -> str:
    """The same report wrapped as a static self-contained HTML page.

    The markdown body is escaped wholesale; the timeline sparklines are
    appended as a separate *raw* section so the inline SVG renders.
    """
    markdown = render_report(run_dir, status=status, now=now)
    title = _html.escape(f"Campaign report: {run_dir}")
    body = _html.escape(markdown)
    sparklines = _timeline_html_section(run_dir)
    return (
        "<!DOCTYPE html>\n"
        "<html lang=\"en\">\n<head>\n<meta charset=\"utf-8\">\n"
        f"<title>{title}</title>\n"
        "<style>body{font-family:monospace;max-width:72rem;margin:2rem auto;"
        "white-space:pre-wrap;}</style>\n"
        "</head>\n<body>\n"
        f"{body}\n"
        + (f"{sparklines}\n" if sparklines else "")
        + "</body>\n</html>\n"
    )


def write_report(
    run_dir: Union[str, Path],
    output: Optional[Union[str, Path]] = None,
    html: bool = False,
) -> str:
    """Render (and optionally write) the report; returns the text."""
    text = (
        render_report_html(run_dir) if html else render_report(run_dir)
    )
    if output is not None:
        Path(output).write_text(text, encoding="utf-8")
    return text


def report_to_json(run_dir: Union[str, Path]) -> str:
    """Machine-readable form: the status dict plus event tallies."""
    from repro.runtime.events import read_events

    run_dir = Path(run_dir)
    status = load_status(run_dir)
    payload = status.to_dict()
    payload["event_tallies"] = _event_tallies(
        read_events(run_dir / "events.jsonl")
    )
    return json.dumps(payload, indent=1, sort_keys=True)


# -- multi-tenant service report -------------------------------------------


def render_service_report(root: Union[str, Path]) -> str:
    """Markdown report for a multi-tenant service root.

    Rolls up per-tenant campaign states and queue depths, the shared
    cache's hit/miss/quarantine tallies, the circuit-breaker state,
    and the admission counters — all from on-disk artifacts (the root
    ``metrics.json`` snapshot and the per-campaign run directories).
    """
    from repro.obs.status import load_service_status

    root = Path(root)
    rollup = load_service_status(root)
    now = time.time()
    lines: List[str] = [
        f"# Service report: `{root}`",
        "",
        f"Generated {time.strftime('%Y-%m-%d %H:%M:%S', time.localtime(now))}.",
        "",
        "## Tenants",
        "",
    ]
    tenants = rollup["tenants"]
    rows = []
    for tenant in sorted(tenants):
        entry = tenants[tenant]
        states = entry.get("states") or {}
        rows.append(
            [
                tenant,
                entry.get("campaigns", 0),
                entry.get("queue_depth", 0),
                ", ".join(f"{k}:{v}" for k, v in sorted(states.items())) or "-",
            ]
        )
    lines.extend(
        _md_table(["tenant", "campaigns", "queued", "states"], rows)
        or ["_No tenants recorded._"]
    )
    lines.append("")

    cache = rollup["cache"]
    ratio = cache.get("hit_ratio")
    lines.append("## Cache")
    lines.append("")
    lines.extend(
        _md_table(
            ["entries", "hits", "misses", "hit ratio", "quarantined"],
            [
                [
                    cache.get("entries", 0),
                    cache.get("hits", 0),
                    cache.get("misses", 0),
                    "-" if ratio is None else f"{100.0 * float(ratio):.0f}%",
                    cache.get("quarantined", 0),
                ]
            ],
        )
    )
    lines.append("")

    lines.append("## Admission and breaker")
    lines.append("")
    submissions = rollup["submissions"]
    lines.extend(
        _md_table(
            ["signal", "value"],
            [
                ["accepted submissions", submissions.get("accepted", 0)],
                ["refused (tenant queue full)", submissions.get("rejected_tenant", 0)],
                ["refused (service at capacity)", submissions.get("rejected_service", 0)],
                ["queued now", rollup.get("queue_depth_total", 0)],
                ["breaker state", rollup.get("breaker_state") or "-"],
            ],
        )
    )
    lines.append("")

    campaigns = rollup["campaigns"]
    lines.append("## Campaigns")
    lines.append("")
    rows = []
    for item in campaigns:
        counts = item.get("counts") or {}
        rows.append(
            [
                f"{item.get('tenant')}/{item.get('campaign_id')}",
                item.get("state"),
                item.get("requested", 0),
                counts.get("ok", 0),
                counts.get("degraded", 0),
                counts.get("failed", 0),
            ]
        )
    lines.extend(
        _md_table(
            ["campaign", "state", "requested", "ok", "degraded", "failed"], rows
        )
        or ["_No campaigns recorded._"]
    )
    lines.append("")

    lines.append("## Metrics rollup")
    lines.append("")
    lines.extend(_metrics_sections(root))
    return "\n".join(lines).rstrip() + "\n"


def render_service_report_html(root: Union[str, Path]) -> str:
    """The service report wrapped as a static HTML page."""
    markdown = render_service_report(root)
    title = _html.escape(f"Service report: {root}")
    body = _html.escape(markdown)
    return (
        "<!DOCTYPE html>\n"
        "<html lang=\"en\">\n<head>\n<meta charset=\"utf-8\">\n"
        f"<title>{title}</title>\n"
        "<style>body{font-family:monospace;max-width:72rem;margin:2rem auto;"
        "white-space:pre-wrap;}</style>\n"
        "</head>\n<body>\n"
        f"{body}\n"
        "</body>\n</html>\n"
    )


def service_report_to_json(root: Union[str, Path]) -> str:
    """Machine-readable form of the service rollup."""
    from repro.obs.status import load_service_status

    return json.dumps(load_service_status(root), indent=1, sort_keys=True)
