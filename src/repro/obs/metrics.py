"""Process-local metrics: counters, gauges, fixed-bucket histograms.

Design constraints, in order:

1. **Hot-loop safety.**  The cache/setassoc/stack-distance inner loops
   execute one Python iteration per memory reference; anything we add
   there is multiplied by hundreds of millions.  The only per-iteration
   cost this module imposes is a single ``sampler is not None`` test
   inside the *already existing* masked budget branch (taken once every
   :data:`~repro.runtime.budget.CHECK_INTERVAL` references).  All real
   accounting happens in :meth:`LoopSampler.finish`, once per loop.
2. **Off by default.**  ``obs_enabled()`` is ``False`` until the
   campaign CLI (or a test) turns it on, so library users and the
   uninstrumented benchmarks pay nothing.  ``REPRO_OBS=1`` force-enables
   and ``REPRO_OBS=0`` force-disables, overriding the CLI either way.
3. **No dependencies.**  Snapshots are plain dicts; the Prometheus
   text exposition is hand-rolled (the format is three line shapes).

Metric names are dotted lowercase (``runtime.journal.fsync_seconds``);
the Prometheus renderer mangles them to legal identifiers.  Histograms
use fixed bucket boundaries chosen at creation; merging two histograms
with different boundaries is an error, which keeps worker → supervisor
rollups honest.
"""

from __future__ import annotations

import os
import threading
import time
from typing import Callable, Dict, List, Optional, Sequence

OBS_ENV = "REPRO_OBS"
SAMPLE_ENV = "REPRO_OBS_SAMPLE"
METRICS_FILENAME = "metrics.json"
METRICS_FORMAT = 1

#: Default hot-loop sampling stride (references between sampler ticks).
#: Must be a multiple of the budget CHECK_INTERVAL so ticks land on the
#: masked branch; enforced by LoopSampler.
DEFAULT_SAMPLE_INTERVAL = 8192

#: Latency buckets (seconds) for fsync/checkpoint/heartbeat style
#: metrics: 10us .. 10s, decade-ish spacing.
LATENCY_BUCKETS_S = (
    1e-5,
    1e-4,
    1e-3,
    1e-2,
    0.1,
    1.0,
    10.0,
)

#: Throughput buckets (refs/second) for the simulation hot loops.
THROUGHPUT_BUCKETS = (
    1e3,
    3e3,
    1e4,
    3e4,
    1e5,
    3e5,
    1e6,
    3e6,
    1e7,
    3e7,
    1e8,
)


class Counter:
    """Monotonically increasing integer-ish counter."""

    __slots__ = ("name", "value", "_lock")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0
        self._lock = threading.Lock()

    def inc(self, amount: float = 1) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name} cannot decrease by {amount}")
        with self._lock:
            self.value += amount


class Gauge:
    """Last-write-wins instantaneous value."""

    __slots__ = ("name", "value", "_lock")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        with self._lock:
            self.value = value

    def add(self, amount: float) -> None:
        with self._lock:
            self.value += amount


class Histogram:
    """Fixed-boundary histogram (cumulative counts come out at render).

    ``counts[i]`` counts observations ``<= buckets[i]``; the final slot
    counts overflows (+Inf bucket), Prometheus-style.
    """

    __slots__ = ("name", "buckets", "counts", "total", "count", "_lock")

    def __init__(self, name: str, buckets: Sequence[float]) -> None:
        if not buckets:
            raise ValueError(f"histogram {name} needs at least one bucket")
        ordered = tuple(float(b) for b in buckets)
        if list(ordered) != sorted(set(ordered)):
            raise ValueError(f"histogram {name} buckets must strictly increase")
        self.name = name
        self.buckets = ordered
        self.counts = [0] * (len(ordered) + 1)
        self.total = 0.0
        self.count = 0
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        idx = len(self.buckets)
        for i, bound in enumerate(self.buckets):
            if value <= bound:
                idx = i
                break
        with self._lock:
            self.counts[idx] += 1
            self.total += value
            self.count += 1

    def merge(self, snap: Dict[str, object]) -> None:
        buckets = tuple(float(b) for b in snap["buckets"])  # type: ignore[index]
        if buckets != self.buckets:
            raise ValueError(
                f"histogram {self.name}: cannot merge boundaries "
                f"{list(buckets)} into {list(self.buckets)}"
            )
        counts: List[int] = list(snap["counts"])  # type: ignore[arg-type]
        if len(counts) != len(self.counts):
            raise ValueError(f"histogram {self.name}: count arity mismatch")
        with self._lock:
            for i, c in enumerate(counts):
                self.counts[i] += int(c)
            self.total += float(snap.get("sum", 0.0))  # type: ignore[arg-type]
            self.count += int(snap.get("count", 0))  # type: ignore[arg-type]


class MetricsRegistry:
    """Thread-safe name → instrument map with snapshot/merge/export."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    # -- instrument accessors (create on first use) --------------------

    def counter(self, name: str) -> Counter:
        with self._lock:
            inst = self._counters.get(name)
            if inst is None:
                inst = self._counters[name] = Counter(name)
            return inst

    def gauge(self, name: str) -> Gauge:
        with self._lock:
            inst = self._gauges.get(name)
            if inst is None:
                inst = self._gauges[name] = Gauge(name)
            return inst

    def histogram(
        self, name: str, buckets: Sequence[float] = LATENCY_BUCKETS_S
    ) -> Histogram:
        with self._lock:
            inst = self._histograms.get(name)
            if inst is None:
                inst = self._histograms[name] = Histogram(name, buckets)
            return inst

    # -- snapshots ------------------------------------------------------

    def snapshot(self) -> Dict[str, object]:
        """Plain-dict snapshot, JSON-serializable, mergeable."""
        with self._lock:
            counters = {n: c.value for n, c in self._counters.items()}
            gauges = {n: g.value for n, g in self._gauges.items()}
            histograms = {
                n: {
                    "buckets": list(h.buckets),
                    "counts": list(h.counts),
                    "sum": h.total,
                    "count": h.count,
                }
                for n, h in self._histograms.items()
            }
        return {"counters": counters, "gauges": gauges, "histograms": histograms}

    def merge_snapshot(self, snap: Dict[str, object]) -> None:
        """Fold another registry's snapshot into this one.

        Counters and histogram bucket counts add; gauges last-write-win.
        Used to roll worker-process metrics up into the supervisor's
        campaign-level registry.
        """
        for name, value in dict(snap.get("counters", {})).items():  # type: ignore[arg-type]
            self.counter(name).inc(value)
        for name, value in dict(snap.get("gauges", {})).items():  # type: ignore[arg-type]
            self.gauge(name).set(value)
        for name, hsnap in dict(snap.get("histograms", {})).items():  # type: ignore[arg-type]
            self.histogram(name, hsnap["buckets"]).merge(hsnap)

    def reset(self) -> None:
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()

    def to_prometheus(self) -> str:
        return render_prometheus(self.snapshot())


def _prom_name(name: str) -> str:
    mangled = "".join(
        ch if (ch.isalnum() and ch.isascii()) or ch == "_" else "_" for ch in name
    )
    if not mangled or mangled[0].isdigit():
        mangled = "_" + mangled
    return "repro_" + mangled


def _prom_float(value: float) -> str:
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def render_prometheus(snapshot: Dict[str, object]) -> str:
    """Render a registry snapshot in Prometheus text exposition format."""
    lines: List[str] = []
    for name in sorted(dict(snapshot.get("counters", {}))):  # type: ignore[arg-type]
        value = snapshot["counters"][name]  # type: ignore[index]
        prom = _prom_name(name)
        lines.append(f"# TYPE {prom} counter")
        lines.append(f"{prom} {_prom_float(value)}")
    for name in sorted(dict(snapshot.get("gauges", {}))):  # type: ignore[arg-type]
        value = snapshot["gauges"][name]  # type: ignore[index]
        prom = _prom_name(name)
        lines.append(f"# TYPE {prom} gauge")
        lines.append(f"{prom} {_prom_float(value)}")
    for name in sorted(dict(snapshot.get("histograms", {}))):  # type: ignore[arg-type]
        hsnap = snapshot["histograms"][name]  # type: ignore[index]
        prom = _prom_name(name)
        lines.append(f"# TYPE {prom} histogram")
        cumulative = 0
        for bound, count in zip(hsnap["buckets"], hsnap["counts"]):
            cumulative += count
            lines.append(
                f'{prom}_bucket{{le="{_prom_float(bound)}"}} {cumulative}'
            )
        cumulative += hsnap["counts"][-1]
        lines.append(f'{prom}_bucket{{le="+Inf"}} {cumulative}')
        lines.append(f"{prom}_sum {_prom_float(hsnap['sum'])}")
        lines.append(f"{prom}_count {hsnap['count']}")
    return "\n".join(lines) + ("\n" if lines else "")


# -- global registry and the enable gate --------------------------------

_registry = MetricsRegistry()
_enabled = False


def get_registry() -> MetricsRegistry:
    return _registry


def obs_enabled() -> bool:
    """Is metrics collection on for this process?

    The ``REPRO_OBS`` environment variable (when set to anything
    truthy/falsy) overrides the programmatic switch in both directions,
    so workers inherit the supervisor's decision and operators can kill
    instrumentation without touching flags.
    """
    env = os.environ.get(OBS_ENV)
    if env is not None and env != "":
        return env not in ("0", "false", "no", "off")
    return _enabled


def set_obs_enabled(enabled: bool) -> None:
    global _enabled
    _enabled = bool(enabled)


def sample_interval() -> int:
    """Hot-loop sampling stride, overridable via ``REPRO_OBS_SAMPLE``."""
    raw = os.environ.get(SAMPLE_ENV)
    if raw:
        try:
            value = int(raw)
        except ValueError:
            value = DEFAULT_SAMPLE_INTERVAL
        if value > 0:
            return value
    return DEFAULT_SAMPLE_INTERVAL


# -- cheap module-level recording helpers ------------------------------
# Each is a single enabled-check away from a no-op so call sites stay
# one line and cold paths stay cold.


def inc(name: str, amount: float = 1) -> None:
    if obs_enabled():
        _registry.counter(name).inc(amount)


def set_gauge(name: str, value: float) -> None:
    if obs_enabled():
        _registry.gauge(name).set(value)


def observe(
    name: str, value: float, buckets: Sequence[float] = LATENCY_BUCKETS_S
) -> None:
    if obs_enabled():
        _registry.histogram(name, buckets).observe(value)


def timed(name: str) -> "_Timer":
    """``with metrics.timed("runtime.journal.fsync_seconds"): ...``"""
    return _Timer(name)


class _Timer:
    __slots__ = ("name", "_t0")

    def __init__(self, name: str) -> None:
        self.name = name
        self._t0 = 0.0

    def __enter__(self) -> "_Timer":
        self._t0 = time.monotonic()
        return self

    def __exit__(self, *exc: object) -> None:
        observe(self.name, time.monotonic() - self._t0)


# -- hot-loop sampler ---------------------------------------------------


class LoopSampler:
    """Per-loop accumulator flushed to the registry once, at the end.

    Created via :func:`hot_loop_sampler`, which returns ``None`` when
    observability is off — the loop then pays only an ``is not None``
    test on the masked branch.  :meth:`tick` is called every
    CHECK_INTERVAL references and counts a *sample* every
    ``sample_interval()`` references (a multiple of CHECK_INTERVAL, so
    plain stride arithmetic suffices); :meth:`finish` records totals.
    """

    __slots__ = ("name", "every", "samples", "last_i", "_t0", "_clock")

    def __init__(
        self,
        name: str,
        every: Optional[int] = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.name = name
        stride = every if every is not None else sample_interval()
        # Round the stride up to a CHECK_INTERVAL multiple so ticks
        # (which only happen on the masked branch) can honor it exactly.
        from repro.runtime.budget import CHECK_INTERVAL

        if stride % CHECK_INTERVAL:
            stride = ((stride // CHECK_INTERVAL) + 1) * CHECK_INTERVAL
        self.every = stride
        self.samples = 0
        self.last_i = 0
        self._clock = clock
        self._t0 = clock()

    def tick(self, i: int) -> None:
        self.last_i = i
        if not i % self.every:
            self.samples += 1

    def finish(self, refs: int, misses: int) -> None:
        elapsed = self._clock() - self._t0
        registry = _registry
        registry.counter(f"{self.name}.refs").inc(refs)
        registry.counter(f"{self.name}.misses").inc(misses)
        registry.counter(f"{self.name}.loops").inc()
        registry.counter(f"{self.name}.samples").inc(self.samples)
        if elapsed > 0 and refs:
            rps = refs / elapsed
            registry.gauge(f"{self.name}.last_refs_per_second").set(rps)
            registry.histogram(
                f"{self.name}.refs_per_second", THROUGHPUT_BUCKETS
            ).observe(rps)


_sampling_suppressed = False


def suppress_hot_loop_sampling():
    """Context manager: make :func:`hot_loop_sampler` return ``None``.

    Used by the kernel trust harness while replaying a chunk through
    the pure-Python oracle — the replay is a shadow computation and
    must not double-count references or throughput.
    """
    return _SamplingSuppression()


class _SamplingSuppression:
    def __enter__(self) -> "_SamplingSuppression":
        global _sampling_suppressed
        self._prev = _sampling_suppressed
        _sampling_suppressed = True
        return self

    def __exit__(self, *exc: object) -> None:
        global _sampling_suppressed
        _sampling_suppressed = self._prev


def sampling_suppressed() -> bool:
    """Is hot-loop sampling currently suppressed (shadow replay)?

    Exposed so other per-chunk observers (the timeline recorder) can
    honor the same rule: a suppressed region is a shadow computation
    that must not be double-counted anywhere.
    """
    return _sampling_suppressed


def hot_loop_sampler(name: str) -> Optional[LoopSampler]:
    """The only obs entry point the simulation hot loops call.

    Returns ``None`` when observability is disabled (or sampling is
    suppressed for a shadow replay) so the loops can gate everything
    behind ``sampler is not None``.
    """
    if _sampling_suppressed or not obs_enabled():
        return None
    return LoopSampler(name)
