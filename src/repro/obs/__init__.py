"""Campaign observability: metrics, tracing spans, and console logging.

The paper's whole methodology is measurement, and :mod:`repro.obs`
turns the same discipline on the runtime itself.  Three cooperating
layers, all dependency-free and all cheap enough to stay on by default
for campaigns:

- :mod:`repro.obs.metrics` — a process-local registry of counters,
  gauges and fixed-bucket histograms with an overhead-gated sampling
  hook for the simulation hot loops (refs simulated, misses, refs/sec).
  Snapshotted to ``<run_dir>/metrics.json`` per attempt and exportable
  in Prometheus text format.
- :mod:`repro.obs.tracing` — spans (trace/span/parent ids, monotonic
  durations) as context managers and decorators, written to
  ``<run_dir>/spans.jsonl`` with a Chrome trace-event export for
  ``chrome://tracing`` / Perfetto.
- :mod:`repro.obs.console` — the leveled progress logger that replaced
  bare ``print`` in the experiment drivers, honoring ``--quiet`` and
  ``REPRO_LOG_LEVEL`` while keeping worker-mode stdout machine-clean.

The run-directory artifacts are reconstructed by ``python -m
repro.experiments status <run-dir>`` (live view) and ``report
<run-dir>`` (static markdown/HTML), both tolerant of the torn tails a
killed supervisor leaves behind.  See ``docs/OBSERVABILITY.md``.
"""

from repro.obs.metrics import (  # noqa: F401
    MetricsRegistry,
    get_registry,
    hot_loop_sampler,
    obs_enabled,
    set_obs_enabled,
)
from repro.obs.tracing import Span, get_tracer, span, traced  # noqa: F401
