"""Tracing spans for the campaign runtime.

A *span* is one timed operation: a campaign, an experiment attempt, a
worker spawn, a journal fsync burst, a trace-generation phase.  Spans
carry ``trace_id`` (one per campaign), ``span_id``, ``parent_id``
(nesting), a wall-clock start, and a **monotonic** duration — wall
clocks step, monotonic clocks don't, so durations are measured with
``time.monotonic`` and only the start is wall time.

Usage mirrors the stdlib idioms the rest of the runtime uses::

    with tracing.span("attempt", experiment_id="fig6", attempt=2):
        ...

    @tracing.traced("appmodel.lu.phase")
    def trace_for_processor(self, ...): ...

Both are exact no-ops (one attribute load + ``is None`` test) unless a
:class:`Tracer` has been configured for the process, so library users
pay nothing.  The campaign CLI configures one writing to
``<run_dir>/spans.jsonl``; workers configure a buffering tracer whose
finished spans ship to the supervisor inside the AttemptSpec result
payload and are re-emitted into the campaign's span log with the
worker's ids intact (the supervisor attempt span is their parent).

``spans.jsonl`` follows the same torn-tail discipline as
``events.jsonl``: one JSON object per line, single ``write`` syscall
per line (site ``"spans"`` for fault injection), tolerant reader
(:func:`read_spans`) plus a strict validator in
:mod:`repro.validate.artifacts`.  :func:`to_chrome_trace` /
:func:`from_chrome_trace` convert to and from the Chrome trace-event
JSON format for ``chrome://tracing`` and Perfetto.
"""

from __future__ import annotations

import json
import os
import threading
import time
import uuid
from contextlib import contextmanager
from dataclasses import dataclass, field
from functools import wraps
from pathlib import Path
from typing import Callable, Dict, Iterator, List, Optional, Union

from repro.runtime.iofault import io_write

#: Default filename inside a campaign run directory.
SPANS_FILENAME = "spans.jsonl"

#: Injection-site tag for the span writer.
SPANS_SITE = "spans"


def new_id() -> str:
    """16-hex-char random id (half a UUID — plenty for one campaign)."""
    return uuid.uuid4().hex[:16]


@dataclass
class Span:
    """One finished (or in-flight) timed operation."""

    name: str
    trace_id: str
    span_id: str
    parent_id: Optional[str] = None
    t_wall: float = 0.0
    dur_s: float = 0.0
    status: str = "ok"
    attrs: Dict[str, object] = field(default_factory=dict)
    pid: int = 0

    def to_dict(self) -> Dict[str, object]:
        record: Dict[str, object] = {
            "name": self.name,
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "t_wall": self.t_wall,
            "dur_s": self.dur_s,
            "status": self.status,
            "pid": self.pid,
        }
        if self.parent_id is not None:
            record["parent_id"] = self.parent_id
        if self.attrs:
            record["attrs"] = self.attrs
        return record

    @classmethod
    def from_dict(cls, record: Dict[str, object]) -> "Span":
        return cls(
            name=str(record["name"]),
            trace_id=str(record["trace_id"]),
            span_id=str(record["span_id"]),
            parent_id=(
                str(record["parent_id"]) if record.get("parent_id") is not None else None
            ),
            t_wall=float(record.get("t_wall", 0.0)),  # type: ignore[arg-type]
            dur_s=float(record.get("dur_s", 0.0)),  # type: ignore[arg-type]
            status=str(record.get("status", "ok")),
            attrs=dict(record.get("attrs", {})),  # type: ignore[arg-type]
            pid=int(record.get("pid", 0)),  # type: ignore[arg-type]
        )


class SpanWriter:
    """Append-only JSONL span sink (same discipline as EventLog).

    Like the event log, a torn tail left by a killed supervisor is
    truncated before appending (welding a new line onto torn garbage
    would corrupt mid-file), and write failures are *counted*, never
    raised — telemetry must not be able to fail a campaign.
    """

    def __init__(self, path: Union[str, Path]) -> None:
        from repro.runtime.events import _prepare_for_append

        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        _prepare_for_append(self.path)
        self.write_errors = 0
        self._lock = threading.Lock()
        self._fd: Optional[int] = os.open(
            self.path, os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644
        )

    def write(self, span: Span) -> None:
        line = json.dumps(span.to_dict(), sort_keys=True) + "\n"
        with self._lock:
            if self._fd is not None:
                try:
                    io_write(self._fd, line.encode("utf-8"), SPANS_SITE)
                except OSError:
                    self.write_errors += 1

    def close(self) -> None:
        with self._lock:
            if self._fd is not None:
                os.close(self._fd)
                self._fd = None

    def __enter__(self) -> "SpanWriter":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


class Tracer:
    """Creates spans; finished spans go to a writer and/or a buffer.

    The current span is tracked per *thread* (the worker-pool
    supervisor runs attempts on several threads at once), so nesting is
    correct within a thread and cross-thread spans fall back to the
    tracer's root parent (the campaign span, or the parent shipped in
    an AttemptSpec for worker processes).

    Args:
        writer: Optional :class:`SpanWriter` (supervisor process).
        trace_id: Campaign trace id; generated when omitted.
        root_parent: Parent for top-of-stack spans (worker processes
            inherit the supervisor's attempt span id here).
        buffered: Keep finished spans in memory (worker processes ship
            them over the payload protocol instead of writing files).
        clock / wall_clock: Injectable time sources for tests.
    """

    MAX_BUFFER = 10_000

    def __init__(
        self,
        writer: Optional[SpanWriter] = None,
        trace_id: Optional[str] = None,
        root_parent: Optional[str] = None,
        buffered: bool = False,
        clock: Callable[[], float] = time.monotonic,
        wall_clock: Callable[[], float] = time.time,
    ) -> None:
        self.trace_id = trace_id or new_id()
        self.root_parent = root_parent
        self.writer = writer
        self.buffered = buffered
        self.finished: List[Span] = []
        self.dropped = 0
        self._clock = clock
        self._wall_clock = wall_clock
        self._local = threading.local()
        self._lock = threading.Lock()

    # -- span stack ----------------------------------------------------

    def _stack(self) -> List[str]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def current_span_id(self) -> Optional[str]:
        stack = self._stack()
        return stack[-1] if stack else self.root_parent

    @contextmanager
    def span(self, name: str, **attrs: object) -> Iterator[Span]:
        span = Span(
            name=name,
            trace_id=self.trace_id,
            span_id=new_id(),
            parent_id=self.current_span_id(),
            t_wall=self._wall_clock(),
            attrs={k: v for k, v in attrs.items() if v is not None},
            pid=os.getpid(),
        )
        stack = self._stack()
        stack.append(span.span_id)
        t0 = self._clock()
        try:
            yield span
        except BaseException:
            span.status = "error"
            raise
        finally:
            span.dur_s = self._clock() - t0
            stack.pop()
            self._finish(span)

    def record(
        self,
        name: str,
        t_wall: float,
        dur_s: float,
        parent_id: Optional[str] = None,
        **attrs: object,
    ) -> Span:
        """Record a span measured externally (e.g. queue-wait time)."""
        span = Span(
            name=name,
            trace_id=self.trace_id,
            span_id=new_id(),
            parent_id=parent_id if parent_id is not None else self.current_span_id(),
            t_wall=t_wall,
            dur_s=dur_s,
            attrs={k: v for k, v in attrs.items() if v is not None},
            pid=os.getpid(),
        )
        self._finish(span)
        return span

    def ingest(self, records: List[Dict[str, object]], parent_id: Optional[str] = None) -> int:
        """Re-emit spans shipped from a worker process.

        The worker's own ids are kept; only orphan spans (no parent —
        the worker's root) are re-parented under ``parent_id`` so the
        campaign trace stays a single tree.  Returns how many spans
        were accepted.
        """
        accepted = 0
        for record in records:
            try:
                span = Span.from_dict(record)
            except (KeyError, TypeError, ValueError):
                continue
            if span.parent_id is None and parent_id is not None:
                span.parent_id = parent_id
            span.trace_id = self.trace_id
            self._finish(span)
            accepted += 1
        return accepted

    def _finish(self, span: Span) -> None:
        if self.writer is not None:
            self.writer.write(span)
        if self.buffered:
            with self._lock:
                if len(self.finished) < self.MAX_BUFFER:
                    self.finished.append(span)
                else:
                    self.dropped += 1

    def drain(self) -> List[Span]:
        """Return and clear the buffered finished spans."""
        with self._lock:
            spans, self.finished = self.finished, []
            return spans


# -- the ambient tracer --------------------------------------------------

_tracer: Optional[Tracer] = None


def configure(
    writer: Optional[SpanWriter] = None,
    trace_id: Optional[str] = None,
    root_parent: Optional[str] = None,
    buffered: bool = False,
    clock: Callable[[], float] = time.monotonic,
    wall_clock: Callable[[], float] = time.time,
) -> Tracer:
    """Install the process-wide tracer (replacing any previous one)."""
    global _tracer
    _tracer = Tracer(
        writer=writer,
        trace_id=trace_id,
        root_parent=root_parent,
        buffered=buffered,
        clock=clock,
        wall_clock=wall_clock,
    )
    return _tracer


def get_tracer() -> Optional[Tracer]:
    return _tracer


def shutdown() -> None:
    """Tear down the ambient tracer, closing its writer."""
    global _tracer
    tracer, _tracer = _tracer, None
    if tracer is not None and tracer.writer is not None:
        tracer.writer.close()


@contextmanager
def span(name: str, **attrs: object) -> Iterator[Optional[Span]]:
    """Span on the ambient tracer; exact no-op when none is configured."""
    tracer = _tracer
    if tracer is None:
        yield None
        return
    with tracer.span(name, **attrs) as s:
        yield s


def traced(name: Optional[str] = None, **attrs: object) -> Callable:
    """Decorator form of :func:`span` (resolves the tracer per call)."""

    def decorate(func: Callable) -> Callable:
        span_name = name or func.__qualname__

        @wraps(func)
        def wrapper(*args: object, **kwargs: object) -> object:
            tracer = _tracer
            if tracer is None:
                return func(*args, **kwargs)
            with tracer.span(span_name, **attrs):
                return func(*args, **kwargs)

        return wrapper

    return decorate


# -- files and formats ---------------------------------------------------


def read_spans(path: Union[str, Path]) -> List[Span]:
    """Parse a spans file, skipping torn or undecodable lines."""
    spans: List[Span] = []
    path = Path(path)
    if not path.is_file():
        return spans
    for line in path.read_text(encoding="utf-8", errors="replace").splitlines():
        line = line.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError:
            continue
        if not isinstance(record, dict):
            continue
        try:
            spans.append(Span.from_dict(record))
        except (KeyError, TypeError, ValueError):
            continue
    return spans


def to_chrome_trace(spans: List[Span]) -> Dict[str, object]:
    """Convert spans to Chrome trace-event JSON (complete 'X' events).

    Timestamps and durations are microseconds; ``pid`` is the real
    process id and ``tid`` packs the span's trace-local identity so
    Perfetto keeps parent/child rows distinguishable.  The span's ids
    ride along in ``args`` so :func:`from_chrome_trace` can round-trip.
    """
    events: List[Dict[str, object]] = []
    for s in spans:
        args: Dict[str, object] = {
            "trace_id": s.trace_id,
            "span_id": s.span_id,
            "status": s.status,
        }
        if s.parent_id is not None:
            args["parent_id"] = s.parent_id
        args.update(s.attrs)
        events.append(
            {
                "name": s.name,
                "cat": s.name.split(".", 1)[0],
                "ph": "X",
                "ts": round(s.t_wall * 1e6, 3),
                "dur": round(s.dur_s * 1e6, 3),
                "pid": s.pid,
                "tid": s.pid,
                "args": args,
            }
        )
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def from_chrome_trace(payload: Dict[str, object]) -> List[Span]:
    """Rebuild spans from :func:`to_chrome_trace` output."""
    spans: List[Span] = []
    for event in payload.get("traceEvents", []):  # type: ignore[union-attr]
        if not isinstance(event, dict) or event.get("ph") != "X":
            continue
        args = dict(event.get("args", {}))
        span_id = args.pop("span_id", None)
        trace_id = args.pop("trace_id", None)
        if span_id is None or trace_id is None:
            continue
        parent_id = args.pop("parent_id", None)
        status = args.pop("status", "ok")
        spans.append(
            Span(
                name=str(event.get("name", "")),
                trace_id=str(trace_id),
                span_id=str(span_id),
                parent_id=str(parent_id) if parent_id is not None else None,
                t_wall=float(event.get("ts", 0.0)) / 1e6,  # type: ignore[arg-type]
                dur_s=float(event.get("dur", 0.0)) / 1e6,  # type: ignore[arg-type]
                status=str(status),
                attrs=args,
                pid=int(event.get("pid", 0)),  # type: ignore[arg-type]
            )
        )
    return spans
