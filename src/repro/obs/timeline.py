"""Temporal working-set telemetry: per-chunk timeline rows and phases.

The paper reads its lev1WS/lev2WS knees off *end-of-run* miss-rate
curves, but working sets are by definition windowed over time and
phase-dependent (Barnes-Hut's tree-build/force phases, LU's shrinking
active matrix).  This module adds the time axis:

- :class:`TimelineRecorder` appends one CRC-framed JSON row per
  simulated chunk to ``timeline.jsonl`` (``TLN1 <crc32> <json>``, the
  same torn-tail discipline as the journal): refs/s, per-capacity miss
  deltas, stack-depth percentiles, and a Denning working-set estimate
  (unique blocks touched in the chunk window).
- :class:`PhaseDetector` segments the row stream into phases online
  (robust median/MAD change-point test on ``log2(ws_blocks)`` with
  two-row hysteresis) and re-estimates the knees *per phase* from the
  accumulated per-phase miss vectors.
- ``mem.ws.*`` gauges and ``obs.timeline.*`` counters surface the live
  phase/knee state through the ordinary metrics registry (and from
  there the Prometheus renderer and the service ``/metrics`` endpoint).

Recording is ambient, like the kernel and streaming configuration:
:func:`configure_timeline` installs a process-wide recorder and
exports ``REPRO_TIMELINE`` so spawned workers inherit it via
:func:`install_from_env`.  :func:`active_recorder` returns ``None``
whenever observability is off or hot-loop sampling is suppressed (the
kernel trust harness replays chunks through the oracle with sampling
suppressed — those shadow replays must not double-count rows).

Everything here is observability: a write failure increments
``obs.timeline.write_errors`` and is otherwise swallowed; readers
tolerate torn tails and damaged lines.  Strict checking lives in
``repro.validate`` (codes ``timeline-torn`` / ``timeline-schema``).
"""

from __future__ import annotations

import json
import math
import os
import threading
import time
import zlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.obs import metrics as obs_metrics

#: Frame magic for ``timeline.jsonl`` rows.
TIMELINE_MAGIC = "TLN1"

#: Canonical artifact name inside a run directory.
TIMELINE_FILENAME = "timeline.jsonl"

#: Row format version stamped into every row.
TIMELINE_VERSION = 1

#: Environment handoff to spawned workers (path to the timeline file).
TIMELINE_ENV = "REPRO_TIMELINE"

#: Optional chunk-size override (refs per in-memory timeline chunk).
TIMELINE_CHUNK_ENV = "REPRO_TIMELINE_CHUNK"

#: Row kinds emitted by the simulators.
ROW_KINDS = ("stackdist", "fullassoc", "setassoc")

#: In-memory chunking bounds: aim for ~64 windows per trace, but keep
#: every chunk above the kernel guard's ``min_refs`` (2048) so chunked
#: feeding never demotes the vector tier, and below a cap that keeps
#: the per-row bookkeeping invisible next to the simulation itself.
CHUNK_TARGET_WINDOWS = 64
CHUNK_MIN_REFS = 4096
CHUNK_MAX_REFS = 262144

_MAD_SCALE = 1.4826  # MAD -> sigma for normal data


# -- framing ----------------------------------------------------------------


def _canonical(record: Dict[str, object]) -> bytes:
    return json.dumps(
        record, sort_keys=True, separators=(",", ":")
    ).encode("utf-8")


def frame_row(record: Dict[str, object], magic: str = TIMELINE_MAGIC) -> bytes:
    """One CRC-framed line: ``<magic> <crc32:08x> <canonical-json>\\n``."""
    data = _canonical(record)
    return f"{magic} {zlib.crc32(data):08x} ".encode("ascii") + data + b"\n"


def decode_frame(
    line: bytes, magic: str = TIMELINE_MAGIC
) -> Optional[Dict[str, object]]:
    """Decode one framed line; ``None`` on any damage."""
    parts = line.split(b" ", 2)
    if len(parts) != 3 or parts[0] != magic.encode("ascii"):
        return None
    try:
        expected = int(parts[1], 16)
    except ValueError:
        return None
    if zlib.crc32(parts[2]) != expected:
        return None
    try:
        record = json.loads(parts[2])
    except ValueError:
        return None
    return record if isinstance(record, dict) else None


@dataclass
class TimelineScan:
    """Tolerant scan of a framed JSONL artifact.

    ``damaged`` holds 1-based line numbers that failed to decode before
    the tail; ``torn_tail`` marks damage at the very end of the file
    (the crash signature append-only writers are allowed to leave).
    """

    rows: List[Dict[str, object]] = field(default_factory=list)
    damaged: List[int] = field(default_factory=list)
    torn_tail: bool = False


def scan_framed(path: Union[str, Path], magic: str) -> TimelineScan:
    """Scan a CRC-framed JSONL file, tolerating any damage."""
    scan = TimelineScan()
    try:
        raw = Path(path).read_bytes()
    except OSError:
        return scan
    if not raw:
        return scan
    lines = raw.split(b"\n")
    unterminated = lines[-1] != b""
    if lines[-1] == b"":
        lines.pop()
    bad: List[int] = []
    for number, line in enumerate(lines, start=1):
        record = decode_frame(line, magic)
        if record is None:
            bad.append(number)
        else:
            scan.rows.append(record)
    if bad and bad[-1] == len(lines) and unterminated:
        # An unterminated, undecodable final fragment is a torn tail,
        # not corruption: the writer died mid-append.
        scan.torn_tail = True
        bad.pop()
    scan.damaged = bad
    return scan


def scan_timeline(path: Union[str, Path]) -> TimelineScan:
    return scan_framed(path, TIMELINE_MAGIC)


def read_timeline(path: Union[str, Path]) -> List[Dict[str, object]]:
    """All decodable rows of a timeline file (tolerant)."""
    return scan_timeline(path).rows


def prepare_for_append(path: Union[str, Path]) -> None:
    """Truncate an undecodable tail so appends start on a clean line.

    Mirrors the event-log discipline: only the *trailing* damage is
    removed (a torn append from a killed process); decodable history is
    never rewritten.  Must only be called while no other process is
    appending (the CLI calls it once, before workers spawn).
    """
    path = Path(path)
    try:
        raw = path.read_bytes()
    except OSError:
        return
    good = raw
    while good:
        newline = good.rfind(b"\n")
        if newline == len(good) - 1:
            start = good.rfind(b"\n", 0, newline) + 1
            if decode_frame(good[start:newline]) is not None:
                break
            good = good[:start]
        else:
            good = good[: newline + 1] if newline >= 0 else b""
    if len(good) != len(raw):
        with open(path, "wb") as handle:
            handle.write(good)


# -- phase detection --------------------------------------------------------


def _median(values: Sequence[float]) -> float:
    return float(np.median(np.asarray(values, dtype=np.float64)))


@dataclass
class Phase:
    """One detected phase: a run of chunks with a stable working set."""

    index: int  # 1-based
    rows: int = 0
    refs: int = 0
    counted: int = 0
    cold: int = 0
    block_size: int = 0
    start_wall: Optional[float] = None
    end_wall: Optional[float] = None
    signal: List[float] = field(default_factory=list)
    ws_blocks: List[int] = field(default_factory=list)
    cache_sizes: Optional[List[int]] = None
    misses: Optional[np.ndarray] = None

    def ws_bytes(self) -> Optional[int]:
        """Median Denning working-set estimate over the phase, bytes."""
        if not self.ws_blocks or not self.block_size:
            return None
        return int(_median(self.ws_blocks)) * int(self.block_size)

    def miss_rate_curve(self):
        """Accumulated per-phase miss-rate curve, or ``None``."""
        from repro.core.curves import MissRateCurve

        if self.cache_sizes is None or self.misses is None or not self.counted:
            return None
        rates = self.misses.astype(np.float64) / float(self.counted)
        return MissRateCurve(
            capacities=np.asarray(self.cache_sizes, dtype=np.int64),
            miss_rates=rates,
            label=f"phase {self.index}",
        )

    def knees(self, rel_threshold: float = 0.25) -> list:
        """Knees of the per-phase miss-rate curve (may be empty)."""
        from repro.core.knee import find_knees

        curve = self.miss_rate_curve()
        if curve is None:
            return []
        return find_knees(curve, rel_threshold=rel_threshold)

    def absorb(self, row: Dict[str, object]) -> None:
        ws = row.get("ws_blocks")
        if not isinstance(ws, int):
            return
        self.rows += 1
        self.signal.append(math.log2(ws + 1))
        self.ws_blocks.append(ws)
        block_size = row.get("block_size")
        if isinstance(block_size, int) and block_size > 0:
            self.block_size = block_size
        refs = row.get("refs")
        if isinstance(refs, (int, float)):
            self.refs += int(refs)
        counted = row.get("counted")
        if isinstance(counted, (int, float)):
            self.counted += int(counted)
        cold = row.get("cold")
        if isinstance(cold, (int, float)):
            self.cold += int(cold)
        wall = row.get("t_wall")
        if isinstance(wall, (int, float)):
            if self.start_wall is None:
                self.start_wall = float(wall)
            self.end_wall = float(wall)
        sizes = row.get("cache_sizes")
        misses = row.get("misses")
        if (
            isinstance(sizes, list)
            and isinstance(misses, list)
            and len(sizes) == len(misses)
            and sizes
        ):
            if self.cache_sizes is None:
                self.cache_sizes = [int(c) for c in sizes]
                self.misses = np.zeros(len(sizes), dtype=np.int64)
            if self.cache_sizes == [int(c) for c in sizes]:
                self.misses = self.misses + np.asarray(misses, dtype=np.int64)

    def to_dict(self) -> Dict[str, object]:
        knees = self.knees()
        return {
            "index": self.index,
            "rows": self.rows,
            "refs": self.refs,
            "counted": self.counted,
            "cold": self.cold,
            "ws_bytes": self.ws_bytes(),
            "start_wall": self.start_wall,
            "end_wall": self.end_wall,
            "knee_bytes": [int(k.capacity_bytes) for k in knees],
            "miss_rate": (
                float(self.misses[-1]) / float(self.counted)
                if self.misses is not None and len(self.misses) and self.counted
                else None
            ),
        }


class PhaseDetector:
    """Online change-point detector over the working-set signal.

    The signal is ``log2(ws_blocks + 1)`` per chunk: working sets move
    in octaves, so a phase change is a sustained shift of the log
    signal.  A row is an outlier when it sits more than
    ``k * 1.4826 * MAD`` (floored at ``abs_floor`` octaves) from the
    current phase's median; ``hysteresis`` consecutive outliers open a
    new phase seeded with those rows, a lone outlier is absorbed as a
    blip.  Works online (one :meth:`update` per row) and offline
    (:func:`detect_phases`).
    """

    def __init__(
        self,
        k: float = 3.5,
        abs_floor: float = 0.5,
        min_rows: int = 3,
        hysteresis: int = 2,
    ) -> None:
        self.k = k
        self.abs_floor = abs_floor
        self.min_rows = min_rows
        self.hysteresis = hysteresis
        self.phases: List[Phase] = []
        self._pending: List[Dict[str, object]] = []

    @property
    def current(self) -> Optional[Phase]:
        return self.phases[-1] if self.phases else None

    def _outlier(self, phase: Phase, value: float) -> bool:
        med = _median(phase.signal)
        mad = _median([abs(s - med) for s in phase.signal])
        threshold = max(self.k * _MAD_SCALE * mad, self.abs_floor)
        return abs(value - med) > threshold

    def update(self, row: Dict[str, object]) -> bool:
        """Feed one row; ``True`` when this row opened a new phase."""
        ws = row.get("ws_blocks")
        if not isinstance(ws, int) or ws < 0:
            return False
        if not self.phases:
            phase = Phase(index=1)
            phase.absorb(row)
            self.phases.append(phase)
            return True
        phase = self.phases[-1]
        value = math.log2(ws + 1)
        if len(phase.signal) >= self.min_rows and self._outlier(phase, value):
            self._pending.append(row)
            if len(self._pending) < self.hysteresis:
                return False
            fresh = Phase(index=len(self.phases) + 1)
            for pending in self._pending:
                fresh.absorb(pending)
            self._pending = []
            self.phases.append(fresh)
            return True
        # Not an outlier: the pending rows were a blip, fold them in.
        for pending in self._pending:
            phase.absorb(pending)
        self._pending = []
        phase.absorb(row)
        return False

    def summary(self) -> Dict[str, object]:
        current = self.current
        knee_bytes: Optional[int] = None
        if current is not None:
            knees = current.knees()
            if knees:
                knee_bytes = int(knees[0].capacity_bytes)
        return {
            "phases": len(self.phases),
            "phase": current.index if current is not None else 0,
            "ws_bytes": current.ws_bytes() if current is not None else None,
            "knee_bytes": knee_bytes,
        }


def detect_phases(
    rows: Sequence[Dict[str, object]], **kwargs: float
) -> List[Phase]:
    """Offline phase segmentation of timeline rows (in given order)."""
    detector = PhaseDetector(**kwargs)
    for row in rows:
        detector.update(row)
    return detector.phases


def latest_attempt_rows(
    rows: Sequence[Dict[str, object]],
    experiment_id: Optional[str] = None,
) -> List[Dict[str, object]]:
    """Rows of the most recent attempt (optionally for one experiment).

    Rows are grouped by ``attempt_uid`` (falling back to ``pid`` for
    rows written outside a campaign); the group containing the newest
    ``t_wall`` wins.  Within the group the append order is preserved.
    """
    groups: Dict[object, List[Dict[str, object]]] = {}
    for row in rows:
        if experiment_id is not None and row.get("experiment_id") != experiment_id:
            continue
        key = row.get("attempt_uid") or ("pid", row.get("pid"))
        groups.setdefault(key, []).append(row)
    if not groups:
        return []

    def newest(group: List[Dict[str, object]]) -> float:
        walls = [
            float(r["t_wall"])
            for r in group
            if isinstance(r.get("t_wall"), (int, float))
        ]
        return max(walls) if walls else 0.0

    return max(groups.values(), key=newest)


# -- recorder ---------------------------------------------------------------


class TimelineRecorder:
    """Append-only CRC-framed timeline writer with live phase gauges.

    One ``os.write`` per row on an ``O_APPEND`` descriptor keeps lines
    atomic across concurrently-appending worker processes.  Recording
    never raises: write failures increment
    ``obs.timeline.write_errors`` and drop the row.
    """

    def __init__(
        self,
        path: Union[str, Path],
        chunk_refs: Optional[int] = None,
    ) -> None:
        self.path = Path(path)
        self.chunk_refs = chunk_refs
        self._fd: Optional[int] = None
        self._lock = threading.Lock()
        self._seq = 0
        self._labels: Dict[str, str] = {}
        self._detector = PhaseDetector()

    # -- labels (campaign context) -------------------------------------

    def set_labels(
        self,
        experiment_id: Optional[str] = None,
        attempt_uid: Optional[str] = None,
    ) -> None:
        """Attach campaign context to subsequent rows; resets the
        per-attempt phase detector."""
        with self._lock:
            self._labels = {}
            if experiment_id:
                self._labels["experiment_id"] = experiment_id
            if attempt_uid:
                self._labels["attempt_uid"] = attempt_uid
            self._detector = PhaseDetector()

    def clear_labels(self) -> None:
        with self._lock:
            self._labels = {}
            self._detector = PhaseDetector()

    # -- chunking policy -----------------------------------------------

    def chunk_refs_for(self, total_refs: int) -> int:
        """Refs per in-memory timeline window for a trace of
        ``total_refs`` references."""
        if self.chunk_refs is not None and self.chunk_refs > 0:
            return int(self.chunk_refs)
        target = total_refs // CHUNK_TARGET_WINDOWS
        return max(CHUNK_MIN_REFS, min(CHUNK_MAX_REFS, target))

    # -- recording ------------------------------------------------------

    def record(self, kind: str, **fields: object) -> Optional[Dict[str, object]]:
        """Append one row; returns the row, or ``None`` when dropped."""
        with self._lock:
            row: Dict[str, object] = {
                "v": TIMELINE_VERSION,
                "kind": kind,
                "seq": self._seq,
                "pid": os.getpid(),
                "t_wall": time.time(),
            }
            row.update(self._labels)
            row.update({k: v for k, v in fields.items() if v is not None})
            try:
                if self._fd is None:
                    self._fd = os.open(
                        self.path,
                        os.O_APPEND | os.O_CREAT | os.O_WRONLY,
                        0o644,
                    )
                os.write(self._fd, frame_row(row))
            except (OSError, ValueError):
                obs_metrics.inc("obs.timeline.write_errors")
                return None
            self._seq += 1
            obs_metrics.inc("obs.timeline.rows")
            if self._detector.update(row):
                obs_metrics.inc("obs.timeline.phase_starts")
            summary = self._detector.summary()
        obs_metrics.set_gauge("mem.ws.phase", float(summary["phase"]))
        obs_metrics.set_gauge("mem.ws.phases", float(summary["phases"]))
        if summary["ws_bytes"] is not None:
            obs_metrics.set_gauge(
                "mem.ws.estimate_bytes", float(summary["ws_bytes"])
            )
        if summary["knee_bytes"] is not None:
            obs_metrics.set_gauge(
                "mem.ws.knee_bytes", float(summary["knee_bytes"])
            )
        return row

    def close(self) -> None:
        with self._lock:
            if self._fd is not None:
                try:
                    os.close(self._fd)
                except OSError:
                    pass
                self._fd = None


# -- ambient configuration --------------------------------------------------

_recorder: Optional[TimelineRecorder] = None


def configure_timeline(
    path: Optional[Union[str, Path]],
    chunk_refs: Optional[int] = None,
    prepare: bool = False,
) -> Optional[TimelineRecorder]:
    """Install (or clear, with ``None``) the process-wide recorder.

    Exports ``REPRO_TIMELINE`` / ``REPRO_TIMELINE_CHUNK`` so spawned
    workers can pick the same file up via :func:`install_from_env`.
    ``prepare=True`` truncates a torn tail first — only safe while no
    other process is appending.
    """
    global _recorder
    if _recorder is not None:
        _recorder.close()
    if path is None:
        _recorder = None
        os.environ.pop(TIMELINE_ENV, None)
        os.environ.pop(TIMELINE_CHUNK_ENV, None)
        return None
    if prepare:
        prepare_for_append(path)
    _recorder = TimelineRecorder(path, chunk_refs=chunk_refs)
    os.environ[TIMELINE_ENV] = str(path)
    if chunk_refs:
        os.environ[TIMELINE_CHUNK_ENV] = str(int(chunk_refs))
    else:
        os.environ.pop(TIMELINE_CHUNK_ENV, None)
    return _recorder


def install_from_env() -> Optional[TimelineRecorder]:
    """Worker-side: adopt the supervisor's timeline file, if any."""
    global _recorder
    path = os.environ.get(TIMELINE_ENV)
    if not path:
        return _recorder
    chunk: Optional[int] = None
    raw = os.environ.get(TIMELINE_CHUNK_ENV)
    if raw:
        try:
            chunk = int(raw)
        except ValueError:
            chunk = None
    if _recorder is not None:
        _recorder.close()
    _recorder = TimelineRecorder(path, chunk_refs=chunk)
    return _recorder


def active_recorder() -> Optional[TimelineRecorder]:
    """The recorder, or ``None`` when recording must not happen now.

    Gated on observability being enabled and on hot-loop sampling not
    being suppressed: the kernel trust harness replays chunks through
    the pure-Python oracle under suppressed sampling, and those shadow
    replays must not emit duplicate timeline rows.
    """
    if _recorder is None:
        return None
    if not obs_metrics.obs_enabled():
        return None
    if obs_metrics.sampling_suppressed():
        return None
    return _recorder


def set_labels(
    experiment_id: Optional[str] = None,
    attempt_uid: Optional[str] = None,
) -> None:
    if _recorder is not None:
        _recorder.set_labels(
            experiment_id=experiment_id, attempt_uid=attempt_uid
        )


def clear_labels() -> None:
    if _recorder is not None:
        _recorder.clear_labels()


def kernel_tier(kind: str) -> str:
    """Effective kernel tier label for timeline rows."""
    from repro.mem import kernels

    config = kernels.active_kernel_config()
    if config.tier == "vector" and not kernels.quarantined(kind):
        return "vector"
    return "oracle"


def record_cache_chunk(
    recorder: TimelineRecorder,
    kind: str,
    trace,
    *,
    block_size: int,
    capacity_bytes: int,
    refs: int,
    counted: int,
    cold: int,
    misses_total: int,
    elapsed: float,
) -> None:
    """One timeline row for an explicit-cache chunk (never raises).

    Shared by the fully associative and set-associative simulators:
    they simulate a single capacity, so the row carries the scalar
    miss delta plus the Denning working-set estimate of the window.
    """
    try:
        if refs <= 0:
            return
        recorder.record(
            kind,
            refs=int(refs),
            counted=int(counted),
            cold=int(cold),
            misses_total=int(misses_total),
            elapsed_s=round(elapsed, 9),
            refs_per_second=(refs / elapsed) if elapsed > 0 else None,
            block_size=int(block_size),
            capacity_bytes=int(capacity_bytes),
            ws_blocks=int(trace.footprint(block_size)),
            tier=kernel_tier(kind),
        )
    except Exception:
        obs_metrics.inc("obs.timeline.write_errors")


# -- status/report helpers --------------------------------------------------


def load_working_set(
    run_dir: Union[str, Path], tail_bytes: int = 1 << 19
) -> Optional[Dict[str, object]]:
    """Live working-set summary from the tail of ``timeline.jsonl``.

    Reads only the last ``tail_bytes`` of the file (status must stay
    cheap against a multi-gigabyte streamed campaign), segments the
    newest attempt's rows, and returns ``{experiment_id, phase,
    phases, ws_bytes, knee_bytes, rows}`` — or ``None`` when there is
    no usable timeline.
    """
    path = Path(run_dir) / TIMELINE_FILENAME
    try:
        size = path.stat().st_size
        with open(path, "rb") as handle:
            if size > tail_bytes:
                handle.seek(size - tail_bytes)
                handle.readline()  # drop the partial first line
            raw = handle.read()
    except OSError:
        return None
    rows: List[Dict[str, object]] = []
    for line in raw.split(b"\n"):
        record = decode_frame(line)
        if record is not None:
            rows.append(record)
    rows = latest_attempt_rows(rows)
    if not rows:
        return None
    detector = PhaseDetector()
    for row in rows:
        detector.update(row)
    if not detector.phases:
        return None
    summary = detector.summary()
    summary["rows"] = len(rows)
    summary["experiment_id"] = rows[-1].get("experiment_id")
    summary["attempt_uid"] = rows[-1].get("attempt_uid")
    return summary
