"""Command-line utilities for working with saved traces.

Usage::

    python -m repro.tools profile trace.npz [--max-cache 1MB] [--reads-only]
    python -m repro.tools info trace.npz

Pairs with ``examples/working_set_explorer.py --save`` and
:mod:`repro.mem.tracefile`: generate a trace once, then iterate on the
analysis.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.core.curves import MissRateCurve
from repro.mem.stack_distance import StackDistanceProfiler, default_capacity_grid
from repro.mem.tracefile import load_metadata, load_trace
from repro.units import format_size, parse_size


def cmd_info(args: argparse.Namespace) -> int:
    """Print a saved trace's metadata and summary statistics."""
    trace = load_trace(args.trace)
    metadata = load_metadata(args.trace)
    print(f"{args.trace}:")
    print(f"  references: {len(trace):,}"
          f" ({trace.read_count:,} reads, {trace.write_count:,} writes)")
    print(f"  footprint:  {format_size(trace.footprint_bytes())}")
    if metadata:
        print("  metadata:")
        for key, value in sorted(metadata.items()):
            print(f"    {key}: {value}")
    return 0


def cmd_profile(args: argparse.Namespace) -> int:
    """Profile a saved trace and print its miss-rate curve and knees."""
    trace = load_trace(args.trace)
    profiler = StackDistanceProfiler(
        block_size=args.block_size,
        count_reads_only=args.reads_only,
        warmup=int(len(trace) * args.warmup_fraction),
    )
    profile = profiler.profile(trace)
    grid = default_capacity_grid(
        min_bytes=max(64, args.block_size * 8),
        max_bytes=parse_size(args.max_cache),
    )
    metric = "read_miss_rate" if args.reads_only else "miss_rate"
    curve = MissRateCurve.from_profile(profile, grid, metric=metric)
    print(curve.render_ascii())
    print("\ncapacity        miss rate")
    for capacity, rate in zip(curve.capacities, curve.miss_rates):
        print(f"{format_size(int(capacity)):>12}    {rate:.5f}")
    print("\nknees:")
    knees = curve.knees(rel_threshold=args.knee_threshold)
    if not knees:
        print("  (none at this threshold)")
    for knee in knees:
        print(f"  {knee}")
    print(f"\ncompulsory floor: {profile.compulsory_miss_rate:.5f}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.tools", description=__doc__.splitlines()[0]
    )
    sub = parser.add_subparsers(dest="command", required=True)

    info = sub.add_parser("info", help="show a saved trace's metadata")
    info.add_argument("trace")
    info.set_defaults(func=cmd_info)

    profile = sub.add_parser("profile", help="profile a saved trace")
    profile.add_argument("trace")
    profile.add_argument("--max-cache", default="1MB")
    profile.add_argument("--block-size", type=int, default=8)
    profile.add_argument("--reads-only", action="store_true")
    profile.add_argument("--warmup-fraction", type=float, default=0.1)
    profile.add_argument("--knee-threshold", type=float, default=0.2)
    profile.set_defaults(func=cmd_profile)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
