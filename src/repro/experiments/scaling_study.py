"""Scaling study: how each application's important working set and
grain requirements evolve under MC and TC scaling.

Collects the scaling claims scattered through Sections 3-7:

- LU / CG / FFT: the important working set is **constant** under any
  scaling model.
- Barnes-Hut: the n-theta-dt co-scaling rule; the paper's explicit
  MC trajectory (64K particles, theta=1.0, P=64 -> 1M particles,
  theta=0.71, P=1024) and TC trajectory (-> 256K particles,
  theta=0.84), with working sets under 300 KB even at a billion
  particles.
- Volume rendering: the working set and the grain both grow as the
  cube root of the data-set size; TC and MC coincide (time ~ data).
- LU under MC scaling: execution time grows as sqrt(memory), so MC
  "may therefore be an unacceptable scaling model"; under TC the grain
  shrinks.
"""

from __future__ import annotations

import math
from typing import List

from repro.apps.barnes_hut.model import BarnesHutModel
from repro.apps.cg.model import CGModel
from repro.apps.fft.model import FFTModel
from repro.apps.lu.model import LUModel
from repro.apps.volrend.model import VolrendModel
from repro.core.report import format_table
from repro.core.scaling import (
    MemoryConstrainedScaling,
    ProblemScaler,
    TimeConstrainedScaling,
)
from repro.experiments.runner import ExperimentResult, SeriesComparison
from repro.units import DOUBLE_WORD, KB, format_size


def _lu_scaler() -> ProblemScaler:
    return ProblemScaler(
        name="LU",
        data_bytes=lambda n: DOUBLE_WORD * n * n,
        work_ops=lambda n: 2.0 * n**3 / 3.0,
        n0=10_000.0,
        p0=1024,
    )


def run(processor_sweep: tuple = (64, 1024, 16384, 1_048_576)) -> ExperimentResult:
    """Produce the scaling tables and check the paper's trajectories."""
    result = ExperimentResult(
        experiment_id="scaling",
        title="Working sets and grain under MC / TC scaling",
    )

    # -- constant working sets for the regular kernels -------------------
    lu_small = LUModel(n=2000, block_size=16, num_processors=64)
    lu_large = LUModel(n=200_000, block_size=16, num_processors=65536)
    fft_small = FFTModel(n=2**20, num_processors=64, internal_radix=8)
    fft_large = FFTModel(n=2**30, num_processors=65536, internal_radix=8)
    result.comparisons.extend(
        [
            SeriesComparison(
                "LU lev2WS invariance (100x n, 1024x P)",
                1.0,
                lu_large.lev2_bytes() / lu_small.lev2_bytes(),
                "ratio",
            ),
            SeriesComparison(
                "FFT lev1WS invariance (2^10 x n, 1024x P)",
                1.0,
                fft_large.lev1_bytes() / fft_small.lev1_bytes(),
                "ratio",
            ),
        ]
    )

    # -- Barnes-Hut MC / TC trajectories ---------------------------------
    base = BarnesHutModel(n=65536, theta=1.0, num_processors=64)
    rows: List[List[object]] = []
    for p in processor_sweep:
        mc = base.mc_scaled(p)
        tc = base.tc_scaled(p)
        rows.append(
            [
                f"{p:,}",
                f"{mc.n:,}",
                f"{mc.theta:.2f}",
                format_size(mc.lev2_bytes()),
                f"{tc.n:,}",
                f"{tc.theta:.2f}",
                format_size(tc.lev2_bytes()),
            ]
        )
    result.tables["Barnes-Hut scaling (base: 64K particles, theta=1.0, P=64)"] = (
        format_table(
            ["P", "MC n", "MC theta", "MC lev2WS", "TC n", "TC theta", "TC lev2WS"],
            rows,
        )
    )
    mc_1k = base.mc_scaled(1024)
    tc_1k = base.tc_scaled(1024)
    mc_billion = base.mc_scaled(1_048_576)
    result.comparisons.extend(
        [
            SeriesComparison(
                "BH MC theta at 1M particles", 0.71, mc_1k.theta, "",
            ),
            SeriesComparison(
                "BH TC particles at 1K processors", 262144.0, float(tc_1k.n), "",
                note="paper: 256K",
            ),
            SeriesComparison(
                "BH TC theta at 1K processors", 0.84, tc_1k.theta, "",
            ),
            SeriesComparison(
                "BH lev2WS at ~1G particles (MC)",
                300 * KB,
                mc_billion.lev2_bytes(),
                "bytes",
                note="paper: 'under 300 Kbytes'",
            ),
        ]
    )

    # -- LU: MC inflates time; TC shrinks the grain ----------------------
    scaler = _lu_scaler()
    mc_model = MemoryConstrainedScaling()
    tc_model = TimeConstrainedScaling()
    base_time = scaler.work_ops(scaler.n0) / scaler.p0
    base_grain = scaler.data_bytes(scaler.n0) / scaler.p0
    lu_mc = mc_model.scale(scaler, 16384)
    lu_tc = tc_model.scale(scaler, 16384)
    result.comparisons.extend(
        [
            SeriesComparison(
                "LU MC time inflation at 16x processors",
                4.0,  # time ~ n ~ sqrt(P): sqrt(16) = 4
                lu_mc.time_units / base_time,
                "x",
                note="work n^3 outgrows data n^2 -> MC 'may be unacceptable'",
            ),
            SeriesComparison(
                "LU TC grain shrinkage at 16x processors",
                16 ** (-1.0 / 3.0),
                lu_tc.memory_per_processor / base_grain,
                "x",
                note="TC favours finer grains (Section 3.3)",
            ),
        ]
    )

    # -- volume rendering: cube-root growth, TC == MC --------------------
    vr = VolrendModel(n=600, num_processors=1024)
    grown = VolrendModel(n=1200, num_processors=8192)  # 8x data
    result.comparisons.extend(
        [
            SeriesComparison(
                "VR lev2WS growth for 8x data",
                2.0,
                grown.lev2_bytes() / vr.lev2_bytes(),
                "x",
                note="cube root of the data-set factor (slope term dominates)",
            ),
            SeriesComparison(
                "VR grain growth to keep rays/processor fixed (8x data)",
                2.0,
                vr.grain_for_scaled_dataset(8.0)
                / (vr.dataset_bytes / vr.num_processors),
                "x",
            ),
        ]
    )
    result.notes.append(
        "for volume rendering execution time grows with n^3 like the data"
        " set, so time-constrained scaling coincides with memory-constrained"
        " (Section 7.2)"
    )
    return result


def main() -> None:
    from repro.obs.console import info

    info(run().render())


if __name__ == "__main__":
    main()
