"""Ablation: sweep blocking pins the CG lev1WS to a constant size.

Section 4.2: "the size of lev1WS can actually be kept constant through
the use of blocking techniques."  Without blocking, the lev1 knee sits
at ~3 subrows of sweep state (growing as n/sqrt(P)); with the sweep
blocked into ``tile``-wide column strips, the knee is pinned near
3 tile-widths of state regardless of the partition size.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

from repro.apps.cg.trace import CGTraceGenerator
from repro.core.report import format_table
from repro.experiments.runner import ExperimentResult, SeriesComparison
from repro.mem.stack_distance import profile_trace
from repro.units import format_size


def _lev1_knee_bytes(
    gen: CGTraceGenerator, tile: Optional[int], iterations: int = 2
) -> Tuple[float, float]:
    """(knee bytes, plateau rate) of the matvec sweep's lev1 working set.

    Measured as the smallest capacity within 10% of the rate at 1/4 of
    the partition size (safely past lev1, safely before lev2).
    """
    trace = gen.trace_for_processor(0, iterations=iterations, tile=tile)
    profile = profile_trace(trace, warmup=len(trace) // iterations)
    flops = gen.flops * (iterations - 1) / iterations
    reference_cache = gen.local_bytes // 4
    plateau = profile.misses_at(reference_cache // 8) / flops
    capacity = 64
    while capacity < reference_cache:
        rate = profile.misses_at(capacity // 8) / flops
        if rate <= 1.1 * plateau:
            break
        capacity *= 2
    return float(capacity), plateau


def run(
    grid_sizes: Sequence[int] = (64, 128),
    tile: int = 8,
    num_processors: int = 4,
) -> ExperimentResult:
    """Measure the lev1 knee with and without sweep blocking at several
    partition sizes."""
    result = ExperimentResult(
        experiment_id="cg-blocking",
        title=f"CG sweep blocking ablation (tile={tile})",
    )
    rows = []
    unblocked_knees = []
    blocked_knees = []
    for n in grid_sizes:
        gen_plain = CGTraceGenerator(n=n, num_processors=num_processors)
        plain_knee, plain_rate = _lev1_knee_bytes(gen_plain, tile=None)
        gen_blocked = CGTraceGenerator(n=n, num_processors=num_processors)
        blocked_knee, blocked_rate = _lev1_knee_bytes(gen_blocked, tile=tile)
        unblocked_knees.append(plain_knee)
        blocked_knees.append(blocked_knee)
        rows.append(
            [
                n,
                format_size(plain_knee),
                f"{plain_rate:.3f}",
                format_size(blocked_knee),
                f"{blocked_rate:.3f}",
            ]
        )
    result.tables["lev1 knee vs grid size"] = format_table(
        [
            "grid n",
            "unblocked knee",
            "plateau",
            f"blocked (tile={tile}) knee",
            "plateau",
        ],
        rows,
    )
    result.comparisons.extend(
        [
            SeriesComparison(
                "unblocked knee growth (2x n)",
                2.0,
                unblocked_knees[-1] / unblocked_knees[0],
                "x",
                note="lev1WS ~ n/sqrt(P) without blocking",
            ),
            SeriesComparison(
                "blocked knee growth (2x n)",
                1.0,
                blocked_knees[-1] / blocked_knees[0],
                "x",
                note="constant lev1WS with blocking (Section 4.2)",
            ),
            SeriesComparison(
                "blocked knee / unblocked knee at largest n",
                None,
                blocked_knees[-1] / unblocked_knees[-1],
                "x",
                note="blocking shrinks the required cache",
            ),
        ]
    )
    return result


def main() -> None:
    print(run().render())


if __name__ == "__main__":
    main()
