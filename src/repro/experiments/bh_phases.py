"""Barnes-Hut phase study (Section 6.4, second caveat).

"Although the force-calculation phase can be parallelized very
efficiently on large numbers of processors, some other phases — such as
building the octree and computing the moments of cells — do not yield
quite as good speedups due to larger amounts of synchronization and
contention that they encounter."

We measure the *sharing intensity* of each phase directly: run every
processor's per-phase reference trace through the write-invalidate
multiprocessor memory with infinite caches and compare coherence-miss
and invalidation rates.  The build and moments phases write shared
upper-tree cells, so their rates should exceed the force phase's by a
large factor.
"""

from __future__ import annotations

from typing import Dict

from repro.apps.barnes_hut.bodies import plummer_model
from repro.apps.barnes_hut.trace import BarnesHutTraceGenerator
from repro.core.report import format_table
from repro.experiments.runner import ExperimentResult, SeriesComparison
from repro.mem.multiproc import MultiprocessorMemory


def _phase_sharing(memory: MultiprocessorMemory, traces) -> Dict[str, float]:
    """Run one phase on a persistent machine state; report its sharing
    rates (coherence re-fetches, invalidations, and remote reads —
    consuming data another processor produced, possibly in an earlier
    phase)."""
    memory.reset_stats()
    memory.run_traces(traces)
    total = memory.aggregate()
    accesses = max(total.accesses, 1)
    return {
        "accesses": float(total.accesses),
        "coherence_rate": total.coherence_misses / accesses,
        "invalidation_rate": total.invalidations_received / accesses,
        "remote_read_rate": total.remote_reads / accesses,
        "sharing_rate": (total.coherence_misses + total.remote_reads)
        / accesses,
    }


def run(
    n: int = 512, theta: float = 1.0, num_processors: int = 4, seed: int = 5
) -> ExperimentResult:
    """Compare sharing intensity across build / moments / force phases."""
    result = ExperimentResult(
        experiment_id="bh-phases",
        title=(
            f"Barnes-Hut phase sharing: n={n}, theta={theta},"
            f" p={num_processors}"
        ),
    )
    bodies = plummer_model(n, seed=seed)
    gen = BarnesHutTraceGenerator(bodies, theta=theta, num_processors=num_processors)
    # Phases execute sequentially on one machine state, exactly as a
    # time-step does: build writes the tree, moments reads/writes it,
    # force reads it.
    phases = [
        (
            "tree build",
            [gen.build_trace_for_processor(pid) for pid in range(num_processors)],
        ),
        (
            "moments",
            [gen.moments_trace_for_processor(pid) for pid in range(num_processors)],
        ),
        (
            "force",
            [gen.trace_for_processor(pid) for pid in range(num_processors)],
        ),
    ]
    memory = MultiprocessorMemory(num_processors, capacity_bytes=None)
    rows = []
    rates = {}
    for name, traces in phases:
        sharing = _phase_sharing(memory, traces)
        rates[name] = sharing
        rows.append(
            [
                name,
                f"{sharing['accesses']:,.0f}",
                f"{sharing['coherence_rate']:.3%}",
                f"{sharing['invalidation_rate']:.3%}",
                f"{sharing['remote_read_rate']:.3%}",
            ]
        )
    result.tables["phase sharing intensity (infinite caches)"] = format_table(
        [
            "Phase",
            "References",
            "Coherence miss rate",
            "Invalidation rate",
            "Remote-read rate",
        ],
        rows,
    )
    build_vs_force = rates["tree build"]["sharing_rate"] / max(
        rates["force"]["sharing_rate"], 1e-12
    )
    moments_vs_force = rates["moments"]["sharing_rate"] / max(
        rates["force"]["sharing_rate"], 1e-12
    )
    result.comparisons.extend(
        [
            SeriesComparison(
                "build/force sharing-rate ratio",
                None,
                build_vs_force,
                "x",
                note="paper: build 'does not yield quite as good speedups'",
            ),
            SeriesComparison(
                "moments/force sharing-rate ratio",
                None,
                moments_vs_force,
                "x",
            ),
            SeriesComparison(
                "force-phase fraction of references",
                None,
                rates["force"]["accesses"]
                / sum(r["accesses"] for r in rates.values()),
                "",
                note="force dominates work on moderate machines",
            ),
        ]
    )
    result.notes.append(
        "phase attribution: each body's insertion path belongs to its"
        " owner; each cell's moment computation to the owner of its"
        " first body (a costzones-style assignment)"
    )
    return result


def main() -> None:
    print(run().render())


if __name__ == "__main__":
    main()
