"""Figure 7: working sets for volume rendering, p=4.

The paper measures a 256x256x113 CT head.  That data set is not
redistributable, so we render the synthetic head phantom (same
occupancy structure — see DESIGN.md) at a reduced size, measure the
working sets by trace simulation, and check the lev2WS against the
paper's explicit size law ``4000 + 110 n`` bytes by sweeping the volume
size.

Paper landmarks: lev1WS ~0.4 KB (miss rate -> ~15%), lev2WS ~16 KB for
the head (miss rate -> ~2%), lev3WS large (~700 KB) but unimportant,
communication floor ~0.1%.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.apps.volrend.model import VolrendModel
from repro.apps.volrend.trace import VolrendTraceGenerator
from repro.apps.volrend.volume import synthetic_head
from repro.core.curves import MissRateCurve
from repro.core.knee import match_knee
from repro.experiments.runner import ExperimentResult, SeriesComparison
from repro.mem.stack_distance import StackDistanceProfiler, default_capacity_grid
from repro.units import KB

#: Paper-reported values for the head data set (Section 7.2).
PAPER_LEV1_BYTES = 0.4 * KB
PAPER_PLATEAU_AFTER_LEV1 = 0.15
PAPER_PLATEAU_AFTER_LEV2 = 0.02
PAPER_LEV2_SLOPE = 110.0  # bytes per voxel of volume side


def _capacity_reaching(curve: MissRateCurve, target_rate: float) -> float:
    """Smallest sampled capacity whose miss rate is at or below target."""
    for cap, rate in zip(curve.capacities, curve.miss_rates):
        if rate <= target_rate:
            return float(cap)
    return float(curve.capacities[-1])


def _lev2_capacity(curve: MissRateCurve, hi_bytes: float) -> float:
    """The measured lev2WS: the smallest capacity reaching within 25% of
    the ray-to-ray reuse plateau (the minimum rate over capacities up to
    ``hi_bytes``, which should be chosen below the lev3 cliff)."""
    mask = curve.capacities <= hi_bytes
    plateau = float(curve.miss_rates[mask].min())
    return _capacity_reaching(curve, 1.25 * plateau)


def run(
    n: int = 48,
    num_processors: int = 4,
    frames: int = 2,
    slope_sizes: Sequence[int] = (32, 48, 64),
) -> ExperimentResult:
    """Regenerate Figure 7 on the phantom, plus the lev2WS growth law."""
    result = ExperimentResult(
        experiment_id="fig7",
        title=(
            f"Volume rendering working sets: {n}^3 phantom,"
            f" p={num_processors}"
        ),
    )
    volume = synthetic_head(n)
    gen = VolrendTraceGenerator(volume, num_processors=num_processors, image_size=n)
    trace = gen.trace_for_processor(0, frames=frames)
    profile = StackDistanceProfiler(
        count_reads_only=True, warmup=len(trace) // frames // 2
    ).profile(trace)
    grid = default_capacity_grid(min_bytes=64, max_bytes=1024 * 1024)
    measured = MissRateCurve.from_profile(
        profile, grid, metric="read_miss_rate", label="simulated"
    )
    result.curves.append(measured)
    model = VolrendModel(n=n, num_processors=num_processors)
    result.curves.append(
        MissRateCurve.from_model(
            model.miss_rate_model, grid, metric="read_miss_rate", label="model"
        )
    )

    knees = measured.knees(rel_threshold=0.25)
    lev1 = match_knee(knees, PAPER_LEV1_BYTES, tolerance_factor=6.0)
    # The lev2 drop is gradual (rays traverse varying depths), so locate
    # the working set as the capacity that first reaches the paper's
    # post-lev2 ~2% plateau rather than by knee segmentation.
    lev2_size = _lev2_capacity(measured, 0.5 * model.lev3_bytes())
    result.comparisons.extend(
        [
            SeriesComparison(
                "lev1WS (sample-to-sample reuse)",
                PAPER_LEV1_BYTES,
                lev1.capacity_bytes,
                "bytes",
            ),
            SeriesComparison(
                "lev2WS (ray-to-ray reuse)",
                model.lev2_bytes(),
                lev2_size,
                "bytes",
                note="capacity first reaching the ~2% plateau; paper formula 4000 + 110n",
            ),
            SeriesComparison(
                "miss rate after lev2WS",
                PAPER_PLATEAU_AFTER_LEV2,
                measured.value_at(2 * lev2_size),
                "read miss rate",
            ),
            SeriesComparison(
                "lev3WS (frame-to-frame reuse)",
                model.lev3_bytes(),
                _capacity_reaching(measured, 2.5 * measured.floor),
                "bytes",
                note="the cliff where the second frame's voxels hit",
            ),
        ]
    )

    # The lev2WS growth law: measure the knee at several volume sizes
    # and fit the slope against the paper's 110 bytes/voxel-side.
    if slope_sizes:
        sizes = []
        knee_sizes = []
        for size in slope_sizes:
            vol = synthetic_head(size)
            g = VolrendTraceGenerator(vol, num_processors=num_processors, image_size=size)
            tr = g.trace_for_processor(0, frames=1)
            prof = StackDistanceProfiler(
                count_reads_only=True, warmup=len(tr) // 4
            ).profile(tr)
            curve = MissRateCurve.from_profile(
                prof,
                default_capacity_grid(min_bytes=512, max_bytes=512 * 1024),
                metric="read_miss_rate",
            )
            sizes.append(size)
            # Single-frame traces have no lev3 cliff within this grid,
            # so the global minimum is the ray-to-ray plateau.
            knee_sizes.append(_lev2_capacity(curve, float("inf")))
        if len(sizes) >= 2:
            xs = np.asarray(sizes, float)
            ys = np.asarray(knee_sizes, float)
            slope, intercept = np.polyfit(xs, ys, 1)
            predicted = slope * xs + intercept
            ss_res = float(((ys - predicted) ** 2).sum())
            ss_tot = float(((ys - ys.mean()) ** 2).sum()) or 1.0
            r_squared = 1.0 - ss_res / ss_tot
            result.comparisons.append(
                SeriesComparison(
                    "lev2WS growth: linear in n (R^2)",
                    1.0,
                    r_squared,
                    "",
                    note=f"knees {list(map(int, ys))} at sizes {sizes}",
                )
            )
            result.comparisons.append(
                SeriesComparison(
                    "lev2WS growth slope",
                    None,
                    float(slope),
                    "bytes per voxel of side",
                    note=(
                        f"paper's head/renderer fit is {PAPER_LEV2_SLOPE:.0f};"
                        " ours is larger because the traced sample state"
                        " includes octree-path and scratch reads (see"
                        " EXPERIMENTS.md)"
                    ),
                )
            )
    result.notes.append(
        "lev3WS (frame-to-frame reuse) appears when caches approach the"
        " per-processor frame footprint; like the paper we do not rely"
        " on it for performance"
    )
    result.notes.append(
        "voxel data is read-only: there are no coherence misses, and the"
        " floor is the cold/frame-overlap rate"
    )
    return result


def main() -> None:
    from repro.obs.console import info

    info(run().render())


if __name__ == "__main__":
    main()
