"""Common structure for experiment results, and the worker entry point.

Every experiment driver produces an :class:`ExperimentResult` holding
the measured/model series plus paper-vs-measured comparisons, so that
tests, benchmarks and EXPERIMENTS.md all consume the same object.

This module is also the *worker-side* entry point of the hard-isolation
backend (:mod:`repro.runtime.workers`): ``python -m
repro.experiments.runner`` reads one JSON
:class:`~repro.runtime.workers.AttemptSpec` from stdin, applies its
address-space rlimit to itself, rebuilds the experiment runner and
kwargs, runs exactly one attempt under the cooperative budget, and
writes one JSON payload to stdout (see :func:`worker_main`).
"""

from __future__ import annotations

import sys
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.core.curves import MissRateCurve
from repro.core.report import banner, format_curve_series, format_table


@dataclass
class SeriesComparison:
    """One paper-reported quantity against our measurement.

    Attributes:
        quantity: What is compared (e.g. ``"lev2WS size"``).
        paper_value: The paper's reported number (None when the paper
            gives only a qualitative statement).
        measured_value: Our number.
        unit: Unit label.
        note: Commentary on agreement/divergence.
    """

    quantity: str
    paper_value: Optional[float]
    measured_value: float
    unit: str = ""
    note: str = ""

    @property
    def ratio(self) -> Optional[float]:
        if self.paper_value in (None, 0):
            return None
        return self.measured_value / self.paper_value

    def row(self) -> List[object]:
        paper = "-" if self.paper_value is None else f"{self.paper_value:.4g}"
        ratio = "-" if self.ratio is None else f"{self.ratio:.2f}x"
        return [
            self.quantity,
            paper,
            f"{self.measured_value:.4g}",
            self.unit,
            ratio,
            self.note,
        ]

    def to_dict(self) -> Dict[str, object]:
        """JSON-serializable form (used by campaign checkpoints)."""
        return {
            "quantity": self.quantity,
            "paper_value": self.paper_value,
            "measured_value": self.measured_value,
            "unit": self.unit,
            "note": self.note,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "SeriesComparison":
        paper = payload.get("paper_value")
        return cls(
            quantity=str(payload["quantity"]),
            paper_value=None if paper is None else float(paper),
            measured_value=float(payload["measured_value"]),
            unit=str(payload.get("unit", "")),
            note=str(payload.get("note", "")),
        )


@dataclass
class ExperimentResult:
    """The outcome of one table/figure reproduction.

    Attributes:
        experiment_id: e.g. ``"fig2"``.
        title: The paper artifact reproduced.
        curves: Miss-rate series (for figures).
        comparisons: Paper-vs-measured rows.
        tables: Extra named ASCII tables (for table experiments).
        notes: Free-form commentary.
    """

    experiment_id: str
    title: str
    curves: List[MissRateCurve] = field(default_factory=list)
    comparisons: List[SeriesComparison] = field(default_factory=list)
    tables: Dict[str, str] = field(default_factory=dict)
    notes: List[str] = field(default_factory=list)

    def render(self) -> str:
        """Human-readable report of the experiment."""
        parts = [banner(f"{self.experiment_id}: {self.title}")]
        if self.curves:
            parts.append(format_curve_series(self.curves))
        for name, table in self.tables.items():
            parts.append(f"\n-- {name} --")
            parts.append(table)
        if self.comparisons:
            parts.append("\n-- paper vs measured --")
            parts.append(
                format_table(
                    ["quantity", "paper", "measured", "unit", "ratio", "note"],
                    [c.row() for c in self.comparisons],
                )
            )
        if self.notes:
            parts.append("")
            parts.extend(f"note: {n}" for n in self.notes)
        return "\n".join(parts)

    def comparison(self, quantity: str) -> SeriesComparison:
        for comp in self.comparisons:
            if comp.quantity == quantity:
                return comp
        raise KeyError(f"no comparison named {quantity!r}")

    def to_dict(self) -> Dict[str, object]:
        """JSON-serializable form (used by campaign checkpoints)."""
        return {
            "experiment_id": self.experiment_id,
            "title": self.title,
            "curves": [curve.to_dict() for curve in self.curves],
            "comparisons": [comp.to_dict() for comp in self.comparisons],
            "tables": dict(self.tables),
            "notes": list(self.notes),
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "ExperimentResult":
        return cls(
            experiment_id=str(payload["experiment_id"]),
            title=str(payload["title"]),
            curves=[MissRateCurve.from_dict(c) for c in payload.get("curves", [])],
            comparisons=[
                SeriesComparison.from_dict(c)
                for c in payload.get("comparisons", [])
            ],
            tables=dict(payload.get("tables", {})),
            notes=list(payload.get("notes", [])),
        )


# -- worker-side entry point (hard-isolation backend) ---------------------


def worker_main(stdin_text: Optional[str] = None) -> int:
    """Run one experiment attempt as a supervised worker process.

    Protocol (see :mod:`repro.runtime.workers`): one JSON
    ``AttemptSpec`` arrives on stdin; one JSON payload leaves on
    stdout — ``{"ok": true, "result": ...}`` or ``{"ok": false,
    "failure": ...}`` with a pre-classified ``ExperimentFailure``.
    Exit status 0 means the payload was delivered (success *or*
    classified failure); anything else is a crash for the supervisor to
    classify.

    Stdout hygiene: the payload channel is reserved by duplicating the
    original stdout fd and pointing fd 1 (and ``sys.stdout``) at stderr
    before any experiment code runs, so stray prints cannot corrupt the
    protocol.

    Args:
        stdin_text: The spec JSON (tests); None reads ``sys.stdin``.
    """
    import json
    import os

    # Reserve the payload channel before anything can print.
    payload_fd = os.dup(1)
    os.dup2(2, 1)
    sys.stdout = sys.stderr

    from pathlib import Path

    # Under ``python -m`` this file executes as ``__main__``; import the
    # canonical class so isinstance checks match what experiments return.
    from repro.experiments.runner import ExperimentResult as CanonicalResult
    from repro.runtime.budget import Budget, activate
    from repro.runtime.errors import ExperimentFailure, WorkerMemoryError
    from repro.runtime.faults import FaultSpec, fire_fault
    from repro.runtime.workers import (
        AttemptSpec,
        apply_address_space_limit,
        resolve_runner_ref,
    )

    from repro.obs import metrics as obs_metrics
    from repro.obs import tracing as obs_tracing

    spec: Optional[AttemptSpec] = None
    worker_tracer = None
    try:
        raw = sys.stdin.read() if stdin_text is None else stdin_text
        spec = AttemptSpec.from_json(raw)
        if spec.obs:
            # The supervisor asked for telemetry: collect metrics and
            # buffer spans in-process; both ship back in the payload.
            obs_metrics.set_obs_enabled(True)
            worker_tracer = obs_tracing.configure(
                trace_id=spec.trace_id,
                root_parent=spec.parent_span_id,
                buffered=True,
            )
            # Adopt the supervisor's timeline file (REPRO_TIMELINE) and
            # stamp this attempt's identity into every row we append.
            from repro.obs import timeline as obs_timeline
            from repro.runtime.journal import attempt_uid as _attempt_uid

            recorder = obs_timeline.install_from_env()
            if recorder is not None:
                recorder.set_labels(
                    experiment_id=spec.experiment_id,
                    attempt_uid=_attempt_uid(
                        spec.experiment_id, spec.fencing_token, spec.attempt
                    ),
                )
        apply_address_space_limit(spec.max_rss_mb)
        runner = resolve_runner_ref(spec.runner)
        budget = Budget(spec.budget_seconds)
        with activate(budget):
            if spec.fault is not None:
                fire_fault(
                    FaultSpec.from_dict(spec.fault),
                    spec.experiment_id,
                    spec.attempt,
                    budget=budget,
                    workspace=Path(spec.workspace) if spec.workspace else None,
                    in_worker=True,
                )
            with obs_tracing.span(
                "worker.run",
                experiment_id=spec.experiment_id,
                attempt=spec.attempt,
                degraded=spec.degraded,
            ):
                run = getattr(runner, "run", runner)
                result = run(**spec.kwargs)
        if not isinstance(result, CanonicalResult):
            raise TypeError(
                f"experiment runner {runner!r} returned "
                f"{type(result).__name__}, expected ExperimentResult"
            )
        payload = {"ok": True, "result": result.to_dict()}
    except MemoryError:
        # Free whatever blew up before attempting any further work.
        import gc

        gc.collect()
        experiment_id = spec.experiment_id if spec else "<unparsed spec>"
        limit = spec.max_rss_mb if spec else None
        detail = (
            f"address-space rlimit of {limit} MiB"
            if limit is not None
            else "memory exhaustion (no rlimit configured)"
        )
        exc = WorkerMemoryError(
            f"worker for {experiment_id} hit its {detail}; the allocation "
            "failure was contained to this worker"
        )
        payload = {
            "ok": False,
            "failure": ExperimentFailure.from_exception(
                experiment_id,
                exc,
                attempt=spec.attempt if spec else 1,
                degraded=spec.degraded if spec else False,
            ).to_dict(),
        }
    except BaseException as exc:  # noqa: BLE001 — classification is the point
        if isinstance(exc, (KeyboardInterrupt, SystemExit)):
            raise
        experiment_id = spec.experiment_id if spec else "<unparsed spec>"
        payload = {
            "ok": False,
            "failure": ExperimentFailure.from_exception(
                experiment_id,
                exc,
                attempt=spec.attempt if spec else 1,
                degraded=spec.degraded if spec else False,
            ).to_dict(),
        }

    # Echo the fencing token the supervisor handed us: a payload from a
    # worker spawned by a superseded supervisor generation carries the
    # old token and is rejected at parse time (lease-based fencing).
    payload["token"] = spec.fencing_token if spec else 0

    # Ship telemetry alongside the result: the worker's metrics
    # snapshot, its buffered spans, and the process RSS peak.  Failures
    # carry telemetry too — a failing attempt is exactly the one an
    # operator wants numbers from.
    try:
        from repro.mem.kernels import drain_kernel_events

        kernel_events = drain_kernel_events()
    except ImportError:  # pragma: no cover - numpy-less install
        kernel_events = []
    if spec is not None and spec.obs:
        rss_peak_kb: Optional[int] = None
        try:
            import resource

            rss_peak_kb = int(
                resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
            )
        except (ImportError, OSError):  # pragma: no cover - platform
            pass
        payload["obs"] = {
            "metrics": obs_metrics.get_registry().snapshot(),
            "spans": [
                s.to_dict()
                for s in (
                    worker_tracer.drain() if worker_tracer is not None else []
                )
            ],
            "rss_peak_kb": rss_peak_kb,
            "kernel_events": kernel_events,
        }
    elif kernel_events:
        # Kernel divergences must reach the supervisor's event log even
        # when full telemetry shipping is off.
        payload["obs"] = {"kernel_events": kernel_events}
    with os.fdopen(payload_fd, "w", encoding="utf-8") as out:
        json.dump(payload, out)
        out.flush()
    return 0


if __name__ == "__main__":
    raise SystemExit(worker_main())
