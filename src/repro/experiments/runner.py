"""Common structure for experiment results.

Every experiment driver produces an :class:`ExperimentResult` holding
the measured/model series plus paper-vs-measured comparisons, so that
tests, benchmarks and EXPERIMENTS.md all consume the same object.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.core.curves import MissRateCurve
from repro.core.report import banner, format_curve_series, format_table


@dataclass
class SeriesComparison:
    """One paper-reported quantity against our measurement.

    Attributes:
        quantity: What is compared (e.g. ``"lev2WS size"``).
        paper_value: The paper's reported number (None when the paper
            gives only a qualitative statement).
        measured_value: Our number.
        unit: Unit label.
        note: Commentary on agreement/divergence.
    """

    quantity: str
    paper_value: Optional[float]
    measured_value: float
    unit: str = ""
    note: str = ""

    @property
    def ratio(self) -> Optional[float]:
        if self.paper_value in (None, 0):
            return None
        return self.measured_value / self.paper_value

    def row(self) -> List[object]:
        paper = "-" if self.paper_value is None else f"{self.paper_value:.4g}"
        ratio = "-" if self.ratio is None else f"{self.ratio:.2f}x"
        return [
            self.quantity,
            paper,
            f"{self.measured_value:.4g}",
            self.unit,
            ratio,
            self.note,
        ]

    def to_dict(self) -> Dict[str, object]:
        """JSON-serializable form (used by campaign checkpoints)."""
        return {
            "quantity": self.quantity,
            "paper_value": self.paper_value,
            "measured_value": self.measured_value,
            "unit": self.unit,
            "note": self.note,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "SeriesComparison":
        paper = payload.get("paper_value")
        return cls(
            quantity=str(payload["quantity"]),
            paper_value=None if paper is None else float(paper),
            measured_value=float(payload["measured_value"]),
            unit=str(payload.get("unit", "")),
            note=str(payload.get("note", "")),
        )


@dataclass
class ExperimentResult:
    """The outcome of one table/figure reproduction.

    Attributes:
        experiment_id: e.g. ``"fig2"``.
        title: The paper artifact reproduced.
        curves: Miss-rate series (for figures).
        comparisons: Paper-vs-measured rows.
        tables: Extra named ASCII tables (for table experiments).
        notes: Free-form commentary.
    """

    experiment_id: str
    title: str
    curves: List[MissRateCurve] = field(default_factory=list)
    comparisons: List[SeriesComparison] = field(default_factory=list)
    tables: Dict[str, str] = field(default_factory=dict)
    notes: List[str] = field(default_factory=list)

    def render(self) -> str:
        """Human-readable report of the experiment."""
        parts = [banner(f"{self.experiment_id}: {self.title}")]
        if self.curves:
            parts.append(format_curve_series(self.curves))
        for name, table in self.tables.items():
            parts.append(f"\n-- {name} --")
            parts.append(table)
        if self.comparisons:
            parts.append("\n-- paper vs measured --")
            parts.append(
                format_table(
                    ["quantity", "paper", "measured", "unit", "ratio", "note"],
                    [c.row() for c in self.comparisons],
                )
            )
        if self.notes:
            parts.append("")
            parts.extend(f"note: {n}" for n in self.notes)
        return "\n".join(parts)

    def comparison(self, quantity: str) -> SeriesComparison:
        for comp in self.comparisons:
            if comp.quantity == quantity:
                return comp
        raise KeyError(f"no comparison named {quantity!r}")

    def to_dict(self) -> Dict[str, object]:
        """JSON-serializable form (used by campaign checkpoints)."""
        return {
            "experiment_id": self.experiment_id,
            "title": self.title,
            "curves": [curve.to_dict() for curve in self.curves],
            "comparisons": [comp.to_dict() for comp in self.comparisons],
            "tables": dict(self.tables),
            "notes": list(self.notes),
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "ExperimentResult":
        return cls(
            experiment_id=str(payload["experiment_id"]),
            title=str(payload["title"]),
            curves=[MissRateCurve.from_dict(c) for c in payload.get("curves", [])],
            comparisons=[
                SeriesComparison.from_dict(c)
                for c in payload.get("comparisons", [])
            ],
            tables=dict(payload.get("tables", {})),
            notes=list(payload.get("notes", [])),
        )
