"""Granularity sweep: Sections 3.3-7.3's coarse/prototypical/fine
comparison for all five applications.

For each application the paper evaluates the 1-Gbyte problem on a
64-processor machine (16 MB/node), the prototypical 1024-processor
machine (1 MB/node), and a 16K-processor machine (64 KB/node), judging
communication sustainability and load balance.

Paper landmarks checked here:

- LU: ratio ~200 at 1 MB/node, ~50 at 64 KB/node; 380 blocks/processor
  prototypically, 25 at the fine grain.
- CG 2-D: ratio ~300 prototypically, ~75 at 16 KB/node.
- FFT: ratio 33, unchanged by quantization on coarser machines.
- Barnes-Hut: communication tiny; ~4500 particles/processor.
- Volume rendering: ~600 instructions/word at any grain; 1000 rays
  prototypically, ~66 at the fine grain.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.core.analysis import ApplicationModel
from repro.core.grain import GrainConfig, prototypical_configs
from repro.core.report import format_table
from repro.experiments.runner import ExperimentResult, SeriesComparison
from repro.experiments.table2 import prototypical_models
from repro.units import GB, format_size


def run(
    total_data_bytes: float = GB,
    configs: Optional[Sequence[GrainConfig]] = None,
) -> ExperimentResult:
    """Assess every application at every granularity variant."""
    result = ExperimentResult(
        experiment_id="grain",
        title=f"Grain-size assessments for a {format_size(total_data_bytes)} problem",
    )
    if configs is None:
        configs = prototypical_configs(total_data_bytes)
    rows = []
    for model in prototypical_models():
        for assessment in model.grain_assessments(configs):
            rows.append(
                [
                    model.name,
                    assessment.config.num_processors,
                    format_size(assessment.config.memory_per_processor),
                    f"{assessment.flops_per_word:.0f}",
                    assessment.band.value.split(" (")[0],
                    f"{assessment.units_per_processor:.0f} {model.load_model.unit_name}",
                    assessment.verdict.value,
                ]
            )
    result.tables["grain sweep"] = format_table(
        ["Application", "P", "Grain", "FLOPs/word", "Band", "Work/processor", "Verdict"],
        rows,
    )

    lu, cg, fft, bh, vr = prototypical_models()
    proto = configs[1]
    fine = configs[2]
    result.comparisons.extend(
        [
            SeriesComparison(
                "LU ratio, 1 MB grain", 200.0, lu.flops_per_word(proto), "FLOPs/word"
            ),
            SeriesComparison(
                "LU ratio, 64 KB grain", 50.0, lu.flops_per_word(fine), "FLOPs/word"
            ),
            SeriesComparison(
                "LU blocks/processor, prototypical",
                380.0,
                lu.units_per_processor(proto),
                "blocks",
                note="paper uses n=10,000 exactly; we derive n from 1 GB",
            ),
            SeriesComparison(
                "CG 2-D ratio, 1 MB grain", 300.0, cg.flops_per_word(proto), "FLOPs/word"
            ),
            SeriesComparison(
                "FFT exact ratio, prototypical",
                33.0,
                fft.flops_per_word(proto),
                "FLOPs/word",
            ),
            SeriesComparison(
                "FFT grain for ratio 60",
                270.0 * 1024 * 1024,
                fft.grain_for_ratio(60.0),
                "bytes/processor",
            ),
            SeriesComparison(
                "FFT grain for ratio 100",
                18.0 * 1024**4,
                fft.grain_for_ratio(100.0),
                "bytes/processor",
                note="the paper's '18 Terabytes' impossibility",
            ),
            SeriesComparison(
                "Barnes-Hut particles/processor, prototypical",
                4500.0,
                bh.units_per_processor(proto),
                "particles",
            ),
            SeriesComparison(
                "Volume rendering instr/word",
                600.0,
                vr.flops_per_word(proto),
                "instructions/word",
            ),
            SeriesComparison(
                "Volume rendering rays/processor, fine grain",
                66.0,
                vr.units_per_processor(fine),
                "rays",
            ),
        ]
    )
    result.notes.append(
        "FFT quantization: on 64 processors the exact ratio is unchanged"
        " because the number of communication stages does not change"
        f" (coarse ratio {fft.flops_per_word(configs[0]):.0f})"
    )
    return result


def main() -> None:
    from repro.obs.console import info

    info(run().render())


if __name__ == "__main__":
    main()
