"""Figure 5: miss rates for the 1-D FFT, N = 64M = 2^26, PE = 1024,
for internal radices 2, 8 and 32.

Analytical curves at full scale; trace validation at N = 2^14 on 4
processors.  The paper's plateaus — roughly 0.6, 0.25 and 0.15 read
misses per operation once the radix-2/8/32 butterfly fits — come out of
both the model and the trace.
"""

from __future__ import annotations

from typing import Optional

from repro.apps.fft.model import FFTModel
from repro.apps.fft.trace import FFTTraceGenerator
from repro.core.curves import MissRateCurve
from repro.core.knee import match_knee
from repro.experiments.runner import ExperimentResult, SeriesComparison
from repro.mem.stack_distance import StackDistanceProfiler, default_capacity_grid

#: Paper-reported plateaus once the lev1WS fits (Section 5.2).
PAPER_PLATEAUS = {2: 0.6, 8: 0.25, 32: 0.15}


def run(
    n: int = 2**26,
    num_processors: int = 1024,
    radices: tuple = (2, 8, 32),
    validate_n: Optional[int] = 2**14,
    validate_processors: int = 4,
) -> ExperimentResult:
    """Regenerate Figure 5."""
    result = ExperimentResult(
        experiment_id="fig5",
        title=f"1D FFT miss rates, n=2^{n.bit_length() - 1}, PE={num_processors}",
    )
    grid = default_capacity_grid(min_bytes=32, max_bytes=4 * 1024 * 1024)
    for radix in radices:
        model = FFTModel(n=n, num_processors=num_processors, internal_radix=radix)
        result.curves.append(
            MissRateCurve.from_model(
                model.miss_rate_model,
                grid,
                metric="misses_per_flop",
                label=f"radix-{radix}",
            )
        )
        result.comparisons.append(
            SeriesComparison(
                f"plateau after lev1WS, radix-{radix}",
                PAPER_PLATEAUS[radix],
                model.plateau_after_lev1(radix),
                "read misses/FLOP",
            )
        )

    if validate_n:
        small_grid = default_capacity_grid(min_bytes=32, max_bytes=512 * 1024)
        for radix in radices:
            gen = FFTTraceGenerator(
                n=validate_n,
                num_processors=validate_processors,
                internal_radix=radix,
            )
            trace = gen.trace_for_processor(0)
            profile = StackDistanceProfiler(count_reads_only=True).profile(trace)
            measured = MissRateCurve.from_profile(
                profile,
                small_grid,
                metric="misses_per_flop",
                flops=gen.flops,
                label=f"simulated radix-{radix}",
            )
            result.curves.append(measured)
            model = FFTModel(
                n=validate_n,
                num_processors=validate_processors,
                internal_radix=radix,
            )
            plateau = measured.value_at(4 * model.lev1_bytes())
            result.comparisons.append(
                SeriesComparison(
                    f"simulated plateau, radix-{radix} (reduced problem)",
                    PAPER_PLATEAUS[radix],
                    plateau,
                    "read misses/FLOP",
                    note="includes remainder-pass quantization overhead",
                )
            )
            if radix > 2:
                knees = measured.knees(rel_threshold=0.3)
                lev1_knee = match_knee(knees, model.lev1_bytes())
                result.comparisons.append(
                    SeriesComparison(
                        f"simulated lev1WS knee, radix-{radix}",
                        model.lev1_bytes(),
                        lev1_knee.capacity_bytes,
                        "bytes",
                    )
                )
    result.notes.append(
        "a small cache (a few KB) is sufficient for any problem or"
        " machine size: the lev1WS depends only on the internal radix"
        " (Section 5.2)"
    )
    return result


def main() -> None:
    print(run().render())


if __name__ == "__main__":
    main()
