"""Run every experiment and print the consolidated reproduction report.

Usage::

    python -m repro.experiments            # everything (minutes)
    python -m repro.experiments fig2 table2 ...   # a subset
    python -m repro.experiments --quick    # reduced trace sizes (~1 min)
"""

from __future__ import annotations

import sys
import time

from repro.experiments import (
    all_cache,
    assoc_study,
    bh_phases,
    cg_blocking,
    cg_unstructured,
    cost_model,
    fig2_lu,
    fig4_cg,
    fig5_fft,
    fig6_barneshut,
    fig7_volrend,
    grain_sweep,
    hierarchy_design,
    line_size_study,
    prefetch_study,
    scaling_study,
    table1,
    table2,
    volrend_stealing,
)

#: id -> kwargs overriding the defaults for a fast smoke run.
QUICK_OVERRIDES = {
    "fig2": {"validate_n": 64},
    "fig4": {"validate_n": 64},
    "fig5": {"validate_n": 2**10},
    "fig6": {"n": 256},
    "fig7": {"n": 32, "slope_sizes": (24, 40)},
    "assoc": {"n": 128, "capacities": [1 << k for k in range(8, 16)]},
    "bh-phases": {"n": 256},
    "cg-unstructured": {"side": 32, "num_parts": 8},
    "volrend-stealing": {"n": 32, "processor_counts": (4, 16, 64)},
}

#: id -> (module, kwargs for a full-quality run)
EXPERIMENTS = {
    "fig2": (fig2_lu, {}),
    "fig4": (fig4_cg, {}),
    "fig5": (fig5_fft, {}),
    "fig6": (fig6_barneshut, {}),
    "fig7": (fig7_volrend, {}),
    "table1": (table1, {}),
    "table2": (table2, {}),
    "grain": (grain_sweep, {}),
    "all-cache": (all_cache, {}),
    "assoc": (assoc_study, {}),
    "bh-phases": (bh_phases, {}),
    "prefetch": (prefetch_study, {}),
    "hierarchy": (hierarchy_design, {}),
    "line-size": (line_size_study, {}),
    "cost": (cost_model, {}),
    "scaling": (scaling_study, {}),
    "cg-blocking": (cg_blocking, {}),
    "cg-unstructured": (cg_unstructured, {}),
    "volrend-stealing": (volrend_stealing, {}),
}


def main(argv: list) -> int:
    quick = "--quick" in argv
    argv = [a for a in argv if a != "--quick"]
    wanted = argv or list(EXPERIMENTS)
    unknown = [name for name in wanted if name not in EXPERIMENTS]
    if unknown:
        print(f"unknown experiments: {unknown}; choices: {list(EXPERIMENTS)}")
        return 2
    for name in wanted:
        module, kwargs = EXPERIMENTS[name]
        if quick:
            kwargs = {**kwargs, **QUICK_OVERRIDES.get(name, {})}
        started = time.time()
        result = module.run(**kwargs)
        elapsed = time.time() - started
        print(result.render())
        print(f"[{name} completed in {elapsed:.1f}s]\n")
    return 0


def cli() -> int:
    """Console-script entry point (``repro-experiments``)."""
    return main(sys.argv[1:])


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
