"""Run the experiment campaign and print the consolidated report.

The campaign runs on the fault-tolerant engine in
:mod:`repro.runtime.engine`: each experiment is isolated, failures are
captured and retried with exponential backoff (degrading to the quick
parameterization), per-experiment wall-clock budgets bound hangs, and
completed results are checkpointed for resume.

By default (``--jobs 1``) every attempt runs hard-isolated in its own
supervised subprocess (:mod:`repro.runtime.workers`): ``--jobs N``
runs N experiments concurrently, ``--hard-timeout-seconds`` kills
non-cooperative hangs with SIGTERM→SIGKILL, and ``--max-rss-mb``
rlimits each worker's address space so an OOM takes down one worker,
not the campaign.  ``--jobs 0`` selects the legacy in-process serial
backend (debugging).

Usage::

    python -m repro.experiments                  # everything (minutes)
    python -m repro.experiments fig2 table2 ...  # a subset
    python -m repro.experiments --quick          # reduced sizes (~1 min)
    python -m repro.experiments --list           # enumerate experiment ids
    python -m repro.experiments --budget-seconds 120 --run-dir runs/full
    python -m repro.experiments --resume runs/full   # skip finished ids
    python -m repro.experiments --jobs 4 --hard-timeout-seconds 600 \
        --max-rss-mb 2048 --run-dir runs/par     # parallel + contained
    python -m repro.experiments --validate --run-dir runs/full
                                      # reject results failing the oracles
    python -m repro.experiments --verify-store runs/full
                                      # checksum every checkpoint, exit 0/1
    python -m repro.experiments validate runs/full
                                      # full artifact validation of a run dir
    python -m repro.experiments fuzz --cases 500
                                      # adversarial fuzz of artifact readers
    python -m repro.experiments chaos --cycles 10
                                      # SIGKILL/resume chaos gate
    python -m repro.experiments status runs/full --follow
                                      # live per-experiment state/ETA
    python -m repro.experiments report runs/full --html -o report.html
                                      # static post-hoc campaign report
    python -m repro.experiments serve runs/service --quick
                                      # multi-tenant campaign service
    python -m repro.experiments --quick --run-dir runs/q \
        --archive perf-archive.jsonl  # append an attributed perf row
    python -m repro.experiments trends perf-archive.jsonl
                                      # cross-campaign regression check

Campaigns are observable by default (``--no-obs`` or ``REPRO_OBS=0``
opts out): counters/gauges/histograms roll up into
``<run_dir>/metrics.json``, spans into ``<run_dir>/spans.jsonl``,
per-chunk working-set telemetry into ``<run_dir>/timeline.jsonl``
(phase segmentation + per-phase knees), and the ``status`` /
``report`` subcommands reconstruct everything read-only from those
artifacts plus the journal and event log.  See
``docs/OBSERVABILITY.md``.

Campaigns with a run directory are crash-consistent: every state
transition is written ahead to ``<run_dir>/journal.wal`` (fsynced,
CRC-framed), a heartbeat lease (``supervisor.lease``) fences out
concurrent or superseded supervisors with a monotonic token, and
``--resume`` replays the journal to decide what is committed — a
``kill -9`` at any instruction loses nothing that was committed and
re-runs nothing that was.  See ``docs/DURABILITY.md``.

Exit status: 0 when every experiment finished (possibly degraded),
1 when any experiment ultimately failed after retries or the campaign
was interrupted (Ctrl-C / SIGTERM — completed results are already
checkpointed, so ``--resume`` finishes the remainder), 2 on usage
errors.  The ``validate`` / ``fuzz`` / ``chaos`` subcommands and
``--verify-store`` exit 0 on a clean report, 1 on findings, 2 on usage
errors.
"""

from __future__ import annotations

import argparse
import sys
import tempfile
from pathlib import Path
from typing import Dict, List, Optional

from repro.experiments import (
    all_cache,
    assoc_study,
    bh_phases,
    cg_blocking,
    cg_unstructured,
    cost_model,
    fig2_lu,
    fig4_cg,
    fig5_fft,
    fig6_barneshut,
    fig7_volrend,
    grain_sweep,
    hierarchy_design,
    line_size_study,
    prefetch_study,
    scaling_study,
    table1,
    table2,
    volrend_stealing,
)
from repro.obs import console
from repro.obs import metrics as obs_metrics
from repro.obs import tracing as obs_tracing
from repro.runtime.checkpoint import CheckpointStore
from repro.runtime.engine import (
    CampaignEngine,
    CampaignReport,
    EngineConfig,
    ExperimentOutcome,
)
from repro.runtime.errors import JournalCorruptError, LeaseHeldError
from repro.runtime.events import EventLog
from repro.runtime.faults import FaultInjector, FaultSpec
from repro.runtime.iofault import install_from_env
from repro.runtime.journal import JOURNAL_FILENAME, Journal, recover
from repro.runtime.lease import DEFAULT_TTL_SECONDS, Lease

#: ``--inject-fault`` kind names -> FaultSpec constructor kwargs.
#: ``hang-hard`` is the non-cooperative variant only the worker
#: backend's kill escalation can stop.
INJECTABLE_FAULTS = {
    "crash": {"kind": "crash"},
    "hang": {"kind": "hang", "cooperative": True},
    "hang-hard": {"kind": "hang", "cooperative": False},
    "memhog": {"kind": "memhog"},
    "die": {"kind": "die"},
    "corrupt-trace": {"kind": "corrupt-trace"},
}

#: id -> kwargs overriding the defaults for a fast smoke run; also the
#: degradation target when a full-size experiment fails or runs over
#: budget.
QUICK_OVERRIDES = {
    "fig2": {"validate_n": 64},
    "fig4": {"validate_n": 64},
    "fig5": {"validate_n": 2**10},
    "fig6": {"n": 256},
    "fig7": {"n": 32, "slope_sizes": (24, 40)},
    "assoc": {"n": 128, "capacities": [1 << k for k in range(8, 16)]},
    "bh-phases": {"n": 256},
    "cg-unstructured": {"side": 32, "num_parts": 8},
    "volrend-stealing": {"n": 32, "processor_counts": (4, 16, 64)},
}

#: id -> (module, kwargs for a full-quality run)
EXPERIMENTS = {
    "fig2": (fig2_lu, {}),
    "fig4": (fig4_cg, {}),
    "fig5": (fig5_fft, {}),
    "fig6": (fig6_barneshut, {}),
    "fig7": (fig7_volrend, {}),
    "table1": (table1, {}),
    "table2": (table2, {}),
    "grain": (grain_sweep, {}),
    "all-cache": (all_cache, {}),
    "assoc": (assoc_study, {}),
    "bh-phases": (bh_phases, {}),
    "prefetch": (prefetch_study, {}),
    "hierarchy": (hierarchy_design, {}),
    "line-size": (line_size_study, {}),
    "cost": (cost_model, {}),
    "scaling": (scaling_study, {}),
    "cg-blocking": (cg_blocking, {}),
    "cg-unstructured": (cg_unstructured, {}),
    "volrend-stealing": (volrend_stealing, {}),
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate the paper's tables and figures.",
    )
    parser.add_argument(
        "experiments",
        nargs="*",
        metavar="ID",
        help="experiment ids to run (default: all; see --list)",
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="run every experiment at its reduced-size parameterization",
    )
    parser.add_argument(
        "--list",
        action="store_true",
        dest="list_ids",
        help="list experiment ids and exit",
    )
    parser.add_argument(
        "--budget-seconds",
        type=float,
        default=None,
        metavar="S",
        help="wall-clock budget per experiment attempt (default: unlimited)",
    )
    parser.add_argument(
        "--max-attempts",
        type=int,
        default=3,
        metavar="N",
        help="attempts per experiment before it counts as failed (default: 3)",
    )
    parser.add_argument(
        "--run-dir",
        default=None,
        metavar="DIR",
        help="checkpoint completed results into DIR",
    )
    parser.add_argument(
        "--resume",
        default=None,
        metavar="DIR",
        help="resume a checkpointed campaign: skip experiments already "
        "completed in DIR and checkpoint new results there",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="run N experiments concurrently, each attempt in its own "
        "supervised subprocess; 0 = legacy in-process serial backend "
        "(default: 1)",
    )
    parser.add_argument(
        "--nodes",
        type=int,
        default=None,
        metavar="N",
        help="shard the campaign across N long-lived worker-node "
        "processes (the fault-tolerant dispatch fabric: fenced "
        "assignment, failover re-dispatch, straggler hedging; see "
        "docs/ROBUSTNESS.md); requires --jobs >= 1",
    )
    parser.add_argument(
        "--hard-timeout-seconds",
        type=float,
        default=None,
        metavar="S",
        help="hard per-attempt deadline enforced by killing the worker "
        "(SIGTERM, then SIGKILL); catches hangs the cooperative budget "
        "cannot see (default: 2x --budget-seconds + 30 when a budget "
        "is set, else unlimited)",
    )
    parser.add_argument(
        "--max-rss-mb",
        type=int,
        default=None,
        metavar="MB",
        help="address-space rlimit per worker in MiB; an OOM kills one "
        "worker instead of the campaign (default: unlimited)",
    )
    parser.add_argument(
        "--validate",
        action="store_true",
        help="run the invariant oracles over every successful attempt; "
        "a result that fails them is rejected and retried (degrading) "
        "like any other failure",
    )
    parser.add_argument(
        "--verify-store",
        default=None,
        metavar="DIR",
        dest="verify_store",
        help="verify every checkpoint envelope in DIR (manifest, summary, "
        "results, failures) and exit: 0 = all sound, 1 = corruption found",
    )
    parser.add_argument(
        "--lease-ttl-seconds",
        type=float,
        default=DEFAULT_TTL_SECONDS,
        metavar="S",
        help="staleness threshold for the run-directory supervisor lease; "
        "a lease whose heartbeat is older (or whose owner is dead) is "
        f"reclaimed with a bumped fencing token (default: "
        f"{DEFAULT_TTL_SECONDS:g})",
    )
    parser.add_argument(
        "--inject-fault",
        action="append",
        default=[],
        metavar="ID=KIND[:ATTEMPTS]",
        dest="inject_faults",
        help="testing/CI only: inject a fault into experiment ID for its "
        f"first ATTEMPTS attempts (default 1); kinds: "
        f"{', '.join(INJECTABLE_FAULTS)}",
    )
    parser.add_argument(
        "--stream",
        action="store_true",
        help="generate and simulate traces out-of-core: generators spill "
        "CRC'd shards to disk (bounded memory), simulators consume them "
        "chunk-wise and checkpoint at shard boundaries so a kill "
        "mid-simulation resumes from the last boundary; shards live "
        "under <run-dir>/stream (or a temp directory without --run-dir)",
    )
    parser.add_argument(
        "--shard-refs",
        type=int,
        default=None,
        metavar="N",
        dest="shard_refs",
        help="references per trace shard when --stream is on "
        "(default: 262144); smaller shards mean more frequent "
        "mid-simulation checkpoints at more I/O cost",
    )
    parser.add_argument(
        "--kernel-tier",
        choices=("vector", "oracle"),
        default=None,
        dest="kernel_tier",
        help="simulation kernel tier: 'vector' (default) runs the "
        "self-verifying numpy batch kernels with sampled shadow "
        "verification against the pure-Python oracle; 'oracle' forces "
        "the pure loops everywhere (REPRO_KERNEL_TIER overrides; see "
        "docs/KERNELS.md)",
    )
    parser.add_argument(
        "--kernel-verify",
        type=int,
        default=None,
        metavar="N",
        dest="kernel_verify",
        help="shadow-verify every Nth kernel chunk against the oracle "
        "(1 = every chunk, 0 = never; default 32, first chunk always; "
        "REPRO_KERNEL_VERIFY overrides)",
    )
    parser.add_argument(
        "--quiet",
        action="store_true",
        help="suppress progress output (warnings and errors still print; "
        "equivalent to REPRO_LOG_LEVEL=warning)",
    )
    parser.add_argument(
        "--no-obs",
        action="store_true",
        dest="no_obs",
        help="disable campaign telemetry (metrics.json, spans.jsonl); "
        "REPRO_OBS=0/1 overrides in either direction",
    )
    parser.add_argument(
        "--archive",
        default=None,
        metavar="FILE",
        help="when the campaign finishes, append one attributed "
        "perf-archive row (git SHA, timestamp, hostname, refs/s, "
        "per-phase knee estimates) to FILE; inspect the history with "
        "the `trends` subcommand",
    )
    return parser


def parse_fault_plan(entries: List[str]) -> Dict[str, FaultSpec]:
    """Parse ``--inject-fault ID=KIND[:ATTEMPTS]`` flags into a plan.

    Raises ``ValueError`` with a usage message on malformed entries.
    """
    plan: Dict[str, FaultSpec] = {}
    for entry in entries:
        experiment_id, sep, rest = entry.partition("=")
        if not sep or not experiment_id or not rest:
            raise ValueError(
                f"--inject-fault {entry!r}: expected ID=KIND[:ATTEMPTS]"
            )
        kind, _, attempts_text = rest.partition(":")
        if kind not in INJECTABLE_FAULTS:
            raise ValueError(
                f"--inject-fault {entry!r}: unknown kind {kind!r}; "
                f"choices: {', '.join(INJECTABLE_FAULTS)}"
            )
        fail_attempts = 1
        if attempts_text:
            try:
                fail_attempts = int(attempts_text)
            except ValueError:
                raise ValueError(
                    f"--inject-fault {entry!r}: ATTEMPTS must be an integer"
                )
        plan[experiment_id] = FaultSpec(
            fail_attempts=fail_attempts, **INJECTABLE_FAULTS[kind]
        )
    return plan


def _print_event(event: str, payload: object) -> None:
    info = console.info
    if event == "resume" and isinstance(payload, ExperimentOutcome):
        info(
            f"[{payload.experiment_id} already completed "
            f"({payload.status}); skipping]\n"
        )
    elif event == "interrupted" and isinstance(payload, CampaignReport):
        info(
            f"\n[campaign interrupted: {len(payload.outcomes)} experiment(s) "
            "finished and checkpointed; rerun with --resume to complete "
            "the remainder]"
        )
        if payload.outcomes:
            info(payload.render())
    elif event == "finish" and isinstance(payload, ExperimentOutcome):
        if payload.resumed:
            return
        if payload.succeeded and payload.result is not None:
            info(payload.result.render())
            tag = " (degraded)" if payload.status == "degraded" else ""
            info(
                f"[{payload.experiment_id} completed{tag} in "
                f"{payload.elapsed_seconds:.1f}s]\n"
            )
        else:
            info(f"[{payload.experiment_id} FAILED after "
                 f"{payload.attempts} attempt(s)]")
            for failure in payload.failures:
                info(f"  {failure.summary()}")
            info("")


def validate_command(argv: List[str]) -> int:
    """``python -m repro.experiments validate <run-dir>``.

    Full artifact validation of a campaign run directory: envelope
    checksums, payload schemas, cross-file consistency, the strict
    event-log reader, saved traces, and the invariant oracles over
    every stored result.  Exit 0 on a clean report, 1 on any
    error-severity finding.
    """
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments validate",
        description="Validate every artifact in a campaign run directory.",
    )
    parser.add_argument("run_dir", metavar="RUN_DIR", help="campaign directory")
    parser.add_argument(
        "--json",
        action="store_true",
        help="emit the report as JSON instead of text",
    )
    parser.add_argument(
        "--shallow",
        action="store_true",
        help="skip the invariant oracles over stored results",
    )
    try:
        args = parser.parse_args(argv)
    except SystemExit as exc:
        return int(exc.code or 0)

    from pathlib import Path as _Path

    from repro.validate.artifacts import (
        is_service_root,
        validate_cache_dir,
        validate_run_dir,
        validate_service_root,
    )

    if is_service_root(args.run_dir):
        report = validate_service_root(args.run_dir, deep=not args.shallow)
    elif (_Path(args.run_dir) / "objects").is_dir():
        report = validate_cache_dir(args.run_dir)
    else:
        report = validate_run_dir(args.run_dir, deep=not args.shallow)
    if args.json:
        import json

        print(json.dumps(report.to_dict(), indent=1))
    else:
        print(report.render())
    return 0 if report.ok else 1


def fuzz_command(argv: List[str]) -> int:
    """``python -m repro.experiments fuzz``.

    Deterministic adversarial fuzz of the artifact readers; exit 0
    when every mutated artifact was handled within the readers' typed
    error contracts, 1 otherwise.
    """
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments fuzz",
        description="Fuzz the trace/checkpoint/event readers with "
        "corrupted artifacts.",
    )
    parser.add_argument(
        "--cases", type=int, default=500, metavar="N",
        help="mutated artifacts to generate (default: 500)",
    )
    parser.add_argument(
        "--seed", type=int, default=0, metavar="S",
        help="RNG seed; the campaign is a pure function of it (default: 0)",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="emit the report as JSON instead of text",
    )
    try:
        args = parser.parse_args(argv)
    except SystemExit as exc:
        return int(exc.code or 0)
    if args.cases < 1:
        print("--cases must be >= 1")
        return 2

    from repro.validate.fuzz import run_fuzz

    report = run_fuzz(cases=args.cases, seed=args.seed)
    if args.json:
        import json

        print(json.dumps(report.to_validation_report().to_dict(), indent=1))
    else:
        print(report.render())
    return 0 if report.ok else 1


def chaos_command(argv: List[str]) -> int:
    """``python -m repro.experiments chaos``.

    The kill/disk-fault chaos gate: repeatedly SIGKILL a real quick
    campaign at seeded random points (including inside journal and
    checkpoint writes), resume it, and assert the final run directory
    is audit-clean with a summary byte-identical to an uninterrupted
    reference run.  Exit 0 when every cycle passes, 1 otherwise.
    """
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments chaos",
        description="SIGKILL/resume and disk-fault chaos testing of the "
        "campaign supervisor's crash consistency.",
    )
    parser.add_argument(
        "--cycles", type=int, default=10, metavar="N",
        help="SIGKILL/resume cycles (default: 10)",
    )
    parser.add_argument(
        "--enospc-cycles", type=int, default=1, metavar="N",
        help="additional transient disk-full cycles (default: 1)",
    )
    parser.add_argument(
        "--seed", type=int, default=0, metavar="S",
        help="master seed; kill points are a pure function of it "
        "(default: 0)",
    )
    parser.add_argument(
        "--experiments", default=",".join(chaos_module_defaults()),
        metavar="IDS", help="comma-separated experiment ids for every "
        "campaign under test",
    )
    parser.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="--jobs for the campaigns under test (default: 1)",
    )
    parser.add_argument(
        "--work-dir", default=None, metavar="DIR",
        help="where cycle run directories live (default: a temp dir, "
        "removed when every cycle passes; failing cycles are kept "
        "either way)",
    )
    parser.add_argument(
        "--timeout", type=float, default=300.0, metavar="S",
        help="harness ceiling per uninterrupted launch (default: 300)",
    )
    parser.add_argument(
        "--deep", action="store_true",
        help="run the invariant oracles during each audit (slower)",
    )
    parser.add_argument(
        "--stream", action="store_true",
        help="run every campaign under test with --stream, and aim the "
        "io-kill cycles at the shard/simulator-checkpoint writes so "
        "kills land mid-generation and mid-simulation (needs --jobs 0 "
        "for the planted faults to fire in the supervisor process)",
    )
    parser.add_argument(
        "--shard-refs", type=int, default=None, metavar="N",
        dest="shard_refs",
        help="--shard-refs for the streamed campaigns under test",
    )
    parser.add_argument(
        "--nodes", type=int, default=None, metavar="N",
        help="run every campaign on an N-node dispatch fabric and aim "
        "the chaos at the nodes: seeded node self-kills (mid-attempt "
        "and mid-heartbeat) with every third cycle a partition whose "
        "healed stale results must be fenced; the summary must stay "
        "byte-identical to an uninterrupted --nodes 1 reference "
        "(requires --jobs >= 1)",
    )
    try:
        args = parser.parse_args(argv)
    except SystemExit as exc:
        return int(exc.code or 0)
    if args.cycles < 0 or args.enospc_cycles < 0:
        print("--cycles and --enospc-cycles must be >= 0")
        return 2
    if args.nodes is not None and args.nodes < 1:
        print("--nodes must be >= 1")
        return 2
    if args.nodes is not None and args.jobs < 1:
        print("--nodes requires --jobs >= 1")
        return 2
    if args.cycles + args.enospc_cycles < 1:
        print("nothing to do: --cycles + --enospc-cycles must be >= 1")
        return 2
    if args.shard_refs is not None and not args.stream:
        print("--shard-refs requires --stream")
        return 2
    if args.shard_refs is not None and args.shard_refs < 1:
        print("--shard-refs must be >= 1")
        return 2
    experiments = [e for e in args.experiments.split(",") if e]
    unknown = [e for e in experiments if e not in EXPERIMENTS]
    if unknown:
        print(f"unknown experiments: {unknown}; choices: {list(EXPERIMENTS)}")
        return 2

    from repro.runtime.chaos import run_chaos

    report = run_chaos(
        cycles=args.cycles,
        seed=args.seed,
        experiments=experiments,
        jobs=args.jobs,
        enospc_cycles=args.enospc_cycles,
        work_dir=args.work_dir,
        timeout=args.timeout,
        deep=args.deep,
        stream=args.stream,
        shard_refs=args.shard_refs,
        nodes=args.nodes,
    )
    print(report.render())
    if not report.passed:
        print(f"[failing run directories kept under {report.work_dir}]")
    return 0 if report.passed else 1


def chaos_module_defaults() -> List[str]:
    from repro.runtime.chaos import DEFAULT_EXPERIMENTS

    return list(DEFAULT_EXPERIMENTS)


def verify_store_command(run_dir: str) -> int:
    """``--verify-store DIR``: checksum every checkpoint envelope.

    Understands three layouts: a plain campaign run directory, a
    content-addressed cache root (an ``objects/`` directory of entry
    envelopes), and a whole service root (``campaigns/<tenant>/<id>/``
    run dirs plus a ``cache/``) — every store found under DIR is
    verified and the findings are merged.
    """
    from pathlib import Path

    from repro.service.cache import OBJECTS_DIRNAME, ResultCache
    from repro.service.http import CACHE_DIRNAME, CAMPAIGNS_DIRNAME

    root = Path(run_dir)
    problems: Dict[str, str] = {}
    campaigns_dir = root / CAMPAIGNS_DIRNAME
    if campaigns_dir.is_dir():
        # Service root: verify every per-campaign run dir.
        for campaign_dir in sorted(campaigns_dir.glob("*/*")):
            if not campaign_dir.is_dir():
                continue
            for rel, message in CheckpointStore(campaign_dir).verify_all().items():
                problems[str(campaign_dir.relative_to(root) / rel)] = message
    else:
        problems.update(CheckpointStore(run_dir).verify_all())
    for cache_root in (root / CACHE_DIRNAME, root):
        if (cache_root / OBJECTS_DIRNAME).is_dir():
            for rel, message in ResultCache(cache_root).verify_all().items():
                prefix = cache_root.relative_to(root)
                problems[str(prefix / rel) if str(prefix) != "." else rel] = message
            break
    if not problems:
        print(f"store {run_dir}: every envelope verified")
        return 0
    print(f"store {run_dir}: {len(problems)} corrupt envelope(s)")
    for rel_path, message in sorted(problems.items()):
        print(f"  {rel_path}: {message}")
    return 1


def serve_command(argv: List[str]) -> int:
    """``python -m repro.experiments serve <root>``.

    Run the multi-tenant campaign service (see ``docs/SERVICE.md``):
    an HTTP/JSON API over the full experiment registry with per-tenant
    bounded admission queues, a shared content-addressed result cache,
    a circuit breaker around the worker pool, and crash-consistent
    graceful drain on SIGTERM/SIGINT.  Exit 0 on a clean drain, 1 when
    the drain timed out with work still running, 2 on usage errors.
    """
    import signal
    import threading

    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments serve",
        description="Serve the experiment campaign API over HTTP.",
    )
    parser.add_argument(
        "root", metavar="ROOT",
        help="service root directory (cache, WAL, per-campaign run dirs)",
    )
    parser.add_argument("--host", default="127.0.0.1", metavar="ADDR")
    parser.add_argument(
        "--port", type=int, default=0, metavar="PORT",
        help="0 picks an ephemeral port, recorded in ROOT/service.json "
        "(default: 0)",
    )
    parser.add_argument(
        "--queue-capacity", type=int, default=8, metavar="N",
        help="queued submissions per tenant before 429 (default: 8)",
    )
    parser.add_argument(
        "--max-queued", type=int, default=64, metavar="N",
        help="queued submissions across all tenants before 503 (default: 64)",
    )
    parser.add_argument(
        "--dispatchers", type=int, default=1, metavar="N",
        help="concurrent campaign dispatch threads (default: 1)",
    )
    parser.add_argument(
        "--jobs", type=int, default=0, metavar="N",
        help="engine --jobs per campaign; 0 = in-process (default: 0)",
    )
    parser.add_argument(
        "--nodes", type=int, default=None, metavar="N",
        help="run campaigns on a shared N-node dispatch fabric "
        "(fenced assignment, failover re-dispatch, hedging; requires "
        "--jobs >= 1; default: no fabric)",
    )
    parser.add_argument(
        "--quick", action="store_true",
        help="force every campaign to the quick parameterization",
    )
    parser.add_argument(
        "--max-attempts", type=int, default=3, metavar="N",
        help="attempts per experiment (default: 3)",
    )
    parser.add_argument(
        "--default-deadline-seconds", type=float, default=None, metavar="S",
        help="deadline for submissions that name none (default: none)",
    )
    parser.add_argument(
        "--breaker-threshold", type=int, default=3, metavar="N",
        help="consecutive worker failures that trip the breaker (default: 3)",
    )
    parser.add_argument(
        "--breaker-cooldown-seconds", type=float, default=30.0, metavar="S",
        help="open-state cooldown before the half-open probe (default: 30)",
    )
    parser.add_argument(
        "--drain-timeout-seconds", type=float, default=None, metavar="S",
        help="how long the drain waits for in-flight campaigns "
        "(default: unbounded)",
    )
    parser.add_argument("--quiet", action="store_true")
    parser.add_argument("--no-obs", action="store_true", dest="no_obs")
    try:
        args = parser.parse_args(argv)
    except SystemExit as exc:
        return int(exc.code or 0)
    if args.queue_capacity < 1 or args.max_queued < args.queue_capacity:
        print("--max-queued must be >= --queue-capacity >= 1")
        return 2

    from repro.service.http import CampaignService, ServiceConfig

    if args.quiet:
        console.set_quiet(True)
    install_from_env()
    obs_metrics.set_obs_enabled(not args.no_obs)
    if obs_metrics.obs_enabled():
        obs_metrics.get_registry().reset()

    try:
        config = ServiceConfig(
            host=args.host,
            port=args.port,
            queue_capacity=args.queue_capacity,
            max_queued=args.max_queued,
            dispatchers=args.dispatchers,
            jobs=args.jobs,
            nodes=args.nodes,
            quick=args.quick,
            max_attempts=args.max_attempts,
            default_deadline_seconds=args.default_deadline_seconds,
            breaker_threshold=args.breaker_threshold,
            breaker_cooldown_seconds=args.breaker_cooldown_seconds,
        )
    except ValueError as exc:
        print(f"serve: {exc}")
        return 2
    service = CampaignService(
        args.root, EXPERIMENTS, quick_overrides=QUICK_OVERRIDES, config=config
    )

    stop = threading.Event()
    for signum in (signal.SIGTERM, signal.SIGINT):
        signal.signal(signum, lambda *_: stop.set())
    try:
        service.start()
    except (LeaseHeldError, JournalCorruptError) as exc:
        print(f"serve: {exc}")
        return 1
    host, port = service.address
    console.info(f"[service listening on http://{host}:{port} — root {args.root}]")
    stop.wait()
    console.info("[drain: admissions closed; finishing in-flight campaigns]")
    clean = service.drain(timeout=args.drain_timeout_seconds)
    console.info("[drain complete]" if clean else "[drain timed out]")
    return 0 if clean else 1


def status_command(argv: List[str]) -> int:
    """``python -m repro.experiments status <run-dir>``.

    One-shot (or ``--follow``) live view of a campaign run directory:
    per-experiment state, attempt/retry counts, throughput, and ETA,
    reconstructed read-only from ``events.jsonl``, ``journal.wal``,
    ``summary.json``, the supervisor lease, and ``metrics.json`` —
    torn tails and missing files degrade the view, never crash it.
    Exit 0 whenever the directory could be inspected, 2 on usage
    errors.
    """
    import time as _time

    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments status",
        description="Show live campaign status for a run directory.",
    )
    parser.add_argument("run_dir", metavar="RUN_DIR", help="campaign directory")
    parser.add_argument(
        "--follow",
        action="store_true",
        help="keep re-rendering until the campaign is no longer running",
    )
    parser.add_argument(
        "--interval",
        type=float,
        default=2.0,
        metavar="S",
        help="refresh period with --follow (default: 2.0)",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="emit the status as JSON instead of text",
    )
    try:
        args = parser.parse_args(argv)
    except SystemExit as exc:
        return int(exc.code or 0)
    if args.interval <= 0:
        print("--interval must be positive")
        return 2
    from pathlib import Path

    if not Path(args.run_dir).is_dir():
        print(f"status: {args.run_dir} is not a directory")
        return 2

    from repro.obs.status import (
        load_service_status,
        load_status,
        render_service_status,
        render_status,
    )
    from repro.validate.artifacts import is_service_root

    if is_service_root(args.run_dir):
        # Multi-tenant service root: render the tenant/cache/breaker
        # rollup instead of the single-campaign view.
        try:
            while True:
                rollup = load_service_status(args.run_dir)
                if args.json:
                    import json

                    print(json.dumps(rollup, indent=1, sort_keys=True))
                else:
                    print(render_service_status(rollup))
                busy = rollup["queue_depth_total"] or any(
                    c["state"] == "running" for c in rollup["campaigns"]
                )
                if not args.follow or not busy:
                    return 0
                _time.sleep(args.interval)
                print()
        except BrokenPipeError:
            sys.stderr.close()
            return 0

    try:
        while True:
            status = load_status(args.run_dir)
            if args.json:
                import json

                print(json.dumps(status.to_dict(), indent=1, sort_keys=True))
            else:
                print(render_status(status))
            if not args.follow or status.state != "running":
                return 0
            _time.sleep(args.interval)
            print()
    except BrokenPipeError:
        # `status ... | head` closing the pipe is not an error.
        sys.stderr.close()
        return 0


def report_command(argv: List[str]) -> int:
    """``python -m repro.experiments report <run-dir>``.

    Static post-hoc campaign report: timings, retry/fault/validation
    summary, miss-rate result tables, metrics rollup, and slowest
    spans, as markdown (default), HTML (``--html``), or JSON
    (``--json``).  Exit 0 whenever the report could be produced, 2 on
    usage errors.
    """
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments report",
        description="Render a static report for a campaign run directory.",
    )
    parser.add_argument("run_dir", metavar="RUN_DIR", help="campaign directory")
    parser.add_argument(
        "--html",
        action="store_true",
        help="emit a self-contained HTML page instead of markdown",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="emit the machine-readable status/tally JSON instead",
    )
    parser.add_argument(
        "-o",
        "--output",
        default=None,
        metavar="FILE",
        help="write the report to FILE instead of stdout",
    )
    try:
        args = parser.parse_args(argv)
    except SystemExit as exc:
        return int(exc.code or 0)
    if args.html and args.json:
        print("--html and --json are mutually exclusive")
        return 2
    from pathlib import Path

    if not Path(args.run_dir).is_dir():
        print(f"report: {args.run_dir} is not a directory")
        return 2

    from repro.obs.report import (
        render_report,
        render_report_html,
        render_service_report,
        render_service_report_html,
        report_to_json,
        service_report_to_json,
    )
    from repro.validate.artifacts import is_service_root

    if is_service_root(args.run_dir):
        if args.json:
            text = service_report_to_json(args.run_dir)
        elif args.html:
            text = render_service_report_html(args.run_dir)
        else:
            text = render_service_report(args.run_dir)
    elif args.json:
        text = report_to_json(args.run_dir)
    elif args.html:
        text = render_report_html(args.run_dir)
    else:
        text = render_report(args.run_dir)
    try:
        if args.output is not None:
            Path(args.output).write_text(text, encoding="utf-8")
            print(f"report written to {args.output}")
        else:
            print(text)
    except BrokenPipeError:
        # `report ... | head` closing the pipe is not an error.
        sys.stderr.close()
    return 0


def trends_command(argv: List[str]) -> int:
    """``python -m repro.experiments trends <archive>``.

    Robust regression detection over a ``perf-archive.jsonl`` history:
    for every series (campaign or benchmark) the newest row is compared
    against the median of its history, with a MAD-scaled noise band so
    variable hardware does not flag spuriously.  Exit 0 when no series
    regressed (including the first-row case with no history yet), 1
    when any series is flagged, 2 on usage errors.
    """
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments trends",
        description="Detect perf regressions across archived campaign "
        "and benchmark rows.",
    )
    parser.add_argument(
        "archive", metavar="ARCHIVE", help="perf-archive.jsonl path"
    )
    parser.add_argument(
        "--metric",
        default="refs_per_second",
        metavar="NAME",
        help="row field to trend (default: refs_per_second)",
    )
    parser.add_argument(
        "--threshold-pct",
        type=float,
        default=10.0,
        metavar="PCT",
        help="minimum drop vs the series median to flag (default: 10; "
        "noisy series need more, by their own MAD band)",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="emit machine-readable findings instead of the table",
    )
    try:
        args = parser.parse_args(argv)
    except SystemExit as exc:
        return int(exc.code or 0)
    if args.threshold_pct < 0:
        print("--threshold-pct must be >= 0")
        return 2
    if not Path(args.archive).is_file():
        print(f"trends: {args.archive} does not exist")
        return 2

    from repro.obs.archive import detect_regressions, render_trends, scan_archive

    scan = scan_archive(args.archive)
    findings = detect_regressions(
        scan.rows, metric=args.metric, threshold_pct=args.threshold_pct
    )
    if args.json:
        import json

        print(
            json.dumps(
                {
                    "archive": args.archive,
                    "metric": args.metric,
                    "rows": len(scan.rows),
                    "damaged_lines": scan.damaged,
                    "torn_tail": scan.torn_tail,
                    "findings": findings,
                },
                indent=1,
                sort_keys=True,
            )
        )
    else:
        print(render_trends(findings))
        if scan.damaged:
            print(
                f"note: {len(scan.damaged)} damaged archive line(s) "
                "skipped (run `validate` for details)"
            )
        if scan.torn_tail:
            print("note: archive has a torn tail (interrupted append)")
    return 1 if any(f.get("regression") for f in findings) else 0


#: Subcommand names dispatched before experiment-id parsing.  Safe
#: because they can never collide with experiment ids (asserted by the
#: CLI test suite).
SUBCOMMANDS = {
    "validate": validate_command,
    "fuzz": fuzz_command,
    "chaos": chaos_command,
    "status": status_command,
    "report": report_command,
    "serve": serve_command,
    "trends": trends_command,
}


def main(argv: Optional[List[str]] = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if argv and argv[0] in SUBCOMMANDS:
        return SUBCOMMANDS[argv[0]](argv[1:])
    parser = build_parser()
    try:
        args = parser.parse_args(argv)
    except SystemExit as exc:
        return int(exc.code or 0)

    if args.list_ids:
        for experiment_id in EXPERIMENTS:
            print(experiment_id)
        return 0

    if args.verify_store is not None:
        return verify_store_command(args.verify_store)

    if args.budget_seconds is not None and args.budget_seconds <= 0:
        print("--budget-seconds must be positive")
        return 2
    if args.max_attempts < 1:
        print("--max-attempts must be >= 1")
        return 2
    if args.jobs < 0:
        print("--jobs must be >= 0")
        return 2
    if args.hard_timeout_seconds is not None and args.hard_timeout_seconds <= 0:
        print("--hard-timeout-seconds must be positive")
        return 2
    if args.nodes is not None and args.nodes < 1:
        print("--nodes must be >= 1")
        return 2
    if args.nodes is not None and args.jobs < 1:
        print("--nodes requires --jobs >= 1 (the in-process serial "
              "backend cannot be sharded across nodes)")
        return 2
    if args.max_rss_mb is not None and args.max_rss_mb <= 0:
        print("--max-rss-mb must be positive")
        return 2
    if args.shard_refs is not None and not args.stream:
        print("--shard-refs requires --stream")
        return 2
    if args.shard_refs is not None and args.shard_refs < 1:
        print("--shard-refs must be >= 1")
        return 2
    if args.kernel_verify is not None and args.kernel_verify < 0:
        print("--kernel-verify must be >= 0")
        return 2
    if args.archive is not None and not (args.run_dir or args.resume):
        print("--archive requires --run-dir or --resume (the archive row "
              "is built from the run directory's artifacts)")
        return 2
    try:
        fault_plan = parse_fault_plan(args.inject_faults)
    except ValueError as exc:
        print(exc)
        return 2

    wanted = args.experiments or list(EXPERIMENTS)
    unknown = [name for name in wanted if name not in EXPERIMENTS]
    if unknown:
        print(f"unknown experiments: {unknown}; choices: {list(EXPERIMENTS)}")
        return 2

    if args.lease_ttl_seconds <= 0:
        print("--lease-ttl-seconds must be positive")
        return 2

    if args.quiet:
        console.set_quiet(True)

    # Arm the deterministic I/O fault injector when REPRO_IOFAULT is
    # set (testing and the chaos harness only; a no-op otherwise).
    install_from_env()

    run_dir = args.resume or args.run_dir
    store = CheckpointStore(run_dir) if run_dir else None

    # Out-of-core trace streaming: install the ambient configuration
    # (module global + environment, so worker subprocesses inherit it).
    # Under --run-dir/--resume the shards and simulator checkpoints
    # live inside the run directory, which keeps them on the same
    # filesystem as the journal and lets resume find the mid-simulation
    # snapshots of a killed attempt.
    if args.stream:
        from repro.mem.shards import configure_streaming

        if store is not None:
            stream_dir = store.run_dir / "stream"
        else:
            stream_dir = Path(
                tempfile.mkdtemp(prefix="repro-stream-")
            )
        configure_streaming(stream_dir, shard_refs=args.shard_refs)

    # Self-verifying simulation kernels: install the ambient policy
    # (module global + environment, inherited by workers and dispatch
    # nodes).  Divergence repro bundles land inside the run directory
    # so `validate` can audit them.
    from repro.mem.kernels import configure_kernels

    configure_kernels(
        tier=args.kernel_tier,
        verify_every=args.kernel_verify,
        bundle_dir=(store.run_dir / "kernel-bundles") if store else None,
    )

    # Campaign telemetry: on by default, off with --no-obs; the
    # REPRO_OBS environment variable overrides in either direction.
    obs_metrics.set_obs_enabled(not args.no_obs)
    obs_on = obs_metrics.obs_enabled()
    if obs_on:
        obs_metrics.get_registry().reset()
    span_writer = None
    if store is not None and obs_on:
        try:
            span_writer = obs_tracing.SpanWriter(
                store.run_dir / obs_tracing.SPANS_FILENAME
            )
        except OSError as exc:
            console.warning(f"[obs] spans.jsonl unavailable: {exc}")
    if obs_on:
        obs_tracing.configure(writer=span_writer)

    # Temporal working-set telemetry: per-chunk rows land in
    # <run_dir>/timeline.jsonl (CRC-framed, same torn-tail discipline
    # as events.jsonl); workers inherit the file via REPRO_TIMELINE.
    from repro.obs import timeline as obs_timeline

    if store is not None and obs_on:
        try:
            obs_timeline.configure_timeline(
                store.run_dir / obs_timeline.TIMELINE_FILENAME,
                prepare=True,
            )
        except OSError as exc:
            console.warning(f"[obs] timeline.jsonl unavailable: {exc}")

    # Crash consistency for checkpointed campaigns: replay the journal
    # (truncating any torn tail), take the supervisor lease with a
    # bumped fencing token, and hand both to the engine.
    recovery = None
    lease = None
    journal = None
    if store is not None:
        try:
            recovery = recover(store.run_dir)
        except JournalCorruptError as exc:
            print(f"journal unusable: {exc}")
            print(
                "refusing to run against a corrupt journal; inspect "
                f"{store.run_dir / JOURNAL_FILENAME} (validate subcommand), "
                "then delete it to fall back to checkpoint-presence resume"
            )
            return 1
        try:
            lease = Lease.acquire(
                store.run_dir,
                ttl_seconds=args.lease_ttl_seconds,
                token_floor=recovery.last_token if recovery else 0,
            )
        except LeaseHeldError as exc:
            print(f"lease refused: {exc}")
            return 1
        lease.start_heartbeat()
        journal = Journal(
            store.run_dir / JOURNAL_FILENAME, token=lease.token
        )
        if recovery is not None:
            if not recovery.clean:
                print(recovery.render())
            journal.append("recovered", **recovery.to_dict())

    # Multi-node dispatch: install the fabric through the engine's
    # pool-factory seam.  The fabric's registry snapshot, node logs,
    # and per-campaign dispatch.wal live in the run directory (or a
    # temp directory for an ephemeral run).
    pool_factory = None
    if args.nodes is not None:
        from repro.service.dispatch import (
            DispatchPool,
            FabricConfig,
            NodeFabric,
        )

        fabric_dir = (
            store.run_dir
            if store is not None
            else Path(tempfile.mkdtemp(prefix="repro-fabric-"))
        )
        fabric_config = FabricConfig(nodes=args.nodes)

        def pool_factory(engine):
            fabric = NodeFabric(
                fabric_dir,
                config=fabric_config,
                on_event=lambda event, experiment_id, detail: (
                    engine.log_event(event, experiment_id, **detail)
                ),
            )
            return DispatchPool(engine, fabric)

    event_log = EventLog(store.events_path) if store is not None else None
    engine = CampaignEngine(
        EXPERIMENTS,
        quick_overrides=QUICK_OVERRIDES,
        config=EngineConfig(
            quick=args.quick,
            budget_seconds=args.budget_seconds,
            max_attempts=args.max_attempts,
            jobs=args.jobs,
            validate=args.validate,
            hard_timeout_seconds=args.hard_timeout_seconds,
            max_rss_mb=args.max_rss_mb,
        ),
        store=store,
        faults=FaultInjector(plan=fault_plan) if fault_plan else None,
        on_event=_print_event,
        event_log=event_log,
        journal=journal,
        recovery=recovery,
        pool_factory=pool_factory,
    )
    try:
        report = engine.run(wanted)
    except KeyboardInterrupt:
        # The engine has already killed workers, flushed completed
        # outcomes, written the partial summary, and emitted the
        # interrupted event (printed above).
        return 1
    finally:
        if obs_on:
            obs_tracing.shutdown()  # closes the span writer too
        obs_timeline.configure_timeline(None)
        if event_log is not None:
            event_log.close()
        if journal is not None:
            journal.close()
        if lease is not None:
            lease.release()
    if args.archive is not None and store is not None:
        # Cross-campaign perf archive: one attributed row per finished
        # campaign.  Failure to append is a warning, never a campaign
        # failure — the simulation results are already checkpointed.
        from repro.obs import archive as obs_archive

        try:
            appended = obs_archive.append_rows(
                args.archive, obs_archive.campaign_rows(store.run_dir)
            )
            console.info(
                f"[archive] {appended} row(s) appended to {args.archive}"
            )
        except (OSError, ValueError) as exc:
            console.warning(f"[archive] append failed: {exc}")
    if report.degraded_ids or report.failed_ids:
        print(report.render())
    return 0 if report.succeeded else 1


def cli() -> int:
    """Console-script entry point (``repro-experiments``)."""
    return main(sys.argv[1:])


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
