"""Experiment drivers: one module per table/figure of the paper.

Each module exposes ``run(...)`` returning a structured
:class:`~repro.experiments.runner.ExperimentResult` and a ``main()``
that prints the same rows/series the paper reports.

| Module | Paper artifact |
|---|---|
| ``fig2_lu`` | Figure 2 — LU miss rates vs cache size |
| ``fig4_cg`` | Figure 4 — CG miss rates vs cache size |
| ``fig5_fft`` | Figure 5 — FFT miss rates vs cache size |
| ``fig6_barneshut`` | Figure 6 — Barnes-Hut working sets |
| ``fig7_volrend`` | Figure 7 — volume rendering working sets |
| ``table1`` | Table 1 — application growth rates |
| ``table2`` | Table 2 — working set sizes & desirable grain sizes |
| ``grain_sweep`` | Sections 3.3-7.3 — granularity variants |
| ``assoc_study`` | Section 6.4 — direct-mapped vs fully associative |

Extension experiments grounded in the paper's side claims:

| Module | Claim exercised |
|---|---|
| ``prefetch_study`` | per-application prefetchability (Sections 3.2-7.2) |
| ``hierarchy_design`` | sizing cache-hierarchy levels from working sets |
| ``cost_model`` | the Section 8 equal-cost-split conjecture |
| ``scaling_study`` | MC/TC working-set and grain trajectories |
| ``cg_blocking`` | Section 4.2's constant-lev1WS-by-blocking claim |
| ``bh_phases`` | Section 6.4's tree-build/moments contention caveat |
| ``cg_unstructured`` | Section 4.3's unstructured-problem penalties |
| ``all_cache`` | Section 4.2's no-DRAM (all-cache) design-point aside |
| ``volrend_stealing`` | Section 7.3's ray-stealing-at-fine-grain judgement |
| ``line_size_study`` | spatial locality: miss rate vs cache-line size |

``python -m repro.experiments`` runs everything.
"""

from repro.experiments.runner import ExperimentResult, SeriesComparison

__all__ = ["ExperimentResult", "SeriesComparison"]
