"""Cache-line (block) size study.

The paper measures misses at double-word granularity to isolate
*inherent* reuse (Section 2.2).  Real caches transfer multi-word lines
and convert spatial locality into hits.  This experiment sweeps the
line size at fixed capacity for every application trace and reports the
miss-rate improvement per doubling — high for the streaming kernels
(LU, CG, FFT sweep contiguous data), bounded for Barnes-Hut (once the
line covers one cell record, neighbouring records are unrelated), and
strong for volume rendering (2-byte voxels pack 16 to a 32-byte line
along the z axis).
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.apps.barnes_hut.bodies import plummer_model
from repro.apps.barnes_hut.trace import BarnesHutTraceGenerator
from repro.apps.cg.trace import CGTraceGenerator
from repro.apps.fft.trace import FFTTraceGenerator
from repro.apps.lu.trace import LUTraceGenerator
from repro.apps.volrend.trace import VolrendTraceGenerator
from repro.apps.volrend.volume import synthetic_head
from repro.core.report import format_table
from repro.experiments.runner import ExperimentResult, SeriesComparison
from repro.mem.stack_distance import StackDistanceProfiler
from repro.mem.trace import Trace
from repro.units import KB


def _traces() -> Dict[str, Trace]:
    lu = LUTraceGenerator(n=64, block_size=8, num_processors=4)
    cg = CGTraceGenerator(n=64, num_processors=4)
    fft = FFTTraceGenerator(n=2**12, num_processors=4, internal_radix=8)
    bh = BarnesHutTraceGenerator(
        plummer_model(256, seed=21), theta=1.0, num_processors=4
    )
    vr = VolrendTraceGenerator(synthetic_head(32), num_processors=4, image_size=32)
    return {
        "LU": lu.trace_for_processor(0),
        "CG": cg.trace_for_processor(0, iterations=2),
        "FFT": fft.trace_for_processor(0),
        "Barnes-Hut": bh.trace_for_processor(0),
        "Volume Rendering": vr.trace_for_processor(0, frames=1),
    }


def run(
    cache_bytes: int = 16 * KB,
    line_sizes: Sequence[int] = (8, 16, 32, 64, 128),
) -> ExperimentResult:
    """Miss rate vs line size at fixed capacity, per application."""
    result = ExperimentResult(
        experiment_id="line-size",
        title=f"Read miss rate vs cache line size at {cache_bytes // 1024} KB capacity",
    )
    rows: List[List[object]] = []
    for name, trace in _traces().items():
        rates = []
        for line in line_sizes:
            profile = StackDistanceProfiler(
                block_size=line, count_reads_only=True
            ).profile(trace)
            rates.append(profile.miss_rate_at(cache_bytes))
        rows.append([name] + [f"{r:.4f}" for r in rates])
        # Improvement from 8-byte to 64-byte lines.
        reduction = rates[0] / rates[line_sizes.index(64)] if rates[
            line_sizes.index(64)
        ] else float("inf")
        result.comparisons.append(
            SeriesComparison(
                f"{name}: miss reduction, 8B -> 64B lines",
                None,
                reduction,
                "x",
            )
        )
        # At fixed capacity, longer lines trade spatial prefetch against
        # fewer resident lines: scattered-access applications have an
        # interior optimum.
        best_line = line_sizes[min(range(len(rates)), key=rates.__getitem__)]
        result.comparisons.append(
            SeriesComparison(
                f"{name}: best line size",
                None,
                float(best_line),
                "bytes",
            )
        )
    result.tables["miss rate vs line size"] = format_table(
        ["Application"] + [f"{line} B" for line in line_sizes], rows
    )
    streaming = min(
        result.comparison(f"{n}: miss reduction, 8B -> 64B lines").measured_value
        for n in ("LU", "CG", "FFT")
    )
    irregular = result.comparison(
        "Barnes-Hut: miss reduction, 8B -> 64B lines"
    ).measured_value
    result.comparisons.append(
        SeriesComparison(
            "streaming vs Barnes-Hut line-size benefit",
            None,
            streaming / irregular,
            "x",
            note="spatial locality is another axis of the regular/"
            "irregular split",
        )
    )
    result.notes.append(
        "capacity is held at the post-important-working-set plateau so"
        " the comparison isolates spatial locality, not capacity"
    )
    result.notes.append(
        "the streaming kernels improve ~2x per line doubling all the way"
        " to 128 B; Barnes-Hut and volume rendering peak at ~32 B lines"
        " and then degrade as fewer lines fit — the line-size analogue of"
        " the paper's regular/irregular dichotomy"
    )
    return result


def main() -> None:
    from repro.obs.console import info

    info(run().render())


if __name__ == "__main__":
    main()
