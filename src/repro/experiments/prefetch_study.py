"""Prefetchability study: quantifying the paper's predictability claims.

The paper classifies each application's post-working-set misses by how
easily they could be prefetched: LU "predictable enough to be easily
prefetched", FFT "easily prefetched", CG's structure "very regular ...
communication latencies can be easily hidden", versus Barnes-Hut "not
predictable enough" and volume rendering "not regular enough".

We measure the fraction of read misses a classic stride prefetcher
covers at each application's post-lev1 cache size.  The regular kernels
should score high; the irregular ones low.
"""

from __future__ import annotations

from typing import Dict

from repro.apps.barnes_hut.bodies import plummer_model
from repro.apps.barnes_hut.trace import BarnesHutTraceGenerator
from repro.apps.cg.trace import CGTraceGenerator
from repro.apps.fft.trace import FFTTraceGenerator
from repro.apps.lu.trace import LUTraceGenerator
from repro.apps.volrend.trace import VolrendTraceGenerator
from repro.apps.volrend.volume import synthetic_head
from repro.core.report import format_table
from repro.experiments.runner import ExperimentResult, SeriesComparison
from repro.mem.prefetch import measure_prefetch_coverage
from repro.units import KB

#: Paper's qualitative predictions (Sections 3.2-7.2).
PAPER_PREDICTION = {
    "LU": "easily prefetched",
    "CG": "easily hidden (regular)",
    "FFT": "easily prefetched",
    "Barnes-Hut": "not predictable enough",
    "Volume Rendering": "not regular enough",
}

#: The regular three should exceed the irregular two; Barnes-Hut's
#: pointer-chasing tree walk is the clearest negative case, while
#: volume rendering sits in between (strided within a frame but
#: data-dependent through early termination and octree skips).
COVERAGE_SPLIT = 0.5


def _traces() -> Dict[str, tuple]:
    """(trace, post-lev1 cache bytes) per application, reduced scale."""
    lu = LUTraceGenerator(n=64, block_size=8, num_processors=4)
    lu_trace = lu.trace_for_processor(0)
    cg = CGTraceGenerator(n=64, num_processors=4)
    cg_trace = cg.trace_for_processor(0, iterations=2)
    fft = FFTTraceGenerator(n=2**12, num_processors=4, internal_radix=8)
    fft_trace = fft.trace_for_processor(0)
    bh = BarnesHutTraceGenerator(
        plummer_model(256, seed=4), theta=1.0, num_processors=4
    )
    bh_trace = bh.trace_for_processor(0)
    vr = VolrendTraceGenerator(synthetic_head(32), num_processors=4, image_size=32)
    vr_trace = vr.trace_for_processor(0, frames=1)
    return {
        "LU": (lu_trace, 2 * KB),
        "CG": (cg_trace, 4 * KB),
        "FFT": (fft_trace, 2 * KB),
        "Barnes-Hut": (bh_trace, 2 * KB),
        "Volume Rendering": (vr_trace, 2 * KB),
    }


def run(degree: int = 4) -> ExperimentResult:
    """Measure stride-prefetch coverage for all five applications."""
    result = ExperimentResult(
        experiment_id="prefetch",
        title="Stride-prefetch coverage of post-working-set misses",
    )
    rows = []
    for name, (trace, cache_bytes) in _traces().items():
        stats = measure_prefetch_coverage(trace, cache_bytes, degree=degree)
        rows.append(
            [
                name,
                f"{stats.misses:,}",
                f"{stats.coverage:.1%}",
                PAPER_PREDICTION[name],
            ]
        )
        result.comparisons.append(
            SeriesComparison(
                f"{name}: stride coverage",
                None,
                stats.coverage,
                "fraction of read misses",
                note=PAPER_PREDICTION[name],
            )
        )
    result.tables["prefetch coverage"] = format_table(
        ["Application", "Read misses", "Stride coverage", "Paper's claim"], rows
    )
    regular = [
        result.comparison(f"{n}: stride coverage").measured_value
        for n in ("LU", "CG", "FFT")
    ]
    irregular = [
        result.comparison(f"{n}: stride coverage").measured_value
        for n in ("Barnes-Hut", "Volume Rendering")
    ]
    result.comparisons.append(
        SeriesComparison(
            "regular-vs-irregular separation",
            None,
            min(regular) - max(irregular),
            "coverage gap",
            note="positive gap confirms the paper's dichotomy",
        )
    )
    result.notes.append(
        "prefetcher: region-based stride predictor, degree"
        f" {degree} — the sequential/stride hardware of the paper's era"
    )
    return result


def main() -> None:
    from repro.obs.console import info

    info(run().render())


if __name__ == "__main__":
    main()
