"""Figure 2: miss rates for dense LU factorization, n=10,000, P=1024.

Reproduces the analytical curves at full scale for block sizes B = 4,
16, 64 (exactly the paper's method — Section 3.2 derives the curve
analytically) and validates the model with a trace-driven simulation of
a reduced problem, just as the paper "use[s] simulation to confirm our
estimates for some examples".
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.apps.lu.model import LUModel
from repro.apps.lu.trace import LUTraceGenerator
from repro.core.curves import MissRateCurve
from repro.core.knee import match_knee
from repro.experiments.runner import ExperimentResult, SeriesComparison
from repro.mem.stack_distance import default_capacity_grid, profile_trace
from repro.units import KB

#: Paper-reported working-set sizes for B=16 (Section 3.2).
PAPER_LEV1_BYTES = 260.0
PAPER_LEV2_BYTES = 2200.0
PAPER_LEV3_BYTES = 80.0 * KB


def run(
    n: int = 10_000,
    num_processors: int = 1024,
    block_sizes: tuple = (4, 16, 64),
    validate_n: Optional[int] = 96,
    validate_block: int = 8,
    validate_processors: int = 4,
) -> ExperimentResult:
    """Regenerate Figure 2 (and the trace validation).

    Args:
        n, num_processors, block_sizes: The full-scale analytical sweep.
        validate_n: Reduced matrix order for trace validation (None
            skips the simulation).
        validate_block, validate_processors: Reduced-problem shape.
    """
    result = ExperimentResult(
        experiment_id="fig2",
        title=f"LU miss rates, n={n}, PE={num_processors}",
    )
    grid = default_capacity_grid(min_bytes=64, max_bytes=4 * 1024 * 1024)
    for block in block_sizes:
        model = LUModel(n=n, block_size=block, num_processors=num_processors)
        result.curves.append(
            MissRateCurve.from_model(
                model.miss_rate_model,
                grid,
                metric="misses_per_flop",
                label=f"B={block}",
            )
        )

    model16 = LUModel(n=n, block_size=16, num_processors=num_processors)
    result.comparisons.extend(
        [
            SeriesComparison(
                "lev1WS (two block columns, B=16)",
                PAPER_LEV1_BYTES,
                model16.lev1_bytes(),
                "bytes",
            ),
            SeriesComparison(
                "lev2WS (one block, B=16)",
                PAPER_LEV2_BYTES,
                model16.lev2_bytes(),
                "bytes",
            ),
            SeriesComparison(
                "lev3WS (pivot row/column, B=16)",
                PAPER_LEV3_BYTES,
                model16.lev3_bytes(),
                "bytes",
            ),
            SeriesComparison(
                "miss rate after lev2WS",
                1.0 / 16,
                model16.miss_rate_model(model16.lev2_bytes()),
                "misses/FLOP",
                note="paper: 'roughly 1/B'",
            ),
        ]
    )

    if validate_n:
        gen = LUTraceGenerator(
            n=validate_n,
            block_size=validate_block,
            num_processors=validate_processors,
        )
        trace = gen.trace_for_processor(0)
        profile = profile_trace(trace)
        small_grid = default_capacity_grid(min_bytes=64, max_bytes=256 * 1024)
        measured = MissRateCurve.from_profile(
            profile,
            small_grid,
            metric="misses_per_flop",
            flops=gen.flops,
            label=f"simulated B={validate_block} (n={validate_n}, P={validate_processors})",
        )
        result.curves.append(measured)
        small_model = LUModel(
            n=validate_n,
            block_size=validate_block,
            num_processors=validate_processors,
        )
        knees = measured.knees(rel_threshold=0.2)
        lev2_knee = match_knee(knees, small_model.lev2_bytes())
        result.comparisons.append(
            SeriesComparison(
                "simulated lev2WS knee (reduced problem)",
                small_model.lev2_bytes(),
                lev2_knee.capacity_bytes,
                "bytes",
                note="model prediction vs trace-measured knee",
            )
        )
        result.comparisons.append(
            SeriesComparison(
                "simulated floor vs communication rate",
                small_model.communication_miss_rate(),
                measured.floor,
                "misses/FLOP",
            )
        )
        result.notes.append(
            "simulated floor includes the ~1/(2B) capacity plateau until the"
            " lev4WS fits; beyond it only communication misses remain"
        )
    result.notes.append(
        "the important lev2WS depends only on B: a small constant cache"
        " suffices for any problem or machine size (Section 3.2)"
    )
    return result


def main() -> None:
    from repro.obs.console import info

    info(run().render())


if __name__ == "__main__":
    main()
