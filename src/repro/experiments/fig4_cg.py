"""Figure 4: miss rates for CG, 4000x4000 grid, P=1024 (plus the 3-D
variant, 225^3 on 1024 processors).

Analytical curves at full scale; trace validation on a reduced grid.
"""

from __future__ import annotations

from typing import Optional

from repro.apps.cg.model import CGModel
from repro.apps.cg.trace import CGTraceGenerator
from repro.core.curves import MissRateCurve
from repro.core.knee import match_knee
from repro.experiments.runner import ExperimentResult, SeriesComparison
from repro.mem.stack_distance import default_capacity_grid, profile_trace
from repro.units import KB

#: Paper-reported lev1WS sizes for the prototypical problems (Section 4.2).
PAPER_LEV1_2D = 5.0 * KB
PAPER_LEV1_3D = 18.0 * KB


def run(
    n_2d: int = 4000,
    n_3d: int = 225,
    num_processors: int = 1024,
    validate_n: Optional[int] = 128,
    validate_processors: int = 4,
    validate_iterations: int = 2,
) -> ExperimentResult:
    """Regenerate Figure 4 (2-D and 3-D CG miss-rate curves)."""
    result = ExperimentResult(
        experiment_id="fig4",
        title=f"CG miss rates, {n_2d}x{n_2d} grid, P={num_processors}",
    )
    grid = default_capacity_grid(min_bytes=256, max_bytes=32 * 1024 * 1024)
    model_2d = CGModel(n=n_2d, num_processors=num_processors, dims=2)
    model_3d = CGModel(n=n_3d, num_processors=num_processors, dims=3)
    result.curves.append(
        MissRateCurve.from_model(
            model_2d.miss_rate_model, grid, metric="misses_per_flop", label="2-D grid"
        )
    )
    result.curves.append(
        MissRateCurve.from_model(
            model_3d.miss_rate_model, grid, metric="misses_per_flop", label="3-D grid"
        )
    )
    result.comparisons.extend(
        [
            SeriesComparison(
                "lev1WS, 2-D prototypical",
                PAPER_LEV1_2D,
                model_2d.lev1_bytes(),
                "bytes",
                note="paper counts x values of three adjacent subrows",
            ),
            SeriesComparison(
                "lev1WS, 3-D prototypical",
                PAPER_LEV1_3D,
                model_3d.lev1_bytes(),
                "bytes",
            ),
            SeriesComparison(
                "lev2WS, 2-D (whole partition)",
                None,
                model_2d.lev2_bytes(),
                "bytes",
                note="'generally unreasonable to expect ... to fit in cache'",
            ),
        ]
    )

    if validate_n:
        gen = CGTraceGenerator(
            n=validate_n, num_processors=validate_processors, dims=2
        )
        trace = gen.trace_for_processor(0, iterations=validate_iterations)
        warmup = len(trace) // validate_iterations
        profile = profile_trace(trace, warmup=warmup)
        small_grid = default_capacity_grid(min_bytes=128, max_bytes=1024 * 1024)
        flops = gen.flops * (validate_iterations - 1) / validate_iterations
        measured = MissRateCurve.from_profile(
            profile,
            small_grid,
            metric="misses_per_flop",
            flops=flops,
            label=f"simulated 2-D (n={validate_n}, P={validate_processors})",
        )
        result.curves.append(measured)
        small_model = CGModel(
            n=validate_n, num_processors=validate_processors, dims=2
        )
        knees = measured.knees(rel_threshold=0.15)
        lev2_knee = match_knee(knees, small_model.lev2_bytes())
        result.comparisons.append(
            SeriesComparison(
                "simulated lev2WS knee (reduced problem)",
                small_model.lev2_bytes(),
                lev2_knee.capacity_bytes,
                "bytes",
            )
        )
        result.notes.append(
            "trace validation profiles one processor, so the post-lev2"
            " floor excludes coherence misses; the multiprocessor"
            " simulation (tests/apps/test_cg_multiproc) measures them"
        )
        # 3-D validation at reduced scale: the lev2 knee must again sit
        # at the partition size (the paper's Fig 4 second series).
        gen3d = CGTraceGenerator(n=16, num_processors=8, dims=3)
        trace3d = gen3d.trace_for_processor(0, iterations=validate_iterations)
        profile3d = profile_trace(
            trace3d, warmup=len(trace3d) // validate_iterations
        )
        flops3d = gen3d.flops * (validate_iterations - 1) / validate_iterations
        measured3d = MissRateCurve.from_profile(
            profile3d,
            default_capacity_grid(min_bytes=128, max_bytes=256 * 1024),
            metric="misses_per_flop",
            flops=flops3d,
            label="simulated 3-D (n=16, P=8)",
        )
        result.curves.append(measured3d)
        small_3d = CGModel(n=16, num_processors=8, dims=3)
        knees3d = measured3d.knees(rel_threshold=0.15)
        lev2_3d = match_knee(knees3d, small_3d.lev2_bytes(), tolerance_factor=3.0)
        result.comparisons.append(
            SeriesComparison(
                "simulated 3-D lev2WS knee (reduced problem)",
                small_3d.lev2_bytes(),
                lev2_3d.capacity_bytes,
                "bytes",
            )
        )
    result.notes.append(
        "fitting the whole partition (lev2WS) would leave only the"
        " communication miss rate, motivating the paper's aside on"
        " all-cache machine designs (Section 4.2)"
    )
    return result


def main() -> None:
    print(run().render())


if __name__ == "__main__":
    main()
