"""Ray stealing at fine grain (paper Section 7.3).

"In the prototypical problem, every processor is assigned 1000 rays,
so that the amount of stealing is not significant. ... [at 16K
processors] every processor now processes roughly 66 rays, likely to
be too few for good load balancing without excessive stealing."

We measure *actual* per-ray costs by rendering the phantom (sample
counts per ray vary with what the ray hits), then run the ray-stealing
scheduler at several block sizes (rays per processor) and observe the
steal fraction and balance efficiency degrade as blocks shrink — the
quantitative version of the paper's judgement.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from repro.apps.volrend.octree import MinMaxOctree
from repro.apps.volrend.partition import ImagePartition, simulate_ray_stealing
from repro.apps.volrend.render import Camera, RayCaster
from repro.apps.volrend.volume import synthetic_head
from repro.core.report import format_table
from repro.experiments.runner import ExperimentResult, SeriesComparison


def measure_ray_costs(n: int, angle: float = 0.4) -> np.ndarray:
    """Render one frame; returns per-ray sample counts (the real cost
    distribution, shaped by early termination and octree skipping)."""
    volume = synthetic_head(n)
    octree = MinMaxOctree(volume)
    caster = RayCaster(volume, octree)
    camera = Camera(angle=angle, image_size=n)
    costs = np.zeros((n, n))
    for py in range(n):
        for px in range(n):
            origin, direction = camera.ray(volume.shape, px, py)
            before = caster.samples_taken
            caster.cast(origin, direction)
            costs[py, px] = caster.samples_taken - before + 1  # +1 setup
    return costs


def run(
    n: int = 48,
    processor_counts: Sequence[int] = (4, 16, 64, 256),
    steal_overhead: float = 2.0,
) -> ExperimentResult:
    """Sweep rays-per-processor by growing the machine on a fixed
    frame."""
    result = ExperimentResult(
        experiment_id="volrend-stealing",
        title=f"Ray stealing vs grain, {n}x{n} frame of the {n}^3 phantom",
    )
    costs = measure_ray_costs(n)
    rows: List[List[object]] = []
    stats = {}
    for p in processor_counts:
        partition = ImagePartition(n, p)
        per_processor = []
        for pid in range(p):
            rows_range, cols_range = partition.block(pid)
            block = costs[
                rows_range.start : rows_range.stop,
                cols_range.start : cols_range.stop,
            ]
            per_processor.append(block.reshape(-1))
        static_finish = np.array([c.sum() for c in per_processor])
        static_eff = float(static_finish.mean() / static_finish.max())
        outcome = simulate_ray_stealing(per_processor, steal_overhead=steal_overhead)
        stats[p] = (static_eff, outcome)
        rows.append(
            [
                p,
                partition.rays_per_processor(),
                f"{static_eff:.2f}",
                f"{outcome.balance_efficiency:.2f}",
                f"{outcome.steal_fraction:.1%}",
            ]
        )
    result.tables["stealing vs machine size"] = format_table(
        [
            "P",
            "Rays/processor",
            "Static efficiency",
            "With stealing",
            "Rays stolen",
        ],
        rows,
    )
    coarse_p, fine_p = processor_counts[0], processor_counts[-1]
    result.comparisons.extend(
        [
            SeriesComparison(
                "static efficiency, coarse grain",
                None,
                stats[coarse_p][0],
                "",
                note=f"{n * n // coarse_p} rays/processor",
            ),
            SeriesComparison(
                "steal fraction, coarse grain",
                None,
                stats[coarse_p][1].steal_fraction,
                "",
                note="'the amount of stealing is not significant'",
            ),
            SeriesComparison(
                "steal fraction, fine grain",
                None,
                stats[fine_p][1].steal_fraction,
                "",
                note=f"{n * n // fine_p} rays/processor:"
                " 'too few ... without excessive stealing'",
            ),
            SeriesComparison(
                "stealing recovers efficiency (fine grain)",
                None,
                stats[fine_p][1].balance_efficiency - stats[fine_p][0],
                "efficiency gained",
            ),
        ]
    )
    result.notes.append(
        "ray costs are real sample counts from the renderer; stealing"
        f" costs {steal_overhead} sample-equivalents per stolen ray"
    )
    return result


def main() -> None:
    from repro.obs.console import info

    info(run().render())


if __name__ == "__main__":
    main()
