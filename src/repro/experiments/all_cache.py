"""The all-cache machine design point (paper Section 4.2 aside).

"Particularly under time-constrained scaling, the data set per
processor may not be very large on large-scale machines, so that it may
make sense to build larger caches and fit the lev2WS in the cache.
This amounts to fitting the entire data set in cache memory, so that
there is no need for DRAM memory.  While this may be an interesting
design point for very large-scale machines, we restrict ourselves here
to a more conservative model ..."

We make the trade-off concrete for CG: compare a conventional node
(small cache + DRAM, paying miss stalls every sweep) against an
all-SRAM node (cache holds the whole partition; only communication
misses remain) across partition sizes, in both time and cost-adjusted
time.  SRAM's ~25x per-byte premium means the all-cache node wins only
when the partition is small — exactly the TC-scaling regime the paper
points at.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.apps.cg.model import CGModel
from repro.core.cost import ComponentPrices, MISS_PENALTY_OPS
from repro.core.report import format_table
from repro.experiments.runner import ExperimentResult, SeriesComparison
from repro.units import DOUBLE_WORD, KB, MB, format_size


#: Fraction of CG's misses a stride prefetcher hides (measured by the
#: prefetch_study experiment: ~78%).
CG_PREFETCH_COVERAGE = 0.78


def node_times_and_costs(
    partition_bytes: float,
    conventional_cache: float = 64 * KB,
    prices: ComponentPrices = ComponentPrices(),
    prefetch_coverage: float = CG_PREFETCH_COVERAGE,
) -> dict:
    """Per-iteration time (op-equivalents per point) and node cost for
    the two design points at one partition size."""
    points = partition_bytes / (CGModel.POINT_DOUBLEWORDS_2D * DOUBLE_WORD)
    # Use a CG model sized so one processor's partition matches.
    side = max(4, int(points**0.5))
    model = CGModel(n=side, num_processors=1)
    flops_per_point = 20.0  # matvec + vector ops
    # Conventional node: the sweep misses at the post-lev1 plateau, but
    # CG's streams are largely prefetchable, hiding most stalls.
    conventional_rate = model.miss_rate_model(conventional_cache)
    conventional_time = flops_per_point * (
        1.0 + conventional_rate * MISS_PENALTY_OPS * (1.0 - prefetch_coverage)
    )
    conventional_cost = prices.node_cost(conventional_cache, partition_bytes)
    # All-cache node: the whole partition in SRAM, only boundary misses
    # remain (equally prefetchable — CG's exchanges are regular).
    all_cache_rate = model.communication_miss_rate()
    all_cache_time = flops_per_point * (
        1.0 + all_cache_rate * MISS_PENALTY_OPS * (1.0 - prefetch_coverage)
    )
    all_cache_cost = prices.node_cost(partition_bytes * 1.25, 0.0)
    return {
        "conventional_time": conventional_time,
        "conventional_cost": conventional_cost,
        "all_cache_time": all_cache_time,
        "all_cache_cost": all_cache_cost,
    }


def run(
    partition_sizes: Sequence[float] = (
        16 * KB, 64 * KB, 256 * KB, 1 * MB, 4 * MB, 16 * MB,
    ),
) -> ExperimentResult:
    """Sweep partition sizes; find where the all-cache node stops being
    cost-effective."""
    result = ExperimentResult(
        experiment_id="all-cache",
        title="All-cache (no-DRAM) node design point for CG (Section 4.2)",
    )
    rows: List[List[object]] = []
    crossover = None
    for partition in partition_sizes:
        numbers = node_times_and_costs(partition)
        speedup = numbers["conventional_time"] / numbers["all_cache_time"]
        cost_ratio = numbers["all_cache_cost"] / numbers["conventional_cost"]
        value = speedup / cost_ratio  # performance per cost
        if value >= 1.0:
            crossover = partition
        rows.append(
            [
                format_size(partition),
                f"{speedup:.2f}x",
                f"{cost_ratio:.2f}x",
                f"{value:.2f}",
                "all-cache" if value >= 1.0 else "conventional",
            ]
        )
    result.tables["design-point comparison"] = format_table(
        [
            "Partition/node",
            "All-cache speedup",
            "All-cache cost",
            "Perf/cost vs conventional",
            "Winner (perf/cost)",
        ],
        rows,
    )
    sample = node_times_and_costs(256 * KB)
    result.comparisons.extend(
        [
            SeriesComparison(
                "all-cache speedup at 256 KB partitions",
                None,
                sample["conventional_time"] / sample["all_cache_time"],
                "x",
                note="sweep miss stalls eliminated",
            ),
            SeriesComparison(
                "largest cost-effective all-cache partition",
                None,
                float(crossover) if crossover else 0.0,
                "bytes",
                note="'an interesting design point for very large-scale"
                " machines' — i.e. small TC-scaled partitions",
            ),
        ]
    )
    result.notes.append(
        "prices: DRAM 40/MB, SRAM 1/KB (25.6x per byte); all-cache node"
        " carries 25% SRAM headroom over the partition"
    )
    return result


def main() -> None:
    print(run().render())


if __name__ == "__main__":
    main()
