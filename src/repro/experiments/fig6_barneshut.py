"""Figure 6: working sets for the Barnes-Hut application —
n=1024 particles, theta=1.0, p=4, quadrupole moments.

Unlike the first three applications, these working sets are *measured
by simulation* (the paper's own method for Barnes-Hut): we run the real
octree force computation, trace one processor's references, and profile
them through the fully associative LRU instrument.

Paper landmarks for this configuration: lev1WS ~0.7 KB (miss rate
100% -> ~20%), lev2WS ~20 KB (miss rate -> near the 0.2% communication
floor).
"""

from __future__ import annotations

from repro.apps.barnes_hut.bodies import plummer_model
from repro.apps.barnes_hut.model import BarnesHutModel
from repro.apps.barnes_hut.trace import BarnesHutTraceGenerator
from repro.core.curves import MissRateCurve
from repro.core.knee import match_knee
from repro.experiments.runner import ExperimentResult, SeriesComparison
from repro.mem.stack_distance import StackDistanceProfiler, default_capacity_grid
from repro.units import KB

#: Paper-reported values for the Figure 6 configuration.
PAPER_LEV1_BYTES = 0.7 * KB
PAPER_LEV2_BYTES = 20.0 * KB
PAPER_PLATEAU_AFTER_LEV1 = 0.20
PAPER_COMMUNICATION_FLOOR = 0.002


def run(
    n: int = 1024,
    theta: float = 1.0,
    num_processors: int = 4,
    seed: int = 2,
) -> ExperimentResult:
    """Regenerate Figure 6 by full trace simulation."""
    result = ExperimentResult(
        experiment_id="fig6",
        title=(
            f"Barnes-Hut working sets: n={n}, theta={theta},"
            f" p={num_processors}, quadrupole moments"
        ),
    )
    bodies = plummer_model(n, seed=seed)
    gen = BarnesHutTraceGenerator(
        bodies, theta=theta, num_processors=num_processors
    )
    trace = gen.trace_for_processor(0)
    profile = StackDistanceProfiler(
        count_reads_only=True, warmup=len(trace) // 10
    ).profile(trace)
    grid = default_capacity_grid(min_bytes=64, max_bytes=512 * 1024)
    measured = MissRateCurve.from_profile(
        profile, grid, metric="read_miss_rate", label="simulated"
    )
    result.curves.append(measured)

    model = BarnesHutModel(n=n, theta=theta, num_processors=num_processors)
    result.curves.append(
        MissRateCurve.from_model(
            model.miss_rate_model, grid, metric="read_miss_rate", label="model"
        )
    )

    knees = measured.knees(rel_threshold=0.3)
    lev1 = match_knee(knees, PAPER_LEV1_BYTES)
    lev2 = match_knee(knees, PAPER_LEV2_BYTES)
    result.comparisons.extend(
        [
            SeriesComparison(
                "lev1WS (interaction scratch)",
                PAPER_LEV1_BYTES,
                lev1.capacity_bytes,
                "bytes",
            ),
            SeriesComparison(
                "miss rate after lev1WS",
                PAPER_PLATEAU_AFTER_LEV1,
                lev1.miss_rate_after,
                "read miss rate",
            ),
            SeriesComparison(
                "lev2WS (tree data per particle)",
                PAPER_LEV2_BYTES,
                lev2.capacity_bytes,
                "bytes",
                note=f"model predicts {model.lev2_bytes():.0f} B",
            ),
            SeriesComparison(
                "communication floor",
                PAPER_COMMUNICATION_FLOOR,
                measured.floor,
                "read miss rate",
            ),
            SeriesComparison(
                "data per particle",
                230.0,
                gen.bytes_per_body(),
                "bytes",
                note="paper: ~230 bytes with quadrupole moments",
            ),
            SeriesComparison(
                "interactions per particle",
                None,
                gen.interactions_per_body(0),
                "",
                note="scales as (1/theta^2) log n",
            ),
        ]
    )
    result.notes.append(
        "partition uses Morton-order ranges (costzones stand-in); lev2"
        " reuse across successive particles depends on this locality"
    )
    return result


def main() -> None:
    print(run().render())


if __name__ == "__main__":
    main()
