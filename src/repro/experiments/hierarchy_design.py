"""Cache-hierarchy design: sizing the levels from the working sets.

The paper's abstract: working sets "can help determine how large
different levels of a multiprocessor's cache hierarchy should be."
This experiment performs that design exercise: map each application's
working sets onto a two-level hierarchy (a small L1 and a modest L2),
then verify by simulation that the designed hierarchy captures them —
L1 absorbs the lev1WS traffic, L2 the important working set.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.apps.barnes_hut.bodies import plummer_model
from repro.apps.barnes_hut.trace import BarnesHutTraceGenerator
from repro.apps.lu.trace import LUTraceGenerator
from repro.core.report import format_table
from repro.experiments.runner import ExperimentResult, SeriesComparison
from repro.experiments.table2 import prototypical_models
from repro.mem.hierarchy import (
    CacheHierarchy,
    assign_working_sets,
    hierarchy_miss_rates_from_profile,
)
from repro.mem.stack_distance import StackDistanceProfiler
from repro.units import KB, format_size

#: A plausible early-90s node hierarchy: 8 KB L1, 256 KB L2.
DEFAULT_LEVELS = (8 * KB, 256 * KB)


def design_table(levels: Tuple[int, ...] = DEFAULT_LEVELS) -> List[List[object]]:
    """Which level captures each prototypical working set."""
    rows = []
    for model in prototypical_models():
        hierarchy = model.working_sets()
        sets = [(f"lev{ws.level}WS", ws.size_bytes) for ws in hierarchy.levels]
        assignments = assign_working_sets(sets, levels)
        for ws, assignment in zip(hierarchy.levels, assignments):
            placement = (
                f"L{assignment.level + 1}"
                if assignment.level < len(levels)
                else "memory"
            )
            rows.append(
                [
                    model.name,
                    f"lev{ws.level}WS" + ("*" if ws.important else ""),
                    format_size(ws.size_bytes),
                    placement,
                ]
            )
    return rows


def run(levels: Tuple[int, ...] = DEFAULT_LEVELS) -> ExperimentResult:
    """Design the hierarchy and verify it by simulation."""
    result = ExperimentResult(
        experiment_id="hierarchy",
        title=f"Two-level hierarchy design ({format_size(levels[0])} L1,"
        f" {format_size(levels[1])} L2)",
    )
    result.tables["working set placement (prototypical problems)"] = format_table(
        ["Application", "Working set", "Size", "Captured by"],
        design_table(levels),
    )

    # Every application's *important* working set must land in L1 or L2.
    for model in prototypical_models():
        hierarchy = model.working_sets()
        important = hierarchy.important_working_set
        assignment = assign_working_sets(
            [("important", important.size_bytes)], levels
        )[0]
        result.comparisons.append(
            SeriesComparison(
                f"{model.name}: important WS level",
                None,
                assignment.level + 1,
                "cache level",
                note=f"{format_size(important.size_bytes)} -> "
                + (f"L{assignment.level + 1}" if assignment.level < len(levels) else "memory"),
            )
        )

    # Simulation check on two traced applications: per-level local miss
    # rates from one stack-distance profile and from explicit two-level
    # simulation must agree, and the L2 local rate must be small once
    # the important working set fits.
    traces = {
        "LU (n=96, B=8)": LUTraceGenerator(
            n=96, block_size=8, num_processors=4
        ).trace_for_processor(0),
        "Barnes-Hut (n=256)": BarnesHutTraceGenerator(
            plummer_model(256, seed=6), theta=1.0, num_processors=4
        ).trace_for_processor(0),
    }
    for label, trace in traces.items():
        profile = StackDistanceProfiler().profile(trace)
        predicted = hierarchy_miss_rates_from_profile(profile, levels)
        hierarchy_sim = CacheHierarchy(levels)
        stats = hierarchy_sim.run(trace)
        result.comparisons.append(
            SeriesComparison(
                f"{label}: L1 local miss rate (profile vs sim)",
                predicted[0],
                stats[0].local_miss_rate,
                "",
                note="inclusion property: must agree exactly",
            )
        )
        result.comparisons.append(
            SeriesComparison(
                f"{label}: L2 local miss rate (profile vs sim)",
                predicted[1],
                stats[1].local_miss_rate,
                "",
            )
        )
        result.comparisons.append(
            SeriesComparison(
                f"{label}: global miss rate",
                None,
                hierarchy_sim.global_miss_rate,
                "",
                note="references missing both levels",
            )
        )
    result.notes.append(
        "an 8 KB L1 captures every lev1WS; a 256 KB L2 captures every"
        " important working set of the prototypical 1 GB problems —"
        " the paper's 'relatively small caches suffice' conclusion"
    )
    return result


def main() -> None:
    print(run().render())


if __name__ == "__main__":
    main()
