"""Section 6.4's associativity study: direct-mapped versus fully
associative caches on the Barnes-Hut reference stream.

The paper's preliminary result: "the knees in the miss rate versus
cache size curves are not as well-defined as with fully associative
caches, and ... the direct-mapped cache size required to hold the
important working set is about three times as large as the
corresponding fully associative cache size.  Set-associative caches
... might reduce this factor of three."
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.apps.barnes_hut.bodies import plummer_model
from repro.apps.barnes_hut.trace import BarnesHutTraceGenerator
from repro.core.curves import MissRateCurve
from repro.core.knee import match_knee
from repro.experiments.runner import ExperimentResult, SeriesComparison
from repro.mem.setassoc import SetAssociativeCache
from repro.mem.stack_distance import StackDistanceProfiler, default_capacity_grid
from repro.mem.trace import Trace


def _limited_assoc_curve(
    trace: Trace, capacities: Sequence[int], associativity: int, label: str
) -> MissRateCurve:
    """Read-miss-rate curve through explicit limited-associativity
    simulation, one run per capacity."""
    rates = []
    for capacity in capacities:
        cache = SetAssociativeCache(
            int(capacity), block_size=8, associativity=associativity
        )
        stats = cache.run(trace)
        rates.append(stats.read_miss_rate)
    return MissRateCurve(
        np.asarray(capacities, dtype=np.int64),
        np.asarray(rates, dtype=float),
        metric="read_miss_rate",
        label=label,
    )


def run(
    n: int = 512,
    theta: float = 1.0,
    num_processors: int = 4,
    associativities: Sequence[int] = (1, 4),
    seed: int = 3,
    capacities: Optional[Sequence[int]] = None,
) -> ExperimentResult:
    """Compare the cache size at which each organization reaches the
    post-lev2 miss-rate plateau."""
    result = ExperimentResult(
        experiment_id="assoc",
        title=f"Direct-mapped vs fully associative, Barnes-Hut n={n}",
    )
    bodies = plummer_model(n, seed=seed)
    gen = BarnesHutTraceGenerator(bodies, theta=theta, num_processors=num_processors)
    trace = gen.trace_for_processor(0)
    if capacities is None:
        # Power-of-two capacities so every associativity divides the
        # block count.
        capacities = [1 << k for k in range(8, 19)]

    profile = StackDistanceProfiler(count_reads_only=True).profile(trace)
    fa_curve = MissRateCurve.from_profile(
        profile, capacities, metric="read_miss_rate", label="fully associative"
    )
    result.curves.append(fa_curve)

    # The target plateau: the FA miss rate once the lev2WS fits, with a
    # little slack for the noise floor.
    fa_knees = fa_curve.knees(rel_threshold=0.3)
    lev2_knee = max(fa_knees, key=lambda k: k.capacity_bytes)
    target = lev2_knee.miss_rate_after * 1.25

    def first_capacity_reaching(curve: MissRateCurve) -> float:
        for cap, rate in zip(curve.capacities, curve.miss_rates):
            if rate <= target:
                return float(cap)
        return float(curve.capacities[-1])

    fa_size = first_capacity_reaching(fa_curve)
    for assoc in associativities:
        label = "direct-mapped" if assoc == 1 else f"{assoc}-way"
        curve = _limited_assoc_curve(trace, capacities, assoc, label)
        result.curves.append(curve)
        size = first_capacity_reaching(curve)
        result.comparisons.append(
            SeriesComparison(
                f"{label} / fully-associative size factor",
                3.0 if assoc == 1 else None,
                size / fa_size,
                "x",
                note="paper: 'about three times as large' for direct-mapped",
            )
        )
    result.comparisons.append(
        SeriesComparison(
            "fully associative size reaching plateau",
            None,
            fa_size,
            "bytes",
        )
    )
    result.notes.append(
        "knees of the direct-mapped curve are visibly smeared relative to"
        " the fully associative instrument, as the paper observes"
    )
    return result


def main() -> None:
    print(run().render())


if __name__ == "__main__":
    main()
