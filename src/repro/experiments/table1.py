"""Table 1: important application growth rates.

The paper's Table 1 is symbolic (data ~ n^2, ops ~ n^3, ...).  We
reproduce the symbolic table and *verify it numerically*: each model's
data/work/communication/working-set function is probed at two problem
sizes and the local power-law exponent (or log-law flag) is compared
with the paper's entry.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, List, Optional

from repro.apps.barnes_hut.model import BarnesHutModel
from repro.apps.cg.model import CGModel
from repro.apps.fft.model import FFTModel
from repro.apps.lu.model import LUModel
from repro.apps.volrend.model import VolrendModel
from repro.core.report import format_table
from repro.core.scaling import growth_exponent
from repro.experiments.runner import ExperimentResult, SeriesComparison


@dataclass
class GrowthRow:
    """One application's growth-rate row.

    ``*_fn`` callables map the problem parameter n to the quantity; the
    ``*_sym`` strings are the paper's symbolic entries.
    """

    application: str
    data_sym: str
    data_fn: Callable[[float], float]
    data_exp: float
    ops_sym: str
    ops_fn: Callable[[float], float]
    ops_exp: float
    conc_sym: str
    comm_sym: str
    comm_fn: Callable[[float], float]
    comm_exp: float
    ws_sym: str
    ws_fn: Optional[Callable[[float], float]]
    ws_is_const: bool


def _rows(num_processors: int = 1024, theta: float = 1.0) -> List[GrowthRow]:
    p = num_processors
    sqrt_p = math.sqrt(p)
    bh = BarnesHutModel(theta=theta, num_processors=p)
    return [
        GrowthRow(
            "LU",
            "n^2", lambda n: n * n, 2.0,
            "n^3", lambda n: n**3, 3.0,
            "n^2",
            "n^2 sqrt(P)", lambda n: n * n * sqrt_p, 2.0,
            "const.", None, True,
        ),
        GrowthRow(
            "CG",
            "n^2", lambda n: n * n, 2.0,
            "n^2", lambda n: 10.0 * n * n, 2.0,
            "n^2",
            "n sqrt(P)", lambda n: n * sqrt_p, 1.0,
            "const.", None, True,
        ),
        GrowthRow(
            "FFT",
            "n", lambda n: n, 1.0,
            "n log n", lambda n: n * math.log2(n), 1.0,
            "n",
            "n log P", lambda n: n * math.log2(p), 1.0,
            "const.", None, True,
        ),
        GrowthRow(
            "Barnes-Hut",
            "n", lambda n: n, 1.0,
            "(1/theta^2) n log n",
            lambda n: n * math.log2(n) / theta**2, 1.0,
            "n",
            "n^(1/3) theta^3 p^(2/3) log^(4/3) p",
            lambda n: n ** (1.0 / 3.0)
            * theta**3
            * p ** (2.0 / 3.0)
            * math.log2(p) ** (4.0 / 3.0),
            1.0 / 3.0,
            "(1/theta^2) log n",
            lambda n: math.log2(n) / theta**2,
            False,
        ),
        GrowthRow(
            "Volume Rendering",
            "n^3", lambda n: n**3, 3.0,
            "n^3", lambda n: n**3, 3.0,
            "n^2",
            "n^3", lambda n: n**3, 3.0,
            "n", lambda n: float(n), False,
        ),
    ]


def run(probe_n: float = 4096.0, num_processors: int = 1024) -> ExperimentResult:
    """Regenerate Table 1 and numerically verify each growth law."""
    result = ExperimentResult(
        experiment_id="table1", title="Important application growth rates"
    )
    rows = _rows(num_processors)
    table_rows = []
    for row in rows:
        table_rows.append(
            [row.application, row.data_sym, row.ops_sym, row.conc_sym, row.comm_sym, row.ws_sym]
        )
        # Numeric verification of the power-law exponents.  log-factors
        # perturb the finite-difference estimate slightly, so compare
        # within a tolerance encoded in the comparison note.
        measured_data = growth_exponent(row.data_fn, probe_n)
        measured_ops = growth_exponent(row.ops_fn, probe_n)
        measured_comm = growth_exponent(row.comm_fn, probe_n)
        result.comparisons.extend(
            [
                SeriesComparison(
                    f"{row.application}: data exponent",
                    row.data_exp,
                    measured_data,
                    "d log/d log n",
                ),
                SeriesComparison(
                    f"{row.application}: ops exponent",
                    row.ops_exp,
                    measured_ops,
                    "d log/d log n",
                    note="log factors raise the finite estimate slightly"
                    if "log" in row.ops_sym
                    else "",
                ),
                SeriesComparison(
                    f"{row.application}: communication exponent",
                    row.comm_exp,
                    measured_comm,
                    "d log/d log n",
                ),
            ]
        )
        if row.ws_fn is not None:
            # Working set grows, but sub-polynomially: doubling n far
            # less than doubles the working set for Barnes-Hut.
            growth = row.ws_fn(2 * probe_n) / row.ws_fn(probe_n)
            result.comparisons.append(
                SeriesComparison(
                    f"{row.application}: WS growth for 2x n",
                    None,
                    growth,
                    "x",
                    note=f"law: {row.ws_sym}",
                )
            )
    result.tables["Table 1 (symbolic, as in the paper)"] = format_table(
        ["Application", "Data", "Ops", "Concurrency", "Communication", "Important WS"],
        table_rows,
    )

    # Concurrency exponents, verified against the actual model classes.
    concurrency_cases = [
        ("LU", lambda n: LUModel(n=int(n), num_processors=64).concurrency(), 2.0),
        ("CG", lambda n: CGModel(n=int(n), num_processors=64).concurrency(), 2.0),
        (
            "FFT",
            lambda n: FFTModel(
                n=1 << int(math.log2(n)), num_processors=64
            ).concurrency(),
            1.0,
        ),
        (
            "Barnes-Hut",
            lambda n: BarnesHutModel(n=int(n), num_processors=64).concurrency(),
            1.0,
        ),
        (
            "Volume Rendering",
            lambda n: VolrendModel(n=int(n), num_processors=64).concurrency(),
            2.0,
        ),
    ]
    for name, fn, expected in concurrency_cases:
        result.comparisons.append(
            SeriesComparison(
                f"{name}: concurrency exponent",
                expected,
                growth_exponent(fn, probe_n),
                "d log/d log n",
            )
        )
    return result


def main() -> None:
    from repro.obs.console import info

    info(run().render())


if __name__ == "__main__":
    main()
