"""Table 2: summary of important application parameters.

For the prototypical 1-Gbyte problem on 1024 processors: the cache size
needed for the important working set, its growth rate, and the
desirable grain size — the paper's bottom-line table.

Paper's cache-size column: LU 8K, CG 5K, FFT 4K, Barnes-Hut 45K,
Volume Rendering 70K.  Desirable grain: < 1M / 1M per application.
"""

from __future__ import annotations

from typing import List

from repro.apps.barnes_hut.model import BarnesHutModel
from repro.apps.cg.model import CGModel
from repro.apps.fft.model import FFTModel
from repro.apps.lu.model import LUModel
from repro.apps.volrend.model import VolrendModel
from repro.core.analysis import ApplicationModel, characterize
from repro.core.grain import prototypical_configs
from repro.core.report import format_table
from repro.experiments.runner import ExperimentResult, SeriesComparison
from repro.units import GB, KB, MB, format_size

#: Paper Table 2 cache-size column (bytes) for the 1G problem on 1K
#: processors.
PAPER_CACHE_SIZES = {
    "LU": 8 * KB,
    "CG": 5 * KB,
    "FFT": 4 * KB,
    "Barnes-Hut": 45 * KB,
    "Volume Rendering": 70 * KB,
}

#: Paper Table 2 growth-rate columns.
PAPER_GROWTH = {
    "LU": ("const.", "const."),
    "CG": ("const.", "const."),
    "FFT": ("const.", "const."),
    "Barnes-Hut": ("log DS", "const."),
    "Volume Rendering": ("DS^(1/3)", "DS^(1/3)"),
}


def prototypical_models_at(
    dataset_bytes: float, num_processors: int
) -> List[ApplicationModel]:
    """The five application models at an arbitrary problem size."""
    return [
        LUModel.for_dataset(
            dataset_bytes, block_size=16, num_processors=num_processors
        ),
        CGModel.for_dataset(dataset_bytes, num_processors=num_processors, dims=2),
        FFTModel.for_dataset(
            dataset_bytes, num_processors=num_processors, internal_radix=32
        ),
        BarnesHutModel.for_dataset(
            dataset_bytes, theta=1.0, num_processors=num_processors
        ),
        VolrendModel.for_dataset(dataset_bytes, num_processors=num_processors),
    ]


def prototypical_models(num_processors: int = 1024) -> List[ApplicationModel]:
    """The five application models instantiated at the prototypical
    1-Gbyte problem."""
    return prototypical_models_at(GB, num_processors)


def run(num_processors: int = 1024) -> ExperimentResult:
    """Regenerate Table 2."""
    result = ExperimentResult(
        experiment_id="table2",
        title="Summary of important application parameters (1G problem, 1K processors)",
    )
    configs = prototypical_configs(GB)
    rows = []
    for model in prototypical_models(num_processors):
        characterization = characterize(model, configs)
        important = characterization.working_sets.important_working_set
        grain = characterization.desirable_grain
        cache_growth, mem_growth = PAPER_GROWTH[model.name]
        rows.append(
            [
                model.name,
                cache_growth,
                format_size(important.size_bytes),
                mem_growth,
                format_size(grain.memory_per_processor)
                + (" or finer" if grain.memory_per_processor < MB else ""),
            ]
        )
        result.comparisons.append(
            SeriesComparison(
                f"{model.name}: important WS size",
                PAPER_CACHE_SIZES[model.name],
                important.size_bytes,
                "bytes",
                note=important.name,
            )
        )
        result.comparisons.append(
            SeriesComparison(
                f"{model.name}: desirable grain",
                float(MB),
                grain.memory_per_processor,
                "bytes/processor",
                note="paper: 1M or less for every application",
            )
        )
    result.tables["Table 2"] = format_table(
        [
            "Application",
            "Cache growth rate",
            "Cache size (1G, 1K P)",
            "Memory growth rate",
            "Desirable grain size",
        ],
        rows,
    )

    # Numerically verify the cache-growth-rate column: grow the data set
    # 8x (with P scaled to keep the grain fixed, as the column assumes)
    # and measure how the important working set responds.
    growth_expectations = {
        "LU": 1.0,  # const
        "CG": 1.0,  # const (with blocking)
        "FFT": 1.0,  # const
        # log DS: log(8 GB problem)/log(1 GB problem) in particles
        "Barnes-Hut": None,  # computed below
        "Volume Rendering": 2.0,  # cube root of 8
    }
    for model, grown in zip(
        prototypical_models(num_processors),
        prototypical_models_at(8 * GB, num_processors * 8),
    ):
        base_ws = model.working_sets().important_working_set.size_bytes
        grown_ws = grown.working_sets().important_working_set.size_bytes
        expected = growth_expectations[model.name]
        if expected is None:  # Barnes-Hut's log DS
            import math

            expected = math.log10(grown.n) / math.log10(model.n)
        result.comparisons.append(
            SeriesComparison(
                f"{model.name}: WS growth for 8x data",
                expected,
                grown_ws / base_ws,
                "x",
                note=f"paper column: {PAPER_GROWTH[model.name][0]}",
            )
        )
    result.notes.append(
        "the paper's 8K LU entry corresponds to one B=32 block; our model"
        " instantiates B=16 (2.2K) — both are 'trivially small' caches"
    )
    result.notes.append(
        "for the FFT the 'desirable' 1M grain is not really desirable:"
        " raising the ratio to 100 FLOPs/word would need ~18 TB/processor"
    )
    return result


def main() -> None:
    print(run().render())


if __name__ == "__main__":
    main()
