"""Cost-performance study of the Section 8 conjecture.

"Overall, it may turn out that designs that split the cost equally
between processors and memory will be the most competitive, in that
they will be within a small constant factor of the optimal design for
any given application."

We enumerate node designs under a fixed budget (each design spends the
remainder of the budget on DRAM after buying processors and cache),
score every design for every application with the paper's coarse
execution-time model, and compare (a) each application's optimum with
(b) the best *equal-split* design (30-70% of cost in memory).
"""

from __future__ import annotations

import math
from typing import Dict, List

from repro.core.cost import (
    ComponentPrices,
    DesignEvaluation,
    NodeDesign,
    best_design,
    enumerate_designs,
    evaluate_design,
)
from repro.core.report import format_table
from repro.experiments.runner import ExperimentResult, SeriesComparison
from repro.experiments.table2 import prototypical_models
from repro.units import GB, format_size


def _work_ops(model) -> float:
    """Total operation count of each prototypical problem."""
    name = model.name
    if name == "LU":
        return model.flops()
    if name == "CG":
        return 100 * model.flops_per_iteration()  # 100 iterations
    if name == "FFT":
        return model.flops()
    if name == "Barnes-Hut":
        return model.work_instructions()
    if name == "Volume Rendering":
        return 30 * model.instructions_per_frame()  # one second of frames
    raise KeyError(name)


def run(
    budget: float = 3_000_000.0,
    total_data_bytes: float = GB,
    prices: ComponentPrices = ComponentPrices(),
) -> ExperimentResult:
    """Score all designs for all applications under one budget."""
    result = ExperimentResult(
        experiment_id="cost",
        title=f"Node-design cost study, budget {budget:,.0f} units, "
        f"{format_size(total_data_bytes)} problem",
    )
    designs = enumerate_designs(budget, total_data_bytes, prices)
    rows = []
    equal_split_penalties = []
    for model in prototypical_models():
        work = _work_ops(model)
        evaluations: List[DesignEvaluation] = [
            evaluate_design(
                model,
                design,
                total_data_bytes,
                work,
                model.miss_rate_model,
            )
            for design in designs
        ]
        optimum = best_design(evaluations)
        # Best among near-equal-split designs (30-70% of cost in memory;
        # power-of-two machines cannot hit 50% exactly).
        split = [
            e
            for e in evaluations
            if e.feasible
            and 0.3 <= e.design.memory_cost_fraction(prices) <= 0.7
        ]
        rows.append(
            [
                model.name,
                optimum.design.num_processors,
                format_size(optimum.design.cache_bytes),
                format_size(optimum.design.memory_bytes),
                f"{optimum.design.memory_cost_fraction(prices):.0%}",
                f"{min(e.time_units for e in split) / optimum.time_units:.2f}x"
                if split
                else "n/a",
            ]
        )
        if split:
            penalty = min(e.time_units for e in split) / optimum.time_units
            equal_split_penalties.append(penalty)
            result.comparisons.append(
                SeriesComparison(
                    f"{model.name}: equal-split penalty",
                    None,
                    penalty,
                    "x optimal time",
                    note="1.0 = the equal split IS optimal",
                )
            )
    result.tables["per-application optimal designs"] = format_table(
        [
            "Application",
            "P*",
            "cache*",
            "memory/node*",
            "memory cost share",
            "equal-split penalty",
        ],
        rows,
    )
    if equal_split_penalties:
        worst = max(equal_split_penalties)
        result.comparisons.append(
            SeriesComparison(
                "worst equal-split penalty across applications",
                None,
                worst,
                "x optimal time",
                note="the Section 8 conjecture holds if this is a small"
                " constant",
            )
        )
    result.notes.append(
        "model: time = (work/P)(1 + miss_rate x 30) / balance_efficiency"
        " + comm/P; prices: processor 1000, DRAM 40/MB, SRAM 1/KB"
    )
    return result


def main() -> None:
    print(run().render())


if __name__ == "__main__":
    main()
