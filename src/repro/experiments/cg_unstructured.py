"""Unstructured-problem study (paper Section 4.3).

The paper predicts three effects when iterative solvers move from
regular grids to unstructured meshes: (1) worse computational load
balance, (2) a worse communication picture for the same data-set size,
and (3) a partitioning step whose cost must be paid at all.  We
quantify (1) and (2) against a regular grid at equal size, using
recursive coordinate bisection (the era's partitioner), and quantify a
random partition to show why "more sophisticated strategies for
partitioning" are required at all.
"""

from __future__ import annotations

import numpy as np

from repro.apps.cg.solver import conjugate_gradient
from repro.apps.cg.unstructured import (
    clustered_mesh,
    communication_fraction,
    delaunay_mesh,
    edge_cut,
    random_partition,
    recursive_coordinate_bisection,
    regular_mesh,
    work_imbalance,
)
from repro.core.report import format_table
from repro.experiments.runner import ExperimentResult, SeriesComparison


def run(
    side: int = 40, num_parts: int = 16, seed: int = 0
) -> ExperimentResult:
    """Compare regular-grid and Delaunay-mesh partitions at equal size."""
    result = ExperimentResult(
        experiment_id="cg-unstructured",
        title=(
            f"Regular vs unstructured CG meshes: {side * side} points,"
            f" {num_parts} partitions"
        ),
    )
    regular = regular_mesh(side)
    unstructured = delaunay_mesh(side * side, seed=seed)
    clustered = clustered_mesh(side * side, seed=seed)

    cases = [
        ("regular grid + RCB", regular,
         recursive_coordinate_bisection(regular.points, num_parts)),
        ("Delaunay mesh + RCB", unstructured,
         recursive_coordinate_bisection(unstructured.points, num_parts)),
        ("clustered mesh + RCB", clustered,
         recursive_coordinate_bisection(clustered.points, num_parts)),
        ("Delaunay mesh + random", unstructured,
         random_partition(unstructured.num_points, num_parts, seed=seed)),
    ]
    rows = []
    metrics = {}
    #: Each remote edge costs this many internal-edge equivalents every
    #: iteration (the gather of an off-processor x value).
    remote_weight = 6.0
    for name, mesh, assignment in cases:
        comm = communication_fraction(mesh, assignment)
        balance = work_imbalance(
            mesh, assignment, remote_edge_weight=remote_weight
        )
        metrics[name] = (comm, balance)
        rows.append(
            [
                name,
                mesh.num_edges,
                edge_cut(mesh, assignment),
                f"{comm:.2%}",
                f"{balance:.3f}",
            ]
        )
    result.tables["partition quality"] = format_table(
        [
            "Case",
            "Edges",
            "Cut edges",
            "Comm fraction",
            f"Imbalance (remote edge x{remote_weight:.0f})",
        ],
        rows,
    )

    regular_comm, regular_balance = metrics["regular grid + RCB"]
    unstructured_comm, unstructured_balance = metrics["Delaunay mesh + RCB"]
    clustered_comm, clustered_balance = metrics["clustered mesh + RCB"]
    random_comm, _ = metrics["Delaunay mesh + random"]
    result.comparisons.extend(
        [
            SeriesComparison(
                "communication penalty: unstructured / regular",
                None,
                unstructured_comm / regular_comm,
                "x",
                note="paper: the communication picture degrades",
            ),
            SeriesComparison(
                "communication penalty: clustered / regular",
                None,
                clustered_comm / regular_comm,
                "x",
                note="adaptive refinement stresses geometric partitioners",
            ),
            SeriesComparison(
                "balance penalty: clustered / regular",
                None,
                clustered_balance / regular_balance,
                "x",
                note="'the computational load balance ... will certainly"
                " not be as good'",
            ),
            SeriesComparison(
                "random-partition communication penalty",
                None,
                random_comm / unstructured_comm,
                "x",
                note="why partitioning strategies matter at all",
            ),
        ]
    )

    # The solver itself must still work on the unstructured operator.
    rng = np.random.default_rng(seed)
    b = rng.standard_normal(unstructured.num_points)
    solve = conjugate_gradient(unstructured.laplacian_matvec, b, tol=1e-8)
    result.comparisons.append(
        SeriesComparison(
            "CG converges on the unstructured operator",
            1.0,
            1.0 if solve.converged else 0.0,
            "",
            note=f"{solve.iterations} iterations",
        )
    )
    result.notes.append(
        "partitioner: recursive coordinate bisection (median splits along"
        " the wider axis), the standard geometric method of the era"
    )
    return result


def main() -> None:
    print(run().render())


if __name__ == "__main__":
    main()
