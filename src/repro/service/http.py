"""The multi-tenant campaign service (``repro.service``).

A long-running stdlib-only HTTP/JSON service that accepts concurrent
campaign submissions and survives overload, client abuse, and worker
failure.  One service owns one **service root**::

    <root>/service.lease          service-level fencing lease
    <root>/service.wal            write-ahead submission journal
    <root>/service.json           bound address (host/port/pid)
    <root>/metrics.json           rolling service metrics snapshot
    <root>/cache/                 shared content-addressed result cache
    <root>/campaigns/<tenant>/<campaign-id>/   one standard run dir each

Every per-campaign directory is a *normal* campaign run directory —
manifest, checkpoints, journal, lease, events, metrics — so ``status``,
``report``, ``validate``, and ``--resume`` all work on it unchanged.

**API surface** (see ``docs/SERVICE.md``):

- ``POST /v1/campaigns`` — submit ``{"tenant", "experiments",
  "quick", "deadline_seconds"}``; 202 with a campaign id, or 429/503
  with ``Retry-After`` under backpressure.
- ``GET /v1/campaigns/<id>`` — submission state (queued / running /
  complete / failed / deadline-exceeded), cache-hit tally.
- ``GET /v1/campaigns/<id>/result`` — the finished campaign summary.
- ``GET /healthz`` / ``GET /readyz`` — liveness vs readiness
  (``readyz`` turns 503 the moment a drain starts).
- ``GET /metrics`` — Prometheus text exposition of the registry.

**Durability.**  A submission is acknowledged (202) only after a
``submission-accepted`` record is fsynced into ``service.wal``; a
``submission-done`` record closes it.  On startup the WAL is replayed
(torn tail truncated): accepted-but-not-done submissions are re-queued
under their original campaign ids, and each per-campaign run directory
resumes through the PR-4 journal recovery — so a SIGKILL at any
instruction, including mid-drain, loses no accepted work and re-runs
no committed attempt.

**Drain.**  On SIGTERM the service stops admitting (readyz 503,
submissions 503), lets in-flight campaigns finish, leaves queued
submissions journaled for the next incarnation, flushes a final
metrics snapshot, journals the drain, and exits 0.
"""

from __future__ import annotations

import json
import os
import threading
import time
from dataclasses import dataclass, field
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from typing import Callable, Dict, List, Optional, Tuple

from repro.obs import metrics as obs_metrics
from repro.runtime.checkpoint import CheckpointStore
from repro.runtime.engine import EngineConfig
from repro.runtime.errors import JournalCorruptError, LeaseHeldError
from repro.runtime.events import EventLog
from repro.runtime.iofault import atomic_write_text
from repro.runtime.journal import (
    Journal,
    read_journal,
    recover,
    truncate_torn_tail,
)
from repro.runtime.lease import Lease
from repro.service.admission import (
    AdmissionClosed,
    AdmissionController,
    AdmissionRejected,
)
from repro.service.breaker import CircuitBreaker
from repro.service.cache import ResultCache
from repro.service.engine import CachedCampaignEngine

SERVICE_WAL = "service.wal"
SERVICE_LEASE_TTL = 30.0
SERVICE_INFO = "service.json"
CAMPAIGNS_DIRNAME = "campaigns"
CACHE_DIRNAME = "cache"

#: Submission states exposed over the API.
STATE_QUEUED = "queued"
STATE_RUNNING = "running"
STATE_COMPLETE = "complete"
STATE_FAILED = "failed"
STATE_DEADLINE = "deadline-exceeded"
TERMINAL_STATES = (STATE_COMPLETE, STATE_FAILED, STATE_DEADLINE)


@dataclass
class ServiceConfig:
    """Service-wide policy knobs.

    Attributes:
        host, port: Bind address; port 0 picks an ephemeral port
            (read it back from ``service.json`` or :attr:`address`).
        queue_capacity: Bounded queue depth per tenant.
        max_queued: Global queued-submission cap (the memory bound).
        dispatchers: Concurrent campaign-running threads.
        jobs: ``EngineConfig.jobs`` for each campaign (0 = in-process).
        nodes: When set, campaigns run on a shared multi-node dispatch
            fabric of this many worker-node processes
            (:mod:`repro.service.dispatch`); requires ``jobs >= 1``.
        quick: Force every campaign to quick parameterizations.
        max_attempts: Per-experiment attempt budget.
        default_deadline_seconds: Deadline applied when a submission
            names none (None = no deadline).
        max_deadline_seconds: Ceiling on client-requested deadlines.
        breaker_threshold / breaker_cooldown_seconds: Circuit-breaker
            trip point and open-state cooldown.
        lease_ttl_seconds: TTL for the service and campaign leases.
        clock / wall_clock: Injectable time sources.
    """

    host: str = "127.0.0.1"
    port: int = 0
    queue_capacity: int = 8
    max_queued: int = 64
    dispatchers: int = 1
    jobs: int = 0
    nodes: Optional[int] = None
    quick: bool = False
    max_attempts: int = 3
    default_deadline_seconds: Optional[float] = None
    max_deadline_seconds: float = 3600.0
    breaker_threshold: int = 3
    breaker_cooldown_seconds: float = 30.0
    lease_ttl_seconds: float = SERVICE_LEASE_TTL
    clock: Callable[[], float] = time.monotonic
    wall_clock: Callable[[], float] = time.time

    def __post_init__(self) -> None:
        if self.dispatchers < 1:
            raise ValueError(f"dispatchers must be >= 1 (got {self.dispatchers})")
        if self.jobs < 0:
            raise ValueError(f"jobs must be >= 0 (got {self.jobs})")
        if self.max_deadline_seconds <= 0:
            raise ValueError("max_deadline_seconds must be positive")
        if self.nodes is not None:
            if self.nodes < 1:
                raise ValueError(f"nodes must be >= 1 (got {self.nodes})")
            if self.jobs < 1:
                raise ValueError(
                    "nodes requires jobs >= 1 (the in-process backend "
                    "cannot be sharded across nodes)"
                )


@dataclass
class Submission:
    """One accepted campaign submission."""

    campaign_id: str
    tenant: str
    experiments: List[str]
    quick: bool
    accepted_wall: float
    deadline_wall: Optional[float] = None
    state: str = STATE_QUEUED
    detail: str = ""
    cache_hits: int = 0
    statuses: Dict[str, str] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, object]:
        return {
            "campaign_id": self.campaign_id,
            "tenant": self.tenant,
            "experiments": list(self.experiments),
            "quick": self.quick,
            "accepted_wall": self.accepted_wall,
            "deadline_wall": self.deadline_wall,
            "state": self.state,
            "detail": self.detail,
            "cache_hits": self.cache_hits,
            "statuses": dict(self.statuses),
            "status_url": f"/v1/campaigns/{self.campaign_id}",
        }


class CampaignService:
    """The service supervisor (see module docstring).

    Args:
        root: Service root directory (created if missing).
        registry: experiment id -> (runner, kwargs), as for
            :class:`~repro.runtime.engine.CampaignEngine`.
        quick_overrides: Reduced-size parameterizations (also the
            breaker's degradation target).
        config: :class:`ServiceConfig`.
    """

    def __init__(
        self,
        root,
        registry,
        quick_overrides=None,
        config: Optional[ServiceConfig] = None,
    ) -> None:
        self.root = Path(root)
        self.registry = dict(registry)
        self.quick_overrides = dict(quick_overrides or {})
        self.config = config or ServiceConfig()
        self.cache = ResultCache(self.root / CACHE_DIRNAME)
        self.admission = AdmissionController(
            queue_capacity=self.config.queue_capacity,
            max_total=self.config.max_queued,
        )
        self.breaker = CircuitBreaker(
            failure_threshold=self.config.breaker_threshold,
            cooldown_seconds=self.config.breaker_cooldown_seconds,
            clock=self.config.clock,
            on_transition=self._breaker_transition("service"),
            wall_clock=self.config.wall_clock,
        )
        self.fabric = None  # a NodeFabric when config.nodes is set
        self._lock = threading.Lock()
        self._submissions: Dict[str, Submission] = {}
        self._seq = 0
        self._draining = threading.Event()
        self._drained = threading.Event()
        self._dispatchers: List[threading.Thread] = []
        self._httpd: Optional[ThreadingHTTPServer] = None
        self._http_thread: Optional[threading.Thread] = None
        self._lease: Optional[Lease] = None
        self._journal: Optional[Journal] = None
        self._inflight = 0

    # -- lifecycle ---------------------------------------------------

    @property
    def campaigns_dir(self) -> Path:
        return self.root / CAMPAIGNS_DIRNAME

    @property
    def address(self) -> Tuple[str, int]:
        """The bound ``(host, port)`` (valid after :meth:`start`)."""
        if self._httpd is None:
            raise RuntimeError("service is not started")
        return self._httpd.server_address[0], self._httpd.server_address[1]

    def start(self) -> None:
        """Recover the WAL, take the lease, bind, and start serving.

        Raises :class:`~repro.runtime.errors.LeaseHeldError` when a
        live service already owns the root, and
        :class:`~repro.runtime.errors.JournalCorruptError` on mid-file
        WAL corruption (a torn tail is truncated silently — that is
        the expected crash signature).
        """
        self.root.mkdir(parents=True, exist_ok=True)
        wal_path = self.root / SERVICE_WAL
        truncate_torn_tail(wal_path)  # raises JournalCorruptError mid-file
        replay = read_journal(wal_path)
        self._lease = Lease.acquire(
            self.root,
            ttl_seconds=self.config.lease_ttl_seconds,
            token_floor=replay.last_token,
            wall_clock=self.config.wall_clock,
        )
        self._lease.start_heartbeat()
        self._journal = Journal(
            wal_path,
            token=self._lease.token,
            wall_clock=self.config.wall_clock,
        )
        self._recover_submissions(replay.records)
        if self.config.nodes is not None:
            from repro.service.dispatch import FabricConfig, NodeFabric

            self.fabric = NodeFabric(
                self.root,
                config=FabricConfig(
                    nodes=self.config.nodes,
                    breaker_failure_threshold=self.config.breaker_threshold,
                    breaker_cooldown_seconds=(
                        self.config.breaker_cooldown_seconds
                    ),
                ),
                on_event=self._fabric_event,
            )
            self.fabric.start()
        for index in range(self.config.dispatchers):
            thread = threading.Thread(
                target=self._dispatch_loop,
                name=f"service-dispatch-{index}",
                daemon=True,
            )
            thread.start()
            self._dispatchers.append(thread)
        self._httpd = ThreadingHTTPServer(
            (self.config.host, self.config.port),
            _make_handler(self),
        )
        self._httpd.daemon_threads = True
        self._http_thread = threading.Thread(
            target=self._httpd.serve_forever,
            name="service-http",
            daemon=True,
        )
        self._http_thread.start()
        host, port = self.address
        atomic_write_text(
            self.root / SERVICE_INFO,
            json.dumps(
                {
                    "host": host,
                    "port": port,
                    "pid": os.getpid(),
                    "started_wall": self.config.wall_clock(),
                },
                indent=1,
                sort_keys=True,
            ),
            site="service",
            durable=False,
        )
        self._write_metrics_snapshot()

    def _recover_submissions(self, records: List[Dict[str, object]]) -> None:
        """Rebuild submission states from the WAL; re-queue open ones.

        ``submission-accepted`` without a matching ``submission-done``
        means the previous incarnation was killed with the work still
        owed: it re-enters the queue under its *original* campaign id,
        so its run directory resumes exactly-once through journal
        recovery instead of starting over.
        """
        accepted: Dict[str, Dict[str, object]] = {}
        done: Dict[str, Dict[str, object]] = {}
        for record in records:
            campaign_id = record.get("campaign_id")
            if not isinstance(campaign_id, str):
                continue
            if record.get("type") == "submission-accepted":
                accepted[campaign_id] = record
            elif record.get("type") == "submission-done":
                done[campaign_id] = record
        for campaign_id, record in accepted.items():
            submission = Submission(
                campaign_id=campaign_id,
                tenant=str(record.get("tenant", "")),
                experiments=[str(x) for x in record.get("experiments", [])],
                quick=bool(record.get("quick", False)),
                accepted_wall=float(record.get("t_wall", 0.0)),
                deadline_wall=(
                    float(record["deadline_wall"])
                    if record.get("deadline_wall") is not None
                    else None
                ),
            )
            closing = done.get(campaign_id)
            if closing is not None:
                submission.state = str(closing.get("status", STATE_COMPLETE))
                submission.cache_hits = int(closing.get("cache_hits", 0))
            else:
                submission.state = STATE_QUEUED
                submission.detail = "re-queued by WAL recovery"
                self.admission.submit(
                    submission.tenant, submission, enforce_bounds=False
                )
                obs_metrics.inc("service.recovered_submissions")
            with self._lock:
                self._submissions[campaign_id] = submission
                self._seq += 1

    # -- breaker / fabric telemetry ----------------------------------

    def _breaker_transition(self, name: str) -> Callable[[str, str, float], None]:
        """An ``on_transition`` callback journaling state changes.

        The transition history (not just the current gauge) is what
        ``status --follow`` renders; the WAL is the durable witness.
        """

        def callback(old: str, new: str, t_wall: float) -> None:
            self._journal_breaker_transition(name, old, new, t_wall)

        return callback

    def _journal_breaker_transition(
        self, name: str, old: str, new: str, t_wall: float
    ) -> None:
        journal = self._journal
        if journal is None:
            return  # a transition before start()/after close: gauge only
        try:
            journal.append(
                "breaker-transition",
                breaker=str(name),
                from_state=old,
                to_state=new,
                at_wall=t_wall,
            )
        except OSError:
            pass  # telemetry must not wedge the breaker
        obs_metrics.inc("service.breaker_transitions")

    def _fabric_event(
        self, event: str, experiment_id: Optional[str], detail: Dict[str, object]
    ) -> None:
        """Route fabric events (node deaths, per-node breaker moves)."""
        if event == "breaker-transition":
            self._journal_breaker_transition(
                str(detail.get("breaker", "node")),
                str(detail.get("from_state", "")),
                str(detail.get("to_state", "")),
                float(detail.get("t_wall", self.config.wall_clock())),
            )

    # -- submission --------------------------------------------------

    def submit(
        self,
        tenant: str,
        experiments: List[str],
        quick: bool = False,
        deadline_seconds: Optional[float] = None,
    ) -> Submission:
        """Admit one campaign submission (the POST handler's core).

        Raises ``ValueError`` on malformed input, ``AdmissionClosed``
        while draining, and ``AdmissionRejected`` under backpressure.
        The 202 contract: this returns only after the acceptance is
        journaled, so an acknowledged submission survives SIGKILL.
        """
        if self._draining.is_set():
            raise AdmissionClosed("service is draining")
        if self.fabric is not None and self.fabric.live_node_count() == 0:
            # Every worker node is dead and respawns are exhausted or
            # in flight: accepting work we cannot run would hang the
            # client; refuse with an honest retry estimate instead.
            obs_metrics.inc("service.no_node_rejections")
            raise AdmissionRejected(
                "every worker node of the dispatch fabric is down "
                f"({self.fabric.node_count()} registered, 0 live); "
                "retry after the fabric respawns",
                scope="service",
                retry_after_seconds=max(
                    1, int(self.fabric.config.no_node_grace_seconds)
                ),
            )
        if not experiments:
            raise ValueError("experiments must be a non-empty list")
        unknown = [e for e in experiments if e not in self.registry]
        if unknown:
            raise ValueError(
                f"unknown experiments: {unknown}; "
                f"choices: {sorted(self.registry)}"
            )
        deadline = deadline_seconds
        if deadline is None:
            deadline = self.config.default_deadline_seconds
        if deadline is not None:
            if deadline <= 0:
                raise ValueError("deadline_seconds must be positive")
            deadline = min(deadline, self.config.max_deadline_seconds)
        now = self.config.wall_clock()
        with self._lock:
            self._seq += 1
            campaign_id = f"{tenant}-{self._seq:05d}"
        submission = Submission(
            campaign_id=campaign_id,
            tenant=tenant,
            experiments=list(experiments),
            quick=bool(quick) or self.config.quick,
            accepted_wall=now,
            deadline_wall=None if deadline is None else now + deadline,
        )
        # Admission first (the bounded-memory gate), then the WAL
        # record, then the 202: a crash after the journal append but
        # before the response re-queues work the client never saw
        # acknowledged — harmless; the reverse order would acknowledge
        # work a crash could lose.
        self.admission.submit(tenant, submission)
        with self._lock:
            self._submissions[campaign_id] = submission
        self._journal.append(
            "submission-accepted",
            campaign_id=campaign_id,
            tenant=tenant,
            experiments=list(submission.experiments),
            quick=submission.quick,
            deadline_wall=submission.deadline_wall,
        )
        obs_metrics.inc("service.submissions")
        return submission

    def get_submission(self, campaign_id: str) -> Optional[Submission]:
        with self._lock:
            return self._submissions.get(campaign_id)

    def run_dir_for(self, submission: Submission) -> Path:
        return self.campaigns_dir / submission.tenant / submission.campaign_id

    # -- dispatch ----------------------------------------------------

    def _dispatch_loop(self) -> None:
        while True:
            job = self.admission.next_job(timeout=0.2)
            if job is None:
                if self._draining.is_set():
                    return
                continue
            tenant, submission = job
            with self._lock:
                self._inflight += 1
            started = self.config.clock()
            try:
                self._run_submission(submission)
            except Exception as exc:  # noqa: BLE001 — the loop must survive
                self._finish_submission(
                    submission, STATE_FAILED, detail=f"dispatcher error: {exc}"
                )
            finally:
                with self._lock:
                    self._inflight -= 1
                self.admission.note_service_time(
                    self.config.clock() - started
                )
                self._write_metrics_snapshot()

    def _run_submission(self, submission: Submission) -> None:
        """Run one campaign in its own run directory, cache-aware."""
        submission.state = STATE_RUNNING
        budget: Optional[float] = None
        if submission.deadline_wall is not None:
            remaining = submission.deadline_wall - self.config.wall_clock()
            if remaining <= 0:
                self._finish_submission(
                    submission,
                    STATE_DEADLINE,
                    detail="deadline expired while queued",
                )
                return
            budget = remaining
        run_dir = self.run_dir_for(submission)
        store = CheckpointStore(run_dir)
        try:
            recovery = recover(run_dir)
        except JournalCorruptError as exc:
            self._finish_submission(
                submission, STATE_FAILED, detail=f"campaign journal corrupt: {exc}"
            )
            return
        try:
            lease = Lease.acquire(
                run_dir,
                ttl_seconds=self.config.lease_ttl_seconds,
                token_floor=recovery.last_token if recovery else 0,
                wall_clock=self.config.wall_clock,
            )
        except LeaseHeldError as exc:
            self._finish_submission(
                submission, STATE_FAILED, detail=f"campaign lease refused: {exc}"
            )
            return
        lease.start_heartbeat()
        journal = Journal(
            run_dir / "journal.wal",
            token=lease.token,
            wall_clock=self.config.wall_clock,
        )
        if recovery is not None:
            journal.append("recovered", **recovery.to_dict())
        event_log = EventLog(store.events_path)
        pool_factory = None
        if self.fabric is not None:
            from repro.service.dispatch import DispatchPool

            fabric = self.fabric

            def pool_factory(engine):
                return DispatchPool(engine, fabric)

        engine = CachedCampaignEngine(
            self.registry,
            quick_overrides=self.quick_overrides,
            config=EngineConfig(
                quick=submission.quick,
                budget_seconds=budget,
                max_attempts=self.config.max_attempts,
                jobs=self.config.jobs,
            ),
            store=store,
            event_log=event_log,
            journal=journal,
            recovery=recovery,
            cache=self.cache,
            breaker=self.breaker,
            pool_factory=pool_factory,
        )
        try:
            report = engine.run(submission.experiments)
        except KeyboardInterrupt:
            # The engine already flushed a partial summary; the WAL
            # keeps the submission open so the next incarnation
            # resumes it.
            raise
        finally:
            event_log.close()
            journal.close()
            lease.release()
        submission.statuses = {
            o.experiment_id: o.status for o in report.outcomes
        }
        submission.cache_hits = len(engine.cache_hits)
        self._finish_submission(
            submission,
            STATE_COMPLETE if report.succeeded else STATE_FAILED,
            detail="" if report.succeeded else f"failed: {report.failed_ids}",
        )

    def _finish_submission(
        self, submission: Submission, state: str, detail: str = ""
    ) -> None:
        submission.state = state
        submission.detail = detail
        obs_metrics.inc(f"service.submissions_{state.replace('-', '_')}")
        try:
            self._journal.append(
                "submission-done",
                campaign_id=submission.campaign_id,
                status=state,
                cache_hits=submission.cache_hits,
            )
        except OSError:
            pass  # WAL trouble must not wedge the dispatcher; recovery re-runs

    # -- drain -------------------------------------------------------

    @property
    def draining(self) -> bool:
        return self._draining.is_set()

    def drain(self, timeout: Optional[float] = None) -> bool:
        """Graceful shutdown: stop admitting, finish in-flight work.

        Queued-but-unstarted submissions stay journaled as accepted in
        the WAL — the next incarnation re-queues them — while every
        in-flight campaign runs to completion (its own checkpoints and
        journal make a SIGKILL mid-drain resumable exactly-once).
        Returns True when everything wound down within ``timeout``.
        """
        self._draining.set()
        self.admission.close()
        # Pull still-queued submissions out of the dispatch queue:
        # they remain WAL-accepted (the durable truth) and will be
        # re-queued by the next incarnation's recovery.
        parked = self.admission.drain_remaining()
        for _, submission in parked:
            submission.detail = "parked by drain; resumes on next start"
        clean = True
        for thread in self._dispatchers:
            thread.join(timeout=timeout)
            clean = clean and not thread.is_alive()
        if self.fabric is not None:
            self.fabric.stop()
        if self._httpd is not None:
            self._httpd.shutdown()
            self._httpd.server_close()
            if self._http_thread is not None:
                self._http_thread.join(timeout=5.0)
        try:
            if self._journal is not None:
                self._journal.append(
                    "interrupted",
                    completed=len(
                        [
                            s
                            for s in self._submissions.values()
                            if s.state in TERMINAL_STATES
                        ]
                    ),
                    requested=len(self._submissions),
                    parked=len(parked),
                )
        except OSError:
            pass
        self._write_metrics_snapshot()
        if self._journal is not None:
            self._journal.close()
        if self._lease is not None:
            self._lease.release()
        obs_metrics.inc("service.drains")
        self._drained.set()
        return clean

    # -- observability ------------------------------------------------

    def _write_metrics_snapshot(self) -> None:
        """Refresh ``<root>/metrics.json`` (best-effort, atomic)."""
        if not obs_metrics.obs_enabled():
            return
        snapshot = {
            "format": obs_metrics.METRICS_FORMAT,
            "written_wall": self.config.wall_clock(),
            "trace_id": None,
            "campaign": obs_metrics.get_registry().snapshot(),
            "attempts": {},
        }
        try:
            atomic_write_text(
                self.root / obs_metrics.METRICS_FILENAME,
                json.dumps(snapshot, indent=1, sort_keys=True),
                site="metrics",
                durable=False,
            )
        except OSError:
            pass

    def describe(self) -> Dict[str, object]:
        """Service-level rollup (also served at ``GET /v1/service``)."""
        with self._lock:
            submissions = list(self._submissions.values())
            inflight = self._inflight
        counts: Dict[str, int] = {}
        for submission in submissions:
            counts[submission.state] = counts.get(submission.state, 0) + 1
        return {
            "draining": self.draining,
            "inflight": inflight,
            "queue_depths": self.admission.depths(),
            "pending_total": self.admission.pending_total(),
            "breaker": self.breaker.describe(),
            "submissions": counts,
            "nodes": (
                self.fabric.describe() if self.fabric is not None else None
            ),
        }


# -- HTTP plumbing ---------------------------------------------------------


def _make_handler(service: CampaignService):
    """Bind a BaseHTTPRequestHandler subclass to ``service``."""

    class Handler(BaseHTTPRequestHandler):
        server_version = "repro-service/1"
        protocol_version = "HTTP/1.1"

        # -- helpers --

        def _send_json(
            self,
            status: int,
            payload: Dict[str, object],
            headers: Optional[Dict[str, str]] = None,
        ) -> None:
            body = json.dumps(payload, indent=1, sort_keys=True).encode("utf-8")
            self.send_response(status)
            self.send_header("Content-Type", "application/json")
            self.send_header("Content-Length", str(len(body)))
            for name, value in (headers or {}).items():
                self.send_header(name, value)
            self.end_headers()
            self.wfile.write(body)

        def log_message(self, format: str, *args: object) -> None:
            pass  # request logging goes through metrics, not stderr

        # -- routes --

        def do_POST(self) -> None:  # noqa: N802 - http.server API
            if self.path.rstrip("/") != "/v1/campaigns":
                self._send_json(404, {"error": f"no such route {self.path}"})
                return
            try:
                length = int(self.headers.get("Content-Length", "0"))
                raw = self.rfile.read(length) if length else b"{}"
                body = json.loads(raw.decode("utf-8"))
                if not isinstance(body, dict):
                    raise ValueError("body must be a JSON object")
            except (ValueError, json.JSONDecodeError) as exc:
                self._send_json(400, {"error": f"bad request body: {exc}"})
                return
            tenant = body.get("tenant")
            experiments = body.get("experiments")
            if not isinstance(tenant, str) or not isinstance(experiments, list):
                self._send_json(
                    400,
                    {"error": "body needs string 'tenant' and list 'experiments'"},
                )
                return
            deadline = body.get("deadline_seconds")
            if deadline is not None and not isinstance(deadline, (int, float)):
                self._send_json(400, {"error": "deadline_seconds must be a number"})
                return
            try:
                submission = service.submit(
                    tenant,
                    [str(e) for e in experiments],
                    quick=bool(body.get("quick", False)),
                    deadline_seconds=deadline,
                )
            except ValueError as exc:
                self._send_json(400, {"error": str(exc)})
                return
            except AdmissionClosed:
                self._send_json(
                    503,
                    {"error": "service is draining; resubmit elsewhere"},
                    headers={"Retry-After": "30"},
                )
                return
            except AdmissionRejected as exc:
                status = 429 if exc.scope == "tenant" else 503
                self._send_json(
                    status,
                    {
                        "error": str(exc),
                        "scope": exc.scope,
                        "retry_after_seconds": exc.retry_after_seconds,
                    },
                    headers={"Retry-After": str(exc.retry_after_seconds)},
                )
                return
            except OSError as exc:
                self._send_json(500, {"error": f"journal write failed: {exc}"})
                return
            self._send_json(202, submission.to_dict())

        def do_GET(self) -> None:  # noqa: N802 - http.server API
            path = self.path.rstrip("/") or "/"
            if path == "/healthz":
                if service.fabric is None:
                    self._send_json(200, {"ok": True})
                    return
                # Per-node liveness: healthy only while at least one
                # worker node is alive to run campaigns.
                fabric_state = service.fabric.describe()
                ok = fabric_state["live"] > 0
                self._send_json(
                    200 if ok else 503,
                    {"ok": ok, "nodes": fabric_state},
                    headers=None if ok else {"Retry-After": "5"},
                )
                return
            if path == "/readyz":
                if service.draining:
                    self._send_json(
                        503, {"ready": False, "reason": "draining"},
                        headers={"Retry-After": "30"},
                    )
                else:
                    self._send_json(200, {"ready": True})
                return
            if path == "/metrics":
                text = obs_metrics.get_registry().to_prometheus()
                body = text.encode("utf-8")
                self.send_response(200)
                self.send_header(
                    "Content-Type", "text/plain; version=0.0.4"
                )
                self.send_header("Content-Length", str(len(body)))
                self.end_headers()
                self.wfile.write(body)
                return
            if path == "/v1/service":
                self._send_json(200, service.describe())
                return
            if path.startswith("/v1/campaigns/"):
                rest = path[len("/v1/campaigns/") :]
                want_result = rest.endswith("/result")
                campaign_id = rest[: -len("/result")] if want_result else rest
                submission = service.get_submission(campaign_id)
                if submission is None:
                    self._send_json(
                        404, {"error": f"unknown campaign {campaign_id!r}"}
                    )
                    return
                if not want_result:
                    self._send_json(200, submission.to_dict())
                    return
                if submission.state not in TERMINAL_STATES:
                    self._send_json(
                        409,
                        {
                            "error": f"campaign is {submission.state}",
                            "state": submission.state,
                        },
                    )
                    return
                store = CheckpointStore(service.run_dir_for(submission))
                try:
                    summary = store.read_summary()
                except Exception as exc:  # noqa: BLE001 - corrupt on disk
                    self._send_json(
                        500, {"error": f"summary unreadable: {exc}"}
                    )
                    return
                self._send_json(
                    200,
                    {
                        "campaign_id": campaign_id,
                        "state": submission.state,
                        "cache_hits": submission.cache_hits,
                        "summary": summary,
                    },
                )
                return
            self._send_json(404, {"error": f"no such route {self.path}"})

    return Handler
