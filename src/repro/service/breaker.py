"""Circuit breaker around the supervised worker pool.

A run of consecutive worker-level failures — crashes or hard-timeout
kills — usually means the *environment* is sick (OOM-killer sweep,
cgroup pressure, a bad node), not the individual experiment.  Retrying
full-scale work into a sick pool burns the whole budget proving the
same point.  The breaker implements the classic three-state machine:

- **closed** (healthy): full-scale work flows; consecutive
  worker-category failures are counted.
- **open** (tripped): after ``failure_threshold`` consecutive
  ``worker-crash`` / ``worker-timeout`` failures, full-scale dispatch
  is refused for ``cooldown_seconds``; the service degrades those
  experiments to their ``QUICK_OVERRIDES`` parameterization (small
  enough to survive a sick pool, honest enough to be labelled
  degraded) rather than failing submissions outright.
- **half-open** (probing): after the cooldown, exactly *one*
  full-scale probe is allowed through.  Success closes the breaker;
  another worker failure re-opens it and restarts the cooldown.

Failures of other categories (analysis bugs, validation rejections)
say nothing about pool health and *reset* the consecutive count, as
does any success.

The clock is injectable so every transition is deterministic under
test.  State changes are exported as the ``service.breaker.state``
gauge (0 closed, 1 half-open, 2 open) plus trip/probe counters, and
every state *transition* is additionally delivered to an optional
``on_transition(old, new, t_wall)`` callback — the service uses it to
write ``breaker-transition`` records into its event log so ``status``
can show the closed→open→half-open history with timestamps, not just
the current gauge.  A ``gauge_prefix`` makes the breaker reusable per
node (``node.breaker.<id>.state``) without colliding with the
service-wide instance.
"""

from __future__ import annotations

import threading
import time
from typing import Callable, List, Optional, Tuple

from repro.obs import metrics as obs_metrics

STATE_CLOSED = "closed"
STATE_OPEN = "open"
STATE_HALF_OPEN = "half-open"

#: Gauge encoding of the state (Prometheus-friendly).
STATE_GAUGE = {STATE_CLOSED: 0, STATE_HALF_OPEN: 1, STATE_OPEN: 2}

#: Failure categories that indict the worker pool rather than the
#: experiment (see :mod:`repro.runtime.errors`).
TRIP_CATEGORIES: Tuple[str, ...] = ("worker-crash", "worker-timeout")


class CircuitBreaker:
    """Thread-safe three-state circuit breaker (see module docstring).

    Args:
        failure_threshold: Consecutive worker-category failures that
            trip the breaker.
        cooldown_seconds: How long the breaker stays open before it
            lets one half-open probe through.
        clock: Injectable monotonic time source.
        gauge_prefix: Metric namespace (default ``service.breaker``;
            per-node instances pass ``node.breaker.<node_id>``).
        on_transition: Optional callback invoked (outside the lock)
            once per state change as ``(old_state, new_state, t_wall)``.
        wall_clock: Wall time stamped onto transitions.
    """

    def __init__(
        self,
        failure_threshold: int = 3,
        cooldown_seconds: float = 30.0,
        clock: Callable[[], float] = time.monotonic,
        gauge_prefix: str = "service.breaker",
        on_transition: Optional[Callable[[str, str, float], None]] = None,
        wall_clock: Callable[[], float] = time.time,
    ) -> None:
        if failure_threshold < 1:
            raise ValueError(
                f"failure_threshold must be >= 1 (got {failure_threshold})"
            )
        if cooldown_seconds < 0:
            raise ValueError(
                f"cooldown_seconds must be >= 0 (got {cooldown_seconds})"
            )
        self.failure_threshold = failure_threshold
        self.cooldown_seconds = cooldown_seconds
        self.gauge_prefix = gauge_prefix
        self.on_transition = on_transition
        self._clock = clock
        self._wall_clock = wall_clock
        self._lock = threading.Lock()
        self._state = STATE_CLOSED
        self._consecutive = 0
        self._opened_at = 0.0
        self._probe_outstanding = False
        self._pending_transitions: List[Tuple[str, str, float]] = []
        self._export()

    # -- introspection -----------------------------------------------

    @property
    def state(self) -> str:
        with self._lock:
            self._maybe_half_open_locked()
            state = self._state
        self._flush_transitions()
        return state

    @property
    def consecutive_failures(self) -> int:
        with self._lock:
            return self._consecutive

    def describe(self) -> dict:
        with self._lock:
            self._maybe_half_open_locked()
            description = {
                "state": self._state,
                "consecutive_failures": self._consecutive,
                "failure_threshold": self.failure_threshold,
                "cooldown_seconds": self.cooldown_seconds,
            }
        self._flush_transitions()
        return description

    def _set_state_locked(self, new_state: str) -> None:
        """Change state, queueing the transition for delivery.

        The callback must run *outside* the lock (it may log, write
        events, or re-enter the breaker), so transitions queue here and
        every public entry point drains the queue after releasing.
        """
        if new_state == self._state:
            return
        self._pending_transitions.append(
            (self._state, new_state, self._wall_clock())
        )
        self._state = new_state

    def _flush_transitions(self) -> None:
        if self.on_transition is None:
            self._pending_transitions.clear()
            return
        while True:
            with self._lock:
                if not self._pending_transitions:
                    return
                old, new, t_wall = self._pending_transitions.pop(0)
            self.on_transition(old, new, t_wall)

    # -- the dispatch gate -------------------------------------------

    def allow_full_scale(self) -> bool:
        """May the next dispatch run at full scale?

        Closed: yes.  Open: no, until the cooldown elapses — then the
        breaker goes half-open and this call *claims* the single probe
        slot (returning True exactly once until the probe resolves).
        Half-open with the probe already outstanding: no.
        """
        with self._lock:
            self._maybe_half_open_locked()
            if self._state == STATE_CLOSED:
                allowed = True
            elif self._state == STATE_HALF_OPEN and not self._probe_outstanding:
                self._probe_outstanding = True
                obs_metrics.inc(f"{self.gauge_prefix}.probes")
                allowed = True
            else:
                allowed = False
        self._flush_transitions()
        return allowed

    def _maybe_half_open_locked(self) -> None:
        if (
            self._state == STATE_OPEN
            and self._clock() - self._opened_at >= self.cooldown_seconds
        ):
            self._set_state_locked(STATE_HALF_OPEN)
            self._probe_outstanding = False
            self._export()

    # -- outcome feedback --------------------------------------------

    def record_success(self) -> None:
        """A full-scale dispatch finished without worker failure."""
        with self._lock:
            self._maybe_half_open_locked()
            self._consecutive = 0
            if self._state != STATE_CLOSED:
                self._set_state_locked(STATE_CLOSED)
                self._probe_outstanding = False
                obs_metrics.inc(f"{self.gauge_prefix}.closes")
            self._export()
        self._flush_transitions()

    def record_failure(self, category: str) -> None:
        """One attempt failed with ``category``.

        Only worker-pool categories count toward tripping; any other
        failure category resets the consecutive run (the pool answered
        — the experiment itself was wrong).
        """
        with self._lock:
            self._maybe_half_open_locked()
            if category not in TRIP_CATEGORIES:
                self._consecutive = 0
                if self._state == STATE_HALF_OPEN:
                    # The probe failed for experiment-level reasons,
                    # but the pool itself answered: that is a healthy
                    # pool, so the probe counts as pool success.
                    self._set_state_locked(STATE_CLOSED)
                    self._probe_outstanding = False
                    obs_metrics.inc(f"{self.gauge_prefix}.closes")
                self._export()
            else:
                self._consecutive += 1
                if self._state == STATE_HALF_OPEN:
                    # The probe failed: straight back to open.
                    self._trip_locked()
                elif (
                    self._state == STATE_CLOSED
                    and self._consecutive >= self.failure_threshold
                ):
                    self._trip_locked()
                else:
                    self._export()
        self._flush_transitions()

    def _trip_locked(self) -> None:
        self._set_state_locked(STATE_OPEN)
        self._opened_at = self._clock()
        self._probe_outstanding = False
        obs_metrics.inc(f"{self.gauge_prefix}.trips")
        self._export()

    def _export(self) -> None:
        obs_metrics.set_gauge(
            f"{self.gauge_prefix}.state", STATE_GAUGE[self._state]
        )
        obs_metrics.set_gauge(
            f"{self.gauge_prefix}.consecutive_failures", self._consecutive
        )
