"""Fault-tolerant multi-node dispatch fabric.

The worker pool (:mod:`repro.runtime.workers`) contains failures of a
*process*; this module contains failures of a *node*.  A campaign's
experiments are sharded across N worker nodes — separate long-lived
processes standing in for hosts (:mod:`repro.service.node`), each
running the existing supervised worker pool — and the dispatcher keeps
the campaign correct while nodes die, partition, straggle, and come
back from the dead carrying stale results:

- **Node registry with fenced incarnations.**  Every node is spawned
  with an incarnation token; a node declared dead is respawned under
  ``token + 1``, and any message still carrying the old token — a
  partitioned node's buffered results, a zombie's heartbeat — is
  rejected and answered with ``fenced`` (the node exits).  This is the
  lease protocol of :mod:`repro.runtime.lease` applied per node.
- **Assignment WAL.**  ``<run_dir>/dispatch.wal`` is CRC-framed exactly
  like ``journal.wal`` and records every ``dispatch-assign``,
  ``dispatch-requeue``, ``dispatch-hedge``, ``dispatch-complete``, and
  ``dispatch-fenced`` per ``attempt_uid``, so recovery and ``validate``
  can prove the exactly-once-recorded discipline
  (at-least-once *executed*, exactly-once *recorded*).
- **Failover re-dispatch.**  A node death (socket loss, heartbeat
  older than the TTL on the *dispatcher's monotonic clock*, process
  exit) requeues its open assignments onto live nodes transparently —
  inside the same engine attempt, so a completed campaign's
  ``summary.json`` is byte-identical to an undisturbed single-node run.
- **Straggler hedging.**  Once enough completions exist to estimate a
  p95 duration, an assignment outliving it is duplicated onto a second
  node; the first result wins and the loser is fenced out
  (``dispatch-fenced`` with reason ``duplicate-result``).
- **Per-node circuit breakers.**  Each node id carries a
  :class:`~repro.service.breaker.CircuitBreaker`
  (``node.breaker.<id>.*`` gauges); nodes with open breakers are
  deprioritized for new assignments, and breaker transitions flow into
  the event log.

The engine sees none of this: :class:`DispatchPool` subclasses
:class:`~repro.runtime.workers.WorkerPool` and swaps the
``WorkerSupervisor`` for a :class:`DispatchSession`, which implements
the same ``run_attempt(spec) / kill_all() / live_count()`` surface.
Retry, degradation, journaling, checkpointing and summaries are
untouched — the fabric is purely a different place to run an attempt.
"""

from __future__ import annotations

import json
import os
import signal
import socket
import subprocess
import sys
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional, Set, Tuple

from repro.experiments.runner import ExperimentResult
from repro.obs import metrics as obs_metrics
from repro.runtime.errors import (
    ExperimentFailure,
    FencingViolationError,
    JournalCorruptError,
    NoLiveNodesError,
    WorkerCrashError,
    WorkerTimeoutError,
)
from repro.runtime.iofault import atomic_write_text
from repro.runtime.journal import Journal, attempt_uid, truncate_torn_tail
from repro.runtime.workers import AttemptSpec, WorkerPool, worker_environment
from repro.service.breaker import CircuitBreaker

#: The assignment WAL inside a campaign run directory.
DISPATCH_WAL_FILENAME = "dispatch.wal"

#: Read-only per-node health snapshot (for ``status``), refreshed
#: atomically on every registry change.
NODES_SNAPSHOT_FILENAME = "nodes.json"

#: Module invoked as the node entry point (``python -m ...``).
NODE_MODULE = "repro.service.node"

#: Environment variable carrying chaos fault directives for nodes
#: (see :func:`repro.service.node.parse_fault_directives`).
NODE_FAULT_ENV = "REPRO_NODE_FAULT"

#: Reasons stamped into ``dispatch-fenced`` WAL records.
FENCE_STALE_NODE = "stale-node-token"
FENCE_STALE_ENGINE = "stale-engine-token"
FENCE_SUPERSEDED = "superseded-assignment"
FENCE_DUPLICATE = "duplicate-result"
FENCE_UNKNOWN = "unknown-assignment"


@dataclass
class FabricConfig:
    """Policy knobs of the dispatch fabric.

    Attributes:
        nodes: Worker-node processes to run.
        heartbeat_interval_seconds: How often nodes heartbeat.
        heartbeat_ttl_seconds: A node silent for longer (on the
            dispatcher's monotonic clock) is declared dead.
        hedge_min_seconds: Floor of the hedging trigger.
        hedge_p95_factor: Trigger = ``max(floor, p95 × factor)``.
        hedge_min_samples: Completions required before the p95 is
            trusted; below it no hedging happens (everything looks like
            a straggler during warm-up).
        max_respawns_per_node: Deaths after which a node id stays dead.
        no_node_grace_seconds: How long an unassignable ticket waits
            for a respawn before failing with
            :class:`~repro.runtime.errors.NoLiveNodesError`.
        breaker_failure_threshold / breaker_cooldown_seconds: Per-node
            circuit breaker policy.
        connect_timeout_seconds: How long :meth:`NodeFabric.start`
            waits for the first node to say hello.
    """

    nodes: int = 2
    heartbeat_interval_seconds: float = 0.5
    heartbeat_ttl_seconds: float = 3.0
    hedge_min_seconds: float = 5.0
    hedge_p95_factor: float = 2.0
    hedge_min_samples: int = 3
    max_respawns_per_node: int = 5
    no_node_grace_seconds: float = 15.0
    breaker_failure_threshold: int = 3
    breaker_cooldown_seconds: float = 10.0
    connect_timeout_seconds: float = 30.0

    def __post_init__(self) -> None:
        if self.nodes < 1:
            raise ValueError(f"nodes must be >= 1 (got {self.nodes})")
        if self.heartbeat_interval_seconds <= 0:
            raise ValueError("heartbeat_interval_seconds must be positive")
        if self.heartbeat_ttl_seconds <= self.heartbeat_interval_seconds:
            raise ValueError(
                "heartbeat_ttl_seconds must exceed the heartbeat interval"
            )


class _NodeState:
    """Registry entry for one node incarnation."""

    def __init__(self, node_id: str, token: int) -> None:
        self.node_id = node_id
        self.token = token
        self.proc: Optional[subprocess.Popen] = None
        self.pid: Optional[int] = None
        self.conn: Optional[socket.socket] = None
        self.connected = False  # hello received and welcomed
        self.alive = True  # not yet declared dead
        self.last_seen = time.monotonic()
        self.last_heartbeat_wall = 0.0
        self.inflight: Set[str] = set()
        self.deaths_before = 0  # deaths of earlier incarnations
        self._send_lock = threading.Lock()

    def send(self, message: Dict[str, object]) -> bool:
        """Best-effort line-framed send; False when the link is gone."""
        conn = self.conn
        if conn is None:
            return False
        data = (json.dumps(message, sort_keys=True) + "\n").encode("utf-8")
        try:
            with self._send_lock:
                conn.sendall(data)
        except OSError:
            return False
        return True


class _Ticket:
    """One engine attempt travelling through the fabric."""

    def __init__(
        self,
        spec: AttemptSpec,
        attempt_uid: str,
        session: "DispatchSession",
    ) -> None:
        self.spec = spec
        self.attempt_uid = attempt_uid
        self.session = session
        self.event = threading.Event()
        self.result: Optional[ExperimentResult] = None
        self.failure: Optional[ExperimentFailure] = None
        self.completed = False
        self.hedged = False
        self.assignments: Dict[str, str] = {}  # assignment_id -> node_id
        self.first_dispatch_mono: Optional[float] = None
        self.unassigned_deadline: Optional[float] = None
        self.obs: Optional[Dict[str, object]] = None


class NodeFabric:
    """Spawns, registers, monitors, fences, and feeds worker nodes.

    One fabric may serve many :class:`DispatchSession` instances
    (the service shares one fleet across campaign submissions); each
    session owns its campaign's ``dispatch.wal``.

    Args:
        run_dir: Where ``nodes.json`` (and node logs) live.
        config: Fabric policy.
        on_event: Optional ``(event, experiment_id, detail)`` callback
            mirroring the worker-supervisor event hook.
        python: Interpreter for node processes.
    """

    def __init__(
        self,
        run_dir: os.PathLike,
        config: Optional[FabricConfig] = None,
        on_event: Optional[Callable[[str, Optional[str], Dict[str, object]], None]] = None,
        python: Optional[str] = None,
    ) -> None:
        self.run_dir = Path(run_dir)
        self.config = config or FabricConfig()
        self.on_event = on_event
        self.python = python or sys.executable
        self._lock = threading.RLock()
        self._nodes: Dict[str, _NodeState] = {}
        self._breakers: Dict[str, CircuitBreaker] = {}
        self._zombies: List[subprocess.Popen] = []
        self._assignments: Dict[str, _Ticket] = {}
        self._unassigned: List[_Ticket] = []
        self._durations: List[float] = []
        self._assignment_seq = 0
        self._listener: Optional[socket.socket] = None
        self._port: Optional[int] = None
        self._stopping = threading.Event()
        self._threads: List[threading.Thread] = []
        self._started = False

    # -- lifecycle ----------------------------------------------------

    @property
    def started(self) -> bool:
        return self._started

    def start(self) -> None:
        """Bind the listener, spawn every node, wait for the first hello."""
        if self._started:
            return
        self._stopping.clear()
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        listener.bind(("127.0.0.1", 0))
        listener.listen(self.config.nodes * 2 + 4)
        listener.settimeout(0.25)
        self._listener = listener
        self._port = listener.getsockname()[1]
        self._started = True
        accept = threading.Thread(
            target=self._accept_loop, name="fabric-accept", daemon=True
        )
        monitor = threading.Thread(
            target=self._monitor_loop, name="fabric-monitor", daemon=True
        )
        self._threads = [accept, monitor]
        with self._lock:
            for index in range(self.config.nodes):
                self._spawn_node_locked(f"node-{index}", token=1)
        accept.start()
        monitor.start()
        deadline = time.monotonic() + self.config.connect_timeout_seconds
        while time.monotonic() < deadline:
            if self.live_node_count() > 0:
                return
            time.sleep(0.05)
        raise RuntimeError(
            f"no worker node connected within "
            f"{self.config.connect_timeout_seconds:.0f}s "
            f"(spawned {self.config.nodes})"
        )

    def stop(self, term_grace_seconds: float = 5.0) -> None:
        """Graceful shutdown: ask nodes to exit, then make sure of it."""
        if not self._started:
            return
        self._stopping.set()
        with self._lock:
            nodes = list(self._nodes.values())
            zombies = list(self._zombies)
        for node in nodes:
            node.send({"type": "shutdown"})
        deadline = time.monotonic() + term_grace_seconds
        procs = [n.proc for n in nodes if n.proc is not None] + zombies
        for proc in procs:
            remaining = deadline - time.monotonic()
            if remaining > 0:
                try:
                    proc.wait(timeout=remaining)
                except subprocess.TimeoutExpired:
                    pass
            if proc.poll() is None:
                _killpg(proc, signal.SIGKILL)
                proc.wait()
        if self._listener is not None:
            try:
                self._listener.close()
            except OSError:
                pass
        for thread in self._threads:
            thread.join(timeout=5.0)
        self._threads = []
        self._started = False
        self._snapshot_locked_or_not()

    def kill_nodes(self, term_grace_seconds: float = 2.0) -> int:
        """TERM every node process, grace, then KILL (interrupt path)."""
        with self._lock:
            procs = [
                n.proc for n in self._nodes.values() if n.proc is not None
            ] + list(self._zombies)
        live = [p for p in procs if p.poll() is None]
        for proc in live:
            _killpg(proc, signal.SIGTERM)
        deadline = time.monotonic() + term_grace_seconds
        for proc in live:
            remaining = deadline - time.monotonic()
            if remaining > 0:
                try:
                    proc.wait(timeout=remaining)
                except subprocess.TimeoutExpired:
                    pass
            if proc.poll() is None:
                _killpg(proc, signal.SIGKILL)
        return len(live)

    # -- spawning and the registry ------------------------------------

    def _spawn_node_locked(self, node_id: str, token: int) -> _NodeState:
        state = _NodeState(node_id, token)
        previous = self._nodes.get(node_id)
        if previous is not None:
            state.deaths_before = previous.deaths_before + 1
        cmd = [
            self.python,
            "-m",
            NODE_MODULE,
            "--connect",
            f"127.0.0.1:{self._port}",
            "--node-id",
            node_id,
            "--node-token",
            str(token),
            "--heartbeat-interval",
            str(self.config.heartbeat_interval_seconds),
        ]
        log_dir = self.run_dir / "node-logs"
        log_dir.mkdir(parents=True, exist_ok=True)
        log = open(log_dir / f"{node_id}.log", "ab")
        try:
            state.proc = subprocess.Popen(
                cmd,
                stdin=subprocess.DEVNULL,
                stdout=log,
                stderr=subprocess.STDOUT,
                env=worker_environment(),
                start_new_session=True,
            )
        finally:
            log.close()
        state.pid = state.proc.pid
        self._nodes[node_id] = state
        self._breakers.setdefault(
            node_id,
            CircuitBreaker(
                failure_threshold=self.config.breaker_failure_threshold,
                cooldown_seconds=self.config.breaker_cooldown_seconds,
                gauge_prefix=f"node.breaker.{node_id}",
                on_transition=self._breaker_transition(node_id),
            ),
        )
        obs_metrics.inc("node.spawns")
        self._emit(
            "node-spawned",
            None,
            node_id=node_id,
            node_token=token,
            pid=state.pid,
        )
        self._export_locked()
        return state

    def _breaker_transition(
        self, node_id: str
    ) -> Callable[[str, str, float], None]:
        def callback(old: str, new: str, t_wall: float) -> None:
            self._emit(
                "breaker-transition",
                None,
                breaker=f"node:{node_id}",
                node_id=node_id,
                from_state=old,
                to_state=new,
                t_wall=t_wall,
            )

        return callback

    def breaker(self, node_id: str) -> CircuitBreaker:
        with self._lock:
            return self._breakers[node_id]

    def live_node_count(self) -> int:
        with self._lock:
            return sum(
                1
                for n in self._nodes.values()
                if n.alive and n.connected
            )

    def node_count(self) -> int:
        with self._lock:
            return len(self._nodes)

    def describe(self) -> Dict[str, object]:
        """Per-node health for ``/healthz`` and ``status``."""
        with self._lock:
            nodes = {
                node.node_id: {
                    "pid": node.pid,
                    "token": node.token,
                    "alive": bool(node.alive and node.connected),
                    "inflight": len(node.inflight),
                    "deaths": node.deaths_before,
                    "last_heartbeat_wall": node.last_heartbeat_wall,
                    "breaker": self._breakers[node.node_id].state,
                }
                for node in self._nodes.values()
            }
        return {
            "nodes": nodes,
            "live": sum(1 for n in nodes.values() if n["alive"]),
            "total": len(nodes),
        }

    def _export_locked(self) -> None:
        live = sum(
            1 for n in self._nodes.values() if n.alive and n.connected
        )
        obs_metrics.set_gauge("node.alive", live)
        obs_metrics.set_gauge("node.total", len(self._nodes))
        self._snapshot_locked_or_not()

    def _snapshot_locked_or_not(self) -> None:
        """Refresh ``nodes.json`` (best effort, never fatal)."""
        try:
            payload = self.describe()
            payload["written_wall"] = time.time()
            atomic_write_text(
                self.run_dir / NODES_SNAPSHOT_FILENAME,
                json.dumps(payload, indent=1, sort_keys=True),
                site="nodes-snapshot",
                durable=False,
            )
        except OSError:
            pass

    # -- the accept / read side ---------------------------------------

    def _accept_loop(self) -> None:
        while not self._stopping.is_set():
            try:
                conn, _ = self._listener.accept()
            except socket.timeout:
                continue
            except OSError:
                return
            thread = threading.Thread(
                target=self._serve_connection,
                args=(conn,),
                name="fabric-conn",
                daemon=True,
            )
            thread.start()

    def _serve_connection(self, conn: socket.socket) -> None:
        conn.settimeout(None)
        reader = conn.makefile("r", encoding="utf-8", newline="\n")
        try:
            hello_line = reader.readline()
            if not hello_line:
                return
            try:
                hello = json.loads(hello_line)
            except json.JSONDecodeError:
                return
            if hello.get("type") != "hello":
                return
            node_id = str(hello.get("node_id", ""))
            token = int(hello.get("node_token", 0))
            with self._lock:
                node = self._nodes.get(node_id)
                if node is None or node.token != token or not node.alive:
                    # A stale incarnation (or an impostor) dialling in:
                    # fence it out before it can say anything else.
                    obs_metrics.inc("node.fenced_hellos")
                    try:
                        conn.sendall(b'{"type": "fenced"}\n')
                    except OSError:
                        pass
                    return
                node.conn = conn
                node.connected = True
                node.last_seen = time.monotonic()
                node.last_heartbeat_wall = time.time()
                self._export_locked()
            node.send({"type": "welcome", "node_id": node_id})
            self._emit(
                "node-connected", None, node_id=node_id, node_token=token
            )
            self._read_messages(reader, node)
        finally:
            try:
                reader.close()
            except OSError:
                pass
            try:
                conn.close()
            except OSError:
                pass

    def _read_messages(self, reader, node: _NodeState) -> None:
        while not self._stopping.is_set():
            try:
                line = reader.readline()
            except OSError:
                line = ""
            if not line:
                break
            try:
                message = json.loads(line)
            except json.JSONDecodeError:
                continue
            kind = message.get("type")
            if kind == "heartbeat":
                self._handle_heartbeat(node, message)
            elif kind == "result":
                self._handle_result(node, message)
        # EOF: the process died or closed its socket.  A node that was
        # already declared dead (partition) just loses its zombie link.
        with self._lock:
            current = self._nodes.get(node.node_id)
            if current is node and node.alive and not self._stopping.is_set():
                self._declare_dead_locked(node, "connection-lost")

    def _handle_heartbeat(
        self, node: _NodeState, message: Dict[str, object]
    ) -> None:
        with self._lock:
            current = self._nodes.get(node.node_id)
            if current is not node or int(message.get("node_token", 0)) != node.token:
                obs_metrics.inc("node.stale_heartbeats")
                node.send({"type": "fenced"})
                return
            node.last_seen = time.monotonic()
            node.last_heartbeat_wall = time.time()

    # -- result handling (the fencing gate) ---------------------------

    def _handle_result(
        self, node: _NodeState, message: Dict[str, object]
    ) -> None:
        assignment_id = str(message.get("assignment_id", ""))
        sends: List[Tuple[_NodeState, Dict[str, object]]] = []
        with self._lock:
            node.last_seen = time.monotonic()
            ticket = self._assignments.get(assignment_id)
            current = self._nodes.get(node.node_id)
            stale_node = (
                current is not node
                or int(message.get("node_token", 0)) != node.token
                or not node.alive
            )
            if stale_node:
                # A superseded incarnation delivering late: never
                # recorded, always fenced.
                obs_metrics.inc("node.stale_rejected")
                self._fence_locked(
                    ticket, assignment_id, node, FENCE_STALE_NODE
                )
                node.send({"type": "fenced"})
                return
            node.inflight.discard(assignment_id)
            if ticket is None:
                obs_metrics.inc("node.stale_rejected")
                self._emit(
                    "dispatch-fenced-result",
                    None,
                    assignment_id=assignment_id,
                    node_id=node.node_id,
                    reason=FENCE_UNKNOWN,
                )
                return
            if ticket.completed:
                # The hedge (or a re-dispatch twin) lost the race.
                obs_metrics.inc("node.duplicate_results")
                self._fence_locked(
                    ticket, assignment_id, node, FENCE_DUPLICATE
                )
                return
            if assignment_id not in ticket.assignments:
                # Requeued away from this node before it answered.
                obs_metrics.inc("node.stale_rejected")
                self._fence_locked(
                    ticket, assignment_id, node, FENCE_SUPERSEDED
                )
                return
            expected = ticket.session.current_token()
            stated = int(message.get("engine_token", 0))
            if expected is not None and stated != expected:
                obs_metrics.inc("node.stale_rejected")
                self._fence_locked(
                    ticket, assignment_id, node, FENCE_STALE_ENGINE
                )
                failure = ExperimentFailure(
                    experiment_id=ticket.spec.experiment_id,
                    attempt=ticket.spec.attempt,
                    category=FencingViolationError.category,
                    error_type=FencingViolationError.__name__,
                    message=(
                        f"node {node.node_id} returned a result stamped with "
                        f"fencing token {stated}, but the current supervisor "
                        f"generation is {expected}; the result is from a "
                        "superseded generation and was rejected"
                    ),
                    degraded=ticket.spec.degraded,
                )
                sends += self._resolve_locked(ticket, None, failure, node)
            else:
                result, failure = self._decode_outcome(ticket.spec, message)
                obs_metrics.inc("node.results")
                obs = message.get("obs")
                if isinstance(obs, dict):
                    ticket.obs = obs
                duration = None
                if ticket.first_dispatch_mono is not None:
                    duration = time.monotonic() - ticket.first_dispatch_mono
                    self._durations.append(duration)
                    del self._durations[:-256]
                ticket.session.journal.append(
                    "dispatch-complete",
                    experiment_id=ticket.spec.experiment_id,
                    attempt=ticket.spec.attempt,
                    attempt_uid=ticket.attempt_uid,
                    assignment_id=assignment_id,
                    node_id=node.node_id,
                    node_token=node.token,
                    status="failed" if failure is not None else "ok",
                )
                breaker = self._breakers[node.node_id]
                if failure is None:
                    breaker.record_success()
                else:
                    breaker.record_failure(failure.category)
                sends += self._resolve_locked(ticket, result, failure, node)
        for target, payload in sends:
            target.send(payload)

    @staticmethod
    def _decode_outcome(
        spec: AttemptSpec, message: Dict[str, object]
    ) -> Tuple[Optional[ExperimentResult], Optional[ExperimentFailure]]:
        """Rebuild the node's classified outcome; damage is a crash."""
        try:
            raw_result = message.get("result")
            raw_failure = message.get("failure")
            if raw_result is not None:
                return ExperimentResult.from_dict(raw_result), None
            if raw_failure is not None:
                return None, ExperimentFailure.from_dict(raw_failure)
            raise ValueError("result message carries neither result nor failure")
        except Exception as exc:  # noqa: BLE001 — classification is the point
            return None, ExperimentFailure(
                experiment_id=spec.experiment_id,
                attempt=spec.attempt,
                category=WorkerCrashError.category,
                error_type=WorkerCrashError.__name__,
                message=(
                    f"node returned an unusable result payload for "
                    f"{spec.experiment_id} ({type(exc).__name__}: {exc})"
                ),
                degraded=spec.degraded,
            )

    def _fence_locked(
        self,
        ticket: Optional[_Ticket],
        assignment_id: str,
        node: _NodeState,
        reason: str,
    ) -> None:
        """Write the forensic ``dispatch-fenced`` record (when the WAL
        that owns the assignment is still known)."""
        self._emit(
            "dispatch-fenced-result",
            ticket.spec.experiment_id if ticket is not None else None,
            assignment_id=assignment_id,
            node_id=node.node_id,
            node_token=node.token,
            reason=reason,
        )
        if ticket is None:
            return
        try:
            ticket.session.journal.append(
                "dispatch-fenced",
                experiment_id=ticket.spec.experiment_id,
                attempt=ticket.spec.attempt,
                attempt_uid=ticket.attempt_uid,
                assignment_id=assignment_id,
                node_id=node.node_id,
                node_token=node.token,
                reason=reason,
            )
        except OSError:
            pass  # forensics must not take the fabric down

    def _resolve_locked(
        self,
        ticket: _Ticket,
        result: Optional[ExperimentResult],
        failure: Optional[ExperimentFailure],
        winner: Optional[_NodeState],
    ) -> List[Tuple[_NodeState, Dict[str, object]]]:
        """Complete a ticket; returns cancel messages to send unlocked."""
        ticket.completed = True
        ticket.result = result
        ticket.failure = failure
        sends: List[Tuple[_NodeState, Dict[str, object]]] = []
        for assignment_id, node_id in list(ticket.assignments.items()):
            other = self._nodes.get(node_id)
            if other is None or (winner is not None and other is winner):
                continue
            other.inflight.discard(assignment_id)
            sends.append((other, {"type": "cancel", "assignment_id": assignment_id}))
        ticket.assignments.clear()
        if ticket in self._unassigned:
            self._unassigned.remove(ticket)
        ticket.event.set()
        return sends

    # -- assignment ----------------------------------------------------

    def submit(self, ticket: _Ticket) -> None:
        """Queue a ticket for dispatch (assigned immediately if a node
        is available, else parked until one respawns or grace expires)."""
        with self._lock:
            ticket.unassigned_deadline = (
                time.monotonic() + self.config.no_node_grace_seconds
            )
            self._unassigned.append(ticket)
            self._drain_unassigned_locked()

    def _next_assignment_id_locked(self, ticket: _Ticket) -> str:
        self._assignment_seq += 1
        return f"{ticket.attempt_uid}#{self._assignment_seq}"

    def _pick_node_locked(self, exclude: Set[str]) -> Optional[_NodeState]:
        candidates = [
            n
            for n in self._nodes.values()
            if n.alive and n.connected and n.node_id not in exclude
        ]
        if not candidates:
            return None
        candidates.sort(key=lambda n: (len(n.inflight), n.node_id))
        for node in candidates:
            if self._breakers[node.node_id].allow_full_scale():
                return node
        # Every candidate's breaker is open: the fabric still has to
        # run the work somewhere — degradation policy belongs to the
        # engine, not the transport.
        return candidates[0]

    def _assign_locked(
        self,
        ticket: _Ticket,
        node: _NodeState,
        record_type: str,
    ) -> Tuple[_NodeState, Dict[str, object]]:
        assignment_id = self._next_assignment_id_locked(ticket)
        ticket.assignments[assignment_id] = node.node_id
        if ticket.first_dispatch_mono is None:
            ticket.first_dispatch_mono = time.monotonic()
        node.inflight.add(assignment_id)
        self._assignments[assignment_id] = ticket
        ticket.session.journal.append(
            record_type,
            experiment_id=ticket.spec.experiment_id,
            attempt=ticket.spec.attempt,
            attempt_uid=ticket.attempt_uid,
            assignment_id=assignment_id,
            node_id=node.node_id,
            node_token=node.token,
        )
        message = {
            "type": "assign",
            "assignment_id": assignment_id,
            "attempt_uid": ticket.attempt_uid,
            "node_id": node.node_id,
            "node_token": node.token,
            "spec": json.loads(ticket.spec.to_json()),
            "hard_timeout_seconds": ticket.session.hard_timeout_seconds,
            "term_grace_seconds": ticket.session.term_grace_seconds,
        }
        return node, message

    def _drain_unassigned_locked(self) -> None:
        sends: List[Tuple[_NodeState, Dict[str, object]]] = []
        still_waiting: List[_Ticket] = []
        now = time.monotonic()
        for ticket in self._unassigned:
            if ticket.completed:
                continue
            node = self._pick_node_locked(exclude=set())
            if node is not None:
                sends.append(self._assign_locked(ticket, node, "dispatch-assign"))
            elif (
                ticket.unassigned_deadline is not None
                and now >= ticket.unassigned_deadline
                and not self._respawn_pending_locked()
            ):
                failure = ExperimentFailure(
                    experiment_id=ticket.spec.experiment_id,
                    attempt=ticket.spec.attempt,
                    category=NoLiveNodesError.category,
                    error_type=NoLiveNodesError.__name__,
                    message=(
                        "every worker node of the dispatch fabric is dead or "
                        f"fenced ({self.node_count()} spawned, 0 live); "
                        "there is nowhere to run the attempt"
                    ),
                    degraded=ticket.spec.degraded,
                )
                self._resolve_locked(ticket, None, failure, None)
            else:
                still_waiting.append(ticket)
        self._unassigned = still_waiting
        for node, message in sends:
            if not node.send(message):
                # The link died between pick and send: declare and let
                # the death path requeue what we just assigned.
                self._declare_dead_locked(node, "send-failed")

    def _respawn_pending_locked(self) -> bool:
        """Is a spawned-but-not-yet-connected node still plausible?"""
        return any(
            not n.connected
            and n.alive
            and n.proc is not None
            and n.proc.poll() is None
            for n in self._nodes.values()
        )

    # -- death, failover, hedging -------------------------------------

    def _declare_dead_locked(self, node: _NodeState, reason: str) -> None:
        if not node.alive:
            return
        node.alive = False
        node.connected = False
        obs_metrics.inc("node.deaths")
        self._emit(
            "node-dead",
            None,
            node_id=node.node_id,
            node_token=node.token,
            reason=reason,
            pid=node.pid,
        )
        conn = node.conn
        if conn is not None and reason != "heartbeat-timeout":
            # A partitioned node keeps its socket: its buffered sends
            # must still arrive so the fencing gate can reject them.
            try:
                conn.close()
            except OSError:
                pass
            node.conn = None
        proc = node.proc
        if proc is not None and proc.poll() is None:
            # Still running (partition / hang): keep the handle so
            # stop()/kill_nodes() can reap it, but never block on it.
            self._zombies.append(proc)
        # Failover: requeue every open assignment.
        for assignment_id in sorted(node.inflight):
            ticket = self._assignments.get(assignment_id)
            if ticket is None or ticket.completed:
                continue
            ticket.assignments.pop(assignment_id, None)
            obs_metrics.inc("node.redispatches")
            try:
                ticket.session.journal.append(
                    "dispatch-requeue",
                    experiment_id=ticket.spec.experiment_id,
                    attempt=ticket.spec.attempt,
                    attempt_uid=ticket.attempt_uid,
                    assignment_id=assignment_id,
                    node_id=node.node_id,
                    node_token=node.token,
                    reason=reason,
                )
            except OSError:
                pass
            if not ticket.assignments and ticket not in self._unassigned:
                ticket.unassigned_deadline = (
                    time.monotonic() + self.config.no_node_grace_seconds
                )
                self._unassigned.append(ticket)
        node.inflight.clear()
        # Fenced respawn: the replacement carries incarnation + 1.
        if node.deaths_before + 1 <= self.config.max_respawns_per_node:
            if not self._stopping.is_set():
                self._spawn_node_locked(node.node_id, node.token + 1)
        self._export_locked()
        self._drain_unassigned_locked()

    def _hedge_threshold_locked(self) -> Optional[float]:
        if len(self._durations) < self.config.hedge_min_samples:
            return None
        ordered = sorted(self._durations)
        p95 = ordered[min(len(ordered) - 1, int(0.95 * len(ordered)))]
        return max(
            self.config.hedge_min_seconds, p95 * self.config.hedge_p95_factor
        )

    def _maybe_hedge_locked(self) -> List[Tuple[_NodeState, Dict[str, object]]]:
        threshold = self._hedge_threshold_locked()
        if threshold is None:
            return []
        sends: List[Tuple[_NodeState, Dict[str, object]]] = []
        now = time.monotonic()
        for ticket in {t for t in self._assignments.values()}:
            if (
                ticket.completed
                or ticket.hedged
                or len(ticket.assignments) != 1
                or ticket.first_dispatch_mono is None
                or now - ticket.first_dispatch_mono < threshold
            ):
                continue
            current_node = next(iter(ticket.assignments.values()))
            node = self._pick_node_locked(exclude={current_node})
            if node is None:
                continue
            ticket.hedged = True
            obs_metrics.inc("node.hedges")
            self._emit(
                "dispatch-hedge",
                ticket.spec.experiment_id,
                attempt_uid=ticket.attempt_uid,
                slow_node=current_node,
                hedge_node=node.node_id,
                threshold_seconds=threshold,
            )
            sends.append(self._assign_locked(ticket, node, "dispatch-hedge"))
        return sends

    def _monitor_loop(self) -> None:
        tick = min(0.25, self.config.heartbeat_interval_seconds / 2.0)
        while not self._stopping.wait(tick):
            try:
                self._monitor_once()
            except Exception:  # noqa: BLE001 — the monitor must survive
                obs_metrics.inc("node.monitor_errors")

    def _monitor_once(self) -> None:
        sends: List[Tuple[_NodeState, Dict[str, object]]] = []
        with self._lock:
            now = time.monotonic()
            for node in list(self._nodes.values()):
                if not node.alive:
                    continue
                proc = node.proc
                if proc is not None and proc.poll() is not None:
                    self._declare_dead_locked(node, "process-exit")
                    continue
                if (
                    node.connected
                    and now - node.last_seen > self.config.heartbeat_ttl_seconds
                ):
                    self._declare_dead_locked(node, "heartbeat-timeout")
                    continue
                if (
                    not node.connected
                    and now - node.last_seen
                    > self.config.connect_timeout_seconds
                ):
                    self._declare_dead_locked(node, "connect-timeout")
            self._drain_unassigned_locked()
            sends = self._maybe_hedge_locked()
        for node, message in sends:
            if not node.send(message):
                with self._lock:
                    self._declare_dead_locked(node, "send-failed")

    # -- session support ----------------------------------------------

    def abort_session(self, session: "DispatchSession") -> int:
        """Resolve every open ticket of ``session`` as cancelled."""
        cancelled = 0
        sends: List[Tuple[_NodeState, Dict[str, object]]] = []
        with self._lock:
            for ticket in {t for t in self._assignments.values()}:
                if ticket.session is not session or ticket.completed:
                    continue
                failure = ExperimentFailure(
                    experiment_id=ticket.spec.experiment_id,
                    attempt=ticket.spec.attempt,
                    category=WorkerCrashError.category,
                    error_type=WorkerCrashError.__name__,
                    message="assignment cancelled: dispatcher shutting down",
                    degraded=ticket.spec.degraded,
                )
                sends += self._resolve_locked(ticket, None, failure, None)
                cancelled += 1
            for ticket in list(self._unassigned):
                if ticket.session is session:
                    self._unassigned.remove(ticket)
                    ticket.event.set()
        for node, message in sends:
            node.send(message)
        return cancelled

    def release_session(self, session: "DispatchSession") -> None:
        """Drop a finished session's assignment tombstones."""
        with self._lock:
            self._assignments = {
                aid: t
                for aid, t in self._assignments.items()
                if t.session is not session
            }

    def _emit(
        self,
        event: str,
        experiment_id: Optional[str],
        **detail: object,
    ) -> None:
        if self.on_event is not None:
            try:
                self.on_event(event, experiment_id, detail)
            except Exception:  # noqa: BLE001 — telemetry never kills dispatch
                pass


class DispatchSession:
    """The engine-facing adapter: one campaign's view of the fabric.

    Implements the :class:`~repro.runtime.workers.WorkerSupervisor`
    surface (``run_attempt`` / ``kill_all`` / ``live_count``) so
    :class:`DispatchPool` can drop it into the unchanged
    :class:`~repro.runtime.workers.WorkerPool` machinery.  Owns the
    campaign's ``dispatch.wal``.
    """

    def __init__(self, engine, fabric: NodeFabric) -> None:
        self.engine = engine
        self.fabric = fabric
        run_dir = (
            engine.store.run_dir if engine.store is not None else fabric.run_dir
        )
        wal_path = Path(run_dir) / DISPATCH_WAL_FILENAME
        try:
            truncate_torn_tail(wal_path)
        except JournalCorruptError:
            pass  # validate will surface it; appends stay readable
        self.journal = Journal(wal_path, token=engine.fencing_token)
        self.hard_timeout_seconds = WorkerPool._hard_deadline(engine.config)
        self.term_grace_seconds = engine.config.term_grace_seconds
        self._aborted = threading.Event()

    def current_token(self) -> Optional[int]:
        return self.engine.fencing_token

    # -- WorkerSupervisor surface -------------------------------------

    def run_attempt(
        self, spec: AttemptSpec
    ) -> Tuple[Optional[ExperimentResult], Optional[ExperimentFailure]]:
        self.journal.token = self.engine.fencing_token
        uid = attempt_uid(spec.experiment_id, spec.fencing_token, spec.attempt)
        ticket = _Ticket(spec, uid, self)
        self.fabric.submit(ticket)
        backstop = self._backstop_seconds()
        if not ticket.event.wait(timeout=backstop):
            sends = []
            with self.fabric._lock:
                if not ticket.completed:
                    failure = ExperimentFailure(
                        experiment_id=spec.experiment_id,
                        attempt=spec.attempt,
                        category=WorkerTimeoutError.category,
                        error_type=WorkerTimeoutError.__name__,
                        message=(
                            f"no node delivered a result for "
                            f"{spec.experiment_id} within the dispatcher "
                            f"backstop of {backstop:.3g}s"
                        ),
                        degraded=spec.degraded,
                    )
                    sends = self.fabric._resolve_locked(
                        ticket, None, failure, None
                    )
            for node, message in sends:
                node.send(message)
        if ticket.obs is not None:
            sink = getattr(self.engine, "record_worker_obs", None)
            if sink is not None:
                sink(spec, ticket.obs)
        if ticket.result is None and ticket.failure is None:
            # kill_all() released the wait without an outcome.
            return None, ExperimentFailure(
                experiment_id=spec.experiment_id,
                attempt=spec.attempt,
                category=WorkerCrashError.category,
                error_type=WorkerCrashError.__name__,
                message="assignment cancelled: dispatcher shutting down",
                degraded=spec.degraded,
            )
        return ticket.result, ticket.failure

    def _backstop_seconds(self) -> Optional[float]:
        """The dispatcher-side wait bound per attempt.

        The node-side supervisor enforces the real hard deadline; this
        only has to cover it plus failover slack (a death, a respawn,
        and a full re-execution).
        """
        if self.hard_timeout_seconds is None:
            return None
        ttl = self.fabric.config.heartbeat_ttl_seconds
        return 2.0 * (self.hard_timeout_seconds + ttl) + 30.0

    def kill_all(self, term_grace_seconds: Optional[float] = None) -> int:
        self._aborted.set()
        cancelled = self.fabric.abort_session(self)
        self.fabric.kill_nodes(
            2.0 if term_grace_seconds is None else term_grace_seconds
        )
        return cancelled

    def live_count(self) -> int:
        return self.fabric.live_node_count()

    def close(self) -> None:
        self.fabric.release_session(self)
        self.journal.close()


class DispatchPool(WorkerPool):
    """A :class:`~repro.runtime.workers.WorkerPool` whose attempts run
    on the multi-node fabric instead of local subprocesses.

    Args:
        engine: The owning campaign engine.
        fabric: A (possibly shared) :class:`NodeFabric`.  When the pool
            starts it, the pool also stops it.
        jobs: Concurrent experiments; defaults to ``engine.config.jobs``.
    """

    def __init__(self, engine, fabric: NodeFabric, jobs: Optional[int] = None) -> None:
        super().__init__(engine, jobs=jobs or max(1, engine.config.jobs))
        self.fabric = fabric
        self.session = DispatchSession(engine, fabric)
        # The backend seam: WorkerPool talks to `self.supervisor`
        # exclusively through run_attempt/kill_all/live_count.
        self.supervisor = self.session

    def run(self, wanted, collected) -> None:
        started_here = not self.fabric.started
        if started_here:
            self.fabric.start()
        try:
            super().run(wanted, collected)
        finally:
            self.session.close()
            if started_here:
                self.fabric.stop()


def _killpg(proc: subprocess.Popen, signum: int) -> None:
    """Signal a node's whole process group (best effort)."""
    if proc.poll() is not None:
        return
    try:
        os.killpg(os.getpgid(proc.pid), signum)
    except (ProcessLookupError, PermissionError, OSError):
        try:
            proc.send_signal(signum)
        except (ProcessLookupError, OSError):
            pass
