"""Per-tenant bounded admission queues with fair-share dequeue.

The service's memory story starts here: every accepted submission
lives in exactly one bounded per-tenant queue, and nothing else in the
process grows with client behaviour.  When a tenant's queue is full
the submission is *refused* — explicitly, with a ``Retry-After``
estimate — rather than buffered; when the whole service is at its
global cap the refusal says "overloaded" instead of "slow down".  The
HTTP layer maps the two cases onto 429 (per-tenant: the client's own
backlog) and 503 (global: the service's problem).

Dequeue is round-robin across tenants with pending work, so a tenant
that floods its own queue delays only itself: with T active tenants
each gets ~1/T of the dispatch slots regardless of queue depth — the
same fair-share policy the paper applies to cache capacity across
processors.

``Retry-After`` is an honest estimate, not a constant: an EWMA of
recent job service times (fed by the dispatcher via
:meth:`note_service_time`) multiplied by the work queued ahead of the
refused client, clamped to ``[1, 600]`` seconds.

Thread-safe; :meth:`next_job` blocks on a condition variable.  Queue
depths are exported per tenant as ``service.queue.depth.<tenant>``
gauges.
"""

from __future__ import annotations

import collections
import re
import threading
from typing import Deque, Dict, List, Optional, Tuple

from repro.obs import metrics as obs_metrics

#: Tenant names are path/metric-safe identifiers.
TENANT_RE = re.compile(r"^[A-Za-z0-9][A-Za-z0-9_.-]{0,63}$")

#: Default per-job service-time guess before any job has finished.
DEFAULT_SERVICE_SECONDS = 5.0


class AdmissionRejected(Exception):
    """A submission was refused at the door.

    Attributes:
        scope: ``"tenant"`` (this tenant's queue is full -> HTTP 429)
            or ``"service"`` (global capacity reached -> HTTP 503).
        retry_after_seconds: Honest wait estimate for the client.
    """

    def __init__(self, message: str, scope: str, retry_after_seconds: int):
        super().__init__(message)
        self.scope = scope
        self.retry_after_seconds = retry_after_seconds


class AdmissionClosed(Exception):
    """The service is draining; no new submissions are admitted."""


class AdmissionController:
    """Bounded per-tenant queues + fair-share dequeue (module docstring).

    Args:
        queue_capacity: Maximum queued submissions per tenant.
        max_total: Maximum queued submissions across all tenants (the
            global memory bound).
    """

    def __init__(self, queue_capacity: int = 8, max_total: int = 64) -> None:
        if queue_capacity < 1:
            raise ValueError(
                f"queue_capacity must be >= 1 (got {queue_capacity})"
            )
        if max_total < queue_capacity:
            raise ValueError(
                f"max_total ({max_total}) must be >= queue_capacity "
                f"({queue_capacity})"
            )
        self.queue_capacity = queue_capacity
        self.max_total = max_total
        self._cond = threading.Condition()
        self._queues: Dict[str, Deque[object]] = {}
        self._rotation: Deque[str] = collections.deque()
        self._total = 0
        self._closed = False
        self._service_ewma = DEFAULT_SERVICE_SECONDS
        self._have_sample = False

    # -- submission --------------------------------------------------

    def submit(
        self, tenant: str, item: object, enforce_bounds: bool = True
    ) -> int:
        """Enqueue ``item`` for ``tenant``; returns its queue position.

        ``enforce_bounds=False`` skips the capacity checks — used only
        by WAL recovery re-admitting work that was already within
        bounds when originally accepted (the bound may have shrunk in
        the meantime, and dropping accepted work is never an option).

        Raises:
            ValueError: Malformed tenant name.
            AdmissionClosed: The service is draining.
            AdmissionRejected: The tenant queue or the service is full.
        """
        if not TENANT_RE.match(tenant):
            raise ValueError(
                f"invalid tenant name {tenant!r} (want {TENANT_RE.pattern})"
            )
        with self._cond:
            if self._closed:
                raise AdmissionClosed("service is draining")
            if enforce_bounds and self._total >= self.max_total:
                obs_metrics.inc("service.admission.rejected_service")
                raise AdmissionRejected(
                    f"service at capacity ({self._total} queued across "
                    f"all tenants)",
                    scope="service",
                    retry_after_seconds=self._retry_after_locked(self._total),
                )
            queue = self._queues.get(tenant)
            depth = len(queue) if queue is not None else 0
            if enforce_bounds and depth >= self.queue_capacity:
                obs_metrics.inc("service.admission.rejected_tenant")
                raise AdmissionRejected(
                    f"tenant {tenant!r} queue is full "
                    f"({depth}/{self.queue_capacity})",
                    scope="tenant",
                    retry_after_seconds=self._retry_after_locked(depth),
                )
            if queue is None:
                queue = collections.deque()
                self._queues[tenant] = queue
                self._rotation.append(tenant)
            queue.append(item)
            self._total += 1
            obs_metrics.inc("service.admission.accepted")
            self._export_depth(tenant, len(queue))
            self._cond.notify()
            return len(queue)

    def _retry_after_locked(self, queued_ahead: int) -> int:
        estimate = self._service_ewma * max(1, queued_ahead)
        return max(1, min(600, int(round(estimate))))

    def note_service_time(self, seconds: float) -> None:
        """Fold one finished job's wall time into the Retry-After EWMA."""
        if seconds < 0:
            return
        with self._cond:
            if not self._have_sample:
                self._service_ewma = seconds
                self._have_sample = True
            else:
                self._service_ewma = 0.7 * self._service_ewma + 0.3 * seconds

    # -- dequeue -----------------------------------------------------

    def next_job(
        self, timeout: Optional[float] = None
    ) -> Optional[Tuple[str, object]]:
        """Dequeue the next ``(tenant, item)`` fairly, or None.

        Round-robin: the tenant served is moved to the back of the
        rotation, so every tenant with pending work is visited before
        any tenant is visited twice.  Returns None on timeout or when
        the controller is closed and empty (the drain-complete signal).
        """
        with self._cond:
            while True:
                for _ in range(len(self._rotation)):
                    tenant = self._rotation[0]
                    self._rotation.rotate(-1)
                    queue = self._queues.get(tenant)
                    if queue:
                        item = queue.popleft()
                        self._total -= 1
                        self._export_depth(tenant, len(queue))
                        return tenant, item
                if self._closed:
                    return None
                if not self._cond.wait(timeout=timeout):
                    return None

    # -- drain / introspection ---------------------------------------

    def close(self) -> None:
        """Stop admitting; wake every blocked dispatcher.

        Already-queued work stays queued — drain semantics are "finish
        what was accepted", enforced by the caller draining
        :meth:`next_job` until it returns None.
        """
        with self._cond:
            self._closed = True
            self._cond.notify_all()

    @property
    def closed(self) -> bool:
        with self._cond:
            return self._closed

    def pending_total(self) -> int:
        with self._cond:
            return self._total

    def depths(self) -> Dict[str, int]:
        """Current queue depth per tenant (tenants seen, even if 0)."""
        with self._cond:
            return {t: len(q) for t, q in sorted(self._queues.items())}

    def drain_remaining(self) -> List[Tuple[str, object]]:
        """Remove and return everything still queued (shutdown path)."""
        with self._cond:
            remaining: List[Tuple[str, object]] = []
            for tenant in sorted(self._queues):
                queue = self._queues[tenant]
                while queue:
                    remaining.append((tenant, queue.popleft()))
                self._export_depth(tenant, 0)
            self._total = 0
            return remaining

    def _export_depth(self, tenant: str, depth: int) -> None:
        obs_metrics.set_gauge(f"service.queue.depth.{tenant}", depth)
        obs_metrics.set_gauge("service.queue.depth_total", self._total)
