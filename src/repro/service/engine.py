"""Cache-aware, breaker-aware campaign engine.

:class:`CachedCampaignEngine` is the seam between the multi-tenant
service and the crash-consistent engine of
:mod:`repro.runtime.engine`: it keeps the whole recovery policy
(retry, degradation, checkpoint, journal, fencing) and adds two
service behaviours in front of it:

- **Content-addressed memoization** — before running an experiment it
  derives the *effective* parameters (full-scale or quick, exactly as
  the base engine would), keys them through
  :func:`repro.service.cache.cache_key`, and consults the shared
  :class:`~repro.service.cache.ResultCache`.  A verified hit skips
  simulation entirely: the stored outcome is journaled as a
  ``cache-hit`` record, checkpointed into this campaign's own run
  directory (so resume, validate, status, and report all see a normal
  campaign), and returned.  A miss computes under the cache's per-key
  cross-process lock — exactly once per key across every concurrent
  campaign sharing the store — and commits the result for the next
  submission.  Only ``ok`` outcomes are cached: a degraded fallback
  answers different parameters than the ones keyed.
- **Circuit-breaker degradation** — when the attached
  :class:`~repro.service.breaker.CircuitBreaker` refuses full-scale
  dispatch, the experiment runs at its ``QUICK_OVERRIDES``
  parameterization instead of being refused outright, and the cache
  key honestly reflects the quick parameters.  Worker-category
  failures feed the breaker; a full-scale success (including the
  half-open probe) closes it.

The breaker override swaps ``config`` through a thread-local, because
worker-pool supervisor threads call :meth:`run_one` concurrently and
must not see each other's degradation decisions.
"""

from __future__ import annotations

import dataclasses
import threading
from typing import Dict, Optional

from repro.obs import metrics as obs_metrics
from repro.runtime.checkpoint import file_lock
from repro.runtime.engine import (
    STATUS_OK,
    AttemptRunner,
    CampaignEngine,
    ExperimentOutcome,
)
from repro.service.breaker import CircuitBreaker
from repro.service.cache import ResultCache


class CachedCampaignEngine(CampaignEngine):
    """A :class:`CampaignEngine` with memoization and breaker gating.

    Args:
        cache: Shared content-addressed store (None disables
            memoization — the engine then behaves like the base class
            plus breaker gating).
        breaker: Worker-pool circuit breaker (None disables gating).
        *args, **kwargs: Forwarded to :class:`CampaignEngine`.
    """

    def __init__(
        self,
        *args,
        cache: Optional[ResultCache] = None,
        breaker: Optional[CircuitBreaker] = None,
        **kwargs,
    ) -> None:
        # The config property below reads the thread-local *before*
        # the base __init__ assigns ``self.config`` (via our setter).
        self._local = threading.local()
        self._base_config = None
        super().__init__(*args, **kwargs)
        self.cache = cache
        self.breaker = breaker
        #: Experiment ids served from the cache during this run.
        self.cache_hits: list = []

    # The base engine reads ``self.config`` throughout run_one; the
    # breaker's quick-degradation must only be visible to the thread
    # that decided it, so the override lives in a thread-local.
    @property
    def config(self):
        override = getattr(self._local, "override", None)
        return override if override is not None else self._base_config

    @config.setter
    def config(self, value) -> None:
        self._base_config = value

    # -- the dispatch policy -----------------------------------------

    def run_one(
        self,
        experiment_id: str,
        attempt_runner: Optional[AttemptRunner] = None,
    ) -> ExperimentOutcome:
        if self.store is not None and self._resume_skips(experiment_id):
            return super().run_one(experiment_id, attempt_runner)

        breaker_degraded = (
            self.breaker is not None
            and not self._base_config.quick
            and not self.breaker.allow_full_scale()
        )
        if self.cache is None:
            return self._run_live(experiment_id, attempt_runner, breaker_degraded)

        params = self._effective_params(experiment_id, breaker_degraded)
        key = self.cache.key_for(experiment_id, params)
        entry = self.cache.get(key)
        if entry is not None:
            return self._serve_hit(experiment_id, key, entry)
        with file_lock(self.cache.lock_path(key)):
            entry = self.cache.get(key)
            if entry is not None:
                hit = self._serve_hit(experiment_id, key, entry)
            else:
                obs_metrics.inc("service.cache.misses")
                outcome = self._run_live(
                    experiment_id, attempt_runner, breaker_degraded
                )
                # Only an ``ok`` outcome corresponds to the keyed
                # parameters: a retry that degraded mid-flight ran
                # quick params under a full-scale key.  Publish before
                # releasing the lock so racers' double-checks hit.
                if outcome.status == STATUS_OK:
                    self.cache._put_locked(
                        key,
                        experiment_id,
                        params,
                        outcome.to_dict(),
                        self.fencing_token,
                    )
                return outcome
        return hit

    def _effective_params(
        self, experiment_id: str, breaker_degraded: bool
    ) -> Dict[str, object]:
        """The kwargs the first attempt will actually run with."""
        _, base_kwargs = self.registry[experiment_id]
        params = dict(base_kwargs)
        if self._base_config.quick or breaker_degraded:
            params.update(self.quick_overrides.get(experiment_id, {}))
        return params

    def _run_live(
        self,
        experiment_id: str,
        attempt_runner: Optional[AttemptRunner],
        breaker_degraded: bool,
    ) -> ExperimentOutcome:
        if breaker_degraded:
            self._local.override = dataclasses.replace(
                self._base_config, quick=True
            )
            obs_metrics.inc("service.breaker.degraded_dispatches")
            self.log_event(
                "breaker-degraded",
                experiment_id,
                state=self.breaker.state if self.breaker else None,
            )
        try:
            outcome = super().run_one(experiment_id, attempt_runner)
        finally:
            if breaker_degraded:
                self._local.override = None
        if self.breaker is not None:
            for failure in outcome.failures:
                self.breaker.record_failure(failure.category)
            if outcome.succeeded and not breaker_degraded:
                # Only a full-scale success vouches for the pool; a
                # quick run surviving a sick pool proves little.
                self.breaker.record_success()
        return outcome

    def _serve_hit(
        self, experiment_id: str, key: str, entry: Dict[str, object]
    ) -> ExperimentOutcome:
        """Commit a verified cache hit into this campaign's artifacts.

        The hit is journaled (``cache-hit`` record) and checkpointed
        like a computed outcome, so the run directory remains a
        self-contained, resumable, auditable campaign; recovery
        classifies the checkpoint as committed via the
        ``checkpoint-flushed`` corroboration path.
        """
        outcome = ExperimentOutcome.from_dict(entry["outcome"])
        outcome.resumed = False
        if outcome.result is not None:
            outcome.result.notes.append(
                f"served from content-addressed cache (key {key[:12]}…)"
            )
        self.journal_append(
            "cache-hit",
            experiment_id=experiment_id,
            key=key,
            status=outcome.status,
        )
        if self.store is not None:
            path = self._flush_outcome(outcome)
            self.journal_append(
                "checkpoint-flushed",
                experiment_id=experiment_id,
                status=outcome.status,
                path=str(path.name),
            )
            self.log_event(
                "checkpointed",
                experiment_id,
                status=outcome.status,
                path=str(path),
            )
        self.log_event("cache-hit", experiment_id, key=key, status=outcome.status)
        self.cache_hits.append(experiment_id)
        obs_metrics.inc(f"engine.outcomes.{outcome.status}")
        self._write_obs_snapshot()
        self._emit(
            "finish",
            outcome,
            experiment_id=experiment_id,
            status=outcome.status,
            attempts=outcome.attempts,
        )
        return outcome
