"""Worker node process: one host's share of the dispatch fabric.

``python -m repro.service.node --connect 127.0.0.1:PORT --node-id
node-0 --node-token 1`` dials the dispatcher
(:mod:`repro.service.dispatch`), introduces itself with its node id and
incarnation token, and then serves assignments: each ``assign`` message
carries a full :class:`~repro.runtime.workers.AttemptSpec`, which the
node runs under its *own* :class:`~repro.runtime.workers.WorkerSupervisor`
(hard deadline, TERM→KILL escalation, memory guard — the same
containment a single-host campaign gets).  The classified outcome is
shipped back as a ``result`` message stamped with the node token and
the spec's engine fencing token; all fencing *decisions* live at the
dispatcher, which knows the current incarnations.

The node's contract under failure is deliberately simple:

- ``fenced`` from the dispatcher means this incarnation has been
  superseded — kill any live workers and exit with status 3.
- EOF on the dispatcher socket means the dispatcher is gone — exit 0
  (workers are killed; an orphaned node must not keep computing).
- ``shutdown`` is the graceful version of the same.

Chaos injection: the ``REPRO_NODE_FAULT`` environment variable carries
comma-separated, incarnation-qualified directives —

- ``node-1#1:kill@2.5`` — 2.5 s after start, incarnation 1 of node-1
  SIGKILLs itself (mid-heartbeat, mid-attempt, wherever the timer
  lands).
- ``node-2#1:partition@1.0+3.0`` — at t=1.0 s the node's *sender* is
  muted for 3.0 s: heartbeats and results are buffered, not dropped,
  and flushed when the partition heals.  The dispatcher will have
  declared the node dead (heartbeat TTL) and respawned incarnation 2
  by then, so the flushed backlog exercises exactly the stale-token
  rejection path — the node is fenced and exits 3.

Directives are qualified by ``node_id#token`` so a respawned
incarnation does not re-arm its predecessor's fault.
"""

from __future__ import annotations

import argparse
import json
import os
import signal
import socket
import sys
import threading
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.runtime.errors import ExperimentFailure, WorkerCrashError
from repro.runtime.workers import AttemptSpec, WorkerSupervisor
from repro.service.dispatch import NODE_FAULT_ENV

#: Exit status when the dispatcher fences this incarnation out.
EXIT_FENCED = 3

#: How long the node retries its initial dial (the dispatcher's
#: listener is up before spawn, so this only covers scheduler lag).
CONNECT_RETRY_SECONDS = 10.0


@dataclass
class FaultDirective:
    """One parsed ``REPRO_NODE_FAULT`` directive for this incarnation."""

    kind: str  # "kill" | "partition"
    at_seconds: float
    duration_seconds: float = 0.0


def parse_fault_directives(
    value: Optional[str], node_id: str, node_token: int
) -> List[FaultDirective]:
    """Parse the directives addressed to ``node_id#node_token``.

    Malformed entries are ignored (chaos tooling composes the variable;
    a typo must not change healthy-path behaviour), as are entries
    addressed to other nodes or other incarnations.
    """
    directives: List[FaultDirective] = []
    if not value:
        return directives
    me = f"{node_id}#{node_token}"
    for entry in value.split(","):
        entry = entry.strip()
        if not entry:
            continue
        target, _, action = entry.partition(":")
        if target.strip() != me or not action:
            continue
        kind, _, timing = action.partition("@")
        kind = kind.strip()
        try:
            if kind == "kill":
                directives.append(
                    FaultDirective(kind="kill", at_seconds=float(timing))
                )
            elif kind == "partition":
                at_text, _, dur_text = timing.partition("+")
                directives.append(
                    FaultDirective(
                        kind="partition",
                        at_seconds=float(at_text),
                        duration_seconds=float(dur_text),
                    )
                )
        except ValueError:
            continue
    return directives


class LineSender:
    """Line-framed JSON sender with a chaos mute switch.

    While muted (a simulated network partition), messages are buffered
    in order instead of sent; :meth:`heal` flushes the backlog.  That
    is the interesting half of a partition: the peer is silent for the
    TTL *and then the old traffic arrives anyway*.
    """

    def __init__(self, sock: socket.socket) -> None:
        self._sock = sock
        self._lock = threading.Lock()
        self._muted = False
        self._backlog: List[bytes] = []

    def send(self, message: Dict[str, object]) -> bool:
        data = (json.dumps(message, sort_keys=True) + "\n").encode("utf-8")
        with self._lock:
            if self._muted:
                self._backlog.append(data)
                return True
            try:
                self._sock.sendall(data)
            except OSError:
                return False
        return True

    def mute(self) -> None:
        with self._lock:
            self._muted = True

    def heal(self) -> bool:
        with self._lock:
            self._muted = False
            backlog, self._backlog = self._backlog, []
            try:
                for data in backlog:
                    self._sock.sendall(data)
            except OSError:
                return False
        return True


class _Assignment:
    def __init__(self, assignment_id: str, spec: AttemptSpec) -> None:
        self.assignment_id = assignment_id
        self.spec = spec
        self.cancelled = False
        self.obs: Optional[Dict[str, object]] = None


class Node:
    """The node's event loop: hello, heartbeats, assignments, fencing."""

    def __init__(
        self,
        node_id: str,
        node_token: int,
        host: str,
        port: int,
        heartbeat_interval: float = 0.5,
    ) -> None:
        self.node_id = node_id
        self.node_token = node_token
        self.host = host
        self.port = port
        self.heartbeat_interval = heartbeat_interval
        self.sender: Optional[LineSender] = None
        self._sock: Optional[socket.socket] = None
        self._lock = threading.Lock()
        self._assignments: Dict[str, _Assignment] = {}
        self._supervisors: Dict[str, WorkerSupervisor] = {}
        self._stop = threading.Event()
        self._exit_status = 0
        self._timers: List[threading.Timer] = []

    # -- connection ----------------------------------------------------

    def _connect(self) -> socket.socket:
        deadline = time.monotonic() + CONNECT_RETRY_SECONDS
        last_error: Optional[OSError] = None
        while time.monotonic() < deadline:
            try:
                return socket.create_connection((self.host, self.port), timeout=5.0)
            except OSError as exc:
                last_error = exc
                time.sleep(0.1)
        raise SystemExit(
            f"node {self.node_id}: cannot reach dispatcher at "
            f"{self.host}:{self.port} ({last_error})"
        )

    def _arm_faults(self) -> None:
        directives = parse_fault_directives(
            os.environ.get(NODE_FAULT_ENV), self.node_id, self.node_token
        )
        for directive in directives:
            if directive.kind == "kill":
                timer = threading.Timer(directive.at_seconds, self._chaos_kill)
                timer.daemon = True
                timer.start()
                self._timers.append(timer)
            elif directive.kind == "partition":
                start = threading.Timer(directive.at_seconds, self.sender.mute)
                heal = threading.Timer(
                    directive.at_seconds + directive.duration_seconds,
                    self.sender.heal,
                )
                for timer in (start, heal):
                    timer.daemon = True
                    timer.start()
                    self._timers.append(timer)

    @staticmethod
    def _chaos_kill() -> None:
        # SIGKILL to ourselves: no cleanup, no flush — the genuine
        # article.  (Live workers are orphaned exactly as a real node
        # crash would orphan them; their hard deadlines still apply.)
        os.kill(os.getpid(), signal.SIGKILL)

    # -- heartbeats ----------------------------------------------------

    def _heartbeat_loop(self) -> None:
        while not self._stop.wait(self.heartbeat_interval):
            with self._lock:
                inflight = len(self._assignments)
            self.sender.send(
                {
                    "type": "heartbeat",
                    "node_id": self.node_id,
                    "node_token": self.node_token,
                    "inflight": inflight,
                }
            )

    # -- assignment execution -----------------------------------------

    def _handle_assign(self, message: Dict[str, object]) -> None:
        assignment_id = str(message.get("assignment_id", ""))
        try:
            spec = AttemptSpec.from_json(json.dumps(message.get("spec")))
        except (TypeError, ValueError, KeyError) as exc:
            self.sender.send(
                {
                    "type": "result",
                    "node_id": self.node_id,
                    "node_token": self.node_token,
                    "assignment_id": assignment_id,
                    "engine_token": 0,
                    "failure": ExperimentFailure(
                        experiment_id=str(
                            (message.get("spec") or {}).get(
                                "experiment_id", "<unknown>"
                            )
                        ),
                        attempt=1,
                        category=WorkerCrashError.category,
                        error_type=WorkerCrashError.__name__,
                        message=f"node could not decode assignment spec: {exc}",
                    ).to_dict(),
                }
            )
            return
        assignment = _Assignment(assignment_id, spec)
        hard_timeout = message.get("hard_timeout_seconds")
        term_grace = message.get("term_grace_seconds", 5.0)
        with self._lock:
            self._assignments[assignment_id] = assignment
        thread = threading.Thread(
            target=self._execute,
            args=(assignment, hard_timeout, float(term_grace)),
            name=f"assign-{assignment_id}",
            daemon=True,
        )
        thread.start()

    def _execute(
        self,
        assignment: _Assignment,
        hard_timeout: Optional[float],
        term_grace: float,
    ) -> None:
        spec = assignment.spec

        def capture_obs(obs_spec: AttemptSpec, obs: Dict[str, object]) -> None:
            assignment.obs = obs

        supervisor = WorkerSupervisor(
            hard_timeout_seconds=hard_timeout,
            term_grace_seconds=term_grace,
            current_token=None,  # the dispatcher holds the live token
            obs_sink=capture_obs,
        )
        with self._lock:
            self._supervisors[assignment.assignment_id] = supervisor
        result: Optional[object] = None
        failure: Optional[ExperimentFailure] = None
        try:
            result, failure = supervisor.run_attempt(spec)
        except BaseException as exc:  # noqa: BLE001 — node must survive
            failure = ExperimentFailure(
                experiment_id=spec.experiment_id,
                attempt=spec.attempt,
                category=WorkerCrashError.category,
                error_type=WorkerCrashError.__name__,
                message=(
                    f"node-side supervisor failed for {spec.experiment_id}: "
                    f"{type(exc).__name__}: {exc}"
                ),
                degraded=spec.degraded,
            )
        finally:
            with self._lock:
                self._supervisors.pop(assignment.assignment_id, None)
                self._assignments.pop(assignment.assignment_id, None)
                cancelled = assignment.cancelled
        if cancelled:
            return  # the dispatcher already moved on; don't even bother
        self.sender.send(
            {
                "type": "result",
                "node_id": self.node_id,
                "node_token": self.node_token,
                "assignment_id": assignment.assignment_id,
                "engine_token": spec.fencing_token,
                "result": result.to_dict() if result is not None else None,
                "failure": failure.to_dict() if failure is not None else None,
                "obs": assignment.obs,
            }
        )

    def _handle_cancel(self, message: Dict[str, object]) -> None:
        assignment_id = str(message.get("assignment_id", ""))
        with self._lock:
            assignment = self._assignments.get(assignment_id)
            supervisor = self._supervisors.get(assignment_id)
            if assignment is not None:
                assignment.cancelled = True
        if supervisor is not None:
            supervisor.kill_all(term_grace_seconds=0.5)

    def _kill_everything(self) -> None:
        with self._lock:
            for assignment in self._assignments.values():
                assignment.cancelled = True
            supervisors = list(self._supervisors.values())
        for supervisor in supervisors:
            supervisor.kill_all(term_grace_seconds=0.5)

    # -- the main loop -------------------------------------------------

    def run(self) -> int:
        self._sock = self._connect()
        self.sender = LineSender(self._sock)
        self._arm_faults()
        self.sender.send(
            {
                "type": "hello",
                "node_id": self.node_id,
                "node_token": self.node_token,
                "pid": os.getpid(),
            }
        )
        reader = self._sock.makefile("r", encoding="utf-8", newline="\n")
        heartbeat = threading.Thread(
            target=self._heartbeat_loop, name="node-heartbeat", daemon=True
        )
        heartbeat.start()
        try:
            while True:
                line = reader.readline()
                if not line:
                    break  # dispatcher gone: stop computing for it
                try:
                    message = json.loads(line)
                except json.JSONDecodeError:
                    continue
                kind = message.get("type")
                if kind == "assign":
                    self._handle_assign(message)
                elif kind == "cancel":
                    self._handle_cancel(message)
                elif kind == "fenced":
                    self._exit_status = EXIT_FENCED
                    break
                elif kind == "shutdown":
                    break
                # "welcome" and anything unknown: no action required.
        finally:
            self._stop.set()
            for timer in self._timers:
                timer.cancel()
            self._kill_everything()
            try:
                reader.close()
            except OSError:
                pass
            try:
                self._sock.close()
            except OSError:
                pass
        return self._exit_status


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.service.node",
        description="Worker node of the multi-node dispatch fabric.",
    )
    parser.add_argument(
        "--connect", required=True, metavar="HOST:PORT",
        help="dispatcher address to dial",
    )
    parser.add_argument("--node-id", required=True)
    parser.add_argument("--node-token", type=int, required=True)
    parser.add_argument("--heartbeat-interval", type=float, default=0.5)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    host, _, port_text = args.connect.rpartition(":")
    try:
        port = int(port_text)
    except ValueError:
        print(f"invalid --connect address: {args.connect!r}", file=sys.stderr)
        return 2
    node = Node(
        node_id=args.node_id,
        node_token=args.node_token,
        host=host or "127.0.0.1",
        port=port,
        heartbeat_interval=args.heartbeat_interval,
    )
    return node.run()


if __name__ == "__main__":  # pragma: no cover - subprocess entry point
    sys.exit(main())
