"""Multi-tenant campaign service.

A long-running, stdlib-only HTTP/JSON service that runs reproduction
campaigns for many tenants concurrently over one shared
content-addressed result cache, with bounded admission queues,
explicit backpressure, a circuit breaker around the worker pool, and
a crash-consistent graceful drain.  See ``docs/SERVICE.md``.

Layers (each usable standalone):

- :mod:`repro.service.cache` — content-addressed experiment store
  keyed by ``sha256(app, canonical params, code fingerprint)``.
- :mod:`repro.service.admission` — per-tenant bounded queues with
  fair-share (round-robin) dequeue and honest ``Retry-After``.
- :mod:`repro.service.breaker` — three-state circuit breaker fed by
  worker-pool failure categories.
- :mod:`repro.service.engine` — :class:`CachedCampaignEngine`, the
  cache- and breaker-aware subclass of the runtime engine.
- :mod:`repro.service.http` — the :class:`CampaignService` supervisor
  and its HTTP surface.
"""

from repro.service.admission import (
    AdmissionClosed,
    AdmissionController,
    AdmissionRejected,
)
from repro.service.breaker import (
    STATE_CLOSED,
    STATE_HALF_OPEN,
    STATE_OPEN,
    CircuitBreaker,
)
from repro.service.cache import ResultCache, cache_key, code_fingerprint
from repro.service.engine import CachedCampaignEngine
from repro.service.http import CampaignService, ServiceConfig, Submission

__all__ = [
    "AdmissionClosed",
    "AdmissionController",
    "AdmissionRejected",
    "CachedCampaignEngine",
    "CampaignService",
    "CircuitBreaker",
    "ResultCache",
    "ServiceConfig",
    "STATE_CLOSED",
    "STATE_HALF_OPEN",
    "STATE_OPEN",
    "Submission",
    "cache_key",
    "code_fingerprint",
]
