"""Content-addressed experiment result cache.

The paper's headline artifacts — miss-rate curves and working-set
knees — are *pure functions* of ``(app, canonical params, code
version)``: the simulators are deterministic and take no ambient
input.  That makes repeated campaign sweeps ideal for memoization: a
submission whose key was already computed can be served from the store
without re-simulating anything.

**Keying.**  ``cache_key`` extends the canonical-JSON + SHA-256
discipline of :func:`repro.runtime.checkpoint._payload_digest` to the
triple ``sha256(app, canonical params, code fingerprint)``.  Params
are canonicalized through a JSON round-trip (tuples become lists, key
order is fixed), so two submissions that *mean* the same parameters
hash identically.  The code fingerprint digests every ``repro``
source file, so upgrading the simulator silently invalidates every
old entry — stale physics can never be served as fresh.

**Layout** (under one cache root, shareable by many campaigns)::

    objects/<key[:2]>/<key>.json    checksummed entry envelopes
    cache-manifest.json             index: key -> {experiment_id, ...}
    quarantine/                     entries that failed verification
    locks/<key>.lock                per-key cross-process compute locks
    locks/.manifest.lock            serializes manifest updates

**Trust nothing on read.**  :meth:`ResultCache.get` re-verifies every
entry before serving it: envelope format, payload SHA-256, the
cache-entry schema, and that the stored key both matches the filename
and recomputes from the stored ``(app, params, code)``.  Any failure
moves the entry to ``quarantine/`` (atomic rename — it is *gone* from
the serving path before the miss is reported) so the caller recomputes
instead of consuming corruption.

**Exactly-once compute.**  :meth:`ResultCache.get_or_compute` takes a
per-key ``flock`` around the miss path with a double-check inside, so
N threads *and* N processes racing one cold key perform exactly one
simulation; the losers serve the winner's verified entry.  Writers are
additionally stamped with their supervisor fencing token
(:mod:`repro.runtime.lease`); ``put`` is first-writer-wins, so a stale
generation can never replace a committed entry.

Counters (``service.cache.hits`` / ``.misses`` / ``.quarantined`` /
``.puts``) flow through :mod:`repro.obs.metrics` into ``metrics.json``
and the ``report`` subcommand.
"""

from __future__ import annotations

import hashlib
import json
import os
import time
from pathlib import Path
from typing import Callable, Dict, Optional, Tuple, Union

from repro.obs import metrics as obs_metrics
from repro.runtime.checkpoint import file_lock
from repro.runtime.iofault import atomic_write_text

#: Bumped when the entry envelope layout changes (old entries are then
#: quarantined on read instead of served).
CACHE_FORMAT = 1

MANIFEST_FILENAME = "cache-manifest.json"
OBJECTS_DIRNAME = "objects"
QUARANTINE_DIRNAME = "quarantine"
LOCKS_DIRNAME = "locks"

#: Environment override for the code fingerprint (tests use it to
#: simulate a code-version change without editing sources).
FINGERPRINT_ENV = "REPRO_CODE_FINGERPRINT"


class CacheKeyError(ValueError):
    """Parameters cannot be canonicalized into a cache key."""


def canonical_params(params: Dict[str, object]) -> Dict[str, object]:
    """Normalize ``params`` into canonical JSON-compatible form.

    A JSON round-trip collapses representation differences that do not
    change meaning (tuples vs lists, dict insertion order), so the key
    depends on what the parameters *are*, not how they were spelled.
    """
    try:
        text = json.dumps(params, sort_keys=True, separators=(",", ":"))
    except (TypeError, ValueError) as exc:
        raise CacheKeyError(f"params are not canonicalizable: {exc}") from exc
    return json.loads(text)


def _digest(payload: object) -> str:
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


_FINGERPRINT_CACHE: Dict[str, str] = {}


def code_fingerprint() -> str:
    """Digest of every ``repro`` source file (or the env override).

    The fingerprint folds each file's repo-relative path and content
    hash into one SHA-256, so any source edit — simulator, runtime,
    experiment definition — changes every cache key and invalidates
    the whole store without touching it.
    """
    override = os.environ.get(FINGERPRINT_ENV)
    if override:
        return override
    cached = _FINGERPRINT_CACHE.get("computed")
    if cached is not None:
        return cached
    import repro

    root = Path(repro.__file__).resolve().parent
    entries = []
    for path in sorted(root.rglob("*.py")):
        entries.append(
            [
                str(path.relative_to(root)),
                hashlib.sha256(path.read_bytes()).hexdigest(),
            ]
        )
    fingerprint = _digest(entries)
    _FINGERPRINT_CACHE["computed"] = fingerprint
    return fingerprint


def cache_key(
    experiment_id: str,
    params: Dict[str, object],
    fingerprint: Optional[str] = None,
) -> str:
    """``sha256(app, canonical params, code fingerprint)`` as hex."""
    return _digest(
        {
            "app": experiment_id,
            "params": canonical_params(params),
            "code": fingerprint or code_fingerprint(),
        }
    )


class ResultCache:
    """The content-addressed store (see module docstring).

    Args:
        root: Cache root directory; created on first write.
        fingerprint: Code fingerprint override (defaults to
            :func:`code_fingerprint`, resolved lazily per call so the
            ``REPRO_CODE_FINGERPRINT`` override is honoured even when
            set after construction).
        wall_clock: Injectable time source for entry timestamps.
    """

    def __init__(
        self,
        root: Union[str, Path],
        fingerprint: Optional[str] = None,
        wall_clock: Callable[[], float] = time.time,
    ) -> None:
        self.root = Path(root)
        self._fingerprint = fingerprint
        self._wall_clock = wall_clock

    # -- paths -------------------------------------------------------

    @property
    def objects_dir(self) -> Path:
        return self.root / OBJECTS_DIRNAME

    @property
    def quarantine_dir(self) -> Path:
        return self.root / QUARANTINE_DIRNAME

    @property
    def locks_dir(self) -> Path:
        return self.root / LOCKS_DIRNAME

    @property
    def manifest_path(self) -> Path:
        return self.root / MANIFEST_FILENAME

    def object_path(self, key: str) -> Path:
        return self.objects_dir / key[:2] / f"{key}.json"

    def lock_path(self, key: str) -> Path:
        return self.locks_dir / f"{key}.lock"

    def fingerprint(self) -> str:
        return self._fingerprint or code_fingerprint()

    def key_for(self, experiment_id: str, params: Dict[str, object]) -> str:
        return cache_key(experiment_id, params, self.fingerprint())

    # -- read path ---------------------------------------------------

    def get(self, key: str) -> Optional[Dict[str, object]]:
        """Return the *verified* payload for ``key``, or None.

        Never serves an unverified byte: a missing entry is a plain
        miss; an entry that fails any verification step is quarantined
        (atomically moved out of the serving path) and reported as a
        miss, so the caller recomputes.  Counters are recorded here —
        hits on success, quarantines on eviction; the ``misses``
        counter belongs to :meth:`get_or_compute`, which knows whether
        a miss actually led to a computation.
        """
        path = self.object_path(key)
        try:
            raw = path.read_text(encoding="utf-8")
        except FileNotFoundError:
            return None
        except OSError as exc:
            self._quarantine(path, f"unreadable: {exc}")
            return None
        problem = self._verify_entry_text(key, raw)
        if problem is not None:
            self._quarantine(path, problem)
            return None
        obs_metrics.inc("service.cache.hits")
        return json.loads(raw)["payload"]

    def _verify_entry_text(
        self, key: str, raw: str, check_fingerprint: bool = True
    ) -> Optional[str]:
        """Why the entry must not be served, or None when it verifies."""
        try:
            envelope = json.loads(raw)
        except json.JSONDecodeError as exc:
            return f"entry is not valid JSON: {exc}"
        return verify_entry_envelope(
            key, envelope, self.fingerprint() if check_fingerprint else None
        )

    def _quarantine(self, path: Path, reason: str) -> Optional[Path]:
        """Atomically evict a bad entry into ``quarantine/``."""
        self.quarantine_dir.mkdir(parents=True, exist_ok=True)
        target = self.quarantine_dir / path.name
        suffix = 0
        while target.exists():
            suffix += 1
            target = self.quarantine_dir / f"{path.name}.{suffix}"
        try:
            os.replace(path, target)
        except OSError:
            # Lost a race with another evictor (or the entry vanished):
            # either way it is out of the serving path, which is what
            # quarantine is for.
            return None
        try:
            target.with_suffix(target.suffix + ".reason").write_text(
                reason + "\n", encoding="utf-8"
            )
        except OSError:
            pass  # forensics are best-effort; eviction already happened
        obs_metrics.inc("service.cache.quarantined")
        return target

    # -- write path --------------------------------------------------

    def put(
        self,
        experiment_id: str,
        params: Dict[str, object],
        outcome: Dict[str, object],
        token: int = 0,
    ) -> Tuple[str, Path]:
        """Store one computed outcome; first writer wins.

        Returns ``(key, path)``.  If a *verified* entry already exists
        for the key the existing entry is kept (idempotent put — a
        superseded supervisor generation re-finishing an attempt must
        not replace the committed entry), but a corrupt existing entry
        is quarantined and replaced.
        """
        key = self.key_for(experiment_id, params)
        with file_lock(self.lock_path(key)):
            path = self._put_locked(key, experiment_id, params, outcome, token)
        return key, path

    def _put_locked(
        self,
        key: str,
        experiment_id: str,
        params: Dict[str, object],
        outcome: Dict[str, object],
        token: int,
    ) -> Path:
        """Write one entry; caller holds the per-key lock.

        ``flock`` locks conflict across file descriptors even within
        one process, so the lock is taken exactly once, here at the
        boundary, never nested.
        """
        path = self.object_path(key)
        payload: Dict[str, object] = {
            "key": key,
            "experiment_id": experiment_id,
            "params": canonical_params(params),
            "code_fingerprint": self.fingerprint(),
            "created_wall": self._wall_clock(),
            "token": int(token),
            "outcome": outcome,
        }
        envelope = {
            "format": CACHE_FORMAT,
            "sha256": _digest(payload),
            "payload": payload,
        }
        if path.is_file():
            existing = self._verify_entry_text(
                key, path.read_text(encoding="utf-8", errors="replace")
            )
            if existing is None:
                return path  # committed entry stands: first writer wins
            self._quarantine(path, existing)
        atomic_write_text(
            path,
            json.dumps(envelope, indent=1, sort_keys=True),
            site="cache",
        )
        self._manifest_record(key, experiment_id)
        obs_metrics.inc("service.cache.puts")
        return path

    def _manifest_record(self, key: str, experiment_id: str) -> None:
        """Add ``key`` to the manifest index (read-modify-write under
        the manifest lock so concurrent writers never drop entries)."""
        with file_lock(self.locks_dir / ".manifest.lock"):
            manifest = self.read_manifest() or {
                "format": CACHE_FORMAT,
                "entries": {},
            }
            entries = manifest.setdefault("entries", {})
            entries[key] = {
                "experiment_id": experiment_id,
                "file": str(self.object_path(key).relative_to(self.root)),
                "created_wall": self._wall_clock(),
            }
            atomic_write_text(
                self.manifest_path,
                json.dumps(manifest, indent=1, sort_keys=True),
                site="cache",
            )
            obs_metrics.set_gauge("service.cache.entries", len(entries))

    def read_manifest(self) -> Optional[Dict[str, object]]:
        """The manifest index, or None when absent/undecodable.

        Tolerant by design: the manifest is an *index*, the entries
        are the truth; ``validate`` flags disagreements.
        """
        try:
            manifest = json.loads(self.manifest_path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError):
            return None
        return manifest if isinstance(manifest, dict) else None

    # -- the memoization seam ---------------------------------------

    def get_or_compute(
        self,
        experiment_id: str,
        params: Dict[str, object],
        compute: Callable[[], Dict[str, object]],
        token: int = 0,
    ) -> Tuple[Dict[str, object], bool]:
        """Serve a verified hit, or compute exactly once under lock.

        Returns ``(outcome_dict, was_hit)``.  The fast path reads
        without any lock (entries are immutable once committed); the
        miss path takes the per-key flock and re-checks, so concurrent
        threads and processes racing a cold key run ``compute`` exactly
        once.  ``compute`` returning a *failed* outcome (status other
        than ``"ok"``) is returned but never cached — a degraded
        fallback answers a different question than the requested
        parameters.
        """
        key = self.key_for(experiment_id, params)
        entry = self.get(key)
        if entry is not None:
            return entry["outcome"], True
        with file_lock(self.lock_path(key)):
            entry = self.get(key)
            if entry is not None:
                return entry["outcome"], True
            obs_metrics.inc("service.cache.misses")
            outcome = compute()
            if outcome.get("status") == "ok":
                # Publish while still holding the lock: a racer's
                # double-check must not find the key cold after we
                # computed it.
                self._put_locked(key, experiment_id, params, outcome, token)
        return outcome, False

    # -- integrity ---------------------------------------------------

    def verify_all(self) -> Dict[str, str]:
        """Check every entry; path -> problem for each bad one.

        Read-only (no quarantining) — this is the ``--verify-store``
        audit, not the serving path.
        """
        problems: Dict[str, str] = {}
        if not self.objects_dir.is_dir():
            return problems
        for path in sorted(self.objects_dir.rglob("*.json")):
            rel = str(path.relative_to(self.root))
            try:
                raw = path.read_text(encoding="utf-8")
            except OSError as exc:
                problems[rel] = f"unreadable: {exc}"
                continue
            # Entries written by an older code fingerprint are stale,
            # not corrupt: they hash to different keys and are simply
            # never looked up, so the audit does not indict them.
            problem = self._verify_entry_text(
                path.stem, raw, check_fingerprint=False
            )
            if problem is not None:
                problems[rel] = problem
        return problems


def verify_entry_envelope(
    key: str, envelope: object, fingerprint: Optional[str] = None
) -> Optional[str]:
    """Why a decoded entry envelope must not be served, or None.

    Checks, in order: envelope shape and format, payload checksum, the
    cache-entry schema, filename-vs-stored-key agreement, and that the
    stored key recomputes from the stored ``(app, params, code)``.
    When ``fingerprint`` is given, the entry must also have been
    written by the *current* code version — an entry from older code
    is stale, not corrupt, but equally unservable.
    """
    from repro.validate.schemas import check_schema, schema_for

    if not isinstance(envelope, dict) or "payload" not in envelope:
        return "entry has no payload envelope"
    if envelope.get("format") != CACHE_FORMAT:
        return (
            f"entry has format {envelope.get('format')!r} "
            f"(expected {CACHE_FORMAT})"
        )
    payload = envelope["payload"]
    digest = _digest(payload)
    if digest != envelope.get("sha256"):
        return (
            f"entry failed its integrity check (stored sha256 "
            f"{envelope.get('sha256')!r}, recomputed {digest!r})"
        )
    problems = check_schema(payload, schema_for("cache-entry"))
    if problems:
        return f"entry violates the cache-entry schema: {problems[0]}"
    stored_key = str(payload["key"])
    if stored_key != key:
        return f"entry is filed under {key!r} but records key {stored_key!r}"
    recomputed = cache_key(
        str(payload["experiment_id"]),
        payload["params"],  # type: ignore[arg-type]
        str(payload["code_fingerprint"]),
    )
    if recomputed != stored_key:
        return (
            f"stored key {stored_key!r} does not recompute from the stored "
            f"(app, params, code) triple (got {recomputed!r})"
        )
    if fingerprint is not None and payload["code_fingerprint"] != fingerprint:
        return (
            "entry was written by code fingerprint "
            f"{str(payload['code_fingerprint'])[:12]}… but the current code "
            f"is {fingerprint[:12]}… (stale entry)"
        )
    return None
