"""Unstructured problems for iterative solvers (paper Section 4.3).

"Many important problems (e.g., unstructured problems that model
complex physical structures) will not be nearly as regular as the 2-D
and 3-D grids considered here.  This reduced regularity will require
more sophisticated strategies for partitioning ... the computational
load balance among the processors will certainly not be as good [and
the communication volume worse]."

We build unstructured planar meshes by Delaunay triangulation of random
points, partition them with era-appropriate recursive coordinate
bisection (RCB), and measure exactly the quantities the paper predicts
degrade: edge cut (communication) and per-partition work balance.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Sequence

import numpy as np
import scipy.spatial


@dataclass
class UnstructuredMesh:
    """A planar unstructured mesh.

    Attributes:
        points: (n, 2) vertex coordinates.
        neighbors: adjacency lists (each an int array), symmetric.
    """

    points: np.ndarray
    neighbors: List[np.ndarray]

    @property
    def num_points(self) -> int:
        return int(self.points.shape[0])

    @property
    def num_edges(self) -> int:
        return sum(len(adj) for adj in self.neighbors) // 2

    def degrees(self) -> np.ndarray:
        return np.array([len(adj) for adj in self.neighbors])

    def laplacian_matvec(self, x: np.ndarray) -> np.ndarray:
        """``y = (L + I) x`` — the shifted graph Laplacian (SPD)."""
        y = (self.degrees() + 1.0) * x
        for i, adj in enumerate(self.neighbors):
            y[i] -= x[adj].sum()
        return y


def _triangulate(points: np.ndarray) -> UnstructuredMesh:
    tri = scipy.spatial.Delaunay(points)
    adjacency = [set() for _ in range(points.shape[0])]
    for simplex in tri.simplices:
        for a in simplex:
            for b in simplex:
                if a != b:
                    adjacency[a].add(int(b))
    return UnstructuredMesh(
        points=points,
        neighbors=[np.array(sorted(adj), dtype=np.int64) for adj in adjacency],
    )


def delaunay_mesh(num_points: int, seed: int = 0) -> UnstructuredMesh:
    """Delaunay triangulation of uniform random points in the unit
    square."""
    if num_points < 4:
        raise ValueError("need at least 4 points for a triangulation")
    rng = np.random.default_rng(seed)
    return _triangulate(rng.uniform(0.0, 1.0, size=(num_points, 2)))


def clustered_mesh(
    num_points: int, seed: int = 0, cluster_fraction: float = 0.7
) -> UnstructuredMesh:
    """A locally refined mesh: most points concentrated in small
    regions (as adaptive refinement around physical features produces),
    the remainder uniform.  The shape that stresses geometric
    partitioners."""
    if not 0.0 < cluster_fraction < 1.0:
        raise ValueError("cluster_fraction must be in (0, 1)")
    rng = np.random.default_rng(seed)
    clustered = int(num_points * cluster_fraction)
    centers = rng.uniform(0.2, 0.8, size=(3, 2))
    assignments = rng.integers(0, len(centers), size=clustered)
    dense = centers[assignments] + rng.normal(0.0, 0.03, size=(clustered, 2))
    sparse = rng.uniform(0.0, 1.0, size=(num_points - clustered, 2))
    points = np.clip(np.vstack([dense, sparse]), 0.0, 1.0)
    return _triangulate(points)


def regular_mesh(side: int) -> UnstructuredMesh:
    """A regular 2-D grid expressed in the same mesh format (the
    baseline the paper compares against)."""
    n = side * side
    coords = np.array(
        [(i / (side - 1), j / (side - 1)) for i in range(side) for j in range(side)]
    )
    neighbors: List[np.ndarray] = []
    for i in range(side):
        for j in range(side):
            adj = []
            if i > 0:
                adj.append((i - 1) * side + j)
            if i < side - 1:
                adj.append((i + 1) * side + j)
            if j > 0:
                adj.append(i * side + j - 1)
            if j < side - 1:
                adj.append(i * side + j + 1)
            neighbors.append(np.array(adj, dtype=np.int64))
    return UnstructuredMesh(points=coords, neighbors=neighbors)


def recursive_coordinate_bisection(
    points: np.ndarray, num_parts: int
) -> np.ndarray:
    """RCB partitioning: recursively split along the wider coordinate
    axis at the median.  Returns a part id per point.

    The standard geometric partitioner of the paper's era (before
    multilevel graph partitioners).
    """
    if num_parts < 1 or (num_parts & (num_parts - 1)) != 0:
        raise ValueError("num_parts must be a power of two")
    assignment = np.zeros(points.shape[0], dtype=np.int64)

    def split(indices: np.ndarray, parts: int, base: int) -> None:
        if parts == 1:
            assignment[indices] = base
            return
        extent = points[indices].max(axis=0) - points[indices].min(axis=0)
        axis = int(np.argmax(extent))
        order = indices[np.argsort(points[indices, axis], kind="stable")]
        half = len(order) // 2
        split(order[:half], parts // 2, base)
        split(order[half:], parts // 2, base + parts // 2)

    split(np.arange(points.shape[0]), num_parts, 0)
    return assignment


def random_partition(
    num_points: int, num_parts: int, seed: int = 0
) -> np.ndarray:
    """Random balanced assignment — the no-locality baseline."""
    rng = np.random.default_rng(seed)
    assignment = np.repeat(np.arange(num_parts), math.ceil(num_points / num_parts))
    rng.shuffle(assignment)
    return assignment[:num_points]


def edge_cut(mesh: UnstructuredMesh, assignment: np.ndarray) -> int:
    """Edges whose endpoints lie in different partitions — the data
    communicated every iteration."""
    cut = 0
    for i, adj in enumerate(mesh.neighbors):
        cut += int((assignment[adj] != assignment[i]).sum())
    return cut // 2


def work_imbalance(
    mesh: UnstructuredMesh,
    assignment: np.ndarray,
    remote_edge_weight: float = 0.0,
) -> float:
    """Max over mean per-partition work.  1.0 is perfect.

    A vertex's work is its edge count (the matvec's operations); each
    *cut* edge additionally costs ``remote_edge_weight`` (the remote
    gather a boundary vertex performs every iteration).  With weight 0
    this is pure computational balance; positive weights expose the
    communication-induced imbalance the paper warns about.
    """
    num_parts = int(assignment.max()) + 1
    work = np.zeros(num_parts)
    for i, adj in enumerate(mesh.neighbors):
        cut = int((assignment[adj] != assignment[i]).sum())
        work[assignment[i]] += len(adj) + remote_edge_weight * cut
    mean = work.mean()
    return float(work.max() / mean) if mean > 0 else 1.0


def communication_fraction(mesh: UnstructuredMesh, assignment: np.ndarray) -> float:
    """Cut edges over all edges — proportional to the communication-to-
    computation ratio of the iteration."""
    return edge_cut(mesh, assignment) / mesh.num_edges
