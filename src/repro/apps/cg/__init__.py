"""Iterative sparse solvers: conjugate gradient on regular grids
(paper Section 4).

Each CG iteration performs one sparse matrix-vector multiply (the
dominant computation), three vector additions and two dot products.
The sparse matrix is viewed as a graph — here 2-D (5-point) and 3-D
(7-point) regular grid Laplacians — partitioned into square/cubic
subgrids among processors.
"""

from repro.apps.cg.grid import Grid2D, Grid3D, GridPartition
from repro.apps.cg.model import CGModel
from repro.apps.cg.solver import conjugate_gradient
from repro.apps.cg.trace import CGTraceGenerator

__all__ = [
    "CGModel",
    "CGTraceGenerator",
    "conjugate_gradient",
    "Grid2D",
    "Grid3D",
    "GridPartition",
]
