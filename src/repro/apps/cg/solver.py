"""Conjugate-gradient solver.

The numerically validated kernel behind the Section 4 analysis.  Each
iteration performs exactly the operations the paper counts: one sparse
matrix-vector multiply, three vector additions (axpy), and two dot
products.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

import numpy as np


@dataclass
class CGResult:
    """Outcome of a conjugate-gradient solve.

    Attributes:
        x: The solution estimate.
        iterations: Iterations executed.
        residual_norm: Final ``||b - A x||_2``.
        converged: Whether the tolerance was met.
    """

    x: np.ndarray
    iterations: int
    residual_norm: float
    converged: bool


def conjugate_gradient(
    matvec: Callable[[np.ndarray], np.ndarray],
    b: np.ndarray,
    x0: Optional[np.ndarray] = None,
    tol: float = 1e-10,
    max_iterations: Optional[int] = None,
) -> CGResult:
    """Solve ``A x = b`` for symmetric positive definite ``A``.

    Args:
        matvec: Computes ``A @ v``.
        b: Right-hand side.
        x0: Initial guess (zeros by default).
        tol: Relative residual tolerance ``||r|| <= tol * ||b||``.
        max_iterations: Cap on iterations (default: problem dimension).

    Returns:
        A :class:`CGResult`.
    """
    n = b.shape[0]
    if max_iterations is None:
        max_iterations = n
    x = np.zeros_like(b) if x0 is None else x0.astype(float).copy()
    r = b - matvec(x)
    p = r.copy()
    rs_old = float(r @ r)
    b_norm = float(np.linalg.norm(b)) or 1.0
    iterations = 0
    for iterations in range(1, max_iterations + 1):
        q = matvec(p)
        denom = float(p @ q)
        if denom == 0.0:
            break
        alpha = rs_old / denom
        x += alpha * p
        r -= alpha * q
        rs_new = float(r @ r)
        if np.sqrt(rs_new) <= tol * b_norm:
            rs_old = rs_new
            break
        p = r + (rs_new / rs_old) * p
        rs_old = rs_new
    residual = float(np.linalg.norm(b - matvec(x)))
    return CGResult(
        x=x,
        iterations=iterations,
        residual_norm=residual,
        converged=residual <= tol * b_norm * 10,
    )


def flops_per_iteration_2d(n: int) -> float:
    """Work per CG iteration on an ``n x n`` 2-D grid: "roughly 10 n^2
    operations" (Section 4.3)."""
    return 10.0 * n * n


def flops_per_iteration_3d(n: int) -> float:
    """Work per CG iteration on an ``n^3`` 3-D grid (7-point stencil is
    ~14 ops/point plus vector ops)."""
    return 14.0 * n**3
