"""Analytical model for iterative solvers / CG (paper Section 4).

Working sets (Section 4.2) for an ``n x n`` 2-D grid on P processors:

- lev1WS: x values of three adjacent subrows, ``3 n/sqrt(P)`` double
  words (~5 KB for the prototypical 4000x4000 grid on 1024 processors
  once per-point state is included).  Significant but the miss rate
  stays high — the coefficient stream cannot be cached.
- lev2WS: the processor's entire partition.  Fitting it leaves only the
  communication miss rate, but "it is generally unreasonable to expect
  this set of entries to fit in cache".

For 3-D grids, lev1WS becomes two/three 2-D cross-sections of the local
subcube, ``~3 (n/cbrt(P))^2`` double words (5 KB -> 18 KB prototypical).

Grain size (Section 4.3): one 2-D iteration costs ~``10 n^2`` FLOPs and
communicates the ``4 n/sqrt(P)`` perimeter points per processor, giving
``5n/(2 sqrt(P))`` FLOPs/word; in 3-D, ``7n/(3 cbrt(P))``.
"""

from __future__ import annotations

import math

from repro.core.analysis import ApplicationModel
from repro.core.grain import GrainConfig, LoadBalanceModel
from repro.core.working_set import WorkingSet, WorkingSetHierarchy
from repro.units import DOUBLE_WORD


class CGModel(ApplicationModel):
    """Section-4 formulas for one (n, P, dims) problem instance.

    Args:
        n: Grid side length.  Defaults to the prototypical 4000x4000
            2-D grid (1 Gbyte at ~9 doubles/point).
        num_processors: Machine size P.
        dims: 2 or 3.
    """

    name = "CG"
    metric = "misses_per_flop"
    #: Grid points per processor.  Regularity makes balancing easy; only
    #: truly starved processors (a few points each) lose performance.
    load_model = LoadBalanceModel(
        unit_name="grid points", good_threshold=256, poor_threshold=16
    )

    #: Double words of state per grid point: p, q, x, r + stencil
    #: coefficients.
    POINT_DOUBLEWORDS_2D = 9
    POINT_DOUBLEWORDS_3D = 11

    def __init__(
        self, n: int = 4000, num_processors: int = 1024, dims: int = 2
    ) -> None:
        if dims not in (2, 3):
            raise ValueError("dims must be 2 or 3")
        self.n = n
        self.num_processors = num_processors
        self.dims = dims

    @classmethod
    def for_dataset(
        cls, dataset_bytes: float, num_processors: int = 1024, dims: int = 2
    ) -> "CGModel":
        per_point = (
            cls.POINT_DOUBLEWORDS_2D if dims == 2 else cls.POINT_DOUBLEWORDS_3D
        ) * DOUBLE_WORD
        n = int(round((dataset_bytes / per_point) ** (1.0 / dims)))
        return cls(n=n, num_processors=num_processors, dims=dims)

    # -- problem shape ------------------------------------------------------

    @property
    def point_doublewords(self) -> int:
        return (
            self.POINT_DOUBLEWORDS_2D if self.dims == 2 else self.POINT_DOUBLEWORDS_3D
        )

    @property
    def dataset_bytes(self) -> float:
        return float(self.n**self.dims) * self.point_doublewords * DOUBLE_WORD

    @property
    def proc_root(self) -> float:
        """sqrt(P) in 2-D, cbrt(P) in 3-D."""
        return self.num_processors ** (1.0 / self.dims)

    @property
    def sub_side(self) -> float:
        """Local subgrid side, ``n / P^(1/dims)``."""
        return self.n / self.proc_root

    def concurrency(self) -> float:
        """Independent grid points per iteration (Table 1: ~ n^2)."""
        return float(self.n**self.dims)

    def flops_per_iteration(self) -> float:
        """~10 n^2 in 2-D (Section 4.3); ~14 n^3 in 3-D."""
        if self.dims == 2:
            return 10.0 * self.n**2
        return 14.0 * self.n**3

    # -- working sets (Section 4.2) -------------------------------------------

    def lev1_bytes(self) -> float:
        """Three adjacent subrows (2-D) or ~3 cross-sections (3-D) of
        per-point sweep state."""
        if self.dims == 2:
            return 3.0 * self.sub_side * DOUBLE_WORD * 2
        return 3.0 * self.sub_side**2 * DOUBLE_WORD

    def lev2_bytes(self) -> float:
        """The entire local partition."""
        return self.dataset_bytes / self.num_processors

    def communication_miss_rate(self) -> float:
        """Misses per FLOP with the whole partition cached: the boundary
        exchange only."""
        boundary_points = 2.0 * self.dims * self.sub_side ** (self.dims - 1)
        flops_local = self.flops_per_iteration() / self.num_processors
        return boundary_points / flops_local

    def miss_rate_model(self, cache_bytes: float) -> float:
        """Analytical misses-per-FLOP curve (Figure 4 shape).

        Plateaus: ~0.7 below lev1WS (only register-level reuse of the
        sweep's running point survives); ~0.55 between lev1WS and
        lev2WS (the coefficient stream and CG vectors still miss every
        sweep — "the miss rate remains high even after this working set
        fits in the cache"); the communication rate beyond lev2WS.
        """
        floor = self.communication_miss_rate()
        if cache_bytes >= self.lev2_bytes():
            return floor
        if cache_bytes >= self.lev1_bytes():
            return 0.55
        return 0.7

    def working_sets(self) -> WorkingSetHierarchy:
        hierarchy = WorkingSetHierarchy(
            application=self.name,
            problem=f"{self.dims}-D grid, n={self.n}, P={self.num_processors}",
            dataset_bytes=self.dataset_bytes,
            per_processor_bytes=self.lev2_bytes(),
        )
        lev1_name = (
            "x values of three adjacent subrows"
            if self.dims == 2
            else "x values of adjacent 2-D cross-sections"
        )
        hierarchy.add(
            WorkingSet(
                level=1,
                name=lev1_name,
                size_bytes=self.lev1_bytes(),
                miss_rate_after=0.55,
                important=True,
                scaling=(
                    "n/sqrt(P); const with blocking"
                    if self.dims == 2
                    else "(n/cbrt(P))^2; const with blocking"
                ),
            )
        )
        hierarchy.add(
            WorkingSet(
                level=2,
                name="the processor's entire partition",
                size_bytes=self.lev2_bytes(),
                miss_rate_after=self.communication_miss_rate(),
                scaling="n^%d/P" % self.dims,
            )
        )
        return hierarchy

    # -- grain size (Section 4.3) -----------------------------------------------

    def _n_for_config(self, config: GrainConfig) -> float:
        per_point = self.point_doublewords * DOUBLE_WORD
        return (config.total_data_bytes / per_point) ** (1.0 / self.dims)

    def flops_per_word(self, config: GrainConfig) -> float:
        """2-D: ``5n/(2 sqrt(P))``;  3-D: ``7n/(3 cbrt(P))`` — functions
        of the grain size alone."""
        n = self._n_for_config(config)
        root = config.num_processors ** (1.0 / self.dims)
        if self.dims == 2:
            return 5.0 * n / (2.0 * root)
        return 7.0 * n / (3.0 * root)

    def units_per_processor(self, config: GrainConfig) -> float:
        n = self._n_for_config(config)
        return n**self.dims / config.num_processors

    def grain_notes(self, config: GrainConfig) -> str:
        if self.dims == 3:
            return "3-D grids halve the sustainable margin relative to 2-D"
        return ""
