"""Memory-reference trace generator for conjugate gradient.

Emits a processor's double-word reference stream over CG iterations on
an ``n x n`` 2-D grid (5-point stencil) or an ``n^3`` 3-D grid (7-point
stencil).  The matrix-vector multiply sweeps the processor's subgrid in
row-major order reading the stencil neighbours of the ``p`` vector —
the origin of the paper's lev1WS of "the x values from three adjacent
sub-rows" — plus the streaming coefficient reads that keep the miss
rate high until the lev2WS (the entire local partition) fits.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING, List, Optional

from repro.mem.address import AddressSpace
from repro.mem.trace import Trace, TraceBuilder
from repro.mem.shards import trace_builder
from repro.obs.tracing import traced
from repro.units import DOUBLE_WORD

if TYPE_CHECKING:
    from repro.validate.report import ValidationReport


class CGTraceGenerator:
    """Trace generator for CG on regular grids.

    Args:
        n: Grid side length.
        num_processors: P; square for 2-D grids, cube for 3-D.
        dims: 2 or 3.
        seed: Determinism-audit seed, recorded for provenance.  The
            stencil sweep depends only on the grid shape, so equal-seed
            runs are byte-identical by construction; the seed also
            parameterizes :meth:`self_check`'s random right-hand side.
    """

    def __init__(
        self, n: int, num_processors: int, dims: int = 2, seed: int = 0
    ) -> None:
        self.seed = seed
        if dims not in (2, 3):
            raise ValueError("dims must be 2 or 3")
        root = round(num_processors ** (1.0 / dims))
        if root**dims != num_processors:
            raise ValueError(
                f"num_processors must be a perfect {'square' if dims == 2 else 'cube'}"
            )
        if n % root != 0:
            raise ValueError("grid side must divide evenly among processors")
        self.n = n
        self.dims = dims
        self.num_processors = num_processors
        self.proc_side = root
        self.sub = n // root
        num_points = n**dims
        self.stencil = 5 if dims == 2 else 7
        self.space = AddressSpace()
        # Shared vectors, indexed by global point id.
        self.p_vec = self.space.allocate_array("p", num_points)
        self.q_vec = self.space.allocate_array("q", num_points)
        self.x_vec = self.space.allocate_array("x", num_points)
        self.r_vec = self.space.allocate_array("r", num_points)
        # Coefficients: stencil_size doubles per point.
        self.coeffs = self.space.allocate_array("A", num_points * self.stencil)
        self.flops = 0.0

    # -- addressing -------------------------------------------------------

    def _point_index(self, coords) -> int:
        index = 0
        for c in coords:
            index = index * self.n + c
        return index

    def _vec_addr(self, region, coords) -> int:
        return region.element(self._point_index(coords))

    # -- local geometry ---------------------------------------------------

    def _local_ranges(self, pid: int) -> List[range]:
        """The subgrid coordinate ranges owned by ``pid``."""
        ranges = []
        remaining = pid
        for axis in range(self.dims):
            stride = self.proc_side ** (self.dims - 1 - axis)
            block = remaining // stride
            remaining %= stride
            ranges.append(range(block * self.sub, (block + 1) * self.sub))
        return ranges

    def _neighbors(self, coords) -> List[tuple]:
        out = []
        for axis in range(self.dims):
            for delta in (-1, 1):
                moved = list(coords)
                moved[axis] += delta
                if 0 <= moved[axis] < self.n:
                    out.append(tuple(moved))
        return out

    def _local_points(self, pid: int):
        ranges = self._local_ranges(pid)
        if self.dims == 2:
            for i in ranges[0]:
                for j in ranges[1]:
                    yield (i, j)
        else:
            for i in ranges[0]:
                for j in ranges[1]:
                    for k in ranges[2]:
                        yield (i, j, k)

    # -- trace emission -----------------------------------------------------

    def _matvec_point(self, tb: TraceBuilder, coords) -> None:
        """One grid point of ``q = A p``."""
        stencil = self.stencil
        base = self._point_index(coords) * stencil
        for s in range(stencil):
            tb.read(self.coeffs.element(base + s))
        tb.read(self._vec_addr(self.p_vec, coords))
        for neighbor in self._neighbors(coords):
            tb.read(self._vec_addr(self.p_vec, neighbor))
        tb.write(self._vec_addr(self.q_vec, coords))
        self.flops += 2 * stencil

    def _trace_matvec(self, tb: TraceBuilder, pid: int) -> None:
        """``q = A p`` over the local subgrid (row-major sweep)."""
        for coords in self._local_points(pid):
            self._matvec_point(tb, coords)

    def _trace_matvec_blocked(
        self, tb: TraceBuilder, pid: int, tile: int
    ) -> None:
        """``q = A p`` with the sweep blocked into ``tile``-wide column
        strips (2-D only).

        Section 4.2: "the size of lev1WS can actually be kept constant
        through the use of blocking techniques" — the stencil's
        row-to-row reuse distance becomes ~3 tile-rows of sweep state
        instead of 3 full subrows, independent of n/sqrt(P).
        """
        if self.dims != 2:
            raise ValueError("blocked sweep implemented for 2-D grids only")
        if tile < 1:
            raise ValueError("tile must be >= 1")
        rows, cols = self._local_ranges(pid)
        for col_start in range(cols.start, cols.stop, tile):
            col_stop = min(col_start + tile, cols.stop)
            for i in rows:
                for j in range(col_start, col_stop):
                    self._matvec_point(tb, (i, j))

    def _trace_vector_ops(self, tb: TraceBuilder, pid: int) -> None:
        """The dots and axpys of one CG iteration:
        ``alpha = (r.r)/(p.q)``, ``x += alpha p``, ``r -= alpha q``,
        ``p = r + beta p``."""
        for coords in self._local_points(pid):
            p_addr = self._vec_addr(self.p_vec, coords)
            q_addr = self._vec_addr(self.q_vec, coords)
            x_addr = self._vec_addr(self.x_vec, coords)
            r_addr = self._vec_addr(self.r_vec, coords)
            # dot p.q
            tb.read(p_addr)
            tb.read(q_addr)
            # x += alpha p
            tb.read(x_addr)
            tb.write(x_addr)
            # r -= alpha q  (q still live)
            tb.read(r_addr)
            tb.write(r_addr)
            # dot r.r folded into the same sweep
            # p = r + beta p
            tb.write(p_addr)
            self.flops += 10

    @traced("apps.cg.trace_for_processor")
    def trace_for_processor(
        self, pid: int, iterations: int = 2, tile: Optional[int] = None
    ) -> Trace:
        """Trace ``iterations`` full CG iterations for one processor.

        Args:
            pid: Processor id.
            iterations: CG iterations to trace.
            tile: When given (2-D only), block the matrix-vector sweep
                into ``tile``-wide column strips — the Section 4.2
                blocking that pins the lev1WS to a constant size.

        Use the profiler's ``warmup`` to exclude the first iteration's
        cold misses, per the paper's methodology.
        """
        self.flops = 0.0
        tb = trace_builder()
        for _ in range(iterations):
            if tile is None:
                self._trace_matvec(tb, pid)
            else:
                self._trace_matvec_blocked(tb, pid, tile)
            self._trace_vector_ops(tb, pid)
        return tb.build()

    def refs_per_iteration(self, pid: int = 0) -> int:
        """Reference count of a single iteration (for warmup sizing)."""
        local = self.sub**self.dims
        matvec = local * (self.stencil + 1 + 2 * self.dims_clipped_avg() + 1)
        return int(matvec) + local * 7

    def dims_clipped_avg(self) -> float:
        """Average neighbours per point divided by 2 (boundary clipping
        makes this slightly less than ``dims``)."""
        return self.dims * (1.0 - 1.0 / self.n)

    @property
    def dataset_bytes(self) -> int:
        per_point = (4 + self.stencil) * DOUBLE_WORD  # p,q,x,r + coefficients
        return self.n**self.dims * per_point

    @property
    def local_bytes(self) -> int:
        return self.dataset_bytes // self.num_processors

    def self_check(self) -> "ValidationReport":
        """Mathematical self-check of the traced algorithm: solve a
        Laplacian system of this generator's grid size with CG and
        verify convergence.

        Returns the passing
        :class:`~repro.validate.report.ValidationReport`; raises
        :class:`~repro.runtime.errors.SelfCheckError` on failure.
        """
        from repro.validate.selfchecks import assert_self_check

        return assert_self_check("cg", seed=self.seed, n=self.n)
