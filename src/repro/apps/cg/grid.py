"""Regular-grid graphs and their processor partitions.

The paper's iterative-solver analysis (Section 4) uses an ``n x n``
2-D grid (5-point stencil) and an ``n x n x n`` 3-D grid (7-point
stencil) as the graph representation of the sparse matrix, partitioned
into square (respectively cubic) subgrids among processors.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterator, List, Tuple

import numpy as np


@dataclass(frozen=True)
class Grid2D:
    """An ``n x n`` 2-D grid with 5-point stencil connectivity."""

    n: int

    @property
    def num_points(self) -> int:
        return self.n * self.n

    @property
    def stencil_size(self) -> int:
        return 5

    def index(self, i: int, j: int) -> int:
        """Linear (row-major) index of point (i, j)."""
        return i * self.n + j

    def neighbors(self, i: int, j: int) -> Iterator[Tuple[int, int]]:
        """Interior-stencil neighbours, clipped at the boundary."""
        if i > 0:
            yield (i - 1, j)
        if i < self.n - 1:
            yield (i + 1, j)
        if j > 0:
            yield (i, j - 1)
        if j < self.n - 1:
            yield (i, j + 1)

    def laplacian_matvec(self, x: np.ndarray) -> np.ndarray:
        """``y = A x`` for the 5-point Laplacian (Dirichlet boundary):
        ``A = 4I - shifts``.  Vectorized ground truth for the solver."""
        grid = x.reshape(self.n, self.n)
        y = 4.0 * grid
        y[1:, :] -= grid[:-1, :]
        y[:-1, :] -= grid[1:, :]
        y[:, 1:] -= grid[:, :-1]
        y[:, :-1] -= grid[:, 1:]
        return y.reshape(-1)


@dataclass(frozen=True)
class Grid3D:
    """An ``n x n x n`` 3-D grid with 7-point stencil connectivity."""

    n: int

    @property
    def num_points(self) -> int:
        return self.n**3

    @property
    def stencil_size(self) -> int:
        return 7

    def index(self, i: int, j: int, k: int) -> int:
        return (i * self.n + j) * self.n + k

    def laplacian_matvec(self, x: np.ndarray) -> np.ndarray:
        """``y = A x`` for the 7-point Laplacian (Dirichlet boundary)."""
        grid = x.reshape(self.n, self.n, self.n)
        y = 6.0 * grid
        y[1:, :, :] -= grid[:-1, :, :]
        y[:-1, :, :] -= grid[1:, :, :]
        y[:, 1:, :] -= grid[:, :-1, :]
        y[:, :-1, :] -= grid[:, 1:, :]
        y[:, :, 1:] -= grid[:, :, :-1]
        y[:, :, :-1] -= grid[:, :, 1:]
        return y.reshape(-1)


@dataclass(frozen=True)
class GridPartition:
    """Assignment of a square 2-D grid to a ``sqrt(P) x sqrt(P)``
    processor grid (Figure 3)."""

    grid: Grid2D
    num_processors: int

    def __post_init__(self) -> None:
        side = int(round(math.sqrt(self.num_processors)))
        if side * side != self.num_processors:
            raise ValueError("partition needs a square processor count")
        if self.grid.n % side != 0:
            raise ValueError("grid side must divide evenly among processors")

    @property
    def proc_side(self) -> int:
        return int(round(math.sqrt(self.num_processors)))

    @property
    def points_per_side(self) -> int:
        """Subgrid side length, ``n / sqrt(P)``."""
        return self.grid.n // self.proc_side

    def owner(self, i: int, j: int) -> int:
        s = self.points_per_side
        return (i // s) * self.proc_side + (j // s)

    def local_rows(self, pid: int) -> range:
        s = self.points_per_side
        r = pid // self.proc_side
        return range(r * s, (r + 1) * s)

    def local_cols(self, pid: int) -> range:
        s = self.points_per_side
        c = pid % self.proc_side
        return range(c * s, (c + 1) * s)

    def boundary_points(self, pid: int) -> int:
        """Points on the partition perimeter (communicated each
        iteration): ``~4 n / sqrt(P)``."""
        s = self.points_per_side
        if s == 1:
            return 1
        return 4 * s - 4
