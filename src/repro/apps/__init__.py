"""The five application classes studied by the paper (Sections 3-7).

Each subpackage provides three layers:

- a **kernel**: a real, numerically validated implementation of the
  computation (blocked LU, CG, radix-r FFT, Barnes-Hut, ray-cast volume
  rendering),
- a **trace generator**: the same computation instrumented to emit the
  per-processor double-word memory reference stream that the paper's
  cache simulations consume, and
- a **model**: the paper's analytical working-set / communication /
  grain-size formulas, exposed as an
  :class:`repro.core.analysis.ApplicationModel`.
"""

__all__ = ["lu", "cg", "fft", "barnes_hut", "volrend"]
