"""Dense blocked LU factorization (paper Section 3).

The most common source of large dense LU problems is radar
cross-section computation; the analysis also covers dense QR/Cholesky
and, in many respects, sparse Cholesky.

Key structure: the ``n x n`` matrix is an ``N x N`` array of ``B x B``
blocks assigned to a ``sqrt(P) x sqrt(P)`` processor grid by 2-D scatter
decomposition; the dominant operation is the rank-B block update
``A[I,J] -= A[I,K] @ A[K,J]`` performed by the owner of ``A[I,J]``.
"""

from repro.apps.lu.cholesky import blocked_cholesky, random_spd
from repro.apps.lu.cholesky_trace import CholeskyTraceGenerator
from repro.apps.lu.factor import blocked_lu, reconstruct
from repro.apps.lu.model import LUModel
from repro.apps.lu.qr import householder_qr
from repro.apps.lu.trace import LUTraceGenerator, ScatterDecomposition

__all__ = [
    "CholeskyTraceGenerator",
    "LUModel",
    "LUTraceGenerator",
    "ScatterDecomposition",
    "blocked_cholesky",
    "blocked_lu",
    "householder_qr",
    "random_spd",
    "reconstruct",
]
