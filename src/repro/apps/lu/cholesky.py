"""Blocked dense Cholesky factorization.

Section 3: "Applications with very similar structure include dense QR
factorization, dense Cholesky factorization, dense eigenvalue methods,
and in many respects sparse Cholesky factorization."  This kernel
demonstrates that the LU analysis carries over: the block structure
(factor diagonal block, solve the panel, rank-B trailing update) is the
same, so the working-set hierarchy is the LU hierarchy with the
triangular halving of work and data.
"""

from __future__ import annotations

import math

import numpy as np


def _factor_diagonal_block(block: np.ndarray) -> None:
    """In-place lower Cholesky of one dense block."""
    b = block.shape[0]
    for k in range(b):
        pivot = block[k, k]
        if pivot <= 0.0:
            raise np.linalg.LinAlgError("matrix not positive definite")
        block[k, k] = math.sqrt(pivot)
        block[k + 1 :, k] /= block[k, k]
        for j in range(k + 1, b):
            block[j:, j] -= block[j:, k] * block[j, k]
    # Zero the strictly upper triangle of the block.
    for k in range(b):
        block[k, k + 1 :] = 0.0


def blocked_cholesky(a: np.ndarray, block_size: int) -> np.ndarray:
    """Factor symmetric positive definite ``a`` into ``L @ L.T`` in
    place; returns the lower-triangular factor (same object as ``a``).

    Args:
        a: SPD float64 matrix whose order is a multiple of
            ``block_size``.  Only the lower triangle is referenced.
        block_size: The block dimension B.
    """
    n = a.shape[0]
    if a.shape[0] != a.shape[1]:
        raise ValueError("matrix must be square")
    if n % block_size != 0:
        raise ValueError("matrix order must be a multiple of block_size")
    nb = n // block_size

    def blk(i: int, j: int) -> np.ndarray:
        return a[
            i * block_size : (i + 1) * block_size,
            j * block_size : (j + 1) * block_size,
        ]

    for k in range(nb):
        _factor_diagonal_block(blk(k, k))
        lower_kk = blk(k, k)
        # Panel: A[I,K] <- A[I,K] @ inv(L_kk^T)
        for i in range(k + 1, nb):
            blk(i, k)[:] = np.linalg.solve(lower_kk, blk(i, k).T).T
        # Trailing update (lower triangle only): A[I,J] -= A[I,K] A[J,K]^T
        for j in range(k + 1, nb):
            for i in range(j, nb):
                blk(i, j)[:] -= blk(i, k) @ blk(j, k).T
        # Zero the strictly upper blocks of column k for a clean factor.
        for j in range(k + 1, nb):
            blk(k, j)[:] = 0.0
    return a


def flop_count(n: int) -> float:
    """Operations in an n x n Cholesky, ``~ n^3/3`` (half of LU)."""
    return float(n) ** 3 / 3.0


def random_spd(n: int, seed: int = 0) -> np.ndarray:
    """A random symmetric positive definite matrix."""
    rng = np.random.default_rng(seed)
    a = rng.standard_normal((n, n))
    return a @ a.T + n * np.eye(n)
