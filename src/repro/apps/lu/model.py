"""Analytical model for blocked dense LU (paper Section 3).

Working-set hierarchy (Section 3.2), for block size B on P processors
factoring an ``n x n`` matrix:

- lev1WS: two block columns, ``2 * B`` double words (~260 bytes at
  B=16).  Fitting it roughly halves the miss rate.
- lev2WS: one ``B x B`` block (~2200 bytes at B=16).  Fitting it drops
  the miss rate to roughly ``1/B`` misses per FLOP.
- lev3WS: all pivot row/column blocks a processor uses in one K
  iteration, ``2nB/sqrt(P)`` double words (~80 KB for the prototypical
  problem).  Fitting it halves the rate again, to ``1/(2B)``.
- lev4WS: the processor's whole partition, ``n^2/P`` double words.
  Fitting it leaves only the communication miss rate.

Grain size (Section 3.3): LU performs ``2n^3/3`` FLOPs and communicates
``n^2 sqrt(P)`` double words, so the computation-to-communication ratio
is ``2n/(3 sqrt(P))`` — a function of the grain size ``n^2/P`` only.
"""

from __future__ import annotations

import math
from typing import Optional

from repro.core.analysis import ApplicationModel
from repro.core.grain import GrainConfig, LoadBalanceModel
from repro.core.working_set import WorkingSet, WorkingSetHierarchy
from repro.units import DOUBLE_WORD, GB


class LUModel(ApplicationModel):
    """Section-3 formulas for one (n, B, P) problem instance.

    Args:
        n: Matrix order.  Defaults to the prototypical ~1-Gbyte matrix.
        block_size: Block dimension B (the paper recommends 8-16).
        num_processors: Machine size P (perfect square).
    """

    name = "LU"
    metric = "misses_per_flop"
    #: Blocks per processor: 380 is the paper's comfortable figure; at 25
    #: "load balancing problems" reduce performance (Section 3.3).
    load_model = LoadBalanceModel(
        unit_name="matrix blocks", good_threshold=100, poor_threshold=10
    )

    def __init__(
        self,
        n: int = 10_000,
        block_size: int = 16,
        num_processors: int = 1024,
    ) -> None:
        if block_size < 2:
            raise ValueError("block size must be at least 2")
        if num_processors < 1:
            raise ValueError("need at least one processor")
        self.n = n
        self.block_size = block_size
        self.num_processors = num_processors

    # -- problem shape ---------------------------------------------------

    @classmethod
    def for_dataset(
        cls, dataset_bytes: float, block_size: int = 16, num_processors: int = 1024
    ) -> "LUModel":
        """The LU problem whose matrix occupies ``dataset_bytes``."""
        n = int(round(math.sqrt(dataset_bytes / DOUBLE_WORD)))
        return cls(n=n, block_size=block_size, num_processors=num_processors)

    @property
    def dataset_bytes(self) -> float:
        return float(self.n) ** 2 * DOUBLE_WORD

    def flops(self) -> float:
        """Total work, ``2n^3/3``."""
        return 2.0 * self.n**3 / 3.0

    def concurrency(self) -> float:
        """Independent work items: the ~n^2 block updates available per
        K iteration (Table 1: concurrency ~ n^2)."""
        return float(self.n) ** 2 / self.block_size**2

    def communication_doublewords(self) -> float:
        """Total communication volume: every block travels to a row or
        column of sqrt(P) processors -> ``n^2 sqrt(P)`` double words."""
        return float(self.n) ** 2 * math.sqrt(self.num_processors)

    # -- working sets (Section 3.2) ---------------------------------------

    def lev1_bytes(self) -> float:
        """Two block columns."""
        return 2 * self.block_size * DOUBLE_WORD

    def lev2_bytes(self) -> float:
        """One B x B block (plus the two live columns)."""
        return (self.block_size**2 + 2 * self.block_size) * DOUBLE_WORD

    def lev3_bytes(self) -> float:
        """Pivot row/column blocks used in one K iteration:
        ``2 n B / sqrt(P)`` double words."""
        return 2.0 * self.n * self.block_size / math.sqrt(self.num_processors) * DOUBLE_WORD

    def lev4_bytes(self) -> float:
        """The processor's whole partition, ``n^2/P`` double words."""
        return float(self.n) ** 2 / self.num_processors * DOUBLE_WORD

    def communication_miss_rate(self) -> float:
        """Misses per FLOP with an infinite cache: total communication
        volume over total work, ``3 sqrt(P) / (2n)``."""
        return self.communication_doublewords() / self.flops()

    def miss_rate_model(self, cache_bytes: float) -> float:
        """Analytical misses-per-FLOP at a given fully associative cache
        size — the Figure 2 curve.

        Plateaus: ~1.0 below lev1WS, ~0.5 between lev1 and lev2, ~1.5/B
        between lev2 and lev3, ~1/(2B) between lev3 and lev4, and the
        communication rate beyond lev4.
        """
        b = self.block_size
        floor = self.communication_miss_rate()
        if cache_bytes >= self.lev4_bytes():
            return floor
        if cache_bytes >= self.lev3_bytes():
            return max(1.0 / (2 * b), floor)
        if cache_bytes >= self.lev2_bytes():
            return max(1.5 / b, floor)
        if cache_bytes >= self.lev1_bytes():
            return 0.5
        return 1.0

    def working_sets(self) -> WorkingSetHierarchy:
        hierarchy = WorkingSetHierarchy(
            application=self.name,
            problem=(
                f"n={self.n}, B={self.block_size}, P={self.num_processors}"
            ),
            dataset_bytes=self.dataset_bytes,
            per_processor_bytes=self.lev4_bytes(),
        )
        hierarchy.add(
            WorkingSet(
                level=1,
                name="two block columns",
                size_bytes=self.lev1_bytes(),
                miss_rate_after=0.5,
                scaling="const (B only)",
            )
        )
        hierarchy.add(
            WorkingSet(
                level=2,
                name="one BxB block",
                size_bytes=self.lev2_bytes(),
                miss_rate_after=1.5 / self.block_size,
                important=True,
                scaling="const (B only)",
            )
        )
        hierarchy.add(
            WorkingSet(
                level=3,
                name="pivot row/column blocks for one K iteration",
                size_bytes=self.lev3_bytes(),
                miss_rate_after=1.0 / (2 * self.block_size),
                scaling="2nB/sqrt(P)",
            )
        )
        hierarchy.add(
            WorkingSet(
                level=4,
                name="all blocks owned by the processor",
                size_bytes=self.lev4_bytes(),
                miss_rate_after=self.communication_miss_rate(),
                scaling="n^2/P",
            )
        )
        return hierarchy

    # -- grain size (Section 3.3) -----------------------------------------

    def flops_per_word(self, config: GrainConfig) -> float:
        """``2n/(3 sqrt(P))`` — depends only on the grain size n^2/P."""
        n = math.sqrt(config.total_data_bytes / DOUBLE_WORD)
        return 2.0 * n / (3.0 * math.sqrt(config.num_processors))

    def units_per_processor(self, config: GrainConfig) -> float:
        """Matrix blocks per processor, ``(n/B)^2 / P``."""
        n = math.sqrt(config.total_data_bytes / DOUBLE_WORD)
        return (n / self.block_size) ** 2 / config.num_processors

    def grain_notes(self, config: GrainConfig) -> str:
        if config.memory_per_processor < 256 * 1024:
            return (
                "smaller blocks would improve balance at the cost of higher"
                " cache miss rates (Section 3.3)"
            )
        return ""
