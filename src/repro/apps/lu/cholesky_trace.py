"""Memory-reference trace generator for blocked Cholesky.

Demonstrates the paper's Section 3 claim that the LU analysis "applies
to a wider set of applications" including dense Cholesky: the reference
structure — factor the diagonal block, solve the panel, rank-B trailing
update — is identical, so the working-set hierarchy (two block columns;
one block; panel blocks; the partition) reappears with half the work
and only the lower triangle of data.
"""

from __future__ import annotations

from typing import Optional

from repro.apps.lu.trace import LUTraceGenerator
from repro.mem.trace import Trace, TraceBuilder
from repro.obs.tracing import traced


class CholeskyTraceGenerator(LUTraceGenerator):
    """Per-processor traces for blocked Cholesky (lower triangle only).

    Shares the matrix layout, scatter decomposition and kernel
    reference patterns of :class:`LUTraceGenerator`; only the iteration
    space changes.
    """

    def _trace_symmetric_update(
        self, tb: TraceBuilder, bi: int, bj: int, bk: int
    ) -> None:
        """``A[I,J] -= A[I,K] @ A[J,K]^T`` in column-SAXPY order.

        The scalar stream walks block (J,K) row-wise (the transpose
        access) while columns of (I,K) and (I,J) stay live — the same
        two-block-column lev1WS as LU.
        """
        b = self.block_size
        for j in range(b):
            for k in range(b):
                tb.read(self._elem_addr(bj, bk, j, k))  # scalar A_JK[j,k]
                for i in range(b):
                    tb.read(self._elem_addr(bi, bk, i, k))
                    tb.read(self._elem_addr(bi, bj, i, j))
                    tb.write(self._elem_addr(bi, bj, i, j))
                    self.flops += 2

    @traced("apps.cholesky.trace_for_processor")
    def trace_for_processor(
        self, pid: int, max_k: Optional[int] = None, skip_k: int = 0
    ) -> Trace:
        """Trace processor ``pid`` through the Cholesky factorization."""
        self.flops = 0.0
        tb = TraceBuilder()
        nb = self.num_blocks
        last_k = nb if max_k is None else min(nb, max_k)
        for bk in range(skip_k, last_k):
            if self.decomp.owns(pid, bk, bk):
                self._trace_factor_block(tb, bk)
            for bi in range(bk + 1, nb):
                if self.decomp.owns(pid, bi, bk):
                    self._trace_triangular_solve(tb, bk, bi, bk)
            for bj in range(bk + 1, nb):
                for bi in range(bj, nb):  # lower triangle only
                    if self.decomp.owns(pid, bi, bj):
                        self._trace_symmetric_update(tb, bi, bj, bk)
        return tb.build()
