"""Householder QR factorization.

Completes the Section 3 family: "Applications with very similar
structure include dense QR factorization ..." — the blocked panel
structure (factor a panel of columns, update the trailing matrix with
a rank-B correction) mirrors blocked LU, so the LU working-set analysis
carries over.  This module provides the numerically validated kernel.
"""

from __future__ import annotations

import math
from typing import Tuple

import numpy as np


def householder_qr(a: np.ndarray, panel_width: int = 8) -> Tuple[np.ndarray, np.ndarray]:
    """Factor ``a`` (m x n, m >= n) into ``Q @ R``.

    Processes columns in panels of ``panel_width`` — each panel's
    reflectors are formed and then applied to the trailing matrix in
    one sweep, the same compute structure as blocked LU's factor/update
    phases.

    Returns:
        (Q, R) with Q m x n having orthonormal columns and R n x n
        upper-triangular, matching ``numpy.linalg.qr`` up to column
        sign conventions.
    """
    a = np.asarray(a, dtype=float)
    m, n = a.shape
    if m < n:
        raise ValueError("householder_qr requires m >= n")
    if panel_width < 1:
        raise ValueError("panel_width must be >= 1")
    r = a.copy()
    # Accumulate reflectors (v vectors and taus) to form Q afterwards.
    vs = []
    taus = []
    for panel_start in range(0, n, panel_width):
        panel_stop = min(panel_start + panel_width, n)
        # Factor the panel column by column.
        for k in range(panel_start, panel_stop):
            x = r[k:, k]
            norm = float(np.linalg.norm(x))
            if norm == 0.0:
                v = np.zeros_like(x)
                v[0] = 1.0
                tau = 0.0
            else:
                alpha = -math.copysign(norm, x[0] if x[0] != 0 else 1.0)
                v = x.copy()
                v[0] -= alpha
                vnorm = float(np.linalg.norm(v))
                if vnorm == 0.0:
                    tau = 0.0
                    v = np.zeros_like(x)
                    v[0] = 1.0
                else:
                    v /= vnorm
                    tau = 2.0
            # Apply the reflector to the rest of the panel and, at
            # panel end, to the trailing matrix (blocked update).
            r[k:, k:panel_stop] -= tau * np.outer(v, v @ r[k:, k:panel_stop])
            vs.append((k, v))
            taus.append(tau)
        # Trailing update for this panel's reflectors.
        for (k, v), tau in zip(
            vs[panel_start:panel_stop], taus[panel_start:panel_stop]
        ):
            if panel_stop < n:
                r[k:, panel_stop:] -= tau * np.outer(v, v @ r[k:, panel_stop:])
    # Form Q by applying the reflectors to the identity, in reverse.
    q = np.eye(m, n)
    for (k, v), tau in zip(reversed(vs), reversed(taus)):
        q[k:, :] -= tau * np.outer(v, v @ q[k:, :])
    return q, np.triu(r[:n, :])


def flop_count(m: int, n: int) -> float:
    """Operations in an m x n Householder QR, ``~ 2n^2(m - n/3)``."""
    return 2.0 * n * n * (m - n / 3.0)
