"""Blocked dense LU factorization kernel (without pivoting).

This is the numerical ground truth for the traced computation: the same
block algorithm as the paper's pseudo-code (Section 3.1),

    1. for K = 0 to N:
    2.     factor block A[K,K]
    3.     compute values for all blocks in column K and row K
    4.     for J = K+1 to N:
    5.         for I = K+1 to N:
    6.             A[I,J] <- A[I,J] - A[I,K] @ A[K,J]

No pivoting is performed (the radar cross-section systems the paper
cites are solved unpivoted); callers must supply matrices for which
unpivoted LU is stable, e.g. diagonally dominant ones.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np


def _factor_diagonal_block(block: np.ndarray) -> None:
    """In-place unpivoted LU of one dense block (L unit-diagonal)."""
    b = block.shape[0]
    for k in range(b):
        pivot = block[k, k]
        if pivot == 0.0:
            raise ZeroDivisionError(
                "zero pivot in unpivoted LU; matrix not factorable without pivoting"
            )
        block[k + 1 :, k] /= pivot
        block[k + 1 :, k + 1 :] -= np.outer(block[k + 1 :, k], block[k, k + 1 :])


def blocked_lu(a: np.ndarray, block_size: int) -> np.ndarray:
    """Factor ``a`` in place into ``L\\U`` (packed: unit-lower L below the
    diagonal, U on and above it), using ``block_size x block_size``
    blocks.  Returns the packed factor array (same object as ``a``).

    Args:
        a: Square float64 matrix whose order is a multiple of
            ``block_size``.
        block_size: The block dimension B.
    """
    n = a.shape[0]
    if a.shape[0] != a.shape[1]:
        raise ValueError("matrix must be square")
    if n % block_size != 0:
        raise ValueError("matrix order must be a multiple of block_size")
    nb = n // block_size

    def blk(i: int, j: int) -> np.ndarray:
        return a[
            i * block_size : (i + 1) * block_size,
            j * block_size : (j + 1) * block_size,
        ]

    for k in range(nb):
        akk = blk(k, k)
        _factor_diagonal_block(akk)
        lower = np.tril(akk, -1) + np.eye(block_size)
        upper = np.triu(akk)
        # Column K: A[I,K] <- A[I,K] @ inv(U_kk)
        for i in range(k + 1, nb):
            blk(i, k)[:] = np.linalg.solve(upper.T, blk(i, k).T).T
        # Row K: A[K,J] <- inv(L_kk) @ A[K,J]
        for j in range(k + 1, nb):
            blk(k, j)[:] = np.linalg.solve(lower, blk(k, j))
        # Trailing update: A[I,J] -= A[I,K] @ A[K,J]
        for j in range(k + 1, nb):
            for i in range(k + 1, nb):
                blk(i, j)[:] -= blk(i, k) @ blk(k, j)
    return a


def unpack(packed: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Split a packed ``L\\U`` factor into (L, U)."""
    lower = np.tril(packed, -1) + np.eye(packed.shape[0])
    upper = np.triu(packed)
    return lower, upper


def reconstruct(packed: np.ndarray) -> np.ndarray:
    """Multiply the packed factors back: returns ``L @ U``."""
    lower, upper = unpack(packed)
    return lower @ upper


def flop_count(n: int) -> float:
    """Floating-point operations in an ``n x n`` LU factorization,
    ``~ 2n^3/3`` (Section 3.3)."""
    return 2.0 * n**3 / 3.0


def random_diagonally_dominant(n: int, seed: int = 0) -> np.ndarray:
    """A random matrix safe for unpivoted LU (strict diagonal dominance)."""
    rng = np.random.default_rng(seed)
    a = rng.standard_normal((n, n))
    a += np.diag(np.abs(a).sum(axis=1) + 1.0)
    return a
