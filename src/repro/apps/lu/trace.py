"""Memory-reference trace generator for blocked dense LU.

Emits the double-word reference stream of one processor (or all
processors) executing the Section 3.1 block algorithm under a 2-D
scatter decomposition.  The inner kernels are column-oriented (SAXPY
form), which is what produces the paper's level-1 working set of *two
block columns*.

Storage layout: the matrix is stored block-major (block (I,J)
contiguous), column-major within a block — the layout the paper assumes
when it notes that "the cache conflict problem can easily be avoided"
for this application.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import TYPE_CHECKING, List, Optional

from repro.mem.address import AddressSpace, Region
from repro.mem.trace import Trace, TraceBuilder
from repro.mem.shards import trace_builder
from repro.obs.tracing import traced
from repro.units import DOUBLE_WORD

if TYPE_CHECKING:
    from repro.validate.report import ValidationReport


@dataclass(frozen=True)
class ScatterDecomposition:
    """2-D scatter (cyclic) assignment of blocks to a processor grid.

    Block (I, J) belongs to processor ``(I mod P_rows, J mod P_cols)``
    (Section 3.1, Figure 1).
    """

    p_rows: int
    p_cols: int

    @classmethod
    def square(cls, num_processors: int) -> "ScatterDecomposition":
        side = int(round(math.sqrt(num_processors)))
        if side * side != num_processors:
            raise ValueError("square decomposition needs a square processor count")
        return cls(side, side)

    @property
    def num_processors(self) -> int:
        return self.p_rows * self.p_cols

    def owner(self, block_i: int, block_j: int) -> int:
        """Linear processor id owning block (I, J)."""
        return (block_i % self.p_rows) * self.p_cols + (block_j % self.p_cols)

    def owns(self, pid: int, block_i: int, block_j: int) -> bool:
        return self.owner(block_i, block_j) == pid

    def blocks_owned(self, pid: int, num_blocks: int) -> int:
        """How many blocks of an ``num_blocks x num_blocks`` block matrix
        processor ``pid`` owns."""
        row = pid // self.p_cols
        col = pid % self.p_cols
        rows = len(range(row, num_blocks, self.p_rows))
        cols = len(range(col, num_blocks, self.p_cols))
        return rows * cols


class LUTraceGenerator:
    """Generates per-processor reference traces for blocked LU.

    Args:
        n: Matrix order (multiple of ``block_size``).
        block_size: Block dimension B.
        num_processors: Perfect-square processor count.
        seed: Determinism-audit seed, recorded for provenance.  The LU
            reference pattern depends only on the problem shape (matrix
            *values* never steer control flow), so equal-seed runs are
            byte-identical by construction; the seed also parameterizes
            :meth:`self_check`'s random test matrix.
    """

    def __init__(
        self, n: int, block_size: int, num_processors: int, seed: int = 0
    ) -> None:
        if n % block_size != 0:
            raise ValueError("n must be a multiple of block_size")
        self.seed = seed
        self.n = n
        self.block_size = block_size
        self.num_blocks = n // block_size
        self.decomp = ScatterDecomposition.square(num_processors)
        self.space = AddressSpace()
        self.matrix = self.space.allocate_array("matrix A", n * n)
        self.flops = 0.0

    def _elem_addr(self, block_i: int, block_j: int, i: int, j: int) -> int:
        """Byte address of element (i, j) within block (I, J)."""
        b = self.block_size
        block_index = block_i * self.num_blocks + block_j
        offset = block_index * b * b + j * b + i
        return self.matrix.element(offset)

    # ------------------------------------------------------------------
    # Kernel reference patterns
    # ------------------------------------------------------------------

    def _trace_factor_block(self, tb: TraceBuilder, bk: int) -> None:
        """Unblocked LU of the diagonal block (Step 2)."""
        b = self.block_size
        for k in range(b):
            tb.read(self._elem_addr(bk, bk, k, k))
            for i in range(k + 1, b):
                tb.read(self._elem_addr(bk, bk, i, k))
                tb.write(self._elem_addr(bk, bk, i, k))
            for j in range(k + 1, b):
                pivot_row = self._elem_addr(bk, bk, k, j)
                tb.read(pivot_row)
                for i in range(k + 1, b):
                    tb.read(self._elem_addr(bk, bk, i, k))
                    tb.read(self._elem_addr(bk, bk, i, j))
                    tb.write(self._elem_addr(bk, bk, i, j))
                    self.flops += 2
        self.flops += b * b  # divisions

    def _trace_triangular_solve(
        self, tb: TraceBuilder, diag: int, bi: int, bj: int
    ) -> None:
        """Column/row solve against the diagonal block (Step 3).

        Traced column-by-column: each column of the target block is
        updated using columns of the diagonal block.
        """
        b = self.block_size
        for j in range(b):
            for k in range(b):
                tb.read(self._elem_addr(diag, diag, k, k))
                for i in range(k + 1, b):
                    tb.read(self._elem_addr(diag, diag, i, k))
                    tb.read(self._elem_addr(bi, bj, i, j))
                    tb.write(self._elem_addr(bi, bj, i, j))
                    self.flops += 2

    def _trace_block_update(
        self, tb: TraceBuilder, bi: int, bj: int, bk: int
    ) -> None:
        """The dominant Step 6: ``A[I,J] -= A[I,K] @ A[K,J]``.

        Column-SAXPY order: one column of A[I,J] and one column of
        A[I,K] are live at a time — the paper's lev1WS of two block
        columns (~260 bytes at B=16).
        """
        b = self.block_size
        for j in range(b):
            for k in range(b):
                tb.read(self._elem_addr(bk, bj, k, j))  # scalar b_kj
                for i in range(b):
                    tb.read(self._elem_addr(bi, bk, i, k))
                    tb.read(self._elem_addr(bi, bj, i, j))
                    tb.write(self._elem_addr(bi, bj, i, j))
                    self.flops += 2

    # ------------------------------------------------------------------
    # Whole-computation traces
    # ------------------------------------------------------------------

    @traced("apps.lu.trace_for_processor")
    def trace_for_processor(
        self, pid: int, max_k: Optional[int] = None, skip_k: int = 0
    ) -> Trace:
        """Trace of processor ``pid``'s references through the
        factorization.

        Args:
            pid: Linear processor id.
            max_k: Stop after this many K iterations (None = all).
            skip_k: Skip the first K iterations (cold-start exclusion
                happens instead via the profiler's ``warmup``; this is
                for trimming trace length).
        """
        self.flops = 0.0
        tb = trace_builder()
        nb = self.num_blocks
        last_k = nb if max_k is None else min(nb, max_k)
        for bk in range(skip_k, last_k):
            if self.decomp.owns(pid, bk, bk):
                self._trace_factor_block(tb, bk)
            for bi in range(bk + 1, nb):
                if self.decomp.owns(pid, bi, bk):
                    self._trace_triangular_solve(tb, bk, bi, bk)
            for bj in range(bk + 1, nb):
                if self.decomp.owns(pid, bk, bj):
                    self._trace_triangular_solve(tb, bk, bk, bj)
            for bj in range(bk + 1, nb):
                for bi in range(bk + 1, nb):
                    if self.decomp.owns(pid, bi, bj):
                        self._trace_block_update(tb, bi, bj, bk)
        return tb.build()

    def traces_for_all(self, max_k: Optional[int] = None) -> List[Trace]:
        """Per-processor traces for the whole machine (for the
        multiprocessor communication-miss analysis)."""
        return [
            self.trace_for_processor(pid, max_k=max_k)
            for pid in range(self.decomp.num_processors)
        ]

    @property
    def dataset_bytes(self) -> int:
        return self.n * self.n * DOUBLE_WORD

    def blocks_per_processor(self, pid: int = 0) -> int:
        return self.decomp.blocks_owned(pid, self.num_blocks)

    def self_check(self) -> "ValidationReport":
        """Mathematical self-check of the traced algorithm: factor a
        random diagonally dominant matrix of this generator's shape and
        verify the ``L @ U`` reconstruction residual.

        Returns the passing
        :class:`~repro.validate.report.ValidationReport`; raises
        :class:`~repro.runtime.errors.SelfCheckError` on failure.
        """
        from repro.validate.selfchecks import assert_self_check

        return assert_self_check(
            "lu", seed=self.seed, n=self.n, block_size=self.block_size
        )
