"""FFT kernels: iterative radix-2 Cooley-Tukey and the four-step
(transpose) parallel decomposition.

The four-step algorithm is the numerical realization of the paper's
radix-``D`` structure: treat the length-``N = N1*N2`` vector as an
``N1 x N2`` matrix; FFT the columns (the first radix-``N1`` stage),
apply twiddle factors, FFT the rows (the second stage), and read out
transposed.  The two column/row sweeps correspond to the paper's two
communication phases: "it communicates the 2N words of data twice
between processors" (Section 5.3).
"""

from __future__ import annotations

import math
from typing import Tuple

import numpy as np


def _bit_reverse_permutation(n: int) -> np.ndarray:
    """Indices in bit-reversed order for a power-of-two n."""
    bits = n.bit_length() - 1
    indices = np.arange(n)
    reversed_indices = np.zeros(n, dtype=np.int64)
    for bit in range(bits):
        reversed_indices |= ((indices >> bit) & 1) << (bits - 1 - bit)
    return reversed_indices


def _check_power_of_two(n: int) -> None:
    if n < 1 or (n & (n - 1)) != 0:
        raise ValueError("FFT length must be a positive power of two")


def fft(x: np.ndarray) -> np.ndarray:
    """Iterative radix-2 decimation-in-time FFT.

    Args:
        x: Complex (or real) vector whose length is a power of two.

    Returns:
        The discrete Fourier transform, matching ``numpy.fft.fft``.
    """
    x = np.asarray(x, dtype=np.complex128)
    n = x.shape[0]
    _check_power_of_two(n)
    out = x[_bit_reverse_permutation(n)].copy()
    length = 2
    while length <= n:
        half = length // 2
        twiddle = np.exp(-2j * np.pi * np.arange(half) / length)
        work = out.reshape(n // length, length)
        even = work[:, :half].copy()
        odd = work[:, half:] * twiddle
        work[:, :half] = even + odd
        work[:, half:] = even - odd
        length *= 2
    return out


def ifft(x: np.ndarray) -> np.ndarray:
    """Inverse FFT via conjugation: ``ifft(x) = conj(fft(conj(x)))/n``."""
    x = np.asarray(x, dtype=np.complex128)
    return np.conj(fft(np.conj(x))) / x.shape[0]


def four_step_fft(x: np.ndarray, n1: int) -> np.ndarray:
    """The four-step / transpose FFT with first-dimension ``n1``.

    Equivalent to the parallel radix-``n1`` organization: columns are
    local FFTs, the twiddle scaling is the inter-stage adjustment, rows
    are the second group of butterfly stages.

    Args:
        x: Input vector of power-of-two length ``N``.
        n1: First factor (power of two dividing ``N``).

    Returns:
        The DFT of ``x`` (matches ``numpy.fft.fft``).
    """
    x = np.asarray(x, dtype=np.complex128)
    n = x.shape[0]
    _check_power_of_two(n)
    _check_power_of_two(n1)
    if n % n1 != 0:
        raise ValueError("n1 must divide the transform length")
    n2 = n // n1
    # Step 0: view as n1 x n2 matrix (row-major: x[j1*n2 + j2]).
    a = x.reshape(n1, n2)
    # Step 1: FFT along columns (length n1).
    a = np.apply_along_axis(fft, 0, a)
    # Step 2: twiddle scaling W_N^(k1*j2).
    k1 = np.arange(n1)[:, None]
    j2 = np.arange(n2)[None, :]
    a = a * np.exp(-2j * np.pi * k1 * j2 / n)
    # Step 3: FFT along rows (length n2).
    a = np.apply_along_axis(fft, 1, a)
    # Step 4: transpose read-out: X[k2*n1 + k1] = a[k1, k2].
    return a.T.reshape(-1)


def fft2(x: np.ndarray) -> np.ndarray:
    """2-D complex FFT (rows then columns).

    Section 5: "Our analysis in this section also applies to the complex
    2D and 3D FFT."  Matches ``numpy.fft.fft2``.
    """
    x = np.asarray(x, dtype=np.complex128)
    if x.ndim != 2:
        raise ValueError("fft2 expects a 2-D array")
    for n in x.shape:
        _check_power_of_two(n)
    rows = np.vstack([fft(row) for row in x])
    return np.vstack([fft(col) for col in rows.T]).T


def fft3(x: np.ndarray) -> np.ndarray:
    """3-D complex FFT, applied axis by axis.  Matches
    ``numpy.fft.fftn`` on 3-D input."""
    x = np.asarray(x, dtype=np.complex128)
    if x.ndim != 3:
        raise ValueError("fft3 expects a 3-D array")
    for n in x.shape:
        _check_power_of_two(n)
    out = x
    for axis in range(3):
        out = np.apply_along_axis(fft, axis, out)
    return out


def flop_count(n: int) -> float:
    """Operations in an n-point complex FFT, ``5 n log2 n``
    (Section 5.3)."""
    _check_power_of_two(n)
    return 5.0 * n * math.log2(n)


def stage_structure(n: int, points_per_processor: int) -> Tuple[int, list]:
    """The paper's radix-D grouping of butterfly stages.

    Returns ``(num_stages, stages)``, where each element of ``stages``
    is the number of butterfly levels performed in that radix-D stage.
    Quantization (Section 5.3): the final stage may perform fewer than
    ``log2 D`` levels — for the prototypical N=64M, D=64K problem, the
    second stage performs only 10 of 16 levels.
    """
    _check_power_of_two(n)
    _check_power_of_two(points_per_processor)
    total_levels = int(math.log2(n))
    levels_per_stage = max(1, int(math.log2(points_per_processor)))
    stages = []
    remaining = total_levels
    while remaining > 0:
        step = min(levels_per_stage, remaining)
        stages.append(step)
        remaining -= step
    return len(stages), stages
