"""Transform methods: the 1-D complex FFT (paper Section 5).

The efficient parallel FFT the paper analyzes performs the ``log N``
butterfly stages in groups: radix-``D`` stages (``D = N/P`` points per
processor) separated by all-to-all communication, each radix-D stage
internally blocked with a smaller *internal radix* (8, 32, ...) to make
good use of the cache.
"""

from repro.apps.fft.transform import fft, ifft, four_step_fft
from repro.apps.fft.model import FFTModel
from repro.apps.fft.trace import FFTTraceGenerator

__all__ = ["FFTModel", "FFTTraceGenerator", "fft", "four_step_fft", "ifft"]
