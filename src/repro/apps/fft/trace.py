"""Memory-reference trace generator for the parallel blocked FFT.

Emits one processor's double-word reference stream through the radix-D
parallel FFT of Section 5.1: each radix-D stage sweeps the local D
points in internal-radix-r passes; between radix-D stages all local
points are exchanged with other processors.

A radix-r butterfly reads its r complex points (2r double words), the
r-1 complex twiddle factors for the group (2(r-1) double words, stored
in access order as high-radix kernels lay them out for streaming — van
Loan 1992), and writes the r results back.  The level-1 working set is
therefore one butterfly's points-plus-twiddles, and the measured
plateau reproduces the paper's ~0.6 / ~0.25 / ~0.15 read misses per
operation for internal radices 2 / 8 / 32 (Figure 5).
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING, Optional

from repro.apps.fft.transform import stage_structure
from repro.mem.address import AddressSpace
from repro.mem.trace import Trace, TraceBuilder
from repro.mem.shards import trace_builder
from repro.obs.tracing import traced
from repro.units import DOUBLE_WORD

if TYPE_CHECKING:
    from repro.validate.report import ValidationReport


class FFTTraceGenerator:
    """Trace generator for the parallel 1-D complex FFT.

    Args:
        n: Transform length N (power of two).
        num_processors: P (power of two dividing N).
        internal_radix: The cache-blocking radix r (power of two >= 2).
        seed: Determinism-audit seed, recorded for provenance.  The
            butterfly reference pattern depends only on (N, P, r), so
            equal-seed runs are byte-identical by construction; the
            seed also parameterizes :meth:`self_check`'s random input
            vector.
    """

    def __init__(
        self,
        n: int,
        num_processors: int,
        internal_radix: int = 8,
        seed: int = 0,
    ) -> None:
        self.seed = seed
        for value, label in ((n, "n"), (num_processors, "num_processors"), (internal_radix, "internal_radix")):
            if value < 1 or (value & (value - 1)) != 0:
                raise ValueError(f"{label} must be a power of two")
        if internal_radix < 2:
            raise ValueError("internal_radix must be at least 2")
        if n % num_processors != 0 or n // num_processors < internal_radix:
            raise ValueError("each processor needs at least one radix group")
        self.n = n
        self.num_processors = num_processors
        self.radix = internal_radix
        self.points_local = n // num_processors
        self.space = AddressSpace()
        # Complex data: 2 double words per point; double-buffered for the
        # inter-stage exchange.
        self.data = self.space.allocate_array("points", 2 * n)
        self.exchange = self.space.allocate_array("exchange buffer", 2 * n)
        # Twiddle table: D complex entries per processor, laid out in
        # access order and reused across passes (van Loan 1992).  Within
        # one pass every butterfly reads fresh entries (no reuse); across
        # passes the table is swept again from the start.
        twiddle_count = 2 * self.points_local
        self.twiddles = self.space.allocate_array("twiddles", twiddle_count)
        self.flops = 0.0
        self._twiddle_cursor = 0

    def _point_addrs(self, region, index: int):
        """The two double words of complex point ``index``."""
        return (region.element(2 * index), region.element(2 * index + 1))

    def _read_twiddle(self, tb: TraceBuilder) -> None:
        limit = self.twiddles.size // DOUBLE_WORD
        tb.read(self.twiddles.element(self._twiddle_cursor % limit))
        self._twiddle_cursor += 1
        tb.read(self.twiddles.element(self._twiddle_cursor % limit))
        self._twiddle_cursor += 1

    def _trace_butterfly(self, tb: TraceBuilder, region, indices) -> None:
        """One radix-r butterfly over the given point indices.

        Emitted output-by-output: every output value combines all r
        inputs, so each output re-reads the input points.  With a cache
        of at least one butterfly (the lev1WS) the re-reads hit; below
        it the miss rate blows up toward ``2r`` double words per point —
        the left side of the Figure 5 knees.
        """
        r = len(indices)
        for output_index, _ in enumerate(indices):
            for index in indices:
                for addr in self._point_addrs(region, index):
                    tb.read(addr)
            if output_index > 0:
                self._read_twiddle(tb)
        for index in indices:
            for addr in self._point_addrs(region, index):
                tb.write(addr)
        # 5 flops per point per radix-2 level; a radix-r butterfly
        # performs log2(r) levels on r points.
        self.flops += 5.0 * r * math.log2(r)

    def _trace_local_pass(
        self, tb: TraceBuilder, base: int, span: int, stride: int
    ) -> None:
        """One internal-radix pass over ``span`` local points.

        ``stride`` is the butterfly distance of the pass within the
        local data.
        """
        r = self.radix
        group_span = r * stride
        self._twiddle_cursor = 0  # the table is re-swept every pass
        for group_base in range(base, base + span, group_span):
            for offset in range(stride):
                indices = [group_base + offset + k * stride for k in range(r)]
                self._trace_butterfly(tb, self.data, indices)

    def _trace_exchange(self, tb: TraceBuilder, base: int) -> None:
        """The all-to-all: read every local point, write it to the
        (strided) exchange buffer where its next-stage owner expects it."""
        d = self.points_local
        p = self.num_processors
        for local in range(d):
            for addr in self._point_addrs(self.data, base + local):
                tb.read(addr)
            # Destination index under the transpose-style redistribution.
            dest = (local % p) * d + (local // p)
            for addr in self._point_addrs(self.exchange, dest % self.n):
                tb.write(addr)

    @traced("apps.fft.trace_for_processor")
    def trace_for_processor(self, pid: int = 0) -> Trace:
        """Trace one processor through all radix-D stages of the FFT."""
        self.flops = 0.0
        self._twiddle_cursor = 0
        tb = trace_builder()
        base = pid * self.points_local
        num_stages, stages = stage_structure(self.n, self.points_local)
        levels_per_pass = int(math.log2(self.radix))
        for stage_index, levels in enumerate(stages):
            # Internal passes covering `levels` butterfly levels.
            done = 0
            stride = 1
            while done < levels:
                step = min(levels_per_pass, levels - done)
                if step == levels_per_pass:
                    self._trace_local_pass(tb, base, self.points_local, stride)
                    stride *= self.radix
                else:
                    # Remainder pass with a smaller effective radix.
                    small = 2**step
                    saved = self.radix
                    self.radix = small
                    self._trace_local_pass(tb, base, self.points_local, stride)
                    self.radix = saved
                    stride *= small
                done += step
            if stage_index != num_stages - 1:
                self._trace_exchange(tb, base)
        return tb.build()

    @property
    def dataset_bytes(self) -> int:
        """The complex input vector: 16 bytes per point."""
        return 2 * self.n * DOUBLE_WORD

    def total_flops(self) -> float:
        """``5 N log2 N`` for the whole machine."""
        return 5.0 * self.n * math.log2(self.n)

    def self_check(self) -> "ValidationReport":
        """Mathematical self-check of the traced algorithm: transform a
        random vector of this generator's length and verify the inverse
        round-trip plus agreement with ``numpy.fft``.

        Returns the passing
        :class:`~repro.validate.report.ValidationReport`; raises
        :class:`~repro.runtime.errors.SelfCheckError` on failure.
        """
        from repro.validate.selfchecks import assert_self_check

        return assert_self_check("fft", seed=self.seed, n=self.n)
