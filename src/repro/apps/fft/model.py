"""Analytical model for the parallel 1-D FFT (paper Section 5).

Working sets (Section 5.2):

- lev1WS: the points and twiddles of a single internal-radix-r
  butterfly — ``r`` complex points plus ``r-1`` complex twiddles,
  ``~32r`` bytes.  Fitting it yields ~0.6 / ~0.25 / ~0.15 read misses
  per operation for r = 2 / 8 / 32.
- lev2WS: the entire per-processor data set (``2 N/P`` double words of
  points), not expected to fit.

Grain size (Section 5.3): a radix-D stage performs ``5 D log2 D``
operations then communicates all ``2D`` double words, giving the
optimistic ratio ``(5/2) log2(N/P)``; the exact ratio accounts for
stage quantization — ``5 N log2 N`` operations against two all-to-all
exchanges of ``2N`` words each, a ratio of 33 for the prototypical
64M-point transform.  Raising the ratio to R requires ``N/P = 2^(2R/5)``
points per processor: exponential, hence hopeless (18 TB/processor for
R=100).
"""

from __future__ import annotations

import math

from repro.core.analysis import ApplicationModel
from repro.core.grain import GrainConfig, LoadBalanceModel
from repro.core.working_set import WorkingSet, WorkingSetHierarchy
from repro.units import DOUBLE_WORD


class FFTModel(ApplicationModel):
    """Section-5 formulas for one (N, P, r) problem instance.

    Args:
        n: Transform length (power of two).  Defaults to the
            prototypical 64M-point transform.
        num_processors: Machine size P.
        internal_radix: Cache-blocking radix r.
    """

    name = "FFT"
    metric = "misses_per_flop"
    #: Butterfly groups per processor; the FFT has "more than enough
    #: available concurrency", so thresholds are token.
    load_model = LoadBalanceModel(
        unit_name="butterfly groups", good_threshold=64, poor_threshold=4
    )

    def __init__(
        self,
        n: int = 2**26,
        num_processors: int = 1024,
        internal_radix: int = 8,
    ) -> None:
        for value, label in ((n, "n"), (num_processors, "num_processors")):
            if value < 1 or (value & (value - 1)) != 0:
                raise ValueError(f"{label} must be a power of two")
        self.n = n
        self.num_processors = num_processors
        self.radix = internal_radix

    @classmethod
    def for_dataset(
        cls, dataset_bytes: float, num_processors: int = 1024, internal_radix: int = 8
    ) -> "FFTModel":
        """The largest power-of-two transform fitting ``dataset_bytes``
        of complex points (16 bytes each)."""
        n = 1 << int(math.floor(math.log2(dataset_bytes / (2 * DOUBLE_WORD))))
        return cls(n=n, num_processors=num_processors, internal_radix=internal_radix)

    # -- problem shape ------------------------------------------------------

    @property
    def dataset_bytes(self) -> float:
        return 2.0 * self.n * DOUBLE_WORD

    @property
    def points_per_processor(self) -> int:
        return self.n // self.num_processors

    def flops(self) -> float:
        return 5.0 * self.n * math.log2(self.n)

    def concurrency(self) -> float:
        """Independent butterflies per stage (Table 1: ~ n)."""
        return float(self.n) / 2.0

    def num_exchange_phases(self) -> int:
        """All-to-all communication phases: one between consecutive
        radix-D stages."""
        levels = math.log2(self.n)
        levels_per_stage = max(1.0, math.log2(self.points_per_processor))
        return max(0, math.ceil(levels / levels_per_stage) - 1)

    # -- working sets (Section 5.2) -------------------------------------------

    def lev1_bytes(self, radix: int = 0) -> float:
        """One butterfly: r complex points + (r-1) complex twiddles."""
        r = radix or self.radix
        return (2 * r + 2 * (r - 1)) * DOUBLE_WORD

    def lev2_bytes(self) -> float:
        """The processor's local points (complex)."""
        return 2.0 * self.points_per_processor * DOUBLE_WORD

    def plateau_after_lev1(self, radix: int = 0) -> float:
        """Read misses per op once the butterfly fits: each point's two
        double words plus its twiddle share per pass, over ``5 log2 r``
        flops per point per pass: ``(2 + 2(r-1)/r) / (5 log2 r)``.

        Evaluates to 0.60 / 0.25 / 0.157 for r = 2 / 8 / 32 — the
        paper's Figure 5 plateaus.
        """
        r = radix or self.radix
        return (2.0 + 2.0 * (r - 1) / r) / (5.0 * math.log2(r))

    def miss_rate_model(self, cache_bytes: float, radix: int = 0) -> float:
        """Analytical read-misses-per-FLOP at a cache size (Figure 5)."""
        r = radix or self.radix
        if cache_bytes >= self.lev2_bytes():
            # Only the per-stage exchange traffic remains.
            stages = self.num_exchange_phases() + 1
            return max(
                2.0 * self.n * stages / self.flops(),
                0.0,
            )
        if cache_bytes >= self.lev1_bytes(r):
            return self.plateau_after_lev1(r)
        # Below lev1 the r-point butterfly re-reads its r inputs (2r
        # double words) for every one of its r outputs.
        return (2.0 * r + 2.0 * (r - 1) / r) / (5.0 * math.log2(r))

    def working_sets(self) -> WorkingSetHierarchy:
        hierarchy = WorkingSetHierarchy(
            application=self.name,
            problem=(
                f"N=2^{int(math.log2(self.n))}, P={self.num_processors}, "
                f"internal radix {self.radix}"
            ),
            dataset_bytes=self.dataset_bytes,
            per_processor_bytes=self.lev2_bytes(),
        )
        hierarchy.add(
            WorkingSet(
                level=1,
                name=f"one radix-{self.radix} butterfly (points + twiddles)",
                size_bytes=self.lev1_bytes(),
                miss_rate_after=self.plateau_after_lev1(),
                important=True,
                scaling="const (radix only)",
            )
        )
        hierarchy.add(
            WorkingSet(
                level=2,
                name="the processor's local points",
                size_bytes=self.lev2_bytes(),
                miss_rate_after=2.0
                * self.n
                * (self.num_exchange_phases() + 1)
                / self.flops(),
                scaling="N/P",
            )
        )
        return hierarchy

    # -- grain size (Section 5.3) -----------------------------------------------

    def optimistic_ratio(self, points_per_processor: float) -> float:
        """``(5/2) log2(N/P)`` — FLOPs per double word ignoring stage
        quantization."""
        if points_per_processor < 2:
            return 0.0
        return 2.5 * math.log2(points_per_processor)

    def exact_ratio(self, n: int, num_processors: int) -> float:
        """Quantization-corrected ratio: ``5 N log2 N`` operations over
        ``2N`` double words moved once per radix-D stage (the paper's
        "communicates the 2N words of data twice" for the two-stage
        prototypical problem, giving a ratio of 33)."""
        d = max(2, n // num_processors)
        levels = math.log2(n)
        stages = max(1, math.ceil(levels / math.log2(d)))
        return 5.0 * n * levels / (2.0 * n * stages)

    def grain_for_ratio(self, flops_per_word: float) -> float:
        """Bytes per processor needed to sustain a target ratio:
        ``N/P = 2^(2R/5)`` complex points (Section 5.3).

        The prototypical consequences: R=60 needs ~270 MB/processor,
        R=100 needs ~18 TB/processor.
        """
        points = 2.0 ** (2.0 * flops_per_word / 5.0)
        return points * 2 * DOUBLE_WORD

    def flops_per_word(self, config: GrainConfig) -> float:
        points = config.total_data_bytes / (2 * DOUBLE_WORD)
        n = 1 << max(1, int(round(math.log2(points))))
        return self.exact_ratio(n, config.num_processors)

    def units_per_processor(self, config: GrainConfig) -> float:
        points = config.total_data_bytes / (2 * DOUBLE_WORD)
        return points / config.num_processors / self.radix

    def grain_notes(self, config: GrainConfig) -> str:
        return (
            "communication exhibits little locality on non-hypercube"
            " topologies; the ratio is hard to sustain at any realistic grain"
        )
