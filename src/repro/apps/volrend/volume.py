"""Voxel volumes and the synthetic head phantom.

The paper renders a 256x256x113 CT scan of a human head.  That data set
is not redistributable, so we substitute a deterministic synthetic
phantom with the same *occupancy structure* that drives the working-set
behaviour: a mostly transparent surround, a high-opacity shell (the
"skull"), and a semi-transparent interior (the "brain").  Two bytes are
read per voxel during rendering (Section 7.3), so a voxel record is two
bytes in the traced address space.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

#: Bytes read per voxel during rendering (Section 7.3).
VOXEL_BYTES = 2


@dataclass
class Volume:
    """A voxel cube (or box) of opacities in [0, 1].

    Attributes:
        opacities: (nx, ny, nz) float array of per-voxel opacity.
    """

    opacities: np.ndarray

    def __post_init__(self) -> None:
        if self.opacities.ndim != 3:
            raise ValueError("opacities must be a 3-D array")
        if float(self.opacities.min()) < 0 or float(self.opacities.max()) > 1:
            raise ValueError("opacities must lie in [0, 1]")

    @property
    def shape(self) -> Tuple[int, int, int]:
        return self.opacities.shape  # type: ignore[return-value]

    @property
    def num_voxels(self) -> int:
        return int(np.prod(self.opacities.shape))

    @property
    def data_bytes(self) -> int:
        return self.num_voxels * VOXEL_BYTES

    def voxel_index(self, i: int, j: int, k: int) -> int:
        """Linear index of voxel (i, j, k), row-major."""
        _, ny, nz = self.shape
        return (i * ny + j) * nz + k

    def trilinear(self, x: float, y: float, z: float) -> float:
        """Trilinearly interpolated opacity at a continuous position.

        Positions outside the volume return 0 (fully transparent).
        """
        nx, ny, nz = self.shape
        if not (0 <= x <= nx - 1 and 0 <= y <= ny - 1 and 0 <= z <= nz - 1):
            return 0.0
        i0, j0, k0 = int(x), int(y), int(z)
        i1, j1, k1 = min(i0 + 1, nx - 1), min(j0 + 1, ny - 1), min(k0 + 1, nz - 1)
        fx, fy, fz = x - i0, y - j0, z - k0
        v = self.opacities
        c00 = v[i0, j0, k0] * (1 - fx) + v[i1, j0, k0] * fx
        c01 = v[i0, j0, k1] * (1 - fx) + v[i1, j0, k1] * fx
        c10 = v[i0, j1, k0] * (1 - fx) + v[i1, j1, k0] * fx
        c11 = v[i0, j1, k1] * (1 - fx) + v[i1, j1, k1] * fx
        c0 = c00 * (1 - fy) + c10 * fy
        c1 = c01 * (1 - fy) + c11 * fy
        return float(c0 * (1 - fz) + c1 * fz)

    def corner_voxels(self, x: float, y: float, z: float):
        """The 8 voxel coordinates a trilinear sample at (x,y,z) reads."""
        nx, ny, nz = self.shape
        i0, j0, k0 = int(x), int(y), int(z)
        i1, j1, k1 = min(i0 + 1, nx - 1), min(j0 + 1, ny - 1), min(k0 + 1, nz - 1)
        return [
            (i, j, k)
            for i in (i0, i1)
            for j in (j0, j1)
            for k in (k0, k1)
        ]


def synthetic_head(n: int, depth: int = 0, seed: int = 0) -> Volume:
    """A head-like phantom of ``n x n x depth`` voxels (depth defaults
    to ``n``, mirroring the flattened 256x256x113 head when smaller).

    Structure: transparent air, an ellipsoidal high-opacity shell, a
    mildly opaque interior with smooth lumpy texture.
    """
    depth = depth or n
    i, j, k = np.meshgrid(
        np.linspace(-1, 1, n),
        np.linspace(-1, 1, n),
        np.linspace(-1, 1, depth),
        indexing="ij",
    )
    # Ellipsoidal radius (head slightly elongated along i).
    r = np.sqrt((i / 0.9) ** 2 + (j / 0.75) ** 2 + (k / 0.8) ** 2)
    opacity = np.zeros_like(r)
    shell = (r > 0.82) & (r <= 0.95)
    interior = r <= 0.82
    # Semi-transparent shell: a clinically useful transfer function lets
    # rays penetrate the "skull" and sample the interior before early
    # termination, as the paper's head renderings do.
    opacity[shell] = 0.25
    rng = np.random.default_rng(seed)
    texture = rng.uniform(0.0, 1.0, size=(8, 8, 8))
    # Smooth lumpy interior via low-resolution noise, trilinear-upsampled.
    fi = (i + 1) / 2 * 7
    fj = (j + 1) / 2 * 7
    fk = (k + 1) / 2 * 7
    lump = texture[
        fi.astype(int).clip(0, 7), fj.astype(int).clip(0, 7), fk.astype(int).clip(0, 7)
    ]
    opacity[interior] = 0.02 + 0.06 * lump[interior]
    return Volume(opacities=opacity)


def transparent_volume(n: int) -> Volume:
    """A fully transparent cube (for octree-skipping tests)."""
    return Volume(opacities=np.zeros((n, n, n)))


def opaque_volume(n: int, opacity: float = 1.0) -> Volume:
    """A fully opaque cube (for early-termination tests)."""
    return Volume(opacities=np.full((n, n, n), float(opacity)))
