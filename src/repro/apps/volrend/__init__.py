"""Volume rendering by optimized ray casting (paper Section 7).

A parallel version of Levoy's algorithm (Nieh & Levoy 1992): for each
frame, rays are cast through every pixel of the image plane into a
read-only voxel cube; samples along each ray are trilinearly
interpolated, composited front-to-back, terminated early at high
opacity, and accelerated by an octree that skips transparent regions.
"""

from repro.apps.volrend.model import VolrendModel
from repro.apps.volrend.octree import MinMaxOctree
from repro.apps.volrend.partition import ImagePartition, simulate_ray_stealing
from repro.apps.volrend.render import Camera, RayCaster, render_frame
from repro.apps.volrend.trace import VolrendTraceGenerator
from repro.apps.volrend.volume import Volume, synthetic_head

__all__ = [
    "Camera",
    "ImagePartition",
    "MinMaxOctree",
    "RayCaster",
    "VolrendModel",
    "VolrendTraceGenerator",
    "Volume",
    "render_frame",
    "simulate_ray_stealing",
    "synthetic_head",
]
