"""Memory-reference trace generator for the volume renderer.

Emits one processor's reference stream while it renders its image block
over one or more frames (successive frames rotate the viewing angle
gradually, as in the paper's lev3WS measurement).  Traced structures:

- **voxels**: 2 bytes each (Section 7.3), 4 voxels per 8-byte cache
  block, read 8-at-a-time by trilinear samples;
- **octree nodes**: 2 double words each, read along the root-to-leaf
  path consulted per sample;
- **ray scratch**: the per-sample temporary state (the lev1WS of
  ~0.4 KB together with the sample's voxel/octree neighbourhood);
- **pixels**: 1 double word each, written once per ray.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

import numpy as np

from repro.apps.volrend.octree import MinMaxOctree
from repro.apps.volrend.partition import ImagePartition
from repro.apps.volrend.render import Camera, RayCaster
from repro.apps.volrend.volume import VOXEL_BYTES, Volume
from repro.mem.address import AddressSpace
from repro.mem.trace import Trace, TraceBuilder
from repro.mem.shards import trace_builder
from repro.obs.tracing import traced
from repro.units import DOUBLE_WORD

if TYPE_CHECKING:
    from repro.validate.report import ValidationReport

#: Double words of per-ray scratch state.
SCRATCH_DOUBLEWORDS = 24
#: Double words per octree node record.
NODE_DOUBLEWORDS = 2


class VolrendTraceGenerator:
    """Trace generator for the parallel ray caster.

    Args:
        volume: The voxel data.
        num_processors: Perfect square; the image is partitioned into
            contiguous rectangular blocks.
        image_size: Image plane side in pixels (defaults to the volume
            side).
        step: Ray sampling interval in voxels.
        seed: Determinism-audit seed recording how ``volume`` was
            generated (use :meth:`from_synthetic_head` to thread it
            explicitly); also parameterizes :meth:`self_check`.
    """

    def __init__(
        self,
        volume: Volume,
        num_processors: int = 4,
        image_size: Optional[int] = None,
        step: float = 1.0,
        seed: int = 0,
    ) -> None:
        self.seed = seed
        self.volume = volume
        self.num_processors = num_processors
        self.image_size = image_size or volume.shape[0]
        self.step = step
        self.octree = MinMaxOctree(volume)
        self.partition = ImagePartition(self.image_size, num_processors)
        self.space = AddressSpace()
        self.voxel_region = self.space.allocate(
            "voxels", volume.num_voxels * VOXEL_BYTES
        )
        self.node_region = self.space.allocate_array(
            "octree nodes", self.octree.num_nodes * NODE_DOUBLEWORDS
        )
        self.scratch = self.space.allocate_array("ray scratch", SCRATCH_DOUBLEWORDS)
        self.pixel_region = self.space.allocate_array(
            "pixels", self.image_size * self.image_size
        )
        self.rays_cast = 0
        self.samples = 0

    @classmethod
    def from_synthetic_head(
        cls,
        n: int,
        seed: int = 0,
        num_processors: int = 4,
        image_size: Optional[int] = None,
        step: float = 1.0,
    ) -> "VolrendTraceGenerator":
        """Seeded construction from the synthetic head data set: the
        only randomness in the volrend trace is the voxel noise, so
        equal seeds yield byte-identical traces."""
        from repro.apps.volrend.volume import synthetic_head

        return cls(
            synthetic_head(n, seed=seed),
            num_processors=num_processors,
            image_size=image_size,
            step=step,
            seed=seed,
        )

    def self_check(self) -> "ValidationReport":
        """Mathematical self-check of the traced algorithm: verify the
        min-max octree bounds against brute-force voxel extrema and the
        rendered image against physical bounds.

        Returns the passing
        :class:`~repro.validate.report.ValidationReport`; raises
        :class:`~repro.runtime.errors.SelfCheckError` on failure.
        """
        from repro.validate.selfchecks import assert_self_check

        return assert_self_check(
            "volrend", seed=self.seed, n=min(self.volume.shape[0], 16)
        )

    # -- addressing ---------------------------------------------------------

    def _voxel_addr(self, i: int, j: int, k: int) -> int:
        return self.voxel_region.addr(
            self.volume.voxel_index(i, j, k) * VOXEL_BYTES
        )

    def _node_addr(self, node_index: int, offset: int = 0) -> int:
        return self.node_region.element(node_index * NODE_DOUBLEWORDS + offset)

    # -- trace ---------------------------------------------------------------

    @traced("apps.volrend.trace_for_processor")
    def trace_for_processor(
        self,
        pid: int,
        frames: int = 1,
        angle_start: float = 0.3,
        angle_step: float = 0.05,
    ) -> Trace:
        """Trace processor ``pid`` rendering its block over ``frames``
        frames with a gradually changing viewing angle."""
        if not 0 <= pid < self.num_processors:
            raise IndexError("processor id out of range")
        tb = trace_builder()
        rows, cols = self.partition.block(pid)
        self.rays_cast = 0
        self.samples = 0

        def sample_hook(x: float, y: float, z: float) -> None:
            self.samples += 1
            for (i, j, k) in self.volume.corner_voxels(x, y, z):
                tb.read(self._voxel_addr(i, j, k))
            # Sample-state churn in the ray scratch buffer.
            for s in range(0, SCRATCH_DOUBLEWORDS, 2):
                tb.read(self.scratch.element(s))
            for s in range(0, SCRATCH_DOUBLEWORDS, 4):
                tb.write(self.scratch.element(s))

        def skip_hook(x: float, y: float, z: float) -> None:
            for node in self.octree.path_to(x, y, z):
                tb.read(self._node_addr(node.index))
                tb.read(self._node_addr(node.index, 1))

        for frame in range(frames):
            camera = Camera(
                angle=angle_start + frame * angle_step,
                image_size=self.image_size,
                step=self.step,
            )
            caster = RayCaster(self.volume, self.octree)
            for py in rows:
                for px in cols:
                    origin, direction = camera.ray(self.volume.shape, px, py)
                    # Per-ray setup: scratch init.
                    for s in range(SCRATCH_DOUBLEWORDS):
                        tb.write(self.scratch.element(s))
                    caster.cast(
                        origin,
                        direction,
                        sample_hook=sample_hook,
                        skip_hook=skip_hook,
                        step=self.step,
                    )
                    tb.write(self.pixel_region.element(py * self.image_size + px))
                    self.rays_cast += 1
        return tb.build()

    @property
    def dataset_bytes(self) -> int:
        return self.voxel_region.size + self.node_region.size

    def samples_per_ray(self) -> float:
        if self.rays_cast == 0:
            return 0.0
        return self.samples / self.rays_cast
